//! Congruence domain: `value ≡ r (mod m)`.
//!
//! This is the domain that actually decides FIFO-period collisions: a loop
//! counter stepped by `k` satisfies `c ≡ c0 (mod |k|)` at the header, and
//! whether two staggered copies of a periodic traffic pattern re-align is a
//! residue-class question on the stagger. `m == 0` encodes an exact
//! constant, `m == 1` is top (every value).
//!
//! Congruences are integer facts; they do not survive wrap-around mod 2^64
//! (unless `m` divides 2^64). The product domain in [`super`] therefore only
//! applies a non-constant congruence transfer when the interval half proves
//! the machine operation did not overflow; constants are exempt because
//! wrapping constants track the machine value exactly.

use safedm_isa::AluKind;

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// The set `{ v : v ≡ r (mod m) }`; `m == 0` means exactly `r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Congruence {
    /// Modulus; 0 = constant, 1 = top.
    pub m: u64,
    /// Residue, reduced mod `m` when `m > 1`.
    pub r: u64,
}

impl Congruence {
    /// Every value.
    pub const TOP: Congruence = Congruence { m: 1, r: 0 };

    /// The singleton abstraction of one value.
    #[must_use]
    pub fn constant(c: u64) -> Congruence {
        Congruence { m: 0, r: c }
    }

    fn normalized(m: u64, r: u64) -> Congruence {
        if m == 0 {
            Congruence { m: 0, r }
        } else {
            Congruence { m, r: r % m }
        }
    }

    /// Whether this is the top element.
    #[must_use]
    pub fn is_top(&self) -> bool {
        self.m == 1
    }

    /// The single member, when constant.
    #[must_use]
    pub fn as_const(&self) -> Option<u64> {
        (self.m == 0).then_some(self.r)
    }

    /// Whether `v` is a member.
    #[must_use]
    pub fn contains(&self, v: u64) -> bool {
        if self.m == 0 {
            v == self.r
        } else {
            v % self.m == self.r
        }
    }

    /// Least upper bound: the coarsest congruence containing both. Joining
    /// constants `a` and `b` yields `a mod |a-b|`; in general the modulus is
    /// `gcd(m1, m2, |r1-r2|)`, which strictly divides its inputs, so join
    /// chains are finite and the fixpoint needs no widening.
    #[must_use]
    pub fn join(&self, other: &Congruence) -> Congruence {
        if self == other {
            return *self;
        }
        let diff = self.r.abs_diff(other.r);
        let m = gcd(gcd(self.m, other.m), diff);
        if m == 0 {
            // Both constants with equal residues is the self == other case;
            // here diff != 0 so m != 0 unless both moduli were 0 and equal.
            return Congruence::constant(self.r);
        }
        Congruence::normalized(m, self.r)
    }

    /// Abstract counterpart of [`safedm_isa::alu`], valid **only when the
    /// concrete operation cannot wrap** (the caller proves this with the
    /// interval half of the product). Constant operands are exact regardless.
    #[must_use]
    pub fn alu(kind: AluKind, a: &Congruence, b: &Congruence) -> Congruence {
        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            return Congruence::constant(safedm_isa::alu(kind, x, y));
        }
        match kind {
            AluKind::Add => {
                let m = gcd(a.m, b.m);
                if m == 0 {
                    Congruence::constant(a.r.wrapping_add(b.r))
                } else {
                    Congruence::normalized(m, (a.r % m).wrapping_add(b.r % m))
                }
            }
            AluKind::Sub => {
                let m = gcd(a.m, b.m);
                if m == 0 {
                    Congruence::constant(a.r.wrapping_sub(b.r))
                } else {
                    Congruence::normalized(m, (a.r % m).wrapping_add(m - b.r % m))
                }
            }
            AluKind::Mul => match (a.as_const(), b.as_const()) {
                // k * (qm + r) = q(km) + kr.
                (Some(k), None) => match (k.checked_mul(b.m), k.checked_mul(b.r)) {
                    (Some(m), Some(r)) => Congruence::normalized(m, r),
                    _ => Congruence::TOP,
                },
                (None, Some(k)) => match (k.checked_mul(a.m), k.checked_mul(a.r)) {
                    (Some(m), Some(r)) => Congruence::normalized(m, r),
                    _ => Congruence::TOP,
                },
                _ => Congruence::TOP,
            },
            AluKind::Sll => match b.as_const() {
                // A left shift by a known amount is a multiplication by 2^s.
                Some(s) if (s & 63) < 63 => {
                    let k = 1u64 << (s & 63);
                    match (k.checked_mul(a.m), k.checked_mul(a.r)) {
                        (Some(m), Some(r)) => Congruence::normalized(m, r),
                        _ => Congruence::TOP,
                    }
                }
                _ => Congruence::TOP,
            },
            _ => Congruence::TOP,
        }
    }

    /// Whether membership in `self` and membership in `other` are provably
    /// disjoint — no value satisfies both. Used to prove two register reads
    /// must differ.
    #[must_use]
    pub fn disjoint(&self, other: &Congruence) -> bool {
        match (self.as_const(), other.as_const()) {
            (Some(a), Some(b)) => a != b,
            _ => {
                // Solvable iff gcd(m1, m2) divides r1 - r2 (CRT).
                let g = gcd(self.m, other.m);
                g > 1 && self.r % g != other.r % g
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_of_constants_finds_the_step() {
        let a = Congruence::constant(100);
        let b = Congruence::constant(96);
        let j = a.join(&b);
        assert_eq!(j, Congruence { m: 4, r: 0 });
        assert!(j.contains(0) && j.contains(104) && !j.contains(101));
        // Further joins with more counter values are stable.
        assert_eq!(j.join(&Congruence::constant(92)), j);
    }

    #[test]
    fn add_keeps_residue() {
        let c = Congruence { m: 8, r: 3 };
        let step = Congruence::constant(8);
        let next = Congruence::alu(AluKind::Add, &c, &step);
        assert_eq!(next, Congruence { m: 8, r: 3 });
        let off = Congruence::alu(AluKind::Add, &c, &Congruence::constant(1));
        assert_eq!(off, Congruence { m: 8, r: 4 });
    }

    #[test]
    fn mul_and_shift_scale_the_modulus() {
        let c = Congruence { m: 4, r: 1 };
        let scaled = Congruence::alu(AluKind::Mul, &Congruence::constant(3), &c);
        assert_eq!(scaled, Congruence { m: 12, r: 3 });
        let shifted = Congruence::alu(AluKind::Sll, &c, &Congruence::constant(2));
        assert_eq!(shifted, Congruence { m: 16, r: 4 });
    }

    #[test]
    fn disjointness_is_a_crt_check() {
        let even = Congruence { m: 2, r: 0 };
        let odd = Congruence { m: 2, r: 1 };
        assert!(even.disjoint(&odd));
        let m4r1 = Congruence { m: 4, r: 1 };
        assert!(!even.disjoint(&Congruence { m: 4, r: 2 }));
        assert!(m4r1.disjoint(&Congruence { m: 4, r: 3 }) || !m4r1.disjoint(&odd));
        assert!(!Congruence::TOP.disjoint(&even));
    }

    #[test]
    fn join_chain_terminates() {
        let mut c = Congruence::constant(7);
        let mut steps = 0;
        for v in [19u64, 31, 43, 44, 45] {
            let next = c.join(&Congruence::constant(v));
            if next != c {
                steps += 1;
            }
            c = next;
        }
        assert!(steps <= 5);
        assert_eq!(c, Congruence::TOP);
    }
}
