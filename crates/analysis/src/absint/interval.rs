//! Unsigned interval domain with widening/narrowing.
//!
//! An [`Interval`] abstracts a set of `u64` values by its smallest enclosing
//! non-wrapping range `[lo, hi]`. The main job of the domain in the
//! diversity prover is *overflow exclusion*: congruence arithmetic (see
//! [`super::congruence`]) is only valid over the integers, so every
//! congruence transfer first asks the interval half of the product whether
//! the machine operation could have wrapped mod 2^64.

use safedm_isa::AluKind;

/// A non-wrapping unsigned range `[lo, hi]` with `lo <= hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: u64,
    /// Largest possible value.
    pub hi: u64,
}

impl Interval {
    /// The full range: every `u64`.
    pub const TOP: Interval = Interval { lo: 0, hi: u64::MAX };

    /// The singleton abstraction of one value.
    #[must_use]
    pub fn constant(c: u64) -> Interval {
        Interval { lo: c, hi: c }
    }

    /// Whether this is the full range.
    #[must_use]
    pub fn is_top(&self) -> bool {
        *self == Interval::TOP
    }

    /// The single member, when the range is a singleton.
    #[must_use]
    pub fn as_const(&self) -> Option<u64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether `v` is a member.
    #[must_use]
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Least upper bound (range hull).
    #[must_use]
    pub fn join(&self, other: &Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Standard widening: any bound still moving after a join jumps to its
    /// extreme, guaranteeing the fixpoint terminates.
    #[must_use]
    pub fn widen(&self, next: &Interval) -> Interval {
        Interval {
            lo: if next.lo < self.lo { 0 } else { self.lo },
            hi: if next.hi > self.hi { u64::MAX } else { self.hi },
        }
    }

    /// One narrowing step after widening: bounds that were widened to an
    /// extreme may be pulled back to the recomputed value.
    #[must_use]
    pub fn narrow(&self, next: &Interval) -> Interval {
        Interval {
            lo: if self.lo == 0 { next.lo } else { self.lo },
            hi: if self.hi == u64::MAX { next.hi } else { self.hi },
        }
    }

    /// Abstract counterpart of [`safedm_isa::alu`]. Sound but deliberately
    /// coarse outside the operations the prover needs (add/sub chains for
    /// counters, masks, small shifts); everything else returns
    /// [`Interval::TOP`].
    #[must_use]
    pub fn alu(kind: AluKind, a: &Interval, b: &Interval) -> Interval {
        // Two singletons are exact for every operation, wrapping included —
        // the machine value is known.
        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            return Interval::constant(safedm_isa::alu(kind, x, y));
        }
        match kind {
            AluKind::Add => match (a.lo.checked_add(b.lo), a.hi.checked_add(b.hi)) {
                (Some(lo), Some(hi)) => Interval { lo, hi },
                _ => Interval::TOP,
            },
            AluKind::Sub => {
                if a.lo >= b.hi {
                    Interval { lo: a.lo - b.hi, hi: a.hi - b.lo }
                } else {
                    Interval::TOP
                }
            }
            AluKind::Mul => match (a.lo.checked_mul(b.lo), a.hi.checked_mul(b.hi)) {
                (Some(lo), Some(hi)) => Interval { lo, hi },
                _ => Interval::TOP,
            },
            AluKind::And => Interval { lo: 0, hi: a.hi.min(b.hi) },
            AluKind::Or | AluKind::Xor => {
                // Bounded by the next power of two above both operands.
                let bits = 64 - a.hi.max(b.hi).leading_zeros();
                if bits >= 64 {
                    Interval::TOP
                } else {
                    Interval { lo: 0, hi: (1u64 << bits) - 1 }
                }
            }
            AluKind::Srl => {
                // The shift amount is masked to 6 bits by the hardware; only
                // a known amount gives a usable bound.
                match b.as_const() {
                    Some(s) => Interval { lo: a.lo >> (s & 63), hi: a.hi >> (s & 63) },
                    None => Interval { lo: 0, hi: a.hi },
                }
            }
            AluKind::Sll => match b.as_const() {
                Some(s) => {
                    let s = s & 63;
                    match (a.lo.checked_shl(s as u32), a.hi.checked_shl(s as u32)) {
                        (Some(lo), Some(hi)) if (hi >> s) == a.hi => Interval { lo, hi },
                        _ => Interval::TOP,
                    }
                }
                None => Interval::TOP,
            },
            AluKind::Slt | AluKind::Sltu => Interval { lo: 0, hi: 1 },
            AluKind::Divu => {
                // Unsigned division never grows the dividend; divisor 0
                // yields u64::MAX by convention, so only a nonzero-proved
                // divisor keeps a bound.
                match a.hi.checked_div(b.lo) {
                    Some(hi) if b.lo > 0 => Interval { lo: a.lo / b.hi.max(1), hi },
                    _ => Interval::TOP,
                }
            }
            AluKind::Remu => {
                if b.lo > 0 {
                    Interval { lo: 0, hi: a.hi.min(b.hi - 1) }
                } else {
                    Interval::TOP
                }
            }
            _ => Interval::TOP,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_contains() {
        let a = Interval::constant(3).join(&Interval::constant(9));
        assert_eq!(a, Interval { lo: 3, hi: 9 });
        assert!(a.contains(5) && !a.contains(10));
        assert!(Interval::TOP.contains(u64::MAX));
    }

    #[test]
    fn widening_terminates_growth() {
        let a = Interval { lo: 4, hi: 10 };
        let grown = Interval { lo: 4, hi: 12 };
        assert_eq!(a.widen(&grown), Interval { lo: 4, hi: u64::MAX });
        assert_eq!(a.widen(&a), a);
        // Narrowing recovers a recomputed finite bound.
        let w = a.widen(&grown);
        assert_eq!(w.narrow(&Interval { lo: 4, hi: 20 }), Interval { lo: 4, hi: 20 });
    }

    #[test]
    fn add_overflow_goes_top() {
        let a = Interval { lo: 1, hi: u64::MAX - 1 };
        let b = Interval { lo: 0, hi: 2 };
        assert!(Interval::alu(AluKind::Add, &a, &b).is_top());
        let small = Interval { lo: 1, hi: 5 };
        assert_eq!(Interval::alu(AluKind::Add, &small, &b), Interval { lo: 1, hi: 7 });
    }

    #[test]
    fn const_const_is_exact_even_when_wrapping() {
        let a = Interval::constant(u64::MAX);
        let b = Interval::constant(2);
        assert_eq!(Interval::alu(AluKind::Add, &a, &b), Interval::constant(1));
    }

    #[test]
    fn sub_requires_order_proof() {
        let a = Interval { lo: 10, hi: 20 };
        let b = Interval { lo: 1, hi: 5 };
        assert_eq!(Interval::alu(AluKind::Sub, &a, &b), Interval { lo: 5, hi: 19 });
        assert!(Interval::alu(AluKind::Sub, &b, &a).is_top());
    }
}
