//! Abstract-interpretation diversity prover.
//!
//! A worklist fixpoint over the [`Cfg`] with three composable abstract
//! domains:
//!
//! * [`interval::Interval`] — value ranges with widening/narrowing, used to
//!   exclude wrap-around so the congruence arithmetic is valid;
//! * [`congruence::Congruence`] — `value ≡ r (mod m)`, the residue facts
//!   that decide FIFO-period collisions;
//! * [`stagger::DeltaState`] — the relational core-1-minus-core-0 register
//!   deltas plus the memory-mirror flag.
//!
//! From the fixpoint the prover emits a three-valued [`Verdict`] per program
//! point and a [`LoopCertificate`] per natural loop carrying the minimum
//! staggering (in committed instructions of *effective* inter-core delta)
//! for which diversity is proved — or `None` with the refuting witness.
//!
//! ## The model behind the verdicts
//!
//! Both cores execute the same binary from the same reset state, so their
//! committed instruction streams are identical and the data-signature FIFO
//! of the delayed core observes the *same sample sequence* shifted by the
//! effective stagger. Collision verdicts are *existential* (at least one
//! no-diversity cycle must be observed while both cores execute the region):
//! either the cores are in lockstep (effective stagger 0 and every read
//! provably delta-zero), or an iteration-invariant traffic pattern re-aligns
//! because the stagger is ≡ 0 modulo the pattern's rotation period. Diverse
//! verdicts are *universal* (no no-diversity cycle may occur while both
//! cores are warmed up inside the region): every instruction of the loop
//! body reads a provably iteration-injective value, so any non-zero window
//! alignment compares distinct counter states. The dual-issue front end
//! quantises the alignment in groups of up to two instructions, which is why
//! certificates start at an effective delta of 2, and the grouping-alignment
//! argument is machine-checked by the `prove_soundness` harness across the
//! full kernels × staggers grid.
//!
//! ## Interprocedural composition
//!
//! [`prove`] first builds the whole-program call graph
//! ([`crate::callgraph::CallGraph`]) and its bottom-up function summaries
//! ([`crate::summary::FnSummary`]), then uses them in two places. The
//! fixpoint applies each callee's [`CallEffect`] along the call's
//! fall-through edge — only the may-clobber set havocs, a provably balanced
//! callee preserves the caller's `sp` facts, a returning callee preserves
//! `ra`, and a CSR-free callee with delta-zero inputs and a mirrored memory
//! preserves the relational state (identical inputs drive identical
//! execution on both cores). Loop certification splices composable
//! (straight-line leaf) callee bodies into the iteration's committed stream,
//! so loops containing calls are certified over their *true* commit sequence
//! instead of refuted at the call. Without summaries
//! ([`AbsInt::compute`]), every call fall-through conservatively havocs the
//! whole state.

pub mod congruence;
pub mod interval;
pub mod pair;
pub mod stagger;

use std::fmt;

use safedm_isa::csr::addr::MHARTID;
use safedm_isa::{abs_transfer, call_return_transfer, AbsValue, AluKind, Inst, Reg};

use crate::cfg::{Cfg, DecodedProgram, NaturalLoop};
use crate::dataflow::{invariant_mask, ConstProp, LoopTraffic, Taint};
use crate::diag::{Diagnostic, LintCode, PcSpan, Severity};
use crate::summary::{CallEffect, Interproc};
use crate::AnalysisConfig;

pub use congruence::Congruence;
pub use interval::Interval;
pub use pair::{prove_pair, PairCertificate, PairReport};
pub use stagger::{Delta, DeltaState};

// ---------------------------------------------------------------------------
// The product value domain
// ---------------------------------------------------------------------------

/// Reduced product of the interval and congruence domains. The interval half
/// gates the congruence transfer: a non-constant congruence result is only
/// kept when the interval proves the machine operation did not wrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abs {
    /// Range information.
    pub itv: Interval,
    /// Residue information.
    pub cong: Congruence,
}

impl Abs {
    /// The full value set.
    pub const TOP: Abs = Abs { itv: Interval::TOP, cong: Congruence::TOP };

    /// The single member, when either half pins one down.
    #[must_use]
    pub fn as_const(&self) -> Option<u64> {
        self.itv.as_const().or_else(|| self.cong.as_const())
    }

    /// Whether `v` is a member of both halves.
    #[must_use]
    pub fn contains(&self, v: u64) -> bool {
        self.itv.contains(v) && self.cong.contains(v)
    }

    /// Pointwise least upper bound.
    #[must_use]
    pub fn join(&self, other: &Abs) -> Abs {
        Abs { itv: self.itv.join(&other.itv), cong: self.cong.join(&other.cong) }
    }

    /// Widening: intervals widen, congruences join (their chains are finite).
    #[must_use]
    pub fn widen(&self, next: &Abs) -> Abs {
        Abs { itv: self.itv.widen(&next.itv), cong: self.cong.join(&next.cong) }
    }
}

impl AbsValue for Abs {
    fn top() -> Abs {
        Abs::TOP
    }

    fn constant(c: u64) -> Abs {
        Abs { itv: Interval::constant(c), cong: Congruence::constant(c) }
    }

    fn alu(kind: AluKind, a: &Abs, b: &Abs) -> Abs {
        let itv = Interval::alu(kind, &a.itv, &b.itv);
        // Congruences are integer facts; they only survive machine
        // arithmetic when it provably does not wrap (or when both operands
        // are constants — wrapping constants track the machine exactly).
        let wrap_sensitive =
            matches!(kind, AluKind::Add | AluKind::Sub | AluKind::Mul | AluKind::Sll);
        let both_const = a.as_const().is_some() && b.as_const().is_some();
        let cong = if !wrap_sensitive || both_const || !itv.is_top() {
            Congruence::alu(kind, &a.cong, &b.cong)
        } else {
            Congruence::TOP
        };
        Abs { itv, cong }
    }

    fn csr(csr: u16) -> Abs {
        if csr == MHARTID {
            // Two harts: the value is 0 or 1 on this platform.
            Abs { itv: Interval { lo: 0, hi: 1 }, cong: Congruence::TOP }
        } else {
            Abs::TOP
        }
    }
}

// ---------------------------------------------------------------------------
// The fixpoint state and engine
// ---------------------------------------------------------------------------

/// Abstract machine state at a program point: per-register product values
/// plus the relational inter-core deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsState {
    /// `regs[i]` abstracts `x{i}` (index 0 is pinned to constant 0).
    pub regs: [Abs; 32],
    /// Relational inter-core state.
    pub delta: DeltaState,
}

impl AbsState {
    /// The platform reset state: zeroed registers, mirrored memories.
    #[must_use]
    pub fn reset() -> AbsState {
        AbsState { regs: [Abs::constant(0); 32], delta: DeltaState::equal() }
    }

    /// The abstract value of one register.
    #[must_use]
    pub fn get(&self, r: Reg) -> Abs {
        if r.is_zero() {
            Abs::constant(0)
        } else {
            self.regs[r.index() as usize]
        }
    }

    fn join(&self, other: &AbsState) -> AbsState {
        let mut regs = [Abs::TOP; 32];
        for (i, slot) in regs.iter_mut().enumerate() {
            *slot = self.regs[i].join(&other.regs[i]);
        }
        AbsState { regs, delta: self.delta.join(&other.delta) }
    }

    fn widen(&self, next: &AbsState) -> AbsState {
        let mut regs = [Abs::TOP; 32];
        for (i, slot) in regs.iter_mut().enumerate() {
            *slot = self.regs[i].widen(&next.regs[i]);
        }
        AbsState { regs, delta: self.delta.join(&next.delta) }
    }

    /// Applies one instruction to both halves of the state.
    pub fn transfer(&mut self, pc: u64, inst: &Inst) {
        if let Some((rd, v)) = abs_transfer::<Abs>(inst, pc, |r| self.get(r)) {
            self.regs[rd.index() as usize] = v;
        }
        self.delta.transfer(pc, inst);
    }
}

/// The fixpoint solution: one abstract state per basic-block entry
/// (`None` = block unreachable from the entry point).
#[derive(Debug, Clone)]
pub struct AbsInt {
    /// Per-block entry states.
    pub block_in: Vec<Option<AbsState>>,
}

impl AbsInt {
    /// Runs the worklist fixpoint with widening at natural-loop headers.
    ///
    /// No interprocedural summaries: every call fall-through edge applies
    /// the worst-case [`CallEffect`] (full havoc, broken memory mirror). Use
    /// [`AbsInt::compute_with_summaries`] for the summary-refined fixpoint.
    #[must_use]
    pub fn compute(prog: &DecodedProgram, cfg: &Cfg) -> AbsInt {
        AbsInt::compute_with_summaries(prog, cfg, None)
    }

    /// The worklist fixpoint with per-callee [`CallEffect`]s applied along
    /// call fall-through edges: only the callee's may-clobber set havocs, a
    /// provably balanced callee preserves the caller's `sp` facts, a
    /// returning callee preserves `ra`, and a CSR-free callee with
    /// delta-zero inputs preserves the relational state.
    #[must_use]
    pub fn compute_with_summaries(
        prog: &DecodedProgram,
        cfg: &Cfg,
        ipo: Option<&Interproc>,
    ) -> AbsInt {
        let nb = cfg.blocks.len();
        let mut block_in: Vec<Option<AbsState>> = vec![None; nb];
        let mut joins = vec![0u32; nb];
        let is_header: Vec<bool> =
            (0..nb).map(|b| cfg.loops.iter().any(|l| l.header == b)).collect();
        // Joins at a header beyond this trip widening kicks in. Two passes
        // are enough to discover a counter's step before the range widens.
        const WIDEN_AFTER: u32 = 2;
        // Irreducible cycles have no natural-loop header to widen at, yet a
        // counter inside one still climbs the interval lattice one step per
        // pass. Any block re-joined this often is on some cycle: widen there
        // too so the fixpoint terminates (reducible code never gets near
        // this count, so precision is unaffected).
        const WIDEN_AFTER_ANY: u32 = 16;

        let Some(entry) = cfg.entry_block else { return AbsInt { block_in } };
        block_in[entry] = Some(AbsState::reset());
        let mut worklist = vec![entry];
        while let Some(b) = worklist.pop() {
            let Some(mut state) = block_in[b].clone() else { continue };
            let blk = &cfg.blocks[b];
            for i in blk.start..blk.end {
                if let Some(inst) = prog.slots[i].inst {
                    state.transfer(prog.slots[i].pc, &inst);
                }
            }
            // A linking jump's fall-through successor is the abstract return
            // edge: the callee runs in between, so its effect applies there
            // (and only there — the edge into the callee sees the post-call
            // state as-is).
            let last = blk.end.wrapping_sub(1);
            let is_call = blk.end > blk.start
                && matches!(
                    prog.slots[last].inst,
                    Some(Inst::Jal { rd, .. } | Inst::Jalr { rd, .. }) if !rd.is_zero()
                );
            for &s in &blk.succs {
                let mut out = state.clone();
                if is_call && cfg.blocks[s].start == blk.end {
                    let eff = ipo.map_or_else(CallEffect::unknown, |i| i.effect_for_slot(last));
                    apply_call_return(&mut out, &eff);
                }
                let merged = match &block_in[s] {
                    None => out,
                    Some(old) => {
                        let joined = old.join(&out);
                        let widen_at = if is_header[s] { WIDEN_AFTER } else { WIDEN_AFTER_ANY };
                        if joins[s] >= widen_at {
                            old.widen(&joined)
                        } else {
                            joined
                        }
                    }
                };
                if block_in[s].as_ref() != Some(&merged) {
                    joins[s] += 1;
                    block_in[s] = Some(merged);
                    worklist.push(s);
                }
            }
        }
        AbsInt { block_in }
    }
}

/// Applies a callee's abstract effect to the caller's state at the call's
/// fall-through point.
///
/// The value half delegates to [`call_return_transfer`]. The relational half
/// rests on a relational argument about the two cores: when the callee is
/// transitively CSR-free, the memory mirror is intact and every register the
/// callee may read is provably delta-zero, both cores feed the callee
/// identical inputs and therefore execute it identically — every output is
/// delta-zero and the mirror survives (may-clobbered registers join with
/// [`Delta::Zero`], covering not-actually-written paths). Otherwise the
/// callee may diverge: clobbered deltas become unknown — except `sp`, whose
/// delta is preserved when the callee nets the same statically-known
/// adjustment on every path of either core, and `ra`, which on a returning
/// callee still holds the (equal) link value the call wrote — and the mirror
/// only survives a provably store-free callee.
fn apply_call_return(st: &mut AbsState, eff: &CallEffect) {
    let old = st.regs;
    call_return_transfer::<Abs>(
        eff.clobbers,
        eff.sp_delta,
        eff.ra_restored,
        |r| old[r.index() as usize],
        |r, v| st.regs[r.index() as usize] = v,
    );

    let inputs_equal = eff.csr_free
        && st.delta.mem_equal
        && (1..32).all(|i| eff.uses & (1 << i) == 0 || st.delta.regs[i].is_zero());
    for i in 1..32 {
        if eff.clobbers & (1 << i) == 0 {
            continue;
        }
        if inputs_equal {
            st.delta.regs[i] = st.delta.regs[i].join(&Delta::Zero);
        } else if i == Reg::SP.index() as usize && eff.sp_delta.is_some() {
            // sp' = sp + d on every path of either core: the delta carries.
        } else if i == Reg::RA.index() as usize && eff.ra_restored {
            // ra still holds the link value, equal on both cores.
        } else {
            st.delta.regs[i] = Delta::Unknown;
        }
    }
    if !inputs_equal && eff.may_store {
        st.delta.mem_equal = false;
    }
}

// ---------------------------------------------------------------------------
// Verdicts and certificates
// ---------------------------------------------------------------------------

/// Three-valued diversity verdict for a program point at the configured
/// staggering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// At least one no-diversity cycle is guaranteed while both cores
    /// execute this region (existential claim, cross-validated like the
    /// DIV001/DIV002 gate).
    ProvedCollision,
    /// No no-diversity cycle can be observed while both cores are warmed up
    /// inside this region (universal claim, machine-checked by the
    /// soundness harness).
    ProvedDiverse,
    /// Neither direction is proved.
    Unknown,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::ProvedCollision => "proved-collision",
            Verdict::ProvedDiverse => "proved-diverse",
            Verdict::Unknown => "unknown",
        })
    }
}

/// Per-loop result: the minimum staggering for which diversity is proved, or
/// the witness refuting provability.
#[derive(Debug, Clone)]
pub struct LoopCertificate {
    /// PC of the loop header.
    pub header_pc: u64,
    /// The loop body region.
    pub span: PcSpan,
    /// Body spans of composable callees spliced into the iteration stream:
    /// together with `span`, every PC one iteration's committed stream can
    /// occupy. Empty for call-free loops (and when splicing was refuted).
    pub callee_spans: Vec<PcSpan>,
    /// Committed instructions per iteration, for single-path bodies.
    pub body_len: Option<u64>,
    /// Minimal rotation period of the data-signature traffic pattern, for
    /// iteration-invariant loops (collisions at stagger ≡ 0 mod this).
    pub ds_period: Option<u64>,
    /// Minimal rotation period of the instruction (opcode) sequence.
    pub is_period: Option<u64>,
    /// Smallest effective inter-core delta (committed instructions) for
    /// which diversity is proved, or `None` when no stagger is provably
    /// safe.
    pub min_safe_stagger: Option<u64>,
    /// Why no certificate exists, when `min_safe_stagger` is `None`.
    pub witness: Option<String>,
    /// The verdict at the configured staggering.
    pub verdict: Verdict,
}

impl LoopCertificate {
    /// One-line rendering used by reports and golden summaries.
    #[must_use]
    pub fn summary(&self) -> String {
        let cert = match self.min_safe_stagger {
            Some(m) => format!("min-safe-stagger={m}"),
            None => "min-safe-stagger=none".to_owned(),
        };
        let mut line = format!(
            "loop {:#x} [{}] {} verdict={}",
            self.header_pc,
            self.body_len.map_or("irregular".to_owned(), |n| format!("{n} insts/iter")),
            cert,
            self.verdict
        );
        if let Some(p) = self.ds_period {
            line.push_str(&format!(" ds-period={p}"));
        }
        if let Some(p) = self.is_period {
            line.push_str(&format!(" is-period={p}"));
        }
        if !self.callee_spans.is_empty() {
            let spans: Vec<String> = self.callee_spans.iter().map(ToString::to_string).collect();
            line.push_str(&format!(" spliced-callees={}", spans.join(",")));
        }
        if let Some(w) = &self.witness {
            line.push_str(&format!(" witness: {w}"));
        }
        line
    }
}

/// Everything the prover learned about one program at one configuration.
#[derive(Debug, Clone)]
pub struct ProveReport {
    /// Per-slot verdicts, parallel to `DecodedProgram::slots`.
    pub points: Vec<Verdict>,
    /// Per-natural-loop certificates, in `Cfg::loops` order.
    pub certificates: Vec<LoopCertificate>,
    /// DIV005–DIV008 findings.
    pub diagnostics: Vec<Diagnostic>,
    /// The effective inter-core committed-instruction delta the verdicts are
    /// for (configured nops plus the harness phase correction).
    pub effective_stagger: i64,
}

impl ProveReport {
    /// Count of points with the given verdict.
    #[must_use]
    pub fn count(&self, v: Verdict) -> usize {
        self.points.iter().filter(|p| **p == v).count()
    }

    /// Loop spans carrying a `ProvedDiverse` verdict — the regions the
    /// soundness harness watches for (forbidden) no-diversity cycles.
    #[must_use]
    pub fn diverse_spans(&self) -> Vec<PcSpan> {
        self.certificates
            .iter()
            .filter(|c| c.verdict == Verdict::ProvedDiverse)
            .map(|c| c.span)
            .collect()
    }

    /// Loop spans carrying a `ProvedCollision` verdict — regions where at
    /// least one no-diversity cycle must be observed when executed.
    #[must_use]
    pub fn collision_spans(&self) -> Vec<PcSpan> {
        self.certificates
            .iter()
            .filter(|c| c.verdict == Verdict::ProvedCollision)
            .map(|c| c.span)
            .collect()
    }

    /// Per-certificate `ProvedDiverse` regions: the loop span plus every
    /// spliced callee-body span. A dynamic monitor of a certificate must
    /// watch the whole union — one iteration's committed PCs alternate
    /// between the loop and its composable callees.
    #[must_use]
    pub fn diverse_regions(&self) -> Vec<Vec<PcSpan>> {
        self.regions(Verdict::ProvedDiverse)
    }

    /// Per-certificate `ProvedCollision` regions (loop plus spliced callee
    /// spans), mirroring [`ProveReport::diverse_regions`].
    #[must_use]
    pub fn collision_regions(&self) -> Vec<Vec<PcSpan>> {
        self.regions(Verdict::ProvedCollision)
    }

    fn regions(&self, v: Verdict) -> Vec<Vec<PcSpan>> {
        self.certificates
            .iter()
            .filter(|c| c.verdict == v)
            .map(|c| {
                let mut region = vec![c.span];
                region.extend(c.callee_spans.iter().copied());
                region
            })
            .collect()
    }

    /// The one-line machine-comparable summary used by the golden test.
    #[must_use]
    pub fn summary_line(&self, name: &str) -> String {
        let mut certs: Vec<String> = self.certificates.iter().map(|c| c.summary()).collect();
        certs.sort();
        format!(
            "{name} stagger={} points={} collision={} diverse={} unknown={} | {}",
            self.effective_stagger,
            self.points.len(),
            self.count(Verdict::ProvedCollision),
            self.count(Verdict::ProvedDiverse),
            self.count(Verdict::Unknown),
            if certs.is_empty() { "no loops".to_owned() } else { certs.join("; ") }
        )
    }

    /// Renders the certificates and diagnostics, rustc style.
    #[must_use]
    pub fn render(&self, prog: &DecodedProgram, snippet_lines: usize) -> String {
        use fmt::Write;
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(prog, snippet_lines));
            out.push('\n');
        }
        let _ = writeln!(out, "certificates (effective stagger {}):", self.effective_stagger);
        if self.certificates.is_empty() {
            let _ = writeln!(out, "  (no natural loops)");
        }
        for c in &self.certificates {
            let _ = writeln!(out, "  {}", c.summary());
        }
        let _ = writeln!(
            out,
            "prove: {} points: {} proved-collision, {} proved-diverse, {} unknown",
            self.points.len(),
            self.count(Verdict::ProvedCollision),
            self.count(Verdict::ProvedDiverse),
            self.count(Verdict::Unknown),
        );
        out
    }
}

// ---------------------------------------------------------------------------
// The prover
// ---------------------------------------------------------------------------

/// Effective inter-core committed-instruction delta for a configuration:
/// the configured sled nops plus the harness phase correction
/// ([`AnalysisConfig::stagger_phase`]); 0 when no staggering is configured.
#[must_use]
pub fn effective_stagger(config: &AnalysisConfig) -> i64 {
    match config.stagger_nops {
        None => 0,
        Some(n) => (n as i64).saturating_add(config.stagger_phase),
    }
}

/// Runs the abstract-interpretation prover on a decoded program.
#[must_use]
pub fn prove(prog: &DecodedProgram, cfg: &Cfg, config: &AnalysisConfig) -> ProveReport {
    let taint = Taint::compute(prog, cfg);
    let constprop = ConstProp::compute(prog, cfg);
    let ipo = Interproc::compute(prog, cfg, &constprop);
    let absint = AbsInt::compute_with_summaries(prog, cfg, Some(&ipo));
    let s_eff = effective_stagger(config);

    let mut certificates = Vec::new();
    for lp in &cfg.loops {
        let traffic = LoopTraffic::analyze(prog, cfg, lp, &taint, &constprop);
        certificates.push(certify_loop(prog, cfg, lp, &traffic, &absint, &ipo, config, s_eff));
    }

    // Per-point verdicts: points inside a loop inherit the innermost
    // (smallest) enclosing loop's verdict; straight-line points are proved
    // colliding only in the delta-zero lockstep case.
    let mut points = vec![Verdict::Unknown; prog.slots.len()];
    // Lockstep collisions presuppose both cores committing the *same*
    // stream; a twin pair (pair_mode) runs two different copies, so the
    // delta-zero claim is off the table there.
    if s_eff == 0 && !config.pair_mode {
        lockstep_points(prog, cfg, &absint, &mut points);
    }
    let mut order: Vec<usize> = (0..certificates.len()).collect();
    // Larger loops first so inner loops overwrite their enclosing ones.
    order.sort_by_key(|&i| std::cmp::Reverse(cfg.loops[i].blocks.len()));
    for i in order {
        let lp = &cfg.loops[i];
        if certificates[i].verdict == Verdict::Unknown {
            continue;
        }
        for &bid in &lp.blocks {
            points[cfg.blocks[bid].start..cfg.blocks[bid].end].fill(certificates[i].verdict);
        }
    }

    let diagnostics = prove_lints(prog, cfg, config, &certificates, s_eff);
    ProveReport { points, certificates, diagnostics, effective_stagger: s_eff }
}

/// Marks straight-line lockstep points: with an effective delta of 0, any
/// instruction whose reads are all provably delta-zero (with the memory
/// mirror intact) samples identical port traffic on both cores; since both
/// cores also sit at the same point of the same stream, the signature
/// windows coincide — a collision whenever the point executes.
fn lockstep_points(prog: &DecodedProgram, cfg: &Cfg, absint: &AbsInt, points: &mut [Verdict]) {
    for b in &cfg.blocks {
        let Some(state) = &absint.block_in[b.id] else { continue };
        let mut st = state.clone();
        for (i, point) in points.iter_mut().enumerate().take(b.end).skip(b.start) {
            let Some(inst) = prog.slots[i].inst else { continue };
            let reads_equal =
                [inst.rs1(), inst.rs2()].into_iter().flatten().all(|r| st.delta.get(r).is_zero());
            if reads_equal && st.delta.mem_equal {
                *point = Verdict::ProvedCollision;
            }
            st.transfer(prog.slots[i].pc, &inst);
        }
    }
}

/// The unique single-path body sequence of a deterministic loop, as slot
/// indices in execution order starting at the header.
fn body_sequence(cfg: &Cfg, lp: &NaturalLoop) -> Option<Vec<usize>> {
    let mut seq = Vec::with_capacity(lp.insts);
    let mut bid = lp.header;
    let mut visited = 0usize;
    loop {
        let b = &cfg.blocks[bid];
        seq.extend(b.start..b.end);
        let mut inside = b.succs.iter().filter(|s| lp.blocks.contains(s));
        let next = *inside.next()?;
        if inside.next().is_some() {
            return None; // not single-path
        }
        if next == lp.header {
            return Some(seq);
        }
        visited += 1;
        if visited > lp.blocks.len() {
            return None; // guards a malformed loop set
        }
        bid = next;
    }
}

/// Minimal `p` dividing `len` such that the sequence equals itself rotated
/// by `p`, under the supplied provable-equality predicate.
fn rotation_period<T>(seq: &[T], eq: impl Fn(&T, &T) -> bool) -> u64 {
    let len = seq.len();
    for p in 1..len {
        if len.is_multiple_of(p) && (0..len).all(|k| eq(&seq[k], &seq[(k + p) % len])) {
            return p as u64;
        }
    }
    len.max(1) as u64
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return a.max(b).max(1);
    }
    a / gcd(a, b) * b
}

/// Phase-independent tag of one register read, for rotation comparison of
/// data-signature traffic. Only tags that denote the *same sample value at
/// every occurrence of the instruction* may compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValTag {
    /// The read always samples this constant.
    Const(u64),
    /// The read samples a register never written inside the loop.
    Fixed(Reg),
    /// Anything else.
    Opaque,
}

impl ValTag {
    fn provably_equal(&self, other: &ValTag) -> bool {
        match (self, other) {
            (ValTag::Const(a), ValTag::Const(b)) => a == b,
            (ValTag::Fixed(a), ValTag::Fixed(b)) => a == b,
            _ => false,
        }
    }
}

/// For each body position, whether the instruction reads at least one
/// provably *iteration-injective* value: a value distinct at every dynamic
/// occurrence of that position within one loop execution.
///
/// Seeds are single-def `addi r, r, step` counters (`step != 0`), injective
/// at every point of the body (a read before the def observes the previous
/// iteration's value — still distinct per iteration). The walk then tracks
/// injectivity through *values*, not register names, so multi-def chains
/// like `slli t1, t0, 3; add t1, t1, s0` stay injective: each def of a
/// register marks it injective exactly when it is an injective function of
/// a currently-injective value and loop-fixed operands (`defined` is the
/// in-loop def mask). Distinctness is modulo 2^64 and relies on iteration
/// counts being far below 2^34 (bounded by the cycle budget), which keeps
/// `k * step` and bounded left shifts away from wrap-around.
///
/// Flags entering the header come from the previous iteration, so the walk
/// repeats until the header-entry set stabilises (bounded by the register
/// count); if it somehow does not, the seeds-only fallback is sound.
fn injective_read_flags(prog: &DecodedProgram, body: &[usize], defined: u32) -> Vec<bool> {
    // Seeds: self-stepped counters with exactly one in-loop def.
    let mut def_count = [0u8; 32];
    let mut seeds = 0u32;
    for &s in body {
        let Some(inst) = prog.slots[s].inst else { continue };
        if let Some(rd) = inst.rd() {
            def_count[rd.index() as usize] = def_count[rd.index() as usize].saturating_add(1);
        }
    }
    for &s in body {
        if let Some(Inst::OpImm { kind: AluKind::Add, rd, rs1, imm }) = prog.slots[s].inst {
            if rd == rs1 && imm != 0 && !rd.is_zero() && def_count[rd.index() as usize] == 1 {
                seeds |= rd.bit();
            }
        }
    }

    let fixed = |x: Reg| x.bit() & defined == 0; // never written in the loop
    let step = |inj: u32, inst: &Inst| -> u32 {
        let Some(rd) = inst.rd() else { return inj };
        if seeds & rd.bit() != 0 {
            return inj | rd.bit(); // the counter's own step keeps it injective
        }
        let derived = match *inst {
            Inst::OpImm { kind: AluKind::Add | AluKind::Xor, rs1, .. } => inj & rs1.bit() != 0,
            Inst::OpImm { kind: AluKind::Sll, rs1, imm, .. } => {
                inj & rs1.bit() != 0 && (0..=30).contains(&imm)
            }
            Inst::Op { kind: AluKind::Add | AluKind::Xor | AluKind::Sub, rs1, rs2, .. } => {
                (inj & rs1.bit() != 0 && fixed(rs2)) || (inj & rs2.bit() != 0 && fixed(rs1))
            }
            _ => false,
        };
        if derived {
            inj | rd.bit()
        } else {
            inj & !rd.bit()
        }
    };

    // Least fixpoint of the header-entry flag set: `step` is monotone in
    // `inj` and preserves the seeds (their single def re-derives them), so
    // iterating from the seeds grows monotonically and converges within 32
    // rounds. Every flag in the fixpoint carries a derivation chain grounded
    // in a seed counter, which is the inductive soundness argument.
    let mut entry = seeds;
    for _ in 0..33 {
        let mut inj = entry;
        for &s in body {
            if let Some(inst) = prog.slots[s].inst {
                inj = step(inj, &inst);
            }
        }
        let next = inj | seeds;
        if next == entry {
            break;
        }
        entry = next;
    }

    let mut inj = entry;
    body.iter()
        .map(|&s| match prog.slots[s].inst {
            None => false,
            Some(inst) => {
                let ok = inst.use_mask() & inj != 0;
                inj = step(inj, &inst);
                ok
            }
        })
        .collect()
}

/// Builds the certificate and configured-stagger verdict for one loop.
#[allow(clippy::too_many_arguments)]
fn certify_loop(
    prog: &DecodedProgram,
    cfg: &Cfg,
    lp: &NaturalLoop,
    traffic: &LoopTraffic,
    absint: &AbsInt,
    ipo: &Interproc,
    config: &AnalysisConfig,
    s_eff: i64,
) -> LoopCertificate {
    let start = lp.blocks.iter().map(|&b| cfg.blocks[b].start).min().unwrap_or(0);
    let end = lp.blocks.iter().map(|&b| cfg.blocks[b].end).max().unwrap_or(0);
    let span = PcSpan { start: prog.pc_of(start), end: prog.pc_of(end) };
    let header_pc = prog.pc_of(cfg.blocks[lp.header].start);

    let mut cert = LoopCertificate {
        header_pc,
        span,
        callee_spans: Vec::new(),
        body_len: None,
        ds_period: None,
        is_period: None,
        min_safe_stagger: None,
        witness: None,
        verdict: Verdict::Unknown,
    };

    // Lockstep collision applies to any loop shape: with effective delta 0
    // and every read provably equal across cores, the windows coincide.
    // Both collision arguments presuppose the cores committing the *same*
    // stream, which a twin pair (pair_mode) does not.
    let lockstep =
        s_eff == 0 && !config.pair_mode && loop_reads_delta_zero(prog, cfg, lp, absint, ipo);

    let body = if traffic.deterministic_body { body_sequence(cfg, lp) } else { None };
    let Some(body) = body else {
        cert.witness = Some("irregular control flow: the body is not a single path".into());
        if lockstep {
            cert.verdict = Verdict::ProvedCollision;
        }
        return cert;
    };
    // Splice composable callee bodies into the sequence: the certificate
    // arguments quantify over the exact committed stream of one iteration,
    // which includes every callee activation.
    let body = match splice_calls(prog, &body, ipo) {
        Ok((b, callee_spans)) => {
            cert.callee_spans = callee_spans;
            b
        }
        Err(w) => {
            cert.witness = Some(w);
            if lockstep {
                cert.verdict = Verdict::ProvedCollision;
            }
            return cert;
        }
    };
    let body_insts: Vec<Inst> = match body.iter().map(|&s| prog.slots[s].inst).collect() {
        Some(v) => v,
        None => {
            cert.witness = Some("undecodable instruction in the body".into());
            return cert;
        }
    };
    let len = body_insts.len() as u64;
    cert.body_len = Some(len);

    // Instruction-signature rotation period: full-instruction equality is
    // finer than any opcode tagging the monitor uses, hence sound for
    // collision claims.
    cert.is_period = Some(rotation_period(&body_insts, |a, b| a == b));

    // Body facts over the spliced stream — callee defs, loads and CSR reads
    // included, unlike the block-level [`LoopTraffic`] facts.
    let defined = body_insts.iter().map(Inst::def_mask).fold(0, |a, m| a | m);
    let has_load = body_insts.iter().any(Inst::is_load);
    let has_csr = body_insts.iter().any(|i| matches!(i, Inst::Csr { .. } | Inst::CsrImm { .. }));
    let varying = defined & !invariant_mask(&body_insts, defined);

    let invariant = varying == 0 && !has_load && !has_csr;
    if invariant {
        // Data-signature rotation period over phase-independent read tags.
        let tags = read_tags(prog, lp, &body, defined, absint);
        cert.ds_period = Some(rotation_period(&tags, |a, b| {
            a.0 == b.0 // same enable structure
                && a.1.iter().zip(b.1.iter()).all(|(x, y)| x.provably_equal(y))
        }));
        let realign = lcm(cert.ds_period.unwrap_or(len), cert.is_period.unwrap_or(len));
        cert.witness = Some(format!(
            "iteration-invariant traffic: any stagger ≡ 0 (mod {realign}) re-aligns \
             identical windows"
        ));
        if s_eff.rem_euclid(realign as i64) == 0 && !config.pair_mode {
            cert.verdict = Verdict::ProvedCollision;
        }
        return cert;
    }

    // Diversity certificate. Strict rule: every instruction of the body
    // reads a provably iteration-injective value. Relaxed rule, for bodies
    // with *neutral* positions (typically spliced calls — the jump itself
    // and callee housekeeping read nothing iteration-varying): every
    // position is injective or neutral (reads nothing beyond constants and
    // loop-fixed registers), every cyclic FIFO-depth window of the body
    // contains at least one injective position, and the opcode sequence has
    // full rotation period. A stagger ≡ 0 (mod body) then compares distinct
    // iterations position-by-position and the injective read in every
    // window separates the data signatures; any other stagger misaligns the
    // full-period opcode stream. Both directions are machine-checked by the
    // soundness harness. Either way, the loop must not be nested (re-entry
    // would repeat counter values), every read of the committed stream must
    // be provably equal across cores, and the body must fit the window.
    let inj_reads = injective_read_flags(prog, &body, defined);
    let tags = read_tags(prog, lp, &body, defined, absint);
    let neutral: Vec<bool> = tags
        .iter()
        .map(|((has1, has2), t)| {
            let port_ok = |has: bool, tag: &ValTag| {
                !has || matches!(tag, ValTag::Const(_) | ValTag::Fixed(_))
            };
            port_ok(*has1, &t[0]) && port_ok(*has2, &t[1])
        })
        .collect();
    let nested = cfg
        .loops
        .iter()
        .any(|other| other.header != lp.header && other.blocks.contains(&lp.header));
    let window = 2 * config.fifo_depth as u64;

    let strict = !inj_reads.is_empty() && inj_reads.iter().all(|&ok| ok);
    let relaxed = !strict && inj_reads.iter().any(|&ok| ok) && {
        let n = body.len();
        let win = config.fifo_depth.min(n);
        (0..n).all(|i| inj_reads[i] || neutral[i])
            && (0..n).all(|w0| (0..win).any(|k| inj_reads[(w0 + k) % n]))
            && cert.is_period == Some(len)
    };

    let witness = if !strict && !relaxed {
        if inj_reads.iter().all(|ok| !ok) {
            Some("no provably iteration-injective value in the body".to_owned())
        } else if let Some(bad) = (0..body.len()).find(|&i| !inj_reads[i] && !neutral[i]) {
            Some(format!(
                "instruction at {:#x} reads no iteration-injective value",
                prog.pc_of(body[bad])
            ))
        } else if cert.is_period != Some(len) {
            Some(format!(
                "neutral positions with a repeating opcode pattern (period {} < body {len})",
                cert.is_period.unwrap_or(0)
            ))
        } else {
            Some(format!(
                "iteration-injective reads too sparse: some {}-instruction window has none",
                config.fifo_depth
            ))
        }
    } else if nested {
        Some("nested loop: re-entry may repeat counter values inside a window".to_owned())
    } else if len > window {
        Some(format!("body ({len} insts) exceeds the provable window ({window} insts)"))
    } else if !body_reads_delta_zero(prog, &body, absint, lp) {
        Some("a read is not provably equal across the cores".to_owned())
    } else {
        None
    };

    match witness {
        Some(w) => {
            cert.witness = Some(w);
            if lockstep {
                cert.verdict = Verdict::ProvedCollision;
            }
        }
        None => {
            // Effective delta 2: the dual-issue front end quantises window
            // alignment in groups of up to two instructions, so a delta of
            // 2 guarantees a non-zero window shift.
            cert.min_safe_stagger = Some(2);
            if s_eff >= 2 {
                cert.verdict = Verdict::ProvedDiverse;
            } else if lockstep {
                cert.verdict = Verdict::ProvedCollision;
            }
        }
    }
    cert
}

/// Whether every register read inside the loop is provably delta-zero with
/// the memory mirror intact, per the relational fixpoint. A call inside the
/// loop hands execution to the callee, whose reads are part of the loop's
/// committed stream too: the claim survives only when the callee provably
/// executes identically on both cores — transitively CSR-free with every
/// may-read register delta-zero at the call.
fn loop_reads_delta_zero(
    prog: &DecodedProgram,
    cfg: &Cfg,
    lp: &NaturalLoop,
    absint: &AbsInt,
    ipo: &Interproc,
) -> bool {
    for &bid in &lp.blocks {
        let Some(state) = &absint.block_in[bid] else { return false };
        let mut st = state.clone();
        let b = &cfg.blocks[bid];
        for i in b.start..b.end {
            let Some(inst) = prog.slots[i].inst else { continue };
            if !st.delta.mem_equal {
                return false;
            }
            let equal =
                [inst.rs1(), inst.rs2()].into_iter().flatten().all(|r| st.delta.get(r).is_zero());
            if !equal {
                return false;
            }
            let is_call =
                matches!(inst, Inst::Jal { rd, .. } | Inst::Jalr { rd, .. } if !rd.is_zero());
            if is_call {
                let eff = ipo.effect_for_slot(i);
                let callee_identical = eff.csr_free
                    && (1..32).all(|r| eff.uses & (1 << r) == 0 || st.delta.regs[r].is_zero());
                if !callee_identical {
                    return false;
                }
            }
            st.transfer(prog.slots[i].pc, &inst);
        }
    }
    true
}

/// Whether every read of the exact committed body stream (spliced callee
/// instructions included) is provably delta-zero with the memory mirror
/// intact, by sequential walk from the loop-header fixpoint state. Spliced
/// callee slots have no in-loop block states, so the walk re-derives their
/// states exactly — the body is the unique execution path.
fn body_reads_delta_zero(
    prog: &DecodedProgram,
    body: &[usize],
    absint: &AbsInt,
    lp: &NaturalLoop,
) -> bool {
    let Some(state) = &absint.block_in[lp.header] else { return false };
    let mut st = state.clone();
    for &s in body {
        let Some(inst) = prog.slots[s].inst else { return false };
        if !st.delta.mem_equal {
            return false;
        }
        let equal =
            [inst.rs1(), inst.rs2()].into_iter().flatten().all(|r| st.delta.get(r).is_zero());
        if !equal {
            return false;
        }
        st.transfer(prog.slots[s].pc, &inst);
    }
    true
}

/// Splices composable callee bodies into a loop's slot sequence, producing
/// the exact committed stream of one iteration plus the PC span of every
/// spliced callee body (deduplicated). Every call must target a resolved
/// function whose summary carries a straight-line leaf body; anything else
/// returns the refuting witness.
fn splice_calls(
    prog: &DecodedProgram,
    body: &[usize],
    ipo: &Interproc,
) -> Result<(Vec<usize>, Vec<PcSpan>), String> {
    const MAX_SPLICED: usize = 4096;
    let mut out = Vec::with_capacity(body.len());
    let mut callee_spans: Vec<PcSpan> = Vec::new();
    for &s in body {
        out.push(s);
        let is_call = matches!(
            prog.slots[s].inst,
            Some(Inst::Jal { rd, .. } | Inst::Jalr { rd, .. }) if !rd.is_zero()
        );
        if !is_call {
            continue;
        }
        let pc = prog.slots[s].pc;
        let Some(summary) = ipo.summary_for_slot(s) else {
            return Err(format!("unresolvable indirect call at {pc:#x}"));
        };
        let Some(callee_body) = &summary.body else {
            return Err(format!("call at {pc:#x} to non-composable function {:#x}", summary.entry));
        };
        out.extend_from_slice(callee_body);
        let pcs = callee_body.iter().map(|&c| prog.slots[c].pc);
        if let (Some(lo), Some(hi)) = (pcs.clone().min(), pcs.max()) {
            let span = PcSpan { start: lo, end: hi + 4 };
            if !callee_spans.contains(&span) {
                callee_spans.push(span);
            }
        }
        if out.len() > MAX_SPLICED {
            return Err(format!("spliced body exceeds {MAX_SPLICED} instructions"));
        }
    }
    Ok((out, callee_spans))
}

/// Per-body-position read tags: the enable structure (rs1/rs2 presence) and
/// a phase-independent [`ValTag`] per read port. `defined` is the def mask
/// of the body sequence itself (spliced callee defs included).
fn read_tags(
    prog: &DecodedProgram,
    lp: &NaturalLoop,
    body: &[usize],
    defined: u32,
    absint: &AbsInt,
) -> Vec<((bool, bool), [ValTag; 2])> {
    // Walk the body once from the header fixpoint state to obtain per-point
    // constants. Positions may span several blocks (and spliced callees);
    // re-derive states per position by sequential walk — the body is the
    // unique execution path, so this is exact.
    let mut st = absint.block_in[lp.header]
        .clone()
        .unwrap_or_else(|| AbsState { regs: [Abs::TOP; 32], delta: DeltaState::unknown() });
    let mut tags = Vec::with_capacity(body.len());
    for &s in body {
        let Some(inst) = prog.slots[s].inst else {
            tags.push(((false, false), [ValTag::Opaque, ValTag::Opaque]));
            continue;
        };
        let tag_of = |r: Option<Reg>, st: &AbsState| -> ValTag {
            match r {
                None => ValTag::Opaque,
                Some(r) if r.is_zero() => ValTag::Const(0),
                Some(r) => {
                    if let Some(c) = st.get(r).as_const() {
                        ValTag::Const(c)
                    } else if r.bit() & defined == 0 {
                        ValTag::Fixed(r)
                    } else {
                        ValTag::Opaque
                    }
                }
            }
        };
        let t1 = tag_of(inst.rs1(), &st);
        let t2 = tag_of(inst.rs2(), &st);
        tags.push(((inst.rs1().is_some(), inst.rs2().is_some()), [t1, t2]));
        st.transfer(prog.slots[s].pc, &inst);
    }
    tags
}

/// DIV005–DIV008 generation from the certificates.
fn prove_lints(
    prog: &DecodedProgram,
    cfg: &Cfg,
    config: &AnalysisConfig,
    certs: &[LoopCertificate],
    s_eff: i64,
) -> Vec<Diagnostic> {
    let _ = (prog, cfg);
    let mut diags = Vec::new();
    let stagger_known = config.stagger_nops.is_some();
    for c in certs {
        match c.verdict {
            Verdict::ProvedCollision => {
                let realign = lcm(
                    c.ds_period.unwrap_or_else(|| c.body_len.unwrap_or(1)),
                    c.is_period.unwrap_or_else(|| c.body_len.unwrap_or(1)),
                );
                let (message, mut notes) = if s_eff == 0 {
                    (
                        "proved data-signature collision: lockstep cores with provably \
                         equal reads"
                            .to_owned(),
                        vec!["note: effective inter-core delta is 0 and every read in the loop \
                             is proved delta-zero, so the signature windows coincide"
                            .to_owned()],
                    )
                } else {
                    (
                        format!(
                            "proved data-signature collision: effective stagger {s_eff} is a \
                             multiple of the traffic rotation period {realign}"
                        ),
                        vec![format!(
                            "note: the invariant traffic pattern re-aligns exactly every \
                             {realign} committed instructions"
                        )],
                    )
                };
                notes.push(
                    "note: existential claim — at least one no-diversity cycle while both \
                     cores execute this loop"
                        .to_owned(),
                );
                diags.push(Diagnostic {
                    code: LintCode::Div005,
                    severity: Severity::Error,
                    span: c.span,
                    message,
                    notes,
                    period: (c.ds_period.is_some()).then_some(realign),
                    min_safe_stagger: c.min_safe_stagger,
                });
            }
            Verdict::ProvedDiverse => {}
            Verdict::Unknown => {}
        }

        // DIV006: the instruction signature provably re-aligns even where
        // the data signature is not proved to — a half-collision window.
        if let (Some(p_is), Verdict::Unknown) = (c.is_period, c.verdict) {
            if stagger_known && s_eff != 0 && s_eff.rem_euclid(p_is as i64) == 0 {
                diags.push(Diagnostic {
                    code: LintCode::Div006,
                    severity: Severity::Warning,
                    span: c.span,
                    message: format!(
                        "proved instruction-signature collision window: effective stagger \
                         {s_eff} is a multiple of the opcode rotation period {p_is}"
                    ),
                    notes: vec!["note: the opcode streams re-align; only the data signature can \
                         still separate the cores here"
                        .to_owned()],
                    period: Some(p_is),
                    min_safe_stagger: None,
                });
            }
        }

        // DIV007: a certificate exists and the configured stagger violates it.
        if let Some(m) = c.min_safe_stagger {
            if stagger_known && s_eff >= 0 && (s_eff as u64) < m {
                diags.push(Diagnostic {
                    code: LintCode::Div007,
                    severity: Severity::Error,
                    span: c.span,
                    message: format!(
                        "configured stagger (effective delta {s_eff}) violates this loop's \
                         minimum-safe-stagger certificate of {m}"
                    ),
                    notes: vec![format!(
                        "help: stagger the cores by at least {m} effective committed \
                         instructions to make this loop provably diverse"
                    )],
                    period: None,
                    min_safe_stagger: Some(m),
                });
            }
        }

        // DIV008: diversity of this loop is unprovable at the configured
        // stagger.
        if c.verdict == Verdict::Unknown {
            let mut notes = Vec::new();
            if let Some(w) = &c.witness {
                notes.push(format!("note: {w}"));
            }
            if let Some(m) = c.min_safe_stagger {
                notes.push(format!(
                    "note: a certificate exists: effective delta >= {m} is provably diverse"
                ));
            }
            notes.push(
                "note: unprovable is not unsafe — the runtime monitor stays authoritative"
                    .to_owned(),
            );
            diags.push(Diagnostic {
                code: LintCode::Div008,
                severity: Severity::Warning,
                span: c.span,
                message: "diversity of this loop is not provable at the configured stagger"
                    .to_owned(),
                notes,
                period: None,
                min_safe_stagger: c.min_safe_stagger,
            });
        }
    }
    diags.sort_by_key(|d| (d.span.start, d.code));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_asm::Asm;

    fn proved(f: impl FnOnce(&mut Asm), config: &AnalysisConfig) -> (DecodedProgram, ProveReport) {
        let mut a = Asm::new();
        f(&mut a);
        let p = DecodedProgram::from_program(&a.link(0x8000_0000).unwrap());
        let c = Cfg::build(&p);
        let r = prove(&p, &c, config);
        (p, r)
    }

    fn countdown(a: &mut Asm) {
        a.li(Reg::T0, 1000);
        let l = a.new_label("l");
        a.bind(l).unwrap();
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, l);
        a.ebreak();
    }

    #[test]
    fn countdown_loop_gets_a_certificate() {
        let (_, r) = proved(countdown, &AnalysisConfig::default());
        assert_eq!(r.certificates.len(), 1, "{:#?}", r.certificates);
        let c = &r.certificates[0];
        assert_eq!(c.body_len, Some(2));
        assert_eq!(c.min_safe_stagger, Some(2), "{c:?}");
        // No stagger configured: effective delta 0, lockstep collision.
        assert_eq!(c.verdict, Verdict::ProvedCollision);
        assert_eq!(r.effective_stagger, 0);
    }

    #[test]
    fn irreducible_counter_terminates() {
        // An irreducible cycle has no natural-loop header, so header-only
        // widening never fires and a counter inside the cycle would climb
        // the interval lattice forever. The any-block widening fallback
        // must bound the fixpoint.
        let mut a = Asm::new();
        let a_lbl = a.new_label("a");
        let b_lbl = a.new_label("b");
        a.bnez(Reg::A0, b_lbl); // entry -> {a, b}
        a.bind(a_lbl).unwrap();
        a.addi(Reg::T0, Reg::T0, 1); // counter inside the irreducible cycle
        a.j(b_lbl);
        a.bind(b_lbl).unwrap();
        a.nop();
        a.bnez(Reg::A1, a_lbl); // b -> a closes the cycle
        a.ebreak();
        let p = DecodedProgram::from_program(&a.link(0x8000_0000).unwrap());
        let c = Cfg::build(&p);
        assert!(c.loops.is_empty(), "{:?}", c.loops);
        let _ = AbsInt::compute(&p, &c);
    }

    #[test]
    fn pair_mode_drops_delta_zero_lockstep_claims() {
        // A twin pair runs *different* binaries on the two cores, so the
        // stagger-0 lockstep-collision argument does not apply and must not
        // be inherited by pair-mode analysis.
        let cfg = AnalysisConfig { pair_mode: true, ..AnalysisConfig::default() };
        let (_, r) = proved(countdown, &cfg);
        assert_eq!(r.count(Verdict::ProvedCollision), 0, "{}", r.summary_line("countdown"));
        assert_eq!(r.certificates[0].verdict, Verdict::Unknown);
        // The loop's own min-safe-stagger certificate is a property of the
        // code and stays.
        assert_eq!(r.certificates[0].min_safe_stagger, Some(2));

        let idle = |a: &mut Asm| {
            let l = a.new_label("l");
            a.bind(l).unwrap();
            a.nop();
            a.j(l);
        };
        // Invariant-traffic re-alignment (stagger 4 ≡ 0 mod 2) is equally a
        // same-stream argument; gated too.
        let cfg =
            AnalysisConfig { stagger_nops: Some(4), pair_mode: true, ..AnalysisConfig::default() };
        let (_, r) = proved(idle, &cfg);
        assert_eq!(r.certificates[0].verdict, Verdict::Unknown, "{:#?}", r.certificates);
        assert!(!r.diagnostics.iter().any(|d| d.code == LintCode::Div005), "{:#?}", r.diagnostics);
    }

    #[test]
    fn countdown_loop_proved_diverse_at_certified_stagger() {
        let cfg = AnalysisConfig { stagger_nops: Some(100), ..AnalysisConfig::default() };
        let (_, r) = proved(countdown, &cfg);
        let c = &r.certificates[0];
        assert_eq!(c.verdict, Verdict::ProvedDiverse, "{c:?}");
        assert!(!r.diverse_spans().is_empty());
        assert!(r.count(Verdict::ProvedDiverse) >= 2);
    }

    #[test]
    fn spliced_call_loop_region_covers_the_callee_body() {
        let call_loop = |a: &mut Asm| {
            a.li(Reg::T0, 16);
            let l = a.new_label("l");
            let leaf = a.new_label("leaf");
            a.bind(l).unwrap();
            a.call(leaf);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, l);
            a.ebreak();
            a.bind(leaf).unwrap();
            a.add(Reg::T2, Reg::T0, Reg::T0);
            a.xor(Reg::T3, Reg::T2, Reg::T0);
            a.ret();
        };
        let cfg = AnalysisConfig { stagger_nops: Some(100), ..AnalysisConfig::default() };
        let (_, r) = proved(call_loop, &cfg);
        let c = &r.certificates[0];
        assert_eq!(c.verdict, Verdict::ProvedDiverse, "{c:?}");
        // jal + (add, xor, ret) + addi + bnez.
        assert_eq!(c.body_len, Some(6), "{c:?}");
        assert_eq!(c.callee_spans.len(), 1, "{c:?}");
        let leaf = c.callee_spans[0];
        assert_eq!(leaf.insts(), 3, "{leaf}");
        // The callee body sits outside the loop span but inside the region
        // the harness must guard.
        assert!(!c.span.contains(leaf.start));
        let region = &r.diverse_regions()[0];
        assert!(region.iter().any(|s| s.contains(leaf.start)));
        assert!(region.iter().any(|s| s.contains(c.header_pc)));
        assert!(c.summary().contains("spliced-callees="), "{}", c.summary());
    }

    #[test]
    fn idle_loop_collides_at_period_residue_only() {
        let idle = |a: &mut Asm| {
            let l = a.new_label("l");
            a.bind(l).unwrap();
            a.nop();
            a.j(l);
        };
        // Effective stagger 4 ≡ 0 (mod 2): proved collision, DIV005.
        let cfg = AnalysisConfig { stagger_nops: Some(4), ..AnalysisConfig::default() };
        let (_, r) = proved(idle, &cfg);
        let c = &r.certificates[0];
        assert_eq!(c.verdict, Verdict::ProvedCollision, "{c:?}");
        assert_eq!(c.min_safe_stagger, None);
        assert!(c.witness.as_deref().unwrap_or("").contains("re-aligns"));
        assert!(r.diagnostics.iter().any(|d| d.code == LintCode::Div005));

        // Effective stagger 5: not a multiple — unknown, never diverse.
        let cfg = AnalysisConfig { stagger_nops: Some(5), ..AnalysisConfig::default() };
        let (_, r) = proved(idle, &cfg);
        assert_eq!(r.certificates[0].verdict, Verdict::Unknown);
        assert!(r.diagnostics.iter().any(|d| d.code == LintCode::Div008));
    }

    #[test]
    fn certificate_violation_fires_div007() {
        let cfg = AnalysisConfig {
            stagger_nops: Some(2),
            stagger_phase: -1, // harness sled: effective delta 1 < cert 2
            ..AnalysisConfig::default()
        };
        let (_, r) = proved(countdown, &cfg);
        assert!(r.diagnostics.iter().any(|d| d.code == LintCode::Div007), "{:#?}", r.diagnostics);
    }

    #[test]
    fn lockstep_points_marked_colliding_at_zero_stagger() {
        let (p, r) = proved(
            |a| {
                a.li(Reg::T0, 7);
                a.addi(Reg::T1, Reg::T0, 1);
                a.ebreak();
            },
            &AnalysisConfig::default(),
        );
        assert!(r.count(Verdict::ProvedCollision) >= 2, "{:?}", r.points);
        assert_eq!(r.points.len(), p.slots.len());
    }

    #[test]
    fn hartid_breaks_the_lockstep_proof() {
        let (_, r) = proved(
            |a| {
                a.hartid(Reg::T0);
                a.addi(Reg::T1, Reg::T0, 1);
                a.ebreak();
            },
            &AnalysisConfig::default(),
        );
        // The addi reads a register with non-zero delta: not proved colliding.
        assert!(r.count(Verdict::Unknown) >= 1, "{:?}", r.points);
    }

    #[test]
    fn memcpy_style_loop_qualifies_via_injective_closure() {
        let (_, r) = proved(
            |a| {
                a.li(Reg::A0, 0x8010_0000); // src
                a.li(Reg::A1, 0x8011_0000); // dst
                a.li(Reg::T0, 64); // count
                let l = a.new_label("l");
                a.bind(l).unwrap();
                a.lw(Reg::T1, 0, Reg::A0);
                a.sw(Reg::T1, 0, Reg::A1);
                a.addi(Reg::A0, Reg::A0, 4);
                a.addi(Reg::A1, Reg::A1, 4);
                a.addi(Reg::T0, Reg::T0, -1);
                a.bnez(Reg::T0, l);
                a.ebreak();
            },
            &AnalysisConfig { stagger_nops: Some(100), ..AnalysisConfig::default() },
        );
        let c = &r.certificates[0];
        assert_eq!(c.min_safe_stagger, Some(2), "{c:?}");
        assert_eq!(c.verdict, Verdict::ProvedDiverse);
    }

    /// li s1; call leaf; use s1 — the fall-through point after the call.
    fn call_then_use(a: &mut Asm) {
        let f = a.new_label("f");
        a.li(Reg::S1, 7);
        a.call(f);
        a.addi(Reg::T1, Reg::S1, 0);
        a.ebreak();
        a.bind(f).unwrap();
        a.addi(Reg::T0, Reg::T0, 1);
        a.ret();
    }

    #[test]
    fn call_fallthrough_havocs_without_summaries_and_refines_with_them() {
        let mut a = Asm::new();
        call_then_use(&mut a);
        let p = DecodedProgram::from_program(&a.link(0x8000_0000).unwrap());
        let c = Cfg::build(&p);
        let cp = ConstProp::compute(&p, &c);
        let ipo = Interproc::compute(&p, &c, &cp);

        // The fall-through block starts right after the call slot.
        let use_slot = (0..p.slots.len())
            .find(|&i| {
                matches!(p.slots[i].inst, Some(Inst::OpImm { rd: Reg::T1, rs1: Reg::S1, .. }))
            })
            .unwrap();
        let bid = c.block_of_slot(use_slot).unwrap();

        // No summaries: any callee could have clobbered s1 — havocked.
        let plain = AbsInt::compute(&p, &c);
        let st = plain.block_in[bid].as_ref().unwrap();
        assert_eq!(st.get(Reg::S1).as_const(), None, "{st:?}");
        assert!(!st.delta.mem_equal);

        // Summaries: the leaf clobbers only t0 (and ra via the call), so the
        // caller's s1 constant and the relational state survive the call.
        let refined = AbsInt::compute_with_summaries(&p, &c, Some(&ipo));
        let st = refined.block_in[bid].as_ref().unwrap();
        assert_eq!(st.get(Reg::S1).as_const(), Some(7), "{st:?}");
        assert_eq!(st.get(Reg::T0).as_const(), None, "t0 is clobbered by the callee");
        assert!(st.delta.mem_equal);
        assert!(st.delta.get(Reg::S1).is_zero());
    }

    #[test]
    fn loop_with_composable_call_gets_a_certificate() {
        let cfg = AnalysisConfig { stagger_nops: Some(100), ..AnalysisConfig::default() };
        let (_, r) = proved(
            |a| {
                let f = a.new_label("f");
                let l = a.new_label("l");
                a.li(Reg::T0, 64);
                a.bind(l).unwrap();
                a.call(f);
                a.addi(Reg::T0, Reg::T0, -1);
                a.bnez(Reg::T0, l);
                a.ebreak();
                a.bind(f).unwrap();
                a.addi(Reg::A0, Reg::A0, 1);
                a.ret();
            },
            &cfg,
        );
        assert_eq!(r.certificates.len(), 1, "{:#?}", r.certificates);
        let c = &r.certificates[0];
        // Spliced stream: jal + (addi a0 + ret) + addi t0 + bnez = 5 insts.
        assert_eq!(c.body_len, Some(5), "{c:?}");
        assert_eq!(c.min_safe_stagger, Some(2), "{c:?}");
        assert_eq!(c.verdict, Verdict::ProvedDiverse);
    }

    #[test]
    fn loop_calling_noncomposable_function_is_witnessed() {
        let (_, r) = proved(
            |a| {
                let f = a.new_label("f");
                let skip = a.new_label("skip");
                let l = a.new_label("l");
                a.li(Reg::T0, 64);
                a.bind(l).unwrap();
                a.call(f);
                a.addi(Reg::T0, Reg::T0, -1);
                a.bnez(Reg::T0, l);
                a.ebreak();
                a.bind(f).unwrap();
                a.beqz(Reg::A0, skip); // branchy callee: not composable
                a.addi(Reg::A0, Reg::A0, -1);
                a.bind(skip).unwrap();
                a.ret();
            },
            &AnalysisConfig { stagger_nops: Some(100), ..AnalysisConfig::default() },
        );
        let c = &r.certificates[0];
        assert_eq!(c.min_safe_stagger, None, "{c:?}");
        assert!(c.witness.as_deref().unwrap_or("").contains("non-composable"), "{c:?}");
    }

    #[test]
    fn loop_with_unresolved_indirect_call_is_witnessed() {
        let (_, r) = proved(
            |a| {
                let l = a.new_label("l");
                a.li(Reg::T0, 64);
                a.bind(l).unwrap();
                a.ld(Reg::T2, 0, Reg::SP);
                a.jalr(Reg::RA, Reg::T2, 0); // target unknown statically
                a.addi(Reg::T0, Reg::T0, -1);
                a.bnez(Reg::T0, l);
                a.ebreak();
            },
            &AnalysisConfig { stagger_nops: Some(100), ..AnalysisConfig::default() },
        );
        let c = &r.certificates[0];
        assert_eq!(c.min_safe_stagger, None, "{c:?}");
        assert!(c.witness.as_deref().unwrap_or("").contains("unresolvable"), "{c:?}");
    }

    #[test]
    fn hartid_reading_callee_blocks_the_lockstep_collision_claim() {
        // The caller's own loop reads are all delta-zero, but the callee
        // reads a register carrying the hartid delta — the cores do not
        // execute it identically, so no lockstep collision may be claimed.
        let (_, r) = proved(
            |a| {
                let f = a.new_label("f");
                let l = a.new_label("l");
                a.hartid(Reg::A0);
                a.li(Reg::T0, 64);
                a.bind(l).unwrap();
                a.call(f);
                a.addi(Reg::T0, Reg::T0, -1);
                a.bnez(Reg::T0, l);
                a.ebreak();
                a.bind(f).unwrap();
                a.addi(Reg::A1, Reg::A0, 1); // reads the divergent a0
                a.ret();
            },
            &AnalysisConfig::default(),
        );
        let c = &r.certificates[0];
        assert_ne!(c.verdict, Verdict::ProvedCollision, "{c:?}");
    }

    #[test]
    fn render_and_summary_are_stable() {
        let cfg = AnalysisConfig { stagger_nops: Some(100), ..AnalysisConfig::default() };
        let (p, r) = proved(countdown, &cfg);
        let text = r.render(&p, 6);
        assert!(text.contains("certificates"), "{text}");
        assert!(text.contains("proved-diverse"), "{text}");
        let line = r.summary_line("countdown");
        assert!(line.contains("min-safe-stagger=2"), "{line}");
    }
}
