//! Two-program relational prover for diversity-transformed twin pairs.
//!
//! The single-program prover ([`super::prove`]) certifies diversity *in
//! time*: identical binaries, staggered. This module certifies diversity
//! *in structure*: an original kernel and its seed-transformed twin
//! ([`safedm_asm::transform`]) composed into one image, each copy executed
//! by one hart, at stagger **0**.
//!
//! It consumes the [`PairMap`] the transform produced — the renamed-register
//! bijection plus the original-PC ↔ variant-PC correspondence with each
//! point's match discipline — and refuses to take any of it on faith:
//!
//! 1. **correspondence verification** — every mapped point is re-checked
//!    against its [`MatchKind`] (exact renamed encoding, relinked control
//!    flow with free displacement — including `j` canonicalised to the
//!    always-taken `beq x0, x0` —, re-materialised address with free
//!    immediates, or frame-re-layout relation dictated by the declared
//!    [`FrameRemap`] slot permutation, itself validated for injectivity
//!    and bounds); the map must tile the original copy exactly and leave
//!    precisely the declared overhead uncovered in the variant. Any
//!    violation is a semantic-inequivalence witness → `DIV010` (error) and
//!    no certificate is issued;
//! 2. **loop matching** — each natural loop of the original copy is matched
//!    through the verified map onto the variant loop whose reachable body
//!    is point-for-point the image of the original body (multi-path bodies
//!    included; schedule jitter may reorder within blocks and layout
//!    filler inside the variant span is statically unreachable and
//!    excluded);
//! 3. **diversity certification** — two side conditions, both discharged
//!    from the *verified* map alone:
//!
//!    * *encoding disjointness*: if no raw instruction word of the
//!      original body also appears in the variant body, the instruction
//!      signatures (which sample raw words per pipeline slot) can never
//!      be equal on any cycle where at least one slot of either pipeline
//!      holds a live instruction, at *any* alignment;
//!    * *prologue skew*: encoding disjointness says nothing about the
//!      all-empty capture. A rename keeps the cycle-by-cycle schedule of
//!      the twin identical, so correlated stalls drain **both** pipelines
//!      in the same cycle; two all-invalid captures compare equal, and
//!      the hold-gated data FIFOs freeze carrying port samples from the
//!      same program point — whose values renaming preserves — so
//!      `no_diversity = ds_match && is_match` fires inside the bodies
//!      (observed dynamically on every rename-only twin). The map must
//!      therefore witness at least `fifo_depth` overhead instructions
//!      retired *before* the variant body (the transform's nop sled and
//!      frame padding), which offsets the drain windows and keeps any
//!      residual frozen windows sampling distinct program points. Only
//!      uncovered slots in reachable blocks *dominating* the variant loop
//!      header count: filler never retires and contributes no skew.
//!
//!    Both held → [`Verdict::ProvedDiverse`] at stagger 0, no staggering
//!    required. Residues (shared encodings, missing skew, unmapped or
//!    multi-path bodies) fall to [`Verdict::Unknown`] → `DIV009` (warning);
//! 4. **relational state** — one [`AbsInt`] fixpoint over the composed
//!    image (the hart-id dispatch makes both copies reachable) yields, per
//!    matched loop-header pair, the set of registers whose original value
//!    and renamed-variant value are both abstract constants: the twin-delta
//!    component reported as `twin-regs` in each certificate.
//!
//! The universal claim in step 3 is machine-checked against the dynamic
//! monitor by the `transform_diversity` campaign binary, the same way the
//! staggered certificates are checked by `prove_soundness`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use safedm_asm::{FrameRemap, MatchKind, PairMap, PcPair};
use safedm_isa::{encode, AluKind, BranchKind, Inst, Reg};

use super::{AbsInt, Verdict};
use crate::cfg::{Cfg, DecodedProgram};
use crate::diag::{Diagnostic, LintCode, PcSpan, Severity};
use crate::AnalysisConfig;

/// Per-matched-loop result of the pair prover.
#[derive(Debug, Clone)]
pub struct PairCertificate {
    /// Header PC of the loop in the original copy.
    pub orig_header: u64,
    /// Header PC of the matched loop in the variant copy (0 if unmatched).
    pub var_header: u64,
    /// Body span of the original loop.
    pub orig_span: PcSpan,
    /// Body span of the matched variant loop.
    pub var_span: PcSpan,
    /// Committed instructions per iteration, for single-path bodies.
    pub body_len: Option<u64>,
    /// Registers whose original value and renamed-variant value are both
    /// abstract constants at the two loop headers — the relational
    /// twin-delta component of the product domain.
    pub twin_regs: usize,
    /// Verified overhead instructions retired before the variant body —
    /// the temporal offset that de-correlates the two cores' pipeline
    /// drain windows (see module docs, certification step 3).
    pub prologue_skew: usize,
    /// The verdict for this pair at stagger 0.
    pub verdict: Verdict,
    /// Why the pair is not certified, when `verdict` is not diverse.
    pub witness: Option<String>,
}

impl PairCertificate {
    /// One-line rendering used by reports and golden summaries.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut line = format!(
            "pair-loop {:#x}<->{:#x} [{}] twin-regs={} skew={} verdict={}",
            self.orig_header,
            self.var_header,
            self.body_len.map_or("irregular".to_owned(), |n| format!("{n} insts/iter")),
            self.twin_regs,
            self.prologue_skew,
            self.verdict
        );
        if let Some(w) = &self.witness {
            line.push_str(&format!(" witness: {w}"));
        }
        line
    }
}

/// Everything the relational prover learned about one twin pair.
#[derive(Debug, Clone)]
pub struct PairReport {
    /// Per-original-loop certificates, in `Cfg::loops` order.
    pub certificates: Vec<PairCertificate>,
    /// DIV009/DIV010 findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Correspondence points in the map.
    pub points_mapped: usize,
    /// Points that passed their match-discipline check.
    pub points_verified: usize,
    /// Whether the whole map verified (tiling, overhead, every point).
    pub map_ok: bool,
}

impl PairReport {
    /// Count of loop pairs with the given verdict.
    #[must_use]
    pub fn count(&self, v: Verdict) -> usize {
        self.certificates.iter().filter(|c| c.verdict == v).count()
    }

    /// `(original, variant)` body spans of the proved-diverse loop pairs —
    /// the regions the dynamic cross-check watches for (forbidden)
    /// no-diversity cycles.
    #[must_use]
    pub fn diverse_spans(&self) -> Vec<(PcSpan, PcSpan)> {
        self.certificates
            .iter()
            .filter(|c| c.verdict == Verdict::ProvedDiverse)
            .map(|c| (c.orig_span, c.var_span))
            .collect()
    }

    /// The one-line machine-comparable summary used by the golden test.
    #[must_use]
    pub fn summary_line(&self, name: &str) -> String {
        let mut certs: Vec<String> = self.certificates.iter().map(|c| c.summary()).collect();
        certs.sort();
        format!(
            "{name} pair map={} points={}/{} diverse={} unknown={} | {}",
            if self.map_ok { "ok" } else { "violated" },
            self.points_verified,
            self.points_mapped,
            self.count(Verdict::ProvedDiverse),
            self.count(Verdict::Unknown),
            if certs.is_empty() { "no loops".to_owned() } else { certs.join("; ") }
        )
    }

    /// Renders the certificates and diagnostics, rustc style.
    #[must_use]
    pub fn render(&self, prog: &DecodedProgram, snippet_lines: usize) -> String {
        use fmt::Write;
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(prog, snippet_lines));
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "pair certificates (stagger 0, correspondence {}):",
            if self.map_ok { "verified" } else { "VIOLATED" }
        );
        if self.certificates.is_empty() {
            let _ = writeln!(out, "  (no natural loops in the original copy)");
        }
        for c in &self.certificates {
            let _ = writeln!(out, "  {}", c.summary());
        }
        let _ = writeln!(
            out,
            "pair prove: {}/{} points verified, {} loop pairs proved-diverse, {} unknown",
            self.points_verified,
            self.points_mapped,
            self.count(Verdict::ProvedDiverse),
            self.count(Verdict::Unknown),
        );
        out
    }
}

/// One slot of a mapped point, for the per-slot lookup table.
fn expand_slots(p: &PcPair) -> impl Iterator<Item = (u64, u64)> + '_ {
    (0..u64::from(p.slots)).map(move |k| (p.orig + 4 * k, p.var + 4 * k))
}

/// Checks one correspondence point against its match discipline. Returns a
/// violation witness, or `None` when the point verifies.
fn check_point(prog: &DecodedProgram, map: &PairMap, p: &PcPair) -> Option<String> {
    // Every covered slot of both copies must exist in the decoded image.
    for (opc, vpc) in expand_slots(p) {
        if prog.index_of(opc).is_none() || prog.index_of(vpc).is_none() {
            return Some(format!("mapped point {opc:#x}<->{vpc:#x} outside the text section"));
        }
    }
    let slot = |pc: u64| prog.slots[prog.index_of(pc).unwrap()];
    let pi = |r: Reg| map.renamed(r);
    match p.kind {
        MatchKind::Exact => {
            let o = slot(p.orig);
            let v = slot(p.var);
            let expect = match o.inst {
                Some(i) => encode(&i.map_regs(pi)).unwrap_or(o.raw),
                None => o.raw,
            };
            (v.raw != expect).then(|| {
                format!(
                    "exact point {:#x}<->{:#x}: expected renamed encoding {expect:#010x}, \
                     variant holds {:#010x}",
                    p.orig, p.var, v.raw
                )
            })
        }
        MatchKind::ControlFlow => {
            let (o, v) = (slot(p.orig).inst, slot(p.var).inst);
            let ok = match (o, v) {
                (Some(Inst::Jal { rd: or, .. }), Some(Inst::Jal { rd: vr, .. })) => pi(or) == vr,
                (
                    Some(Inst::Branch { kind: ok, rs1: o1, rs2: o2, .. }),
                    Some(Inst::Branch { kind: vk, rs1: v1, rs2: v2, .. }),
                ) => ok == vk && pi(o1) == v1 && pi(o2) == v2,
                (
                    Some(Inst::Jalr { rd: or, rs1: o1, offset: oo }),
                    Some(Inst::Jalr { rd: vr, rs1: v1, offset: vo }),
                ) => pi(or) == vr && pi(o1) == v1 && oo == vo,
                // Branch canonicalisation: an original `j` may become the
                // architecturally equal always-taken `beq x0, x0` in the
                // variant (same target through relinking, displacement free).
                (
                    Some(Inst::Jal { rd: or, .. }),
                    Some(Inst::Branch { kind: BranchKind::Eq, rs1: v1, rs2: v2, .. }),
                ) => or == Reg::ZERO && v1 == Reg::ZERO && v2 == Reg::ZERO,
                _ => false,
            };
            (!ok).then(|| {
                format!(
                    "control-flow point {:#x}<->{:#x}: operation or renamed operands differ",
                    p.orig, p.var
                )
            })
        }
        MatchKind::AddrMat => {
            // `la` re-materialisation: auipc rd + addi rd, rd on both
            // sides, destination chain renamed, immediates free (the copies
            // sit at different addresses).
            let shape = |base: u64, want: Reg| -> bool {
                match (slot(base).inst, slot(base + 4).inst) {
                    (Some(Inst::Auipc { rd: a, .. }), Some(Inst::OpImm { rd: b, rs1: c, .. })) => {
                        a == want && b == want && c == want
                    }
                    _ => false,
                }
            };
            let orig_rd = match slot(p.orig).inst {
                Some(Inst::Auipc { rd, .. }) => rd,
                _ => {
                    return Some(format!(
                        "addr-mat point {:#x}<->{:#x}: original is not an auipc pair",
                        p.orig, p.var
                    ))
                }
            };
            (!(shape(p.orig, orig_rd) && shape(p.var, pi(orig_rd)))).then(|| {
                format!(
                    "addr-mat point {:#x}<->{:#x}: re-materialisation shape or renamed \
                     destination differs",
                    p.orig, p.var
                )
            })
        }
        MatchKind::Frame(fi) => {
            // Re-laid-out stack frame: the alloc/dealloc magnitudes must be
            // exactly `orig_bytes` vs `orig_bytes + pad`, and every spill
            // offset must follow the declared slot permutation.
            let Some(fr) = map.frames.get(usize::from(fi)) else {
                return Some(format!(
                    "frame point {:#x}<->{:#x}: frame #{fi} not declared in the map",
                    p.orig, p.var
                ));
            };
            let remap = |off: i64| -> Option<i64> {
                (off >= 0 && off % 8 == 0)
                    .then(|| fr.slots.get((off / 8) as usize).map(|&s| i64::from(8 * s)))
                    .flatten()
            };
            let ok = match (slot(p.orig).inst, slot(p.var).inst) {
                (
                    Some(Inst::OpImm { kind: AluKind::Add, rd: od, rs1: os, imm: oi }),
                    Some(Inst::OpImm { kind: AluKind::Add, rd: vd, rs1: vs, imm: vi }),
                ) => {
                    od == Reg::SP
                        && os == Reg::SP
                        && vd == Reg::SP
                        && vs == Reg::SP
                        && oi.unsigned_abs() == u64::from(fr.orig_bytes)
                        && vi.unsigned_abs() == u64::from(fr.var_bytes())
                        && oi.signum() == vi.signum()
                }
                (
                    Some(Inst::Load { kind: ok_, rd: od, rs1: ob, offset: oo }),
                    Some(Inst::Load { kind: vk, rd: vd, rs1: vb, offset: vo }),
                ) => {
                    ok_ == vk
                        && ob == Reg::SP
                        && vb == Reg::SP
                        && pi(od) == vd
                        && remap(oo) == Some(vo)
                }
                (
                    Some(Inst::Store { kind: ok_, rs1: ob, rs2: od, offset: oo }),
                    Some(Inst::Store { kind: vk, rs1: vb, rs2: vd, offset: vo }),
                ) => {
                    ok_ == vk
                        && ob == Reg::SP
                        && vb == Reg::SP
                        && pi(od) == vd
                        && remap(oo) == Some(vo)
                }
                _ => false,
            };
            (!ok).then(|| {
                format!(
                    "frame point {:#x}<->{:#x}: instruction does not follow the frame #{fi} \
                     re-layout (size {}+{} bytes)",
                    p.orig, p.var, fr.orig_bytes, fr.pad
                )
            })
        }
    }
}

/// Validates the frame re-layout tables themselves: every [`FrameRemap`]
/// must describe an 8-byte-slotted frame whose enlarged size still encodes
/// in one `addi`, with an injective in-bounds slot permutation. A violation
/// here means no [`MatchKind::Frame`] point can be trusted.
fn check_frames(frames: &[FrameRemap]) -> Option<String> {
    for (fi, fr) in frames.iter().enumerate() {
        if fr.orig_bytes == 0 || fr.orig_bytes % 8 != 0 || fr.pad % 8 != 0 {
            return Some(format!(
                "frame #{fi}: sizes {}+{} are not 8-byte aligned",
                fr.orig_bytes, fr.pad
            ));
        }
        if fr.var_bytes() > 2040 {
            return Some(format!(
                "frame #{fi}: enlarged frame of {} bytes exceeds the addi immediate range",
                fr.var_bytes()
            ));
        }
        if fr.slots.len() != (fr.orig_bytes / 8) as usize {
            return Some(format!(
                "frame #{fi}: {} slot entries for a {}-byte original frame",
                fr.slots.len(),
                fr.orig_bytes
            ));
        }
        let total = fr.var_bytes() / 8;
        let mut seen = BTreeSet::new();
        for &s in &fr.slots {
            if s >= total {
                return Some(format!("frame #{fi}: slot {s} outside the {total}-slot frame"));
            }
            if !seen.insert(s) {
                return Some(format!("frame #{fi}: slot {s} assigned twice (not injective)"));
            }
        }
    }
    None
}

/// Verifies the map's global shape: the points must tile the original copy
/// exactly (sorted, gap-free, span-bounded), and the variant slots left
/// uncovered must number exactly the declared overhead and all decode to
/// plain (non-control-flow) instructions.
fn check_tiling(prog: &DecodedProgram, map: &PairMap) -> Option<String> {
    let mut cursor = map.orig_span.0;
    for p in &map.pairs {
        if p.orig != cursor {
            return Some(format!(
                "original copy not tiled: gap or overlap at {cursor:#x} (next point {:#x})",
                p.orig
            ));
        }
        cursor += 4 * u64::from(p.slots);
    }
    if cursor != map.orig_span.1 {
        return Some(format!(
            "original copy not fully covered: map ends at {cursor:#x}, span ends at {:#x}",
            map.orig_span.1
        ));
    }
    let covered: BTreeSet<u64> = map.pairs.iter().flat_map(expand_slots).map(|(_, v)| v).collect();
    let mut overhead = 0u64;
    let mut vpc = map.var_span.0;
    while vpc < map.var_span.1 {
        if !covered.contains(&vpc) {
            overhead += 1;
            let plain = prog
                .index_of(vpc)
                .and_then(|i| prog.slots[i].inst)
                .is_some_and(|i| !i.is_control_flow() && !matches!(i, Inst::Ebreak | Inst::Ecall));
            if !plain {
                return Some(format!(
                    "uncovered variant slot {vpc:#x} is not a plain overhead instruction"
                ));
            }
        }
        vpc += 4;
    }
    (overhead != map.overhead_insts).then(|| {
        format!(
            "variant has {overhead} uncovered slots, map declares overhead of {}",
            map.overhead_insts
        )
    })
}

/// Runs the two-program relational prover over a composed twin image.
///
/// `prog`/`cfg` decode the *composed* program ([`build_twin_program`-style]:
/// hart-id dispatch stub + original copy + variant copy in one text
/// section); `map` is the transform-produced correspondence. Certification
/// is for stagger 0 — no staggering assumption is used anywhere.
#[must_use]
pub fn prove_pair(
    prog: &DecodedProgram,
    cfg: &Cfg,
    map: &PairMap,
    config: &AnalysisConfig,
) -> PairReport {
    let mut diagnostics = Vec::new();

    // --- 1. correspondence verification ------------------------------------
    let mut points_verified = 0usize;
    let mut map_ok = true;
    for p in &map.pairs {
        match check_point(prog, map, p) {
            None => points_verified += 1,
            Some(witness) => {
                map_ok = false;
                diagnostics.push(Diagnostic {
                    code: LintCode::Div010,
                    severity: Severity::Error,
                    span: PcSpan { start: p.orig, end: p.orig + 4 * u64::from(p.slots) },
                    message: format!("correspondence-map violation ({} point)", p.kind),
                    notes: vec![format!("note: {witness}")],
                    period: None,
                    min_safe_stagger: None,
                });
            }
        }
    }
    if let Some(witness) = check_tiling(prog, map) {
        map_ok = false;
        diagnostics.push(Diagnostic {
            code: LintCode::Div010,
            severity: Severity::Error,
            span: PcSpan { start: map.orig_span.0, end: map.orig_span.1 },
            message: "correspondence map does not tile the twin pair".to_owned(),
            notes: vec![format!("note: {witness}")],
            period: None,
            min_safe_stagger: None,
        });
    }
    if let Some(witness) = check_frames(&map.frames) {
        map_ok = false;
        diagnostics.push(Diagnostic {
            code: LintCode::Div010,
            severity: Severity::Error,
            span: PcSpan { start: map.var_span.0, end: map.var_span.1 },
            message: "frame re-layout table is not a valid slot permutation".to_owned(),
            notes: vec![format!("note: {witness}")],
            period: None,
            min_safe_stagger: None,
        });
    }

    // Per-slot original-PC → variant-PC lookup (only meaningful once the
    // map verified; used below for loop matching either way, with failures
    // degrading to Unknown).
    let slot_map: BTreeMap<u64, u64> = map.pairs.iter().flat_map(expand_slots).collect();

    // Variant slots the map leaves uncovered — the verified overhead
    // instructions. The ones lying before a matched body are the prologue
    // skew that certification step 3 requires.
    let covered: BTreeSet<u64> = map.pairs.iter().flat_map(expand_slots).map(|(_, v)| v).collect();
    let uncovered: Vec<u64> =
        (map.var_span.0..map.var_span.1).step_by(4).filter(|pc| !covered.contains(pc)).collect();

    // --- 4. relational state (one fixpoint over the composed image) --------
    let absint = AbsInt::compute(prog, cfg);
    let twin_regs_at = |o_header_slot: usize, v_header_slot: usize| -> usize {
        let (Some(ob), Some(vb)) =
            (cfg.block_of_slot(o_header_slot), cfg.block_of_slot(v_header_slot))
        else {
            return 0;
        };
        let (Some(os), Some(vs)) = (&absint.block_in[ob], &absint.block_in[vb]) else { return 0 };
        (1..32u8)
            .filter(|&i| {
                let r = Reg::new(i);
                os.get(r).as_const().is_some() && vs.get(map.renamed(r)).as_const().is_some()
            })
            .count()
    };

    // All reachable instruction slots of a loop body. Statically
    // unreachable blocks (layout filler behind always-taken transfers)
    // never execute and are excluded.
    let loop_slots = |lp: &crate::cfg::NaturalLoop| -> Vec<usize> {
        lp.blocks
            .iter()
            .filter(|&&b| cfg.is_reachable(b))
            .flat_map(|&b| cfg.blocks[b].start..cfg.blocks[b].end)
            .collect()
    };

    // Variant loops, by the PC sets of their (reachable) bodies. Multi-path
    // bodies participate: matching is by exact mapped-PC-set equality, so a
    // branchy body certifies as long as every original body point maps onto
    // exactly this variant loop.
    let var_loops: Vec<(usize, BTreeSet<u64>)> = cfg
        .loops
        .iter()
        .enumerate()
        .filter(|(_, lp)| {
            let pc = prog.slots[cfg.blocks[lp.header].start].pc;
            map.var_span.0 <= pc && pc < map.var_span.1
        })
        .map(|(i, lp)| (i, loop_slots(lp).iter().map(|&s| prog.slots[s].pc).collect()))
        .collect();

    // --- 2+3. loop matching and encoding-disjointness -----------------------
    let mut certificates = Vec::new();
    for lp in &cfg.loops {
        let header_pc = prog.slots[cfg.blocks[lp.header].start].pc;
        if !(map.orig_span.0 <= header_pc && header_pc < map.orig_span.1) {
            continue;
        }
        let span_of = |slots: &[usize]| {
            let lo = slots.iter().map(|&i| prog.slots[i].pc).min().unwrap_or(header_pc);
            let hi = slots.iter().map(|&i| prog.slots[i].pc).max().unwrap_or(header_pc);
            PcSpan { start: lo, end: hi + 4 }
        };
        let mut cert = PairCertificate {
            orig_header: header_pc,
            var_header: 0,
            orig_span: span_of(&Vec::from_iter(
                lp.blocks.iter().flat_map(|&b| cfg.blocks[b].start..cfg.blocks[b].end),
            )),
            var_span: PcSpan { start: 0, end: 0 },
            body_len: None,
            twin_regs: 0,
            prologue_skew: 0,
            verdict: Verdict::Unknown,
            witness: None,
        };

        'certify: {
            if !map_ok {
                cert.witness = Some("correspondence map violated (DIV010)".to_owned());
                break 'certify;
            }
            // Single-path bodies keep their per-iteration commit count;
            // multi-path bodies certify too, just without it.
            let body = loop_slots(lp);
            cert.body_len = super::body_sequence(cfg, lp).map(|seq| seq.len() as u64);
            cert.orig_span = span_of(&body);

            // Map every body point through the verified correspondence.
            let mut mapped = BTreeSet::new();
            for &i in &body {
                let opc = prog.slots[i].pc;
                // Second slot of an addr-mat point maps via its pair start.
                match slot_map.get(&opc) {
                    Some(&vpc) => {
                        mapped.insert(vpc);
                    }
                    None => {
                        cert.witness = Some(format!("body point {opc:#x} unmapped"));
                        break 'certify;
                    }
                }
            }

            // Find the variant loop whose (reachable) body is exactly the
            // mapped set. Jitter may reorder within blocks and filler may
            // sit inside the variant span, but the executable PC sets must
            // coincide point-for-point.
            let matched = var_loops.iter().find(|(_, pcs)| *pcs == mapped);
            let Some((vi, vpcs)) = matched else {
                cert.witness =
                    Some("no variant loop matches the mapped body point-for-point".to_owned());
                break 'certify;
            };
            let vlp = &cfg.loops[*vi];
            cert.var_header = prog.slots[cfg.blocks[vlp.header].start].pc;
            cert.var_span = PcSpan {
                start: *vpcs.first().unwrap_or(&cert.var_header),
                end: vpcs.last().unwrap_or(&cert.var_header) + 4,
            };
            cert.twin_regs =
                twin_regs_at(cfg.blocks[lp.header].start, cfg.blocks[vlp.header].start);

            // Encoding-disjointness: the instruction signature samples raw
            // words per pipeline slot; if no original-body word also occurs
            // in the variant body, `is_match` is false at every alignment
            // on any cycle where either pipeline holds a live instruction
            // while both warmed-up cores sit inside their bodies. The sets
            // compared are the executable body instructions — filler words
            // inside the variant *span* never enter the pipeline and do not
            // count as diversity.
            let var_words: BTreeSet<u32> =
                vpcs.iter().map(|&pc| prog.slots[prog.index_of(pc).unwrap()].raw).collect();
            if let Some(&i) = body.iter().find(|&&i| var_words.contains(&prog.slots[i].raw)) {
                cert.witness = Some(format!(
                    "shared encoding {:#010x} at {:#x} survives in the variant body",
                    prog.slots[i].raw, prog.slots[i].pc
                ));
                break 'certify;
            }

            // Prologue skew: close the all-empty-capture residue. Without a
            // temporal offset, the schedule-identical twin drains both
            // pipelines on the same cycle under correlated stalls, and two
            // all-invalid instruction captures match while the frozen data
            // FIFOs hold rename-invariant values from the same program
            // point. Overhead instructions retired before the variant body
            // offset the drain windows; `fifo_depth` of them keep even the
            // frozen data windows sampling distinct program points. Only
            // overhead that provably *retires* before the body counts: the
            // slot must sit in a reachable block that dominates the variant
            // loop header (never-executed layout filler does not skew
            // anything).
            cert.prologue_skew = uncovered
                .iter()
                .filter(|&&pc| pc < cert.var_span.start)
                .filter(|&&pc| {
                    prog.index_of(pc)
                        .and_then(|i| cfg.block_of_slot(i))
                        .is_some_and(|b| cfg.is_reachable(b) && cfg.dominates(b, vlp.header))
                })
                .count();
            if cert.prologue_skew < config.fifo_depth {
                cert.witness = Some(format!(
                    "prologue skew {} < data-FIFO depth {}: simultaneous pipeline drains \
                     match empty instruction signatures",
                    cert.prologue_skew, config.fifo_depth
                ));
                break 'certify;
            }
            cert.verdict = Verdict::ProvedDiverse;
        }

        if cert.verdict != Verdict::ProvedDiverse {
            diagnostics.push(Diagnostic {
                code: LintCode::Div009,
                severity: Severity::Warning,
                span: cert.orig_span,
                message: format!(
                    "diversity transform left an unproved residue for the loop at {:#x}",
                    cert.orig_header
                ),
                notes: vec![format!("note: {}", cert.witness.as_deref().unwrap_or("no witness"))],
                period: None,
                min_safe_stagger: None,
            });
        }
        certificates.push(cert);
    }

    PairReport {
        certificates,
        diagnostics,
        points_mapped: map.pairs.len(),
        points_verified,
        map_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_asm::{pair_map, transform, Asm, TransformConfig};

    /// A toy kernel shaped like the TACLe harness bodies: every loop-body
    /// instruction names at least one allocatable register. `sled` prepends
    /// that many prologue nops, the way the twin harness inserts its
    /// overhead extras before the body.
    fn toy(sled: usize) -> Asm {
        let mut a = Asm::new();
        let tab = a.d_dwords("tab", &[3, 1, 4, 1, 5]);
        a.nops(sled);
        a.li(Reg::T0, 5);
        a.la(Reg::T1, tab);
        a.li(Reg::A0, 0);
        let top = a.here("top");
        a.ld(Reg::T2, 0, Reg::T1);
        a.addi(Reg::T1, Reg::T1, 8);
        a.addi(Reg::T0, Reg::T0, -1);
        a.add(Reg::A0, Reg::A0, Reg::T2);
        a.bnez(Reg::T0, top);
        a.ebreak();
        a
    }

    /// Links a kernel and its transform (the variant carrying `sled`
    /// prologue nops as declared overhead) as two copies of one image
    /// behind an `mhartid` dispatch stub (the stub makes both copies — and
    /// hence both loops — reachable from the entry) and builds the
    /// correspondence map.
    fn twin_of(
        mk: &dyn Fn(usize) -> Asm,
        cfg: &TransformConfig,
        sled: usize,
    ) -> (DecodedProgram, Cfg, PairMap) {
        let a = mk(0);
        let (t, rep) = transform(&mk(sled), cfg);
        let base = 0x8000_0000u64;
        let b1 = base + 64;
        let o = a.link_with_data_base(b1, 0x8100_0000).unwrap();
        let b2 = (b1 + o.text.len() as u64).next_multiple_of(64);
        let v = t.link_with_data_base(b2, 0x8100_0000).unwrap();
        let assoc: Vec<(usize, usize)> =
            (0..a.item_count()).map(|oi| (oi, rep.new_index_of(oi + sled).unwrap())).collect();
        let mut map = pair_map(&a, &t, &assoc, b1, b2, rep.rename, (sled + rep.fillers) as u64);
        safedm_asm::apply_frame_map(&mut map, &a, &rep, b1, |src| src.checked_sub(sled));
        // Compose one image: stub + original + variant.
        let stub = [
            Inst::Csr {
                kind: safedm_isa::CsrKind::Rs,
                rd: Reg::T0,
                rs1: Reg::ZERO,
                csr: safedm_isa::csr::addr::MHARTID,
            },
            Inst::Branch {
                kind: safedm_isa::BranchKind::Ne,
                rs1: Reg::T0,
                rs2: Reg::ZERO,
                offset: 8,
            },
            Inst::Jal { rd: Reg::ZERO, offset: (b1 - (base + 8)) as i64 },
            Inst::Jal { rd: Reg::ZERO, offset: (b2 - (base + 12)) as i64 },
        ];
        let mut text = vec![0u8; ((b2 - base) as usize) + v.text.len()];
        for (i, inst) in stub.iter().enumerate() {
            text[i * 4..i * 4 + 4].copy_from_slice(&encode(inst).unwrap().to_le_bytes());
        }
        let o_off = (b1 - base) as usize;
        text[o_off..o_off + o.text.len()].copy_from_slice(&o.text);
        text[(b2 - base) as usize..].copy_from_slice(&v.text);
        let mut composed = o.clone();
        composed.entry = base;
        composed.text_base = base;
        composed.text = text;
        let prog = DecodedProgram::from_program(&composed);
        let cfg = Cfg::build(&prog);
        (prog, cfg, map)
    }

    fn twin(cfg: &TransformConfig, sled: usize) -> (DecodedProgram, Cfg, PairMap) {
        twin_of(&toy, cfg, sled)
    }

    #[test]
    fn renamed_twin_with_skew_is_proved_diverse_at_stagger_zero() {
        let (prog, cfg, map) = twin(&TransformConfig::level(7, 2), 8);
        let r = prove_pair(&prog, &cfg, &map, &AnalysisConfig::default());
        assert!(r.map_ok, "{:#?}", r.diagnostics);
        assert_eq!(r.points_verified, r.points_mapped);
        assert_eq!(r.count(Verdict::ProvedDiverse), 1, "{}", r.summary_line("toy"));
        assert!(r.diagnostics.is_empty(), "{:#?}", r.diagnostics);
        let c = &r.certificates[0];
        assert_eq!(c.body_len, Some(5));
        assert_eq!(c.prologue_skew, 8);
        assert!(c.var_header >= map.var_span.0);
        assert!(!r.diverse_spans().is_empty());
    }

    #[test]
    fn identity_twin_is_a_residue_not_a_violation() {
        // Level 0 keeps every encoding: the map verifies (identity renaming
        // is a faithful correspondence) but no loop is encoding-disjoint.
        let (prog, cfg, map) = twin(&TransformConfig::level(7, 0), 0);
        let r = prove_pair(&prog, &cfg, &map, &AnalysisConfig::default());
        assert!(r.map_ok, "{:#?}", r.diagnostics);
        assert_eq!(r.count(Verdict::ProvedDiverse), 0);
        assert!(r.diagnostics.iter().any(|d| d.code == LintCode::Div009), "{:#?}", r.diagnostics);
        let c = &r.certificates[0];
        assert!(c.witness.as_deref().unwrap_or("").contains("shared encoding"), "{c:?}");
    }

    #[test]
    fn schedule_aligned_twin_is_a_residue_despite_disjoint_encodings() {
        // Renamed + jittered but no prologue skew: every encoding differs,
        // yet the cycle-aligned twin drains both pipelines simultaneously
        // under correlated stalls, so the all-empty instruction captures
        // match. The prover must refuse the certificate.
        let (prog, cfg, map) = twin(&TransformConfig::level(7, 2), 0);
        let r = prove_pair(&prog, &cfg, &map, &AnalysisConfig::default());
        assert!(r.map_ok, "{:#?}", r.diagnostics);
        assert_eq!(r.count(Verdict::ProvedDiverse), 0, "{}", r.summary_line("toy"));
        let c = &r.certificates[0];
        assert!(c.witness.as_deref().unwrap_or("").contains("prologue skew"), "{c:?}");
        assert!(r.diverse_spans().is_empty());
    }

    #[test]
    fn tampered_variant_trips_div010_and_blocks_certification() {
        let (mut prog, _, map) = twin(&TransformConfig::level(7, 2), 8);
        // Flip one mapped variant instruction to a different (decodable)
        // one: addi x5, x5, 1.
        let target = map.pairs.iter().find(|p| p.kind == MatchKind::Exact).unwrap().var;
        let idx = prog.index_of(target).unwrap();
        let word = encode(&Inst::OpImm {
            kind: safedm_isa::AluKind::Add,
            rd: Reg::T6,
            rs1: Reg::T6,
            imm: 1365,
        })
        .unwrap();
        prog.slots[idx].raw = word;
        prog.slots[idx].inst = safedm_isa::decode(word).ok();
        let cfg = Cfg::build(&prog);
        let r = prove_pair(&prog, &cfg, &map, &AnalysisConfig::default());
        assert!(!r.map_ok);
        assert!(r.diagnostics.iter().any(|d| d.code == LintCode::Div010), "{:#?}", r.diagnostics);
        assert_eq!(r.count(Verdict::ProvedDiverse), 0, "violated map must not certify");
        let text = r.render(&prog, 4);
        assert!(text.contains("DIV010"), "{text}");
    }

    #[test]
    fn wrong_overhead_declaration_is_a_tiling_violation() {
        let (prog, cfg, mut map) = twin(&TransformConfig::level(7, 2), 8);
        map.overhead_insts = 3;
        let r = prove_pair(&prog, &cfg, &map, &AnalysisConfig::default());
        assert!(!r.map_ok);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::Div010 && d.message.contains("tile")));
    }

    #[test]
    fn summary_line_is_stable() {
        let (prog, cfg, map) = twin(&TransformConfig::level(7, 2), 8);
        let r = prove_pair(&prog, &cfg, &map, &AnalysisConfig::default());
        let line = r.summary_line("toy");
        assert!(line.contains("pair map=ok"), "{line}");
        assert!(line.contains("diverse=1"), "{line}");
        assert!(line.contains("pair-loop"), "{line}");
    }

    /// A loop with a conditional skip inside the body: two paths per
    /// iteration, so `body_sequence` fails and certification must go
    /// through the multi-path point-for-point matching.
    fn branchy(sled: usize) -> Asm {
        let mut a = Asm::new();
        let tab = a.d_dwords("tab", &[3, 1, 4, 1, 5]);
        a.nops(sled);
        a.li(Reg::T0, 5);
        a.la(Reg::T1, tab);
        a.li(Reg::A0, 0);
        let top = a.here("top");
        let skip = a.new_label("skip");
        a.ld(Reg::T2, 0, Reg::T1);
        a.beqz(Reg::T2, skip);
        a.add(Reg::A0, Reg::A0, Reg::T2);
        a.bind(skip).unwrap();
        a.addi(Reg::T1, Reg::T1, 8);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, top);
        a.ebreak();
        a
    }

    #[test]
    fn multi_path_body_is_certified_point_for_point() {
        let (prog, cfg, map) = twin_of(&branchy, &TransformConfig::level(7, 2), 8);
        let r = prove_pair(&prog, &cfg, &map, &AnalysisConfig::default());
        assert!(r.map_ok, "{:#?}", r.diagnostics);
        assert_eq!(r.count(Verdict::ProvedDiverse), 1, "{}", r.summary_line("branchy"));
        let c = &r.certificates[0];
        assert_eq!(c.body_len, None, "two-path body must not claim a commit count");
        assert!(c.summary().contains("irregular"), "{}", c.summary());
        assert_eq!(c.prologue_skew, 8);
    }

    /// A straight-line balanced `sp` frame ahead of the loop, so the frame
    /// re-layout fires and the map carries `Frame` points.
    fn framed(sled: usize) -> Asm {
        let mut a = Asm::new();
        a.nops(sled);
        a.addi(Reg::SP, Reg::SP, -16);
        a.li(Reg::T0, 4);
        a.li(Reg::T1, 7);
        a.sd(Reg::T0, 0, Reg::SP);
        a.sd(Reg::T1, 8, Reg::SP);
        a.ld(Reg::T1, 8, Reg::SP);
        a.addi(Reg::SP, Reg::SP, 16);
        let top = a.here("top");
        a.add(Reg::A0, Reg::A0, Reg::T1);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, top);
        a.ebreak();
        a
    }

    fn frame_config() -> TransformConfig {
        TransformConfig {
            jitter_passes: 0,
            branch_canon: false,
            layout_fill: false,
            frame_shuffle: true,
            ..TransformConfig::level(21, 3)
        }
    }

    #[test]
    fn frame_relayout_points_verify_and_certify() {
        let (prog, cfg, map) = twin_of(&framed, &frame_config(), 8);
        assert_eq!(map.frames.len(), 1, "frame shuffle must have fired");
        let frame_points =
            map.pairs.iter().filter(|p| matches!(p.kind, MatchKind::Frame(0))).count();
        assert_eq!(frame_points, 5, "alloc + dealloc + 3 accesses");
        let r = prove_pair(&prog, &cfg, &map, &AnalysisConfig::default());
        assert!(r.map_ok, "{:#?}", r.diagnostics);
        assert_eq!(r.points_verified, r.points_mapped);
        assert_eq!(r.count(Verdict::ProvedDiverse), 1, "{}", r.summary_line("framed"));
    }

    #[test]
    fn tampered_frame_table_trips_div010() {
        let (prog, cfg, mut map) = twin_of(&framed, &frame_config(), 8);
        // A non-injective slot table could alias two spill slots — the
        // variant would not be semantically equal, so no Frame point may be
        // trusted.
        map.frames[0].slots[0] = map.frames[0].slots[1];
        let r = prove_pair(&prog, &cfg, &map, &AnalysisConfig::default());
        assert!(!r.map_ok);
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.code == LintCode::Div010 && d.message.contains("slot permutation")),
            "{:#?}",
            r.diagnostics
        );
        assert_eq!(r.count(Verdict::ProvedDiverse), 0);
    }

    /// A loop latched by an unconditional `j`, which branch canonicalisation
    /// rewrites to `beq x0, x0` in the variant, with layout filler landing
    /// behind the always-taken latch *inside* the variant loop span.
    fn jump_latch(sled: usize) -> Asm {
        let mut a = Asm::new();
        a.nops(sled);
        a.li(Reg::T0, 5);
        a.li(Reg::A0, 0);
        let top = a.here("top");
        let done = a.new_label("done");
        a.addi(Reg::T0, Reg::T0, -1);
        a.add(Reg::A0, Reg::A0, Reg::T0);
        a.beqz(Reg::T0, done);
        a.j(top);
        a.bind(done).unwrap();
        a.ebreak();
        a
    }

    #[test]
    fn canonicalised_jump_latch_certifies_with_filler_in_span() {
        let cfg_t = TransformConfig {
            jitter_passes: 0,
            branch_canon: true,
            layout_fill: true,
            frame_shuffle: false,
            ..TransformConfig::level(9, 3)
        };
        let (prog, cfg, map) = twin_of(&jump_latch, &cfg_t, 8);
        let r = prove_pair(&prog, &cfg, &map, &AnalysisConfig::default());
        assert!(r.map_ok, "{:#?}", r.diagnostics);
        assert_eq!(r.points_verified, r.points_mapped);
        assert_eq!(r.count(Verdict::ProvedDiverse), 1, "{}", r.summary_line("jump-latch"));
        // The latch pair really is jal ↔ beq x0, x0.
        let c = &r.certificates[0];
        let canonicalised = map.pairs.iter().any(|p| {
            p.kind == MatchKind::ControlFlow
                && matches!(prog.slots[prog.index_of(p.orig).unwrap()].inst, Some(Inst::Jal { .. }))
                && matches!(
                    prog.slots[prog.index_of(p.var).unwrap()].inst,
                    Some(Inst::Branch { kind: BranchKind::Eq, .. })
                )
        });
        assert!(canonicalised, "latch was not canonicalised");
        // Filler sits inside the variant loop span but is unreachable, so
        // it neither blocks the match nor counts towards the skew.
        assert_eq!(c.prologue_skew, 8, "{c:?}");
    }
}
