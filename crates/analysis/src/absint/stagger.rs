//! Relational stagger-offset domain: per-register core-B-minus-core-A deltas.
//!
//! SafeDM runs the *same* binary on both redundant cores; the only
//! architectural sources of divergence are `mhartid` (0 vs 1) and, through
//! it, per-hart memory state. This domain tracks, for each register, what is
//! known about `value_on_core1 - value_on_core0` at the same program point:
//! provably zero, a known constant, or unknown. A coupled `mem_equal` flag
//! tracks whether the two cores' data memories are still provably identical
//! (they start identical; a store whose address or data delta is not proved
//! zero may break the mirror).
//!
//! A program point whose every register read has delta [`Delta::Zero`] (with
//! `mem_equal` intact) produces bit-identical register-port samples on both
//! cores — the precondition for the stagger-0 lockstep collision verdicts.

use safedm_isa::csr::addr::MHARTID;
use safedm_isa::{abs_transfer, AbsValue, AluKind, Inst, Reg};

/// What is known about `value(core1) - value(core0)` for one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delta {
    /// Both cores provably hold the same value.
    Zero,
    /// The cores' values provably differ by this (wrapping) constant.
    Const(u64),
    /// Nothing is known.
    Unknown,
}

impl Delta {
    /// Least upper bound.
    #[must_use]
    pub fn join(&self, other: &Delta) -> Delta {
        match (self, other) {
            (a, b) if a == b => *a,
            (Delta::Zero, Delta::Const(0)) | (Delta::Const(0), Delta::Zero) => Delta::Zero,
            _ => Delta::Unknown,
        }
    }

    /// Whether the delta is provably zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        matches!(self, Delta::Zero | Delta::Const(0))
    }

    /// Whether the delta is provably **non**-zero — the cores must hold
    /// different values here.
    #[must_use]
    pub fn is_nonzero(&self) -> bool {
        matches!(self, Delta::Const(d) if *d != 0)
    }
}

impl AbsValue for Delta {
    fn top() -> Delta {
        Delta::Unknown
    }

    /// Immediates and PC-derived values are identical on both cores.
    fn constant(_c: u64) -> Delta {
        Delta::Zero
    }

    fn alu(kind: AluKind, a: &Delta, b: &Delta) -> Delta {
        // Identical deterministic inputs give identical outputs, whatever
        // the operation.
        if a.is_zero() && b.is_zero() {
            return Delta::Zero;
        }
        let (da, db) = match (a, b) {
            (Delta::Const(x), Delta::Const(y)) => (*x, *y),
            (Delta::Zero, Delta::Const(y)) => (0, *y),
            (Delta::Const(x), Delta::Zero) => (*x, 0),
            _ => return Delta::Unknown,
        };
        // Only the linear operations transport a constant delta.
        match kind {
            AluKind::Add => Delta::Const(da.wrapping_add(db)),
            AluKind::Sub => Delta::Const(da.wrapping_sub(db)),
            _ => Delta::Unknown,
        }
    }

    /// Refined by [`DeltaState::transfer`], which knows the address delta
    /// and the memory-mirror flag; standalone a load is unknown.
    fn load() -> Delta {
        Delta::Unknown
    }

    /// `mhartid` reads 0 on core 0 and 1 on core 1 — the one architectural
    /// constant-delta source. Every other CSR is modelled as unknown.
    fn csr(csr: u16) -> Delta {
        if csr == MHARTID {
            Delta::Const(1)
        } else {
            Delta::Unknown
        }
    }
}

/// Relational state at a program point: per-register deltas plus the
/// memory-mirror flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaState {
    /// `regs[i]` is the delta of `x{i}`; `regs[0]` stays [`Delta::Zero`].
    pub regs: [Delta; 32],
    /// Whether the two cores' data memories are provably identical.
    pub mem_equal: bool,
}

impl DeltaState {
    /// The reset state: both cores boot with zeroed registers and identical
    /// memory images.
    #[must_use]
    pub fn equal() -> DeltaState {
        DeltaState { regs: [Delta::Zero; 32], mem_equal: true }
    }

    /// The unconstrained state.
    #[must_use]
    pub fn unknown() -> DeltaState {
        let mut regs = [Delta::Unknown; 32];
        regs[0] = Delta::Zero;
        DeltaState { regs, mem_equal: false }
    }

    /// Delta of one register (`x0` is always [`Delta::Zero`]).
    #[must_use]
    pub fn get(&self, r: Reg) -> Delta {
        self.regs[r.index() as usize]
    }

    /// Pointwise least upper bound.
    #[must_use]
    pub fn join(&self, other: &DeltaState) -> DeltaState {
        let mut regs = [Delta::Unknown; 32];
        for (i, slot) in regs.iter_mut().enumerate() {
            *slot = self.regs[i].join(&other.regs[i]);
        }
        DeltaState { regs, mem_equal: self.mem_equal && other.mem_equal }
    }

    /// Applies one instruction. Loads and stores get the relational
    /// treatment the generic dispatch cannot express: a load from a
    /// zero-delta address out of mirrored memory is zero-delta, and a store
    /// that is not provably identical on both cores breaks the mirror.
    pub fn transfer(&mut self, pc: u64, inst: &Inst) {
        match *inst {
            Inst::Load { rd, rs1, .. } => {
                let d = if self.get(rs1).is_zero() && self.mem_equal {
                    Delta::Zero
                } else {
                    Delta::Unknown
                };
                if !rd.is_zero() {
                    self.regs[rd.index() as usize] = d;
                }
            }
            Inst::Store { rs1, rs2, .. } => {
                if !(self.get(rs1).is_zero() && self.get(rs2).is_zero()) {
                    self.mem_equal = false;
                }
            }
            _ => {
                if let Some((rd, d)) = abs_transfer(inst, pc, |r| self.get(r)) {
                    self.regs[rd.index() as usize] = d;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hartid_introduces_a_constant_delta() {
        let mut s = DeltaState::equal();
        let csrr =
            Inst::Csr { kind: safedm_isa::CsrKind::Rs, rd: Reg::T0, rs1: Reg::ZERO, csr: MHARTID };
        s.transfer(0, &csrr);
        assert_eq!(s.get(Reg::T0), Delta::Const(1));
        assert!(s.get(Reg::T0).is_nonzero());

        // Linear arithmetic transports the delta; non-linear loses it.
        let add = Inst::Op { kind: AluKind::Add, rd: Reg::T1, rs1: Reg::T0, rs2: Reg::T0 };
        s.transfer(0, &add);
        assert_eq!(s.get(Reg::T1), Delta::Const(2));
        let mul = Inst::Op { kind: AluKind::Mul, rd: Reg::T2, rs1: Reg::T0, rs2: Reg::T0 };
        s.transfer(0, &mul);
        assert_eq!(s.get(Reg::T2), Delta::Unknown);
        // Subtracting a register from itself cancels even an unknown base.
        let sub = Inst::Op { kind: AluKind::Sub, rd: Reg::T3, rs1: Reg::T0, rs2: Reg::T0 };
        s.transfer(0, &sub);
        assert_eq!(s.get(Reg::T3), Delta::Const(0));
        assert!(s.get(Reg::T3).is_zero());
    }

    #[test]
    fn divergent_store_breaks_the_memory_mirror() {
        let mut s = DeltaState::equal();
        let csrr =
            Inst::Csr { kind: safedm_isa::CsrKind::Rs, rd: Reg::T0, rs1: Reg::ZERO, csr: MHARTID };
        s.transfer(0, &csrr);

        // Load through an equal address from mirrored memory: still equal.
        let ld = Inst::Load { kind: safedm_isa::LoadKind::D, rd: Reg::A0, rs1: Reg::SP, offset: 0 };
        s.transfer(0, &ld);
        assert_eq!(s.get(Reg::A0), Delta::Zero);

        // Store of a divergent value: the mirror is gone, and later loads
        // are unknown even through equal addresses.
        let st =
            Inst::Store { kind: safedm_isa::StoreKind::D, rs1: Reg::SP, rs2: Reg::T0, offset: 0 };
        s.transfer(0, &st);
        assert!(!s.mem_equal);
        s.transfer(0, &ld);
        assert_eq!(s.get(Reg::A0), Delta::Unknown);
    }

    #[test]
    fn join_is_pointwise_and_sticky_on_memory() {
        let a = DeltaState::equal();
        let mut b = DeltaState::equal();
        b.regs[5] = Delta::Const(1);
        b.mem_equal = false;
        let j = a.join(&b);
        assert_eq!(j.regs[5], Delta::Unknown);
        assert_eq!(j.regs[6], Delta::Zero);
        assert!(!j.mem_equal);
    }
}
