//! Machine-readable lint baselines: accept today's findings, gate on new
//! ones.
//!
//! A baseline file records the currently-accepted findings as
//! `(program, rule, pc)` triples. The CI lint gate re-runs the analyzer,
//! drops every finding the baseline covers, **warns** about stale entries
//! (baselined findings that no longer fire — the baseline should be
//! regenerated) and **fails** on any error-severity finding the baseline
//! does not cover. The file format:
//!
//! ```json
//! {
//!   "schema": "safedm-lint-baseline/1",
//!   "entries": [
//!     {"program": "fac", "rule": "DIV001", "pc": "0x80000010"}
//!   ]
//! }
//! ```
//!
//! Entries render one per line, sorted and deduplicated, so committed
//! baselines diff cleanly. `pc` is the hex start address of the finding's
//! span — stable across runs because the analyzer is deterministic for a
//! given image, and intentionally *not* tied to message text, which may be
//! reworded without invalidating the acceptance.

use safedm_obs::json::{self, escape, JsonValue};

use crate::diag::Diagnostic;

/// The `schema` tag of the baseline document format.
pub const SCHEMA: &str = "safedm-lint-baseline/1";

/// One accepted finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// The analyzed program (kernel name or source path) the finding is in.
    pub program: String,
    /// The stable rule id (`"DIV001"` …).
    pub rule: String,
    /// Start PC of the finding's span.
    pub pc: u64,
}

impl BaselineEntry {
    /// Whether this entry covers `d` as found in `program`.
    #[must_use]
    pub fn covers(&self, program: &str, d: &Diagnostic) -> bool {
        self.program == program && self.rule == d.code.id() && self.pc == d.span.start
    }
}

/// A parsed or freshly-built baseline.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// The accepted findings, sorted and deduplicated.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Builds a baseline accepting every finding given (sorted, deduped).
    #[must_use]
    pub fn from_findings(runs: &[(String, Vec<Diagnostic>)]) -> Baseline {
        let mut entries: Vec<BaselineEntry> = runs
            .iter()
            .flat_map(|(program, diags)| {
                diags.iter().map(|d| BaselineEntry {
                    program: program.clone(),
                    rule: d.code.id().to_owned(),
                    pc: d.span.start,
                })
            })
            .collect();
        entries.sort();
        entries.dedup();
        Baseline { entries }
    }

    /// Renders the canonical one-entry-per-line document.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"program\": \"{}\", \"rule\": \"{}\", \"pc\": \"{:#x}\"}}",
                escape(&e.program),
                escape(&e.rule),
                e.pc
            ));
        }
        out.push_str(if self.entries.is_empty() { "]\n}\n" } else { "\n  ]\n}\n" });
        out
    }

    /// Parses a baseline document.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a wrong/missing `schema` tag, or
    /// an entry missing one of its three fields.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text).map_err(|e| format!("baseline: {e}"))?;
        let schema = doc.get("schema").and_then(JsonValue::as_str).unwrap_or_default();
        if schema != SCHEMA {
            return Err(format!("baseline: expected schema `{SCHEMA}`, found `{schema}`"));
        }
        let raw = doc
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "baseline: missing `entries` array".to_owned())?;
        let mut entries = Vec::with_capacity(raw.len());
        for (i, e) in raw.iter().enumerate() {
            let field = |k: &str| {
                e.get(k)
                    .and_then(JsonValue::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("baseline: entry {i} is missing string field `{k}`"))
            };
            let pc_text = field("pc")?;
            let pc_digits = pc_text
                .strip_prefix("0x")
                .or_else(|| pc_text.strip_prefix("0X"))
                .unwrap_or(&pc_text);
            let pc = u64::from_str_radix(pc_digits, 16)
                .map_err(|_| format!("baseline: entry {i} has invalid pc `{pc_text}`"))?;
            entries.push(BaselineEntry { program: field("program")?, rule: field("rule")?, pc });
        }
        entries.sort();
        entries.dedup();
        Ok(Baseline { entries })
    }
}

/// Applies a baseline to one or more programs' findings, tracking which
/// entries were actually used so stale ones can be reported.
#[derive(Debug)]
pub struct BaselineFilter {
    baseline: Baseline,
    used: Vec<bool>,
}

impl BaselineFilter {
    /// Wraps a baseline for application.
    #[must_use]
    pub fn new(baseline: Baseline) -> BaselineFilter {
        let used = vec![false; baseline.entries.len()];
        BaselineFilter { baseline, used }
    }

    /// Drops every finding the baseline covers, returning the survivors in
    /// order. Matched entries are marked used (an entry may cover any number
    /// of findings).
    #[must_use]
    pub fn suppress(&mut self, program: &str, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags
            .into_iter()
            .filter(|d| {
                let mut covered = false;
                for (i, e) in self.baseline.entries.iter().enumerate() {
                    if e.covers(program, d) {
                        self.used[i] = true;
                        covered = true;
                    }
                }
                !covered
            })
            .collect()
    }

    /// Entries that covered nothing across every [`BaselineFilter::suppress`]
    /// call so far — the finding was fixed and the baseline should be
    /// regenerated.
    #[must_use]
    pub fn stale(&self) -> Vec<&BaselineEntry> {
        self.baseline
            .entries
            .iter()
            .zip(&self.used)
            .filter_map(|(e, &u)| (!u).then_some(e))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{LintCode, PcSpan};

    fn finding(code: LintCode, start: u64) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            span: PcSpan { start, end: start + 4 },
            message: "m".into(),
            notes: vec![],
            period: None,
            min_safe_stagger: None,
        }
    }

    #[test]
    fn round_trip_and_canonical_order() {
        let runs = vec![
            ("zeta".to_owned(), vec![finding(LintCode::Div002, 0x2000)]),
            (
                "alpha".to_owned(),
                vec![finding(LintCode::Div001, 0x1000), finding(LintCode::Div001, 0x1000)],
            ),
        ];
        let b = Baseline::from_findings(&runs);
        // Sorted by program, duplicate collapsed.
        assert_eq!(b.entries.len(), 2);
        assert_eq!(b.entries[0].program, "alpha");
        let text = b.render();
        assert!(text.contains("\"pc\": \"0x1000\""), "{text}");
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.entries, b.entries);
        // An empty baseline still round-trips.
        let empty = Baseline::default();
        assert_eq!(Baseline::parse(&empty.render()).unwrap().entries, Vec::new());
    }

    #[test]
    fn emit_then_rerun_suppresses_everything() {
        let runs = vec![(
            "fac".to_owned(),
            vec![finding(LintCode::Div001, 0x1000), finding(LintCode::Div003, 0x1400)],
        )];
        let b = Baseline::from_findings(&runs);
        let mut filter = BaselineFilter::new(Baseline::parse(&b.render()).unwrap());
        let left = filter.suppress("fac", runs[0].1.clone());
        assert!(left.is_empty(), "{left:?}");
        assert!(filter.stale().is_empty());
    }

    #[test]
    fn new_findings_survive_and_fixed_entries_go_stale() {
        let baseline = Baseline::from_findings(&[(
            "fac".to_owned(),
            vec![finding(LintCode::Div001, 0x1000), finding(LintCode::Div002, 0x1800)],
        )]);
        let mut filter = BaselineFilter::new(baseline);
        // The DIV002 at 0x1800 was fixed; a new DIV001 appeared at 0x2000.
        let now = vec![finding(LintCode::Div001, 0x1000), finding(LintCode::Div001, 0x2000)];
        let left = filter.suppress("fac", now);
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].span.start, 0x2000);
        let stale = filter.stale();
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "DIV002");
        // Same pc in a different program is not covered.
        let other = filter.suppress("bitcount", vec![finding(LintCode::Div001, 0x1000)]);
        assert_eq!(other.len(), 1);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Baseline::parse("{").is_err());
        assert!(Baseline::parse("{\"schema\":\"nope\",\"entries\":[]}").is_err());
        assert!(Baseline::parse("{\"schema\":\"safedm-lint-baseline/1\"}").is_err());
        let bad_pc = format!("{{\"schema\":\"{SCHEMA}\",\"entries\":[{{\"program\":\"p\",\"rule\":\"DIV001\",\"pc\":\"zz\"}}]}}");
        assert!(Baseline::parse(&bad_pc).is_err());
    }
}
