//! Whole-program call graph over a lowered image.
//!
//! Functions are discovered from the program entry plus every call target:
//! direct `jal` displacements, and `jalr` call sites whose base register is
//! pinned down by the bounded constant-propagation resolution. Each function
//! body is the set of blocks reachable from its entry following
//! *intraprocedural* flow only — at a call site the walk follows the
//! abstract return edge (the fall-through block), never the callee entry, so
//! two functions keep disjoint bodies even when the [`Cfg`] links them with
//! call edges.
//!
//! Unresolved indirect calls are kept as explicit [`CallTarget::Unresolved`]
//! sites; downstream consumers (the interprocedural summaries in
//! [`crate::summary`]) treat them as clobbering everything, so resolution is
//! a precision feature, never a soundness requirement. Recursion is detected
//! by condensing the graph into strongly connected components (Tarjan);
//! [`CallGraph::sccs`] lists components callee-first, the order the
//! bottom-up summary computation wants.

use std::collections::BTreeSet;

use safedm_isa::{Inst, Reg};

use crate::cfg::{Cfg, DecodedProgram, Terminator};
use crate::dataflow::{const_transfer, ConstProp};

/// How the target of a call site was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallTarget {
    /// A `jal` with a static displacement to this address.
    Direct(u64),
    /// A `jalr` whose base register is a propagated constant at the site;
    /// the address includes the immediate with the low bit cleared.
    Resolved(u64),
    /// A `jalr` the bounded resolution could not pin down.
    Unresolved,
}

impl CallTarget {
    /// The target address, when the site is resolved.
    #[must_use]
    pub fn pc(&self) -> Option<u64> {
        match *self {
            CallTarget::Direct(pc) | CallTarget::Resolved(pc) => Some(pc),
            CallTarget::Unresolved => None,
        }
    }
}

/// One call instruction (a linking `jal` or `jalr`).
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Address of the call instruction.
    pub pc: u64,
    /// Slot index of the call instruction.
    pub slot: usize,
    /// Block ending in the call.
    pub block: usize,
    /// Index of the (first) function whose body contains the site, when the
    /// site lies inside a discovered function.
    pub caller: Option<usize>,
    /// Where the call goes.
    pub target: CallTarget,
    /// Index of the callee function, when the target is a discovered entry.
    pub callee: Option<usize>,
}

/// One discovered function: an entry point plus its intraprocedural body.
#[derive(Debug, Clone)]
pub struct Function {
    /// Entry address.
    pub entry: u64,
    /// Block holding the entry.
    pub entry_block: usize,
    /// Blocks reachable from the entry without entering callees.
    pub blocks: BTreeSet<usize>,
    /// Total instruction slots across the body.
    pub insts: usize,
    /// Indices into [`CallGraph::sites`] of the call sites in this body, in
    /// address order.
    pub sites: Vec<usize>,
    /// Whether a `ret` is reachable (the function can return to its caller).
    pub returns: bool,
    /// Whether the body contains flow the walk cannot follow — an indirect
    /// jump that is not a `ret` and not a linking call.
    pub irregular: bool,
    /// Whether the function can call itself, directly or through a cycle.
    pub recursive: bool,
    /// Index of the function's strongly connected component in
    /// [`CallGraph::sccs`].
    pub scc: usize,
}

/// Whole-program call graph: functions, call sites, and the callee-first
/// component order used by bottom-up interprocedural analyses.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Discovered functions, in entry-address order.
    pub functions: Vec<Function>,
    /// All call sites, in address order.
    pub sites: Vec<CallSite>,
    /// Strongly connected components of the function-level graph, listed
    /// callee-first (every cross-component call goes from a later component
    /// to an earlier one).
    pub sccs: Vec<Vec<usize>>,
}

/// Classification of a block's terminating instruction for the function walk.
enum BlockExit {
    /// A linking `jal`/`jalr`: flow continues at the fall-through slot.
    Call { slot: usize, target: CallTarget },
    /// `jalr x0, ra`: the function returns.
    Ret,
    /// A non-`ret`, non-linking indirect jump the walk cannot follow.
    Irregular,
    /// Ordinary flow: follow the CFG successors.
    Plain,
}

fn classify_exit(prog: &DecodedProgram, cfg: &Cfg, constprop: &ConstProp, bid: usize) -> BlockExit {
    let b = &cfg.blocks[bid];
    let last = b.end - 1;
    match prog.slots[last].inst {
        Some(Inst::Jal { rd, offset }) if !rd.is_zero() => BlockExit::Call {
            slot: last,
            target: CallTarget::Direct(prog.slots[last].pc.wrapping_add(offset as u64)),
        },
        Some(Inst::Jalr { rd, rs1, offset }) if !rd.is_zero() => {
            // Bounded resolution: walk the block's constants up to the call
            // and read the base register.
            let mut state = constprop.block_in[bid];
            for i in b.start..last {
                if let Some(inst) = prog.slots[i].inst {
                    const_transfer(&mut state, prog.slots[i].pc, &inst);
                }
            }
            let base = if rs1.is_zero() { Some(0) } else { state[rs1.index() as usize].as_const() };
            let target = match base {
                Some(v) => CallTarget::Resolved(v.wrapping_add(offset as u64) & !1),
                None => CallTarget::Unresolved,
            };
            BlockExit::Call { slot: last, target }
        }
        Some(Inst::Jalr { rd, rs1, .. }) if rd.is_zero() && rs1 == Reg::RA => BlockExit::Ret,
        _ if b.term == Terminator::IndirectJump => BlockExit::Irregular,
        _ => BlockExit::Plain,
    }
}

impl CallGraph {
    /// Builds the call graph for a decoded program, resolving indirect call
    /// sites through the supplied constant-propagation solution.
    #[must_use]
    pub fn build(prog: &DecodedProgram, cfg: &Cfg, constprop: &ConstProp) -> CallGraph {
        if cfg.blocks.is_empty() {
            return CallGraph { functions: vec![], sites: vec![], sccs: vec![] };
        }
        let mut block_of = vec![0usize; prog.slots.len()];
        for b in &cfg.blocks {
            for s in block_of.iter_mut().take(b.end).skip(b.start) {
                *s = b.id;
            }
        }

        // --- entries: program entry plus every resolved call target --------
        let mut entries: BTreeSet<u64> = BTreeSet::new();
        if prog.index_of(prog.entry).is_some() {
            entries.insert(prog.entry);
        }
        for bid in 0..cfg.blocks.len() {
            if let BlockExit::Call { target, .. } = classify_exit(prog, cfg, constprop, bid) {
                if let Some(pc) = target.pc() {
                    if prog.index_of(pc).is_some() {
                        entries.insert(pc);
                    }
                }
            }
        }

        // --- bodies: intraprocedural reachability from each entry -----------
        let mut functions: Vec<Function> = Vec::with_capacity(entries.len());
        for &entry in &entries {
            let entry_block = block_of[prog.index_of(entry).expect("entry indexed above")];
            let mut blocks = BTreeSet::new();
            let mut returns = false;
            let mut irregular = false;
            let mut work = vec![entry_block];
            while let Some(bid) = work.pop() {
                if !blocks.insert(bid) {
                    continue;
                }
                match classify_exit(prog, cfg, constprop, bid) {
                    BlockExit::Call { .. } => {
                        // Follow the abstract return edge only.
                        let fall = cfg.blocks[bid].end;
                        if fall < prog.slots.len() {
                            work.push(block_of[fall]);
                        }
                    }
                    BlockExit::Ret => returns = true,
                    BlockExit::Irregular => irregular = true,
                    BlockExit::Plain => work.extend(cfg.blocks[bid].succs.iter().copied()),
                }
            }
            let insts = blocks.iter().map(|&b| cfg.blocks[b].len()).sum();
            functions.push(Function {
                entry,
                entry_block,
                blocks,
                insts,
                sites: vec![],
                returns,
                irregular,
                recursive: false,
                scc: 0,
            });
        }

        // --- sites ----------------------------------------------------------
        let entry_index =
            |pc: u64| functions.iter().position(|f| f.entry == pc && prog.index_of(pc).is_some());
        let mut sites: Vec<CallSite> = Vec::new();
        for bid in 0..cfg.blocks.len() {
            if let BlockExit::Call { slot, target } = classify_exit(prog, cfg, constprop, bid) {
                let caller = functions.iter().position(|f| f.blocks.contains(&bid));
                let callee = target.pc().and_then(entry_index);
                sites.push(CallSite {
                    pc: prog.slots[slot].pc,
                    slot,
                    block: bid,
                    caller,
                    target,
                    callee,
                });
            }
        }
        sites.sort_by_key(|s| s.pc);
        for (i, s) in sites.iter().enumerate() {
            if let Some(f) = s.caller {
                functions[f].sites.push(i);
            }
        }

        // --- SCC condensation (iterative Tarjan), callee-first --------------
        let sccs = tarjan_sccs(&functions, &sites);
        for (ci, comp) in sccs.iter().enumerate() {
            let cyclic = comp.len() > 1
                || sites.iter().any(|s| s.caller == Some(comp[0]) && s.callee == Some(comp[0]));
            for &f in comp {
                functions[f].scc = ci;
                functions[f].recursive = cyclic;
            }
        }

        CallGraph { functions, sites, sccs }
    }

    /// Index of the function entered at `pc`, when one exists.
    #[must_use]
    pub fn function_at(&self, pc: u64) -> Option<usize> {
        self.functions.iter().position(|f| f.entry == pc)
    }

    /// The call site at slot index `slot`, when one exists.
    #[must_use]
    pub fn site_at_slot(&self, slot: usize) -> Option<&CallSite> {
        self.sites.iter().find(|s| s.slot == slot)
    }

    /// Number of unresolved indirect call sites.
    #[must_use]
    pub fn unresolved(&self) -> usize {
        self.sites.iter().filter(|s| s.target == CallTarget::Unresolved).count()
    }

    /// Deterministic multi-line rendering used by reports and goldens.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "callgraph: {} functions, {} call sites, {} unresolved",
            self.functions.len(),
            self.sites.len(),
            self.unresolved()
        );
        for (i, f) in self.functions.iter().enumerate() {
            let _ = writeln!(
                out,
                "fn f{i} @{:#x}: blocks={} insts={} returns={} recursive={}{}",
                f.entry,
                f.blocks.len(),
                f.insts,
                f.returns,
                f.recursive,
                if f.irregular { " irregular" } else { "" }
            );
            for &si in &f.sites {
                let s = &self.sites[si];
                let how = match s.target {
                    CallTarget::Direct(_) => "direct",
                    CallTarget::Resolved(_) => "resolved",
                    CallTarget::Unresolved => "unresolved",
                };
                match (s.target.pc(), s.callee) {
                    (Some(pc), Some(c)) => {
                        let _ = writeln!(out, "  call @{:#x} -> f{c} @{pc:#x} [{how}]", s.pc);
                    }
                    (Some(pc), None) => {
                        let _ = writeln!(out, "  call @{:#x} -> {pc:#x} (no body) [{how}]", s.pc);
                    }
                    (None, _) => {
                        let _ = writeln!(out, "  call @{:#x} -> ? [{how}]", s.pc);
                    }
                }
            }
        }
        out
    }
}

/// Iterative Tarjan SCC over the function-level graph. Components come out
/// in pop order, which for Tarjan is callee-first (reverse topological over
/// the condensation).
fn tarjan_sccs(functions: &[Function], sites: &[CallSite]) -> Vec<Vec<usize>> {
    let n = functions.len();
    let succs: Vec<Vec<usize>> = (0..n)
        .map(|f| {
            let mut out: Vec<usize> =
                functions[f].sites.iter().filter_map(|&si| sites[si].callee).collect();
            out.sort_unstable();
            out.dedup();
            out
        })
        .collect();

    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // Explicit DFS frame: (node, next successor position).
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if let Some(&w) = succs[v].get(*pos) {
                *pos += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_asm::Asm;
    use safedm_isa::Reg;

    fn graph(f: impl FnOnce(&mut Asm)) -> (DecodedProgram, Cfg, CallGraph) {
        let mut a = Asm::new();
        f(&mut a);
        let p = DecodedProgram::from_program(&a.link(0x8000_0000).unwrap());
        let c = Cfg::build(&p);
        let cp = ConstProp::compute(&p, &c);
        let g = CallGraph::build(&p, &c, &cp);
        (p, c, g)
    }

    #[test]
    fn direct_call_splits_two_functions() {
        let (_, _, g) = graph(|a| {
            let f = a.new_label("f");
            a.call(f);
            a.ebreak();
            a.bind(f).unwrap();
            a.addi(Reg::A0, Reg::A0, 1);
            a.ret();
        });
        assert_eq!(g.functions.len(), 2, "{}", g.render());
        assert_eq!(g.sites.len(), 1);
        let site = &g.sites[0];
        assert!(matches!(site.target, CallTarget::Direct(_)));
        assert_eq!(site.caller, Some(0));
        assert_eq!(site.callee, Some(1));
        // Bodies are disjoint: the caller never absorbs the callee's blocks.
        assert!(g.functions[0].blocks.is_disjoint(&g.functions[1].blocks));
        assert!(g.functions[1].returns);
        assert!(!g.functions[0].recursive && !g.functions[1].recursive);
        // Callee-first component order.
        assert_eq!(g.sccs.len(), 2);
        assert_eq!(g.sccs[0], vec![1]);
    }

    #[test]
    fn resolved_indirect_call_finds_the_callee() {
        let (_, _, g) = graph(|a| {
            let f = a.new_label("f");
            a.la(Reg::T0, f);
            a.jalr(Reg::RA, Reg::T0, 0);
            a.ebreak();
            a.bind(f).unwrap();
            a.ret();
        });
        assert_eq!(g.functions.len(), 2, "{}", g.render());
        let site = &g.sites[0];
        assert!(matches!(site.target, CallTarget::Resolved(_)), "{site:?}");
        assert!(site.callee.is_some());
        assert_eq!(g.unresolved(), 0);
    }

    #[test]
    fn unresolved_indirect_call_is_conservative() {
        let (_, _, g) = graph(|a| {
            // The base register comes out of memory: not a constant.
            a.ld(Reg::T0, 0, Reg::SP);
            a.jalr(Reg::RA, Reg::T0, 0);
            a.ebreak();
        });
        assert_eq!(g.unresolved(), 1, "{}", g.render());
        assert_eq!(g.sites[0].callee, None);
        // The caller still flows past the call to the ebreak.
        assert_eq!(g.functions.len(), 1);
        assert!(g.functions[0].blocks.len() >= 2);
    }

    #[test]
    fn direct_recursion_is_flagged() {
        let (_, _, g) = graph(|a| {
            let f = a.new_label("f");
            a.call(f);
            a.ebreak();
            a.bind(f).unwrap();
            a.addi(Reg::A0, Reg::A0, -1);
            a.call(f); // self call
            a.ret();
        });
        let fi = g.functions.iter().position(|f| f.recursive).expect("recursive fn");
        assert_ne!(g.functions[fi].entry, 0x8000_0000);
        // The entry function is not recursive.
        let entry = g.function_at(0x8000_0000).unwrap();
        assert!(!g.functions[entry].recursive);
    }

    #[test]
    fn mutual_recursion_lands_in_one_scc() {
        let (_, _, g) = graph(|a| {
            let f = a.new_label("f");
            let h = a.new_label("h");
            a.call(f);
            a.ebreak();
            a.bind(f).unwrap();
            a.call(h);
            a.ret();
            a.bind(h).unwrap();
            a.call(f);
            a.ret();
        });
        assert_eq!(g.functions.len(), 3, "{}", g.render());
        let cyclic: Vec<&Function> = g.functions.iter().filter(|f| f.recursive).collect();
        assert_eq!(cyclic.len(), 2);
        assert_eq!(cyclic[0].scc, cyclic[1].scc);
    }

    #[test]
    fn render_is_stable_and_names_sites() {
        let (_, _, g) = graph(|a| {
            let f = a.new_label("f");
            a.call(f);
            a.ebreak();
            a.bind(f).unwrap();
            a.ret();
        });
        let text = g.render();
        assert!(text.starts_with("callgraph: 2 functions, 1 call sites, 0 unresolved"), "{text}");
        assert!(text.contains("[direct]"), "{text}");
        assert_eq!(text, g.render());
    }
}
