//! Decoded-program representation, control-flow graph construction,
//! dominators and natural-loop detection.
//!
//! The CFG is built over the **linked text section** of a
//! [`Program`](safedm_asm::Program): every 32-bit word is decoded with
//! [`safedm_isa::decode`] and split into basic blocks at branch targets and
//! after control-flow instructions. Calls (`jal` with a link register) are
//! modelled with both a *target* edge and an abstract *return* edge to the
//! fall-through instruction, so loops inside and around callees stay visible
//! without interprocedural analysis. Indirect jumps (`jalr` other than `ret`)
//! conservatively end their block with no static successors.

use std::collections::BTreeSet;

use safedm_asm::Program;
use safedm_isa::{decode, Inst, INST_BYTES};

/// One decoded instruction slot of the text section.
#[derive(Debug, Clone, Copy)]
pub struct Slot {
    /// Address of the instruction.
    pub pc: u64,
    /// Raw 32-bit encoding as fetched.
    pub raw: u32,
    /// Decoded form, or `None` when the word does not decode (data embedded
    /// in the text section, or a corrupt image).
    pub inst: Option<Inst>,
}

/// The text section decoded into addressable instruction slots.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    /// Base address of the text section.
    pub text_base: u64,
    /// Program entry point.
    pub entry: u64,
    /// One slot per 32-bit word, in address order.
    pub slots: Vec<Slot>,
}

impl DecodedProgram {
    /// Decodes the text section of a linked program.
    #[must_use]
    pub fn from_program(prog: &Program) -> DecodedProgram {
        let slots =
            prog.words().map(|(pc, raw)| Slot { pc, raw, inst: decode(raw).ok() }).collect();
        DecodedProgram { text_base: prog.text_base, entry: prog.entry, slots }
    }

    /// Index of the slot holding `pc`, when `pc` is a word-aligned address
    /// inside the text section.
    #[must_use]
    pub fn index_of(&self, pc: u64) -> Option<usize> {
        if pc < self.text_base || !(pc - self.text_base).is_multiple_of(INST_BYTES) {
            return None;
        }
        let idx = ((pc - self.text_base) / INST_BYTES) as usize;
        (idx < self.slots.len()).then_some(idx)
    }

    /// Address of slot `idx`.
    #[must_use]
    pub fn pc_of(&self, idx: usize) -> u64 {
        self.text_base + (idx as u64) * INST_BYTES
    }
}

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Execution continues into the next block.
    FallThrough,
    /// Conditional branch: taken edge plus fall-through edge.
    Branch,
    /// Unconditional direct jump (`jal`); a linking jump also gets an
    /// abstract return edge to its fall-through.
    Jump,
    /// Indirect jump (`jalr`). Indirect targets are not resolved statically:
    /// a *linking* `jalr` (an indirect call) gets an abstract return edge to
    /// its fall-through, while `ret` and other non-linking indirect jumps
    /// have no successors (except any abstract return edge already placed at
    /// the matching call site).
    IndirectJump,
    /// `ecall`/`ebreak` (program exit on this platform) or an undecodable
    /// word.
    Halt,
}

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Index of this block in [`Cfg::blocks`].
    pub id: usize,
    /// First slot index (inclusive).
    pub start: usize,
    /// One past the last slot index.
    pub end: usize,
    /// How the block ends.
    pub term: Terminator,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

impl BasicBlock {
    /// Number of instruction slots in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the block holds no slots (never true for constructed CFGs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A natural loop discovered from a back edge.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Block id of the loop header (the back-edge target, which dominates
    /// every block of the loop).
    pub header: usize,
    /// Ids of the blocks whose back edges close this loop.
    pub latches: Vec<usize>,
    /// All block ids in the loop body, header included.
    pub blocks: BTreeSet<usize>,
    /// Total instruction slots across the body.
    pub insts: usize,
}

/// Control-flow graph over a [`DecodedProgram`].
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in address order.
    pub blocks: Vec<BasicBlock>,
    /// Block id containing the program entry point, when the entry lies in
    /// the text section.
    pub entry_block: Option<usize>,
    /// Natural loops, innermost-last, discovered from dominator back edges.
    pub loops: Vec<NaturalLoop>,
    /// Immediate dominator per block (`idom[entry] == entry`;
    /// `usize::MAX` marks blocks unreachable from the entry).
    pub idom: Vec<usize>,
}

/// Direct control-flow targets of the instruction at `pc`, as slot-relative
/// addresses. Returns `(targets, falls_through)`.
///
/// Same-register branches are resolved statically: `beq x, x` always takes
/// and `bne x, x` never does, so layout filler placed behind a canonicalised
/// unconditional transfer is recognised as unreachable rather than growing
/// phantom paths through loop bodies.
fn flow_targets(pc: u64, inst: &Inst) -> (Vec<u64>, bool) {
    use safedm_isa::BranchKind;
    match *inst {
        Inst::Jal { rd, offset } => {
            let target = pc.wrapping_add(offset as u64);
            // A linking jump is a call: model the callee's eventual return
            // with an abstract fall-through edge.
            (vec![target], !rd.is_zero())
        }
        Inst::Branch { kind, rs1, rs2, offset } if rs1 == rs2 => {
            match kind {
                // `x == x`, `x >= x`: always taken — no fall-through edge.
                BranchKind::Eq | BranchKind::Ge | BranchKind::Geu => {
                    (vec![pc.wrapping_add(offset as u64)], false)
                }
                // `x != x`, `x < x`: never taken — fall-through only.
                BranchKind::Ne | BranchKind::Lt | BranchKind::Ltu => (vec![], true),
            }
        }
        Inst::Branch { offset, .. } => (vec![pc.wrapping_add(offset as u64)], true),
        // A linking indirect jump is an indirect call: like `jal`, model the
        // callee's eventual return with an abstract fall-through edge. `ret`
        // and other non-linking indirect jumps have no static successors.
        Inst::Jalr { rd, .. } => (vec![], !rd.is_zero()),
        Inst::Ecall | Inst::Ebreak => (vec![], false),
        _ => (vec![], true),
    }
}

impl Cfg {
    /// Builds the CFG, dominator tree and natural loops for a decoded
    /// program.
    #[must_use]
    pub fn build(prog: &DecodedProgram) -> Cfg {
        if prog.slots.is_empty() {
            return Cfg { blocks: vec![], entry_block: None, loops: vec![], idom: vec![] };
        }
        let n = prog.slots.len();

        // --- leaders -----------------------------------------------------
        let mut leader = vec![false; n];
        leader[0] = true;
        if let Some(e) = prog.index_of(prog.entry) {
            leader[e] = true;
        }
        for (i, slot) in prog.slots.iter().enumerate() {
            let Some(inst) = slot.inst else {
                // Undecodable word: traps, so the next slot starts fresh.
                if i + 1 < n {
                    leader[i + 1] = true;
                }
                continue;
            };
            if inst.is_control_flow() || matches!(inst, Inst::Ecall | Inst::Ebreak) {
                if i + 1 < n {
                    leader[i + 1] = true;
                }
                let (targets, _) = flow_targets(slot.pc, &inst);
                for t in targets {
                    if let Some(ti) = prog.index_of(t) {
                        leader[ti] = true;
                    }
                }
            }
        }

        // --- blocks ------------------------------------------------------
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for i in 0..n {
            if i + 1 == n || leader[i + 1] {
                let id = blocks.len();
                let term = match prog.slots[i].inst {
                    None | Some(Inst::Ecall | Inst::Ebreak) => Terminator::Halt,
                    Some(Inst::Branch { .. }) => Terminator::Branch,
                    Some(Inst::Jal { .. }) => Terminator::Jump,
                    Some(Inst::Jalr { .. }) => Terminator::IndirectJump,
                    Some(_) => Terminator::FallThrough,
                };
                blocks.push(BasicBlock {
                    id,
                    start,
                    end: i + 1,
                    term,
                    succs: vec![],
                    preds: vec![],
                });
                for b in &mut block_of[start..=i] {
                    *b = id;
                }
                start = i + 1;
            }
        }

        // --- edges -------------------------------------------------------
        for bid in 0..blocks.len() {
            let last = blocks[bid].end - 1;
            let slot = prog.slots[last];
            let mut succs: Vec<usize> = Vec::new();
            if let Some(inst) = slot.inst {
                let (targets, falls) = flow_targets(slot.pc, &inst);
                for t in targets {
                    if let Some(ti) = prog.index_of(t) {
                        succs.push(block_of[ti]);
                    }
                }
                if falls && last + 1 < n {
                    succs.push(block_of[last + 1]);
                }
            }
            succs.dedup();
            for &s in &succs {
                blocks[s].preds.push(bid);
            }
            blocks[bid].succs = succs;
        }

        let entry_block = prog.index_of(prog.entry).map(|i| block_of[i]);
        let idom = compute_idom(&blocks, entry_block);
        let loops = find_loops(&blocks, entry_block, &idom);
        Cfg { blocks, entry_block, loops, idom }
    }

    /// The block containing slot index `idx`, when any.
    #[must_use]
    pub fn block_of_slot(&self, idx: usize) -> Option<usize> {
        self.blocks.iter().find(|b| b.start <= idx && idx < b.end).map(|b| b.id)
    }

    /// Whether block `id` is reachable from the program entry.
    #[must_use]
    pub fn is_reachable(&self, id: usize) -> bool {
        Some(id) == self.entry_block || self.idom.get(id).is_some_and(|&d| d != usize::MAX)
    }

    /// Whether block `a` dominates block `b` (reflexive; false when either
    /// block is unreachable from the entry).
    #[must_use]
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut x = b;
        loop {
            if x == a {
                return true;
            }
            let d = self.idom[x];
            if d == x || d == usize::MAX {
                return false;
            }
            x = d;
        }
    }
}

/// Iterative dominator computation (Cooper–Harvey–Kennedy) over the blocks
/// reachable from the entry. `idom[entry] == entry`; unreachable blocks keep
/// `usize::MAX`.
fn compute_idom(blocks: &[BasicBlock], entry_block: Option<usize>) -> Vec<usize> {
    let n = blocks.len();
    let Some(entry) = entry_block else { return vec![usize::MAX; n] };

    // Reverse postorder over blocks reachable from the entry.
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut stack: Vec<(usize, usize)> = vec![(entry, 0)];
    state[entry] = 1;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        if *next < blocks[b].succs.len() {
            let s = blocks[b].succs[*next];
            *next += 1;
            if state[s] == 0 {
                state[s] = 1;
                stack.push((s, 0));
            }
        } else {
            state[b] = 2;
            order.push(b);
            stack.pop();
        }
    }
    order.reverse();

    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in order.iter().enumerate() {
        rpo_index[b] = i;
    }

    let mut idom = vec![usize::MAX; n];
    idom[entry] = entry;
    let intersect = |idom: &[usize], mut a: usize, mut b: usize| -> usize {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a];
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b];
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().skip(1) {
            let mut new_idom = usize::MAX;
            for &p in &blocks[b].preds {
                if idom[p] == usize::MAX {
                    continue;
                }
                new_idom = if new_idom == usize::MAX { p } else { intersect(&idom, new_idom, p) };
            }
            if new_idom != usize::MAX && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

/// Back-edge discovery and natural-loop body collection from a precomputed
/// dominator tree. Blocks unreachable from the entry can never execute, so
/// they are excluded from loop bodies even when a fall-through predecessor
/// edge would reach them backwards from a latch (layout filler sits behind
/// always-taken transfers exactly like this).
fn find_loops(
    blocks: &[BasicBlock],
    entry_block: Option<usize>,
    idom: &[usize],
) -> Vec<NaturalLoop> {
    let Some(entry) = entry_block else { return vec![] };
    let n = blocks.len();

    let dominates = |a: usize, b: usize| -> bool {
        let mut x = b;
        loop {
            if x == a {
                return true;
            }
            if x == entry || idom[x] == usize::MAX || idom[x] == x {
                return x == a;
            }
            x = idom[x];
        }
    };

    // Back edges and loop bodies, grouped by header.
    let mut loops: Vec<NaturalLoop> = Vec::new();
    for b in 0..n {
        if idom[b] == usize::MAX && b != entry {
            continue; // unreachable
        }
        for &s in &blocks[b].succs {
            if !dominates(s, b) {
                continue;
            }
            let header = s;
            // Collect the body: everything reaching the latch backwards
            // without passing through the header.
            let mut body: BTreeSet<usize> = BTreeSet::new();
            body.insert(header);
            let mut work = vec![b];
            while let Some(x) = work.pop() {
                if idom[x] == usize::MAX && x != entry {
                    continue; // unreachable: cannot execute, keep it out
                }
                if body.insert(x) {
                    work.extend(blocks[x].preds.iter().copied());
                }
            }
            if let Some(l) = loops.iter_mut().find(|l| l.header == header) {
                l.latches.push(b);
                l.blocks.extend(body);
                l.insts = l.blocks.iter().map(|&x| blocks[x].len()).sum();
            } else {
                let insts = body.iter().map(|&x| blocks[x].len()).sum();
                loops.push(NaturalLoop { header, latches: vec![b], blocks: body, insts });
            }
        }
    }
    loops.sort_by_key(|l| blocks[l.header].start);
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_asm::Asm;
    use safedm_isa::Reg;

    fn build(f: impl FnOnce(&mut Asm)) -> DecodedProgram {
        let mut a = Asm::new();
        f(&mut a);
        DecodedProgram::from_program(&a.link(0x8000_0000).unwrap())
    }

    #[test]
    fn straight_line_is_one_block() {
        let p = build(|a| {
            a.nop();
            a.nop();
            a.ebreak();
        });
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].term, Terminator::Halt);
        assert!(cfg.loops.is_empty());
    }

    #[test]
    fn self_loop_is_detected() {
        let p = build(|a| {
            a.nop();
            let l = a.new_label("l");
            a.bind(l).unwrap();
            a.j(l);
        });
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.loops.len(), 1);
        let lp = &cfg.loops[0];
        assert_eq!(lp.blocks.len(), 1);
        assert_eq!(lp.insts, 1);
    }

    #[test]
    fn counted_loop_blocks_and_edges() {
        let p = build(|a| {
            a.li(Reg::T0, 4);
            let l = a.new_label("l");
            a.bind(l).unwrap();
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, l);
            a.ebreak();
        });
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.loops.len(), 1);
        let lp = &cfg.loops[0];
        assert_eq!(lp.insts, 2);
        // Every edge target is a decoded slot boundary.
        for b in &cfg.blocks {
            for &s in &b.succs {
                assert!(p.index_of(p.pc_of(cfg.blocks[s].start)).is_some());
            }
        }
    }

    #[test]
    fn call_gets_return_edge() {
        let p = build(|a| {
            let f = a.new_label("f");
            a.call(f);
            a.ebreak();
            a.bind(f).unwrap();
            a.ret();
        });
        let cfg = Cfg::build(&p);
        let entry = cfg.entry_block.unwrap();
        // The call block has two successors: the callee and the abstract
        // return to the ebreak block.
        assert_eq!(cfg.blocks[entry].succs.len(), 2);
        // `ret` (jalr) has no static successors.
        let ret_block = cfg.blocks.iter().find(|b| b.term == Terminator::IndirectJump).unwrap();
        assert!(ret_block.succs.is_empty());
    }

    #[test]
    fn undecodable_word_halts_block() {
        let mut a = Asm::new();
        a.nop();
        a.word(0xffff_ffff);
        a.nop();
        let p = DecodedProgram::from_program(&a.link(0x8000_0000).unwrap());
        let cfg = Cfg::build(&p);
        assert!(cfg.blocks.iter().any(|b| b.term == Terminator::Halt));
    }

    #[test]
    fn multiple_back_edges_merge_into_one_loop() {
        // Two distinct latch blocks close on the same header: a conditional
        // `bnez` latch and an unconditional `j` latch. Both back edges must
        // fold into a single natural loop with both latches recorded.
        let p = build(|a| {
            a.li(Reg::T0, 8);
            let head = a.new_label("head");
            let done = a.new_label("done");
            a.bind(head).unwrap();
            a.addi(Reg::T0, Reg::T0, -1);
            a.beqz(Reg::T0, done);
            a.bnez(Reg::T1, head); // latch 1
            a.nop();
            a.j(head); // latch 2
            a.bind(done).unwrap();
            a.ebreak();
        });
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.loops.len(), 1, "{cfg:?}");
        let lp = &cfg.loops[0];
        assert_eq!(lp.latches.len(), 2);
        // The header dominates every latch, and each latch block is in the body.
        for &l in &lp.latches {
            assert!(lp.blocks.contains(&l));
        }
        assert!(lp.blocks.contains(&lp.header));
        assert_eq!(lp.insts, lp.blocks.iter().map(|&b| cfg.blocks[b].len()).sum::<usize>());
    }

    #[test]
    fn irreducible_cycle_yields_no_natural_loop() {
        // Classic irreducible shape: the entry branches into *both* nodes of
        // a two-node cycle, so neither dominates the other and neither edge
        // is a back edge. Loop discovery must terminate and report no
        // natural loops — the prover then (soundly) treats the region as
        // irregular instead of certifying it.
        let p = build(|a| {
            let a_lbl = a.new_label("a");
            let b_lbl = a.new_label("b");
            a.bnez(Reg::A0, b_lbl); // entry → {a, b}
            a.bind(a_lbl).unwrap();
            a.nop();
            a.j(b_lbl); // a → b
            a.bind(b_lbl).unwrap();
            a.nop();
            a.bnez(Reg::A1, a_lbl); // b → a: closes the cycle
            a.ebreak();
        });
        let cfg = Cfg::build(&p);
        assert!(cfg.loops.is_empty(), "{:?}", cfg.loops);
        // The cycle itself still exists in the edge set.
        let has_cycle_edge = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|&s| s < i && cfg.blocks[s].succs.contains(&i)));
        assert!(has_cycle_edge);
    }

    #[test]
    fn jump_into_loop_middle_keeps_dominated_back_edge() {
        // The entry jumps straight into the middle block of a rotated loop.
        // The middle block then dominates the top block, so the
        // top → middle edge is still a back edge: exactly one natural loop,
        // headed at the *middle* block.
        let p = build(|a| {
            let top = a.new_label("top");
            let mid = a.new_label("mid");
            a.j(mid);
            a.bind(top).unwrap();
            a.nop();
            a.bind(mid).unwrap();
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, top);
            a.ebreak();
        });
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.loops.len(), 1, "{:?}", cfg.loops);
        let lp = &cfg.loops[0];
        let header_pc = p.pc_of(cfg.blocks[lp.header].start);
        assert_eq!(header_pc, 0x8000_0008, "header must be the jumped-into mid block");
        assert_eq!(lp.blocks.len(), 2);
    }

    #[test]
    fn irreducible_cycle_with_inner_natural_loop() {
        // An inner self-loop nested inside an irreducible outer cycle: the
        // outer cycle is skipped, the inner (reducible) loop is still found.
        let p = build(|a| {
            let a_lbl = a.new_label("a");
            let b_lbl = a.new_label("b");
            let spin = a.new_label("spin");
            a.bnez(Reg::A0, b_lbl);
            a.bind(a_lbl).unwrap();
            a.bind(spin).unwrap();
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, spin); // inner reducible self-loop
            a.j(b_lbl);
            a.bind(b_lbl).unwrap();
            a.nop();
            a.bnez(Reg::A1, a_lbl);
            a.ebreak();
        });
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.loops.len(), 1, "{:?}", cfg.loops);
        let lp = &cfg.loops[0];
        assert_eq!(lp.blocks.len(), 1);
        assert_eq!(lp.insts, 2);
    }
}
