//! Classic forward/backward dataflow passes over the [`Cfg`], plus the
//! loop-traffic classification that feeds the diversity lints.
//!
//! All passes use 32-bit register masks (bit *i* = `x{i}`); `x0` never
//! appears in a mask since it is architecturally constant.

use safedm_isa::{alu, branch_taken, Inst, Reg};

use crate::cfg::{Cfg, DecodedProgram, NaturalLoop};

/// Bit for a register in a 32-bit mask, with `x0` mapped to no bits.
///
/// Thin wrapper over [`Reg::bit`] — the mask convention is owned by
/// `safedm-isa` so the analyzer and the pipeline's hazard logic share one
/// definition of operand extraction.
#[must_use]
pub fn reg_bit(r: Reg) -> u32 {
    r.bit()
}

/// Mask of registers read by an instruction (see [`Inst::use_mask`]).
#[must_use]
pub fn use_mask(inst: &Inst) -> u32 {
    inst.use_mask()
}

/// Mask of registers written by an instruction (see [`Inst::def_mask`]).
#[must_use]
pub fn def_mask(inst: &Inst) -> u32 {
    inst.def_mask()
}

// ---------------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------------

/// Reaching-definitions solution: which instruction slots' register writes
/// may reach each basic block.
///
/// Definitions are identified by slot index; the bitsets are `u64` words.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    words: usize,
    /// Per-block set of slot indices whose defs reach the block entry.
    pub block_in: Vec<Vec<u64>>,
    /// Per-block set of slot indices whose defs reach the block exit.
    pub block_out: Vec<Vec<u64>>,
}

fn bit_get(set: &[u64], i: usize) -> bool {
    set[i / 64] & (1 << (i % 64)) != 0
}

fn bit_set(set: &mut [u64], i: usize) {
    set[i / 64] |= 1 << (i % 64);
}

impl ReachingDefs {
    /// Solves reaching definitions with the standard union/worklist scheme.
    #[must_use]
    pub fn compute(prog: &DecodedProgram, cfg: &Cfg) -> ReachingDefs {
        let n = prog.slots.len();
        let words = n.div_ceil(64);
        let nb = cfg.blocks.len();

        // gen/kill per block.
        let mut gen: Vec<Vec<u64>> = vec![vec![0; words]; nb];
        let mut kill: Vec<Vec<u64>> = vec![vec![0; words]; nb];
        // All defs of each register, for kill sets.
        let mut defs_of: [Vec<usize>; 32] = Default::default();
        for (i, slot) in prog.slots.iter().enumerate() {
            if let Some(inst) = slot.inst {
                if let Some(rd) = inst.rd() {
                    defs_of[rd.index() as usize].push(i);
                }
            }
        }
        for b in &cfg.blocks {
            for i in b.start..b.end {
                let Some(inst) = prog.slots[i].inst else { continue };
                let Some(rd) = inst.rd() else { continue };
                for &d in &defs_of[rd.index() as usize] {
                    if d != i {
                        bit_set(&mut kill[b.id], d);
                    }
                }
                // This def survives to the block end unless a later def of
                // the same register kills it; rebuild gen last-writer-wins.
                for &d in &defs_of[rd.index() as usize] {
                    if d >= b.start && d < b.end && d < i {
                        gen[b.id][d / 64] &= !(1 << (d % 64));
                    }
                }
                bit_set(&mut gen[b.id], i);
            }
        }

        let mut block_in = vec![vec![0u64; words]; nb];
        let mut block_out = vec![vec![0u64; words]; nb];
        let mut changed = true;
        while changed {
            changed = false;
            for b in &cfg.blocks {
                let mut inset = vec![0u64; words];
                for &p in &b.preds {
                    for (w, &v) in inset.iter_mut().zip(&block_out[p]) {
                        *w |= v;
                    }
                }
                let mut outset: Vec<u64> = inset
                    .iter()
                    .zip(&kill[b.id])
                    .zip(&gen[b.id])
                    .map(|((&i, &k), &g)| (i & !k) | g)
                    .collect();
                if inset != block_in[b.id] || outset != block_out[b.id] {
                    changed = true;
                    block_in[b.id] = std::mem::take(&mut inset);
                    block_out[b.id] = std::mem::take(&mut outset);
                }
            }
        }
        ReachingDefs { words, block_in, block_out }
    }

    /// Whether the definition made at slot `def` may reach the entry of
    /// `block`.
    #[must_use]
    pub fn reaches(&self, block: usize, def: usize) -> bool {
        debug_assert!(def / 64 < self.words);
        bit_get(&self.block_in[block], def)
    }
}

// ---------------------------------------------------------------------------
// Constant propagation
// ---------------------------------------------------------------------------

/// Abstract value of a register in the constant-propagation lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstVal {
    /// Not yet seen along any path (lattice top).
    Undef,
    /// Provably this value on every path.
    Const(u64),
    /// Different values on different paths, or input-dependent (bottom).
    Varies,
}

impl ConstVal {
    fn meet(self, other: ConstVal) -> ConstVal {
        match (self, other) {
            (ConstVal::Undef, x) | (x, ConstVal::Undef) => x,
            (ConstVal::Const(a), ConstVal::Const(b)) if a == b => ConstVal::Const(a),
            _ => ConstVal::Varies,
        }
    }

    /// The constant, when this value is one.
    #[must_use]
    pub fn as_const(self) -> Option<u64> {
        match self {
            ConstVal::Const(v) => Some(v),
            _ => None,
        }
    }
}

/// Per-register abstract state.
pub type ConstState = [ConstVal; 32];

/// Sparse conditional-free constant propagation over the CFG.
#[derive(Debug, Clone)]
pub struct ConstProp {
    /// Abstract register state at each block entry.
    pub block_in: Vec<ConstState>,
}

/// Applies one instruction to a constant-propagation state.
pub fn const_transfer(state: &mut ConstState, pc: u64, inst: &Inst) {
    let get = |state: &ConstState, r: Reg| -> ConstVal {
        if r.is_zero() {
            ConstVal::Const(0)
        } else {
            state[r.index() as usize]
        }
    };
    let val = match *inst {
        Inst::Lui { imm, .. } => ConstVal::Const(imm as u64),
        Inst::Auipc { imm, .. } => ConstVal::Const(pc.wrapping_add(imm as u64)),
        Inst::Jal { .. } | Inst::Jalr { .. } => ConstVal::Const(pc.wrapping_add(4)),
        Inst::OpImm { kind, rs1, imm, .. } => match get(state, rs1) {
            ConstVal::Const(a) => ConstVal::Const(alu(kind, a, imm as u64)),
            other => other,
        },
        Inst::Op { kind, rs1, rs2, .. } => match (get(state, rs1), get(state, rs2)) {
            (ConstVal::Const(a), ConstVal::Const(b)) => ConstVal::Const(alu(kind, a, b)),
            (ConstVal::Undef, _) | (_, ConstVal::Undef) => ConstVal::Undef,
            _ => ConstVal::Varies,
        },
        Inst::Load { .. } | Inst::Csr { .. } | Inst::CsrImm { .. } => ConstVal::Varies,
        Inst::Branch { .. } | Inst::Store { .. } | Inst::Fence | Inst::Ecall | Inst::Ebreak => {
            return
        }
    };
    if let Some(rd) = inst.rd() {
        state[rd.index() as usize] = val;
    }
}

impl ConstProp {
    /// Runs constant propagation to a fixpoint.
    #[must_use]
    pub fn compute(prog: &DecodedProgram, cfg: &Cfg) -> ConstProp {
        let nb = cfg.blocks.len();
        let mut block_in = vec![[ConstVal::Undef; 32]; nb];
        if let Some(e) = cfg.entry_block {
            // The platform resets registers to zero before jumping to the
            // entry point.
            block_in[e] = [ConstVal::Const(0); 32];
        }
        let mut changed = true;
        while changed {
            changed = false;
            for b in &cfg.blocks {
                let mut state = block_in[b.id];
                for i in b.start..b.end {
                    if let Some(inst) = prog.slots[i].inst {
                        const_transfer(&mut state, prog.slots[i].pc, &inst);
                    }
                }
                for &s in &b.succs {
                    let mut merged = block_in[s];
                    for (m, v) in merged.iter_mut().zip(state.iter()) {
                        *m = m.meet(*v);
                    }
                    if merged != block_in[s] {
                        block_in[s] = merged;
                        changed = true;
                    }
                }
            }
        }
        ConstProp { block_in }
    }

    /// Abstract state at the entry of `block`, restricted to predecessors
    /// outside `exclude` (used to see a loop's *pre-header* state without the
    /// back edge's contribution).
    #[must_use]
    pub fn entry_excluding(
        &self,
        prog: &DecodedProgram,
        cfg: &Cfg,
        block: usize,
        exclude: &std::collections::BTreeSet<usize>,
    ) -> ConstState {
        let mut merged = [ConstVal::Undef; 32];
        for &p in &cfg.blocks[block].preds {
            if exclude.contains(&p) {
                continue;
            }
            let mut state = self.block_in[p];
            for i in cfg.blocks[p].start..cfg.blocks[p].end {
                if let Some(inst) = prog.slots[i].inst {
                    const_transfer(&mut state, prog.slots[i].pc, &inst);
                }
            }
            for (m, v) in merged.iter_mut().zip(state.iter()) {
                *m = m.meet(*v);
            }
        }
        if cfg.entry_block == Some(block)
            && cfg.blocks[block].preds.iter().all(|p| exclude.contains(p))
        {
            merged = [ConstVal::Const(0); 32];
        }
        merged
    }
}

// ---------------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------------

/// Backward register-liveness solution.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live at each block entry.
    pub live_in: Vec<u32>,
    /// Registers live at each block exit.
    pub live_out: Vec<u32>,
}

impl Liveness {
    /// Solves liveness with the standard backward union scheme.
    #[must_use]
    pub fn compute(prog: &DecodedProgram, cfg: &Cfg) -> Liveness {
        let nb = cfg.blocks.len();
        let mut gen = vec![0u32; nb]; // upward-exposed uses
        let mut kill = vec![0u32; nb];
        for b in &cfg.blocks {
            for i in b.start..b.end {
                let Some(inst) = prog.slots[i].inst else { continue };
                gen[b.id] |= use_mask(&inst) & !kill[b.id];
                kill[b.id] |= def_mask(&inst);
            }
        }
        let mut live_in = vec![0u32; nb];
        let mut live_out = vec![0u32; nb];
        let mut changed = true;
        while changed {
            changed = false;
            for b in cfg.blocks.iter().rev() {
                let out = b.succs.iter().fold(0u32, |acc, &s| acc | live_in[s]);
                let inn = gen[b.id] | (out & !kill[b.id]);
                if out != live_out[b.id] || inn != live_in[b.id] {
                    live_out[b.id] = out;
                    live_in[b.id] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }
}

// ---------------------------------------------------------------------------
// Input taint
// ---------------------------------------------------------------------------

/// Forward taint analysis: which registers may hold *input-derived* data —
/// values read from memory or from a CSR (notably `mhartid`, the one
/// architectural value that differs between redundant cores).
#[derive(Debug, Clone)]
pub struct Taint {
    /// Tainted registers at each block entry.
    pub block_in: Vec<u32>,
    /// Tainted registers at each block exit.
    pub block_out: Vec<u32>,
}

/// Applies one instruction to a taint mask.
#[must_use]
pub fn taint_transfer(state: u32, inst: &Inst) -> u32 {
    let Some(rd) = inst.rd() else { return state };
    let bit = reg_bit(rd);
    match inst {
        Inst::Load { .. } | Inst::Csr { .. } | Inst::CsrImm { .. } => state | bit,
        // Link writes hold a PC, never input data.
        Inst::Jal { .. } | Inst::Jalr { .. } => state & !bit,
        _ => {
            if use_mask(inst) & state != 0 {
                state | bit
            } else {
                state & !bit
            }
        }
    }
}

impl Taint {
    /// Solves the taint equations to a fixpoint.
    #[must_use]
    pub fn compute(prog: &DecodedProgram, cfg: &Cfg) -> Taint {
        let nb = cfg.blocks.len();
        let mut block_in = vec![0u32; nb];
        let mut block_out = vec![0u32; nb];
        let mut changed = true;
        while changed {
            changed = false;
            for b in &cfg.blocks {
                let inn = b.preds.iter().fold(0u32, |acc, &p| acc | block_out[p]);
                let mut state = inn;
                for i in b.start..b.end {
                    if let Some(inst) = prog.slots[i].inst {
                        state = taint_transfer(state, &inst);
                    }
                }
                if inn != block_in[b.id] || state != block_out[b.id] {
                    block_in[b.id] = inn;
                    block_out[b.id] = state;
                    changed = true;
                }
            }
        }
        Taint { block_in, block_out }
    }
}

// ---------------------------------------------------------------------------
// Loop-traffic classification
// ---------------------------------------------------------------------------

/// Static facts about the register-port traffic of one natural loop,
/// combining the dataflow passes into the inputs the diversity lints need.
#[derive(Debug, Clone)]
pub struct LoopTraffic {
    /// Whether the loop body is a single deterministic instruction cycle
    /// (every block has exactly one in-loop successor), i.e. the
    /// per-iteration instruction stream is the same each time around.
    pub deterministic_body: bool,
    /// Instructions per iteration when the body is deterministic.
    pub period: Option<u64>,
    /// Registers written anywhere in the body.
    pub defined: u32,
    /// Registers read anywhere in the body.
    pub reads: u32,
    /// Written registers whose value may differ from one iteration to the
    /// next (loop-carried updates, loads, CSR reads).
    pub varying: u32,
    /// Whether the body contains a load.
    pub has_load: bool,
    /// Whether the body contains a store.
    pub has_store: bool,
    /// Whether the body reads a CSR.
    pub has_csr: bool,
    /// Whether any register read in the body may be input-derived (per the
    /// [`Taint`] pass).
    pub tainted_read: bool,
    /// Registers read in the body that are compile-time constants at the
    /// loop header (per [`ConstProp`]).
    pub const_reads: u32,
    /// Estimated trip count for simple counted loops, when derivable.
    pub trip_count: Option<u64>,
}

impl LoopTraffic {
    /// Classifies a natural loop using the given dataflow solutions.
    #[must_use]
    pub fn analyze(
        prog: &DecodedProgram,
        cfg: &Cfg,
        lp: &NaturalLoop,
        taint: &Taint,
        constprop: &ConstProp,
    ) -> LoopTraffic {
        let mut defined = 0u32;
        let mut reads = 0u32;
        let mut has_load = false;
        let mut has_store = false;
        let mut has_csr = false;
        let mut tainted_read = false;

        for &bid in &lp.blocks {
            let b = &cfg.blocks[bid];
            let mut taint_state = taint.block_in[bid];
            for i in b.start..b.end {
                let Some(inst) = prog.slots[i].inst else { continue };
                defined |= def_mask(&inst);
                reads |= use_mask(&inst);
                has_load |= inst.is_load();
                has_store |= inst.is_store();
                has_csr |= matches!(inst, Inst::Csr { .. } | Inst::CsrImm { .. });
                if use_mask(&inst) & taint_state != 0 {
                    tainted_read = true;
                }
                taint_state = taint_transfer(taint_state, &inst);
            }
        }

        // Deterministic body: every block has exactly one successor inside
        // the loop (the header's other successor exits).
        let deterministic_body = lp.blocks.iter().all(|&bid| {
            cfg.blocks[bid].succs.iter().filter(|s| lp.blocks.contains(s)).count() == 1
        });
        let period = deterministic_body.then_some(lp.insts as u64);

        // Iteration-invariant written registers: see [`invariant_mask`].
        let body_insts: Vec<Inst> = lp
            .blocks
            .iter()
            .flat_map(|&bid| {
                let b = &cfg.blocks[bid];
                (b.start..b.end).filter_map(|i| prog.slots[i].inst)
            })
            .collect();
        let invariant = invariant_mask(&body_insts, defined);
        let varying = defined & !invariant;

        let header_in = constprop.block_in[lp.header];
        let mut const_reads = 0u32;
        for r in 1..32u32 {
            if reads & (1 << r) != 0 && header_in[r as usize].as_const().is_some() {
                const_reads |= 1 << r;
            }
        }

        let trip_count = estimate_trip_count(prog, cfg, lp, constprop);

        LoopTraffic {
            deterministic_body,
            period,
            defined,
            reads,
            varying,
            has_load,
            has_store,
            has_csr,
            tainted_read,
            const_reads,
            trip_count,
        }
    }
}

/// Iteration-invariant written registers of a repeated instruction sequence:
/// pessimistic fixpoint — a register is invariant when every def of it in
/// `insts` is a pure ALU/PC computation over registers that are themselves
/// invariant or outside `defined` (never written in the sequence). Used both
/// for natural-loop bodies and for interprocedurally spliced bodies, where
/// `insts` is the exact committed stream of one iteration.
#[must_use]
pub fn invariant_mask(insts: &[Inst], defined: u32) -> u32 {
    let mut invariant = 0u32;
    loop {
        let mut grown = false;
        for r in 1..32u32 {
            let bit = 1 << r;
            if defined & bit == 0 || invariant & bit != 0 {
                continue;
            }
            let ok = insts.iter().filter(|inst| def_mask(inst) == bit).all(|inst| {
                let pure =
                    !matches!(inst, Inst::Load { .. } | Inst::Csr { .. } | Inst::CsrImm { .. });
                pure && use_mask(inst) & defined & !invariant == 0
            });
            if ok {
                invariant |= bit;
                grown = true;
            }
        }
        if !grown {
            break;
        }
    }
    invariant
}

/// Estimates the trip count of a simple counted loop: a latch branch whose
/// counter has exactly one in-loop def `addi counter, counter, step` and a
/// constant pre-header value, against a constant (or `x0`) bound.
fn estimate_trip_count(
    prog: &DecodedProgram,
    cfg: &Cfg,
    lp: &NaturalLoop,
    constprop: &ConstProp,
) -> Option<u64> {
    const CAP: u64 = 1 << 20;
    let &[latch] = lp.latches.as_slice() else { return None };
    let last = cfg.blocks[latch].end - 1;
    let Inst::Branch { kind, rs1, rs2, offset } = prog.slots[last].inst? else { return None };
    // The back edge must be the taken direction.
    let header_pc = prog.pc_of(cfg.blocks[lp.header].start);
    if prog.slots[last].pc.wrapping_add(offset as u64) != header_pc {
        return None;
    }

    // Exactly one in-loop def of the counter, of the form addi c, c, step.
    let find_step = |r: safedm_isa::Reg| -> Option<i64> {
        let mut step = None;
        for &bid in &lp.blocks {
            let b = &cfg.blocks[bid];
            for i in b.start..b.end {
                let inst = prog.slots[i].inst?;
                if inst.rd() == Some(r) {
                    match inst {
                        Inst::OpImm { kind: safedm_isa::AluKind::Add, rd, rs1, imm }
                            if rd == r && rs1 == r && step.is_none() =>
                        {
                            step = Some(imm);
                        }
                        _ => return None,
                    }
                }
            }
        }
        step
    };

    let pre = constprop.entry_excluding(prog, cfg, lp.header, &lp.blocks);
    let const_of = |r: safedm_isa::Reg| -> Option<u64> {
        if r.is_zero() {
            Some(0)
        } else {
            pre[r.index() as usize].as_const()
        }
    };

    // One operand is the counter, the other a loop-constant.
    let (counter, step, other) = match (find_step(rs1), find_step(rs2)) {
        (Some(s), None) => (rs1, s, const_of(rs2)?),
        (None, Some(s)) => (rs2, s, const_of(rs1)?),
        _ => return None,
    };
    let mut v = const_of(counter)?;

    for trips in 1..=CAP {
        v = v.wrapping_add(step as u64);
        let (a, b) = if counter == rs1 { (v, other) } else { (other, v) };
        if !branch_taken(kind, a, b) {
            return Some(trips);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_asm::Asm;
    use safedm_isa::Reg;

    fn build(f: impl FnOnce(&mut Asm)) -> (DecodedProgram, Cfg) {
        let mut a = Asm::new();
        f(&mut a);
        let p = DecodedProgram::from_program(&a.link(0x8000_0000).unwrap());
        let c = Cfg::build(&p);
        (p, c)
    }

    #[test]
    fn constprop_tracks_li_chains() {
        let (p, c) = build(|a| {
            a.li(Reg::T0, 40);
            a.addi(Reg::T1, Reg::T0, 2);
            a.ebreak();
        });
        let cp = ConstProp::compute(&p, &c);
        // Evaluate to the end of the single block.
        let mut state = cp.block_in[0];
        for s in &p.slots {
            if let Some(inst) = s.inst {
                const_transfer(&mut state, s.pc, &inst);
            }
        }
        assert_eq!(state[Reg::T1.index() as usize], ConstVal::Const(42));
    }

    #[test]
    fn taint_flows_from_loads_and_csrs() {
        let (p, c) = build(|a| {
            a.hartid(Reg::T0); // csr read -> tainted
            a.addi(Reg::T1, Reg::T0, 1); // propagates
            a.li(Reg::T2, 7); // clean
            a.ebreak();
        });
        let t = Taint::compute(&p, &c);
        let last = c.blocks.len() - 1;
        assert_ne!(t.block_out[last] & reg_bit(Reg::T0), 0);
        assert_ne!(t.block_out[last] & reg_bit(Reg::T1), 0);
        assert_eq!(t.block_out[last] & reg_bit(Reg::T2), 0);
    }

    #[test]
    fn liveness_sees_loop_carried_counter() {
        let (p, c) = build(|a| {
            a.li(Reg::T0, 4);
            let l = a.new_label("l");
            a.bind(l).unwrap();
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, l);
            a.ebreak();
        });
        let lv = Liveness::compute(&p, &c);
        let lp = &c.loops[0];
        assert_ne!(lv.live_in[lp.header] & reg_bit(Reg::T0), 0);
    }

    #[test]
    fn reaching_defs_cross_back_edge() {
        let (p, c) = build(|a| {
            a.li(Reg::T0, 4);
            let l = a.new_label("l");
            a.bind(l).unwrap();
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, l);
            a.ebreak();
        });
        let rd = ReachingDefs::compute(&p, &c);
        let lp = &c.loops[0];
        let header = &c.blocks[lp.header];
        // The in-loop addi def reaches the header back around the loop.
        let addi_slot = header.start;
        assert!(rd.reaches(lp.header, addi_slot));
    }

    #[test]
    fn counted_loop_classification() {
        let (p, c) = build(|a| {
            a.li(Reg::T0, 4);
            let l = a.new_label("l");
            a.bind(l).unwrap();
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, l);
            a.ebreak();
        });
        let taint = Taint::compute(&p, &c);
        let cp = ConstProp::compute(&p, &c);
        let t = LoopTraffic::analyze(&p, &c, &c.loops[0], &taint, &cp);
        assert!(t.deterministic_body);
        assert_eq!(t.period, Some(2));
        assert_ne!(t.varying & reg_bit(Reg::T0), 0, "counter is loop-carried");
        assert!(!t.has_load && !t.has_csr);
        assert!(!t.tainted_read);
        assert_eq!(t.trip_count, Some(4));
    }

    #[test]
    fn idle_loop_has_no_varying_regs() {
        let (p, c) = build(|a| {
            let l = a.new_label("l");
            a.bind(l).unwrap();
            a.nop();
            a.j(l);
        });
        let taint = Taint::compute(&p, &c);
        let cp = ConstProp::compute(&p, &c);
        let t = LoopTraffic::analyze(&p, &c, &c.loops[0], &taint, &cp);
        assert!(t.deterministic_body);
        assert_eq!(t.varying, 0);
        assert_eq!(t.period, Some(2));
    }
}
