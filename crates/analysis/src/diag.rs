//! Lint diagnostics and their rustc-style text rendering.

use std::fmt;

use crate::cfg::DecodedProgram;

/// Stable identifier of a diversity lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// Cycle-periodic loop: register-port traffic repeats with a fixed
    /// period, so the data signatures of two cores staggered by a multiple
    /// of the period are guaranteed to collide.
    Div001,
    /// Identical-instruction sled long enough to fill both pipelines with
    /// the same opcodes, guaranteeing an instruction-signature collision for
    /// small staggering.
    Div002,
    /// Data-independent loop: no input-derived value reaches the body, so
    /// redundant cores compute identical register traffic and diversity
    /// relies on staggering alone.
    Div003,
    /// The configured staggering is unsafe against a hazard found by
    /// DIV001/DIV002 (multiple of a loop period, or smaller than a sled's
    /// minimum safe stagger).
    Div004,
    /// The abstract-interpretation prover proved a data-signature collision
    /// at the configured stagger: either lockstep cores with provably equal
    /// reads, or invariant traffic re-aligning at a stagger ≡ 0 modulo its
    /// rotation period.
    Div005,
    /// The prover proved an instruction-signature collision window: the
    /// opcode streams re-align at the configured stagger even though the
    /// data signature is not proved to collide.
    Div006,
    /// The configured stagger violates a loop's minimum-safe-stagger
    /// certificate (a provably safe stagger exists, but the configured one
    /// is below it).
    Div007,
    /// Diversity of a loop is not provable at the configured stagger — the
    /// prover's explicit `Unknown`, with the refuting witness attached.
    Div008,
    /// The diversity transform left a residue the two-program relational
    /// prover could not certify: a loop-body pair that shares at least one
    /// instruction encoding (or an unmapped / multi-path body), so
    /// encoding-disjointness does not hold at stagger 0.
    Div009,
    /// Correspondence-map violation: the variant is not a faithful renaming
    /// of the original at some mapped point — a semantic-inequivalence
    /// witness for the twin pair.
    Div010,
}

impl LintCode {
    /// All lint codes, in numeric order.
    pub const ALL: [LintCode; 10] = [
        LintCode::Div001,
        LintCode::Div002,
        LintCode::Div003,
        LintCode::Div004,
        LintCode::Div005,
        LintCode::Div006,
        LintCode::Div007,
        LintCode::Div008,
        LintCode::Div009,
        LintCode::Div010,
    ];

    /// The stable rule identifier (`"DIV001"` …), as used in SARIF output,
    /// baseline files and the `--deny/--warn/--allow` CLI flags.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            LintCode::Div001 => "DIV001",
            LintCode::Div002 => "DIV002",
            LintCode::Div003 => "DIV003",
            LintCode::Div004 => "DIV004",
            LintCode::Div005 => "DIV005",
            LintCode::Div006 => "DIV006",
            LintCode::Div007 => "DIV007",
            LintCode::Div008 => "DIV008",
            LintCode::Div009 => "DIV009",
            LintCode::Div010 => "DIV010",
        }
    }

    /// Parses a rule identifier (case-insensitive `DIVnnn`).
    #[must_use]
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL.iter().copied().find(|c| c.id().eq_ignore_ascii_case(s.trim()))
    }

    /// The severity this lint reports with when no override is configured
    /// and no finding-specific downgrade applies (DIV001 downgrades itself
    /// to a warning when the period exceeds the FIFO depth, for instance).
    /// This is what the SARIF `defaultConfiguration` advertises.
    #[must_use]
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::Div001
            | LintCode::Div002
            | LintCode::Div004
            | LintCode::Div005
            | LintCode::Div007
            | LintCode::Div010 => Severity::Error,
            LintCode::Div003 | LintCode::Div006 | LintCode::Div008 | LintCode::Div009 => {
                Severity::Warning
            }
        }
    }

    /// Short human description of what the lint detects.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            LintCode::Div001 => "cycle-periodic loop (guaranteed data-signature collision)",
            LintCode::Div002 => {
                "identical-instruction sled (guaranteed instruction-signature collision)"
            }
            LintCode::Div003 => "data-independent loop (diversity relies on staggering alone)",
            LintCode::Div004 => "configured staggering defeated by a detected hazard",
            LintCode::Div005 => "proved data-signature collision at the configured stagger",
            LintCode::Div006 => "proved instruction-signature collision window",
            LintCode::Div007 => "configured stagger violates a minimum-safe-stagger certificate",
            LintCode::Div008 => "diversity unprovable at the configured stagger",
            LintCode::Div009 => "transform residue: twin loop pair not provably diverse",
            LintCode::Div010 => "correspondence-map violation: twin is not a faithful renaming",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LintCode::Div001 => "DIV001",
            LintCode::Div002 => "DIV002",
            LintCode::Div003 => "DIV003",
            LintCode::Div004 => "DIV004",
            LintCode::Div005 => "DIV005",
            LintCode::Div006 => "DIV006",
            LintCode::Div007 => "DIV007",
            LintCode::Div008 => "DIV008",
            LintCode::Div009 => "DIV009",
            LintCode::Div010 => "DIV010",
        };
        f.write_str(s)
    }
}

/// How certain / severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational.
    Note,
    /// Likely hazard, not guaranteed.
    Warning,
    /// Guaranteed no-diversity hazard under the stated conditions.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// A per-lint severity override, rustc-flag style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Suppress the lint entirely (`--allow`).
    Allow,
    /// Force findings down to [`Severity::Warning`] (`--warn`).
    Warn,
    /// Force findings up to [`Severity::Error`] (`--deny`).
    Deny,
}

/// The per-lint severity configuration of one analysis run: a sparse map
/// from [`LintCode`] to [`Level`]. Codes without an entry keep whatever
/// severity the lint itself computed. Later [`LintLevels::set`] calls win,
/// so CLI flags compose left-to-right.
#[derive(Debug, Clone, Default)]
pub struct LintLevels {
    overrides: Vec<(LintCode, Level)>,
}

impl LintLevels {
    /// Sets (or replaces) the level for one lint.
    pub fn set(&mut self, code: LintCode, level: Level) {
        if let Some(slot) = self.overrides.iter_mut().find(|(c, _)| *c == code) {
            slot.1 = level;
        } else {
            self.overrides.push((code, level));
        }
    }

    /// The configured level for `code`, if any.
    #[must_use]
    pub fn get(&self, code: LintCode) -> Option<Level> {
        self.overrides.iter().find(|(c, _)| *c == code).map(|(_, l)| *l)
    }

    /// Builds the map from the three comma-separated CLI lists
    /// (`--deny DIV003,DIV008` style). Deny wins over warn wins over allow
    /// when one code appears in several lists.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first entry that is not a known rule id.
    pub fn from_args(
        allow: Option<&str>,
        warn: Option<&str>,
        deny: Option<&str>,
    ) -> Result<LintLevels, String> {
        let mut levels = LintLevels::default();
        for (list, level, flag) in [
            (allow, Level::Allow, "--allow"),
            (warn, Level::Warn, "--warn"),
            (deny, Level::Deny, "--deny"),
        ] {
            let Some(list) = list else { continue };
            for entry in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let code = LintCode::parse(entry).ok_or_else(|| {
                    format!("{flag}: unknown lint `{entry}` (expected DIV001..DIV010)")
                })?;
                levels.set(code, level);
            }
        }
        Ok(levels)
    }

    /// Applies the overrides to a finding list: `Allow` drops the finding,
    /// `Warn`/`Deny` rewrite its severity. Returns the surviving findings in
    /// their original order.
    #[must_use]
    pub fn apply(&self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        if self.overrides.is_empty() {
            return diags;
        }
        diags
            .into_iter()
            .filter_map(|mut d| match self.get(d.code) {
                Some(Level::Allow) => None,
                Some(Level::Warn) => {
                    d.severity = Severity::Warning;
                    Some(d)
                }
                Some(Level::Deny) => {
                    d.severity = Severity::Error;
                    Some(d)
                }
                None => Some(d),
            })
            .collect()
    }
}

/// A half-open PC range `[start, end)` in the text section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcSpan {
    /// First instruction address of the region.
    pub start: u64,
    /// One past the last instruction address.
    pub end: u64,
}

impl PcSpan {
    /// Number of 32-bit instruction slots covered.
    #[must_use]
    pub fn insts(&self) -> u64 {
        (self.end - self.start) / 4
    }

    /// Whether `pc` falls inside the span.
    #[must_use]
    pub fn contains(&self, pc: u64) -> bool {
        self.start <= pc && pc < self.end
    }
}

impl fmt::Display for PcSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}..{:#x}", self.start, self.end)
    }
}

/// One finding of the static diversity analyzer.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// How severe the finding is.
    pub severity: Severity,
    /// The program region the finding is anchored to.
    pub span: PcSpan,
    /// One-line description.
    pub message: String,
    /// Additional `= note:` / `= help:` lines.
    pub notes: Vec<String>,
    /// Traffic period in instructions, for periodic-loop findings.
    pub period: Option<u64>,
    /// Minimum staggering (in committed instructions) that clears the
    /// hazard, when one exists.
    pub min_safe_stagger: Option<u64>,
}

impl Diagnostic {
    /// Renders the diagnostic in rustc style, with a disassembly snippet
    /// taken from `prog` (at most `snippet_lines` lines shown).
    #[must_use]
    pub fn render(&self, prog: &DecodedProgram, snippet_lines: usize) -> String {
        let mut out = String::new();
        use fmt::Write;
        let _ = writeln!(out, "{}[{}]: {}", self.severity, self.code, self.message);
        let _ = writeln!(out, "  --> {} ({} instructions)", self.span, self.span.insts());
        let _ = writeln!(out, "   |");

        let lines: Vec<String> = (self.span.start..self.span.end)
            .step_by(4)
            .filter_map(|pc| prog.index_of(pc))
            .map(|idx| {
                let slot = prog.slots[idx];
                match slot.inst {
                    Some(inst) => format!("   | {:#010x}: {}", slot.pc, inst),
                    None => format!("   | {:#010x}: .word {:#010x}", slot.pc, slot.raw),
                }
            })
            .collect();
        if lines.len() <= snippet_lines.max(2) {
            for l in &lines {
                let _ = writeln!(out, "{l}");
            }
        } else {
            let head = snippet_lines.max(2) - 1;
            for l in &lines[..head] {
                let _ = writeln!(out, "{l}");
            }
            let _ = writeln!(out, "   | ... ({} more)", lines.len() - head - 1);
            let _ = writeln!(out, "{}", lines[lines.len() - 1]);
        }
        let _ = writeln!(out, "   |");
        for n in &self.notes {
            let _ = writeln!(out, "   = {n}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_asm::Asm;

    #[test]
    fn lint_code_ids_parse_back() {
        for code in LintCode::ALL {
            assert_eq!(LintCode::parse(code.id()), Some(code));
            assert_eq!(LintCode::parse(&code.id().to_lowercase()), Some(code));
            assert_eq!(code.id(), code.to_string());
        }
        assert_eq!(LintCode::parse("DIV999"), None);
        assert_eq!(LintCode::parse(""), None);
    }

    #[test]
    fn levels_parse_apply_and_compose() {
        let levels =
            LintLevels::from_args(Some("div003"), Some("DIV001, DIV003"), Some("DIV003")).unwrap();
        // --deny wins: DIV003 moved allow -> warn -> deny.
        assert_eq!(levels.get(LintCode::Div003), Some(Level::Deny));
        assert_eq!(levels.get(LintCode::Div001), Some(Level::Warn));
        assert_eq!(levels.get(LintCode::Div002), None);

        let mk = |code, severity| Diagnostic {
            code,
            severity,
            span: PcSpan { start: 0, end: 4 },
            message: String::new(),
            notes: vec![],
            period: None,
            min_safe_stagger: None,
        };
        let mut levels = LintLevels::default();
        levels.set(LintCode::Div001, Level::Warn);
        levels.set(LintCode::Div002, Level::Allow);
        let out = levels.apply(vec![
            mk(LintCode::Div001, Severity::Error),
            mk(LintCode::Div002, Severity::Error),
            mk(LintCode::Div003, Severity::Warning),
        ]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].code, LintCode::Div001);
        assert_eq!(out[0].severity, Severity::Warning);
        assert_eq!(out[1].code, LintCode::Div003);

        let err = LintLevels::from_args(None, None, Some("DIV042")).unwrap_err();
        assert!(err.contains("--deny") && err.contains("DIV042"), "{err}");
    }

    #[test]
    fn span_contains_and_len() {
        let s = PcSpan { start: 0x100, end: 0x110 };
        assert_eq!(s.insts(), 4);
        assert!(s.contains(0x100));
        assert!(s.contains(0x10c));
        assert!(!s.contains(0x110));
    }

    #[test]
    fn render_elides_long_snippets() {
        let mut a = Asm::new();
        for _ in 0..32 {
            a.nop();
        }
        a.ebreak();
        let prog = DecodedProgram::from_program(&a.link(0x1000).unwrap());
        let d = Diagnostic {
            code: LintCode::Div002,
            severity: Severity::Error,
            span: PcSpan { start: 0x1000, end: 0x1000 + 32 * 4 },
            message: "sled".into(),
            notes: vec!["note: test".into()],
            period: None,
            min_safe_stagger: Some(19),
        };
        let r = d.render(&prog, 6);
        assert!(r.contains("error[DIV002]"));
        assert!(r.contains("(32 instructions)"));
        assert!(r.contains("more)"));
        assert!(r.lines().count() < 16);
    }
}
