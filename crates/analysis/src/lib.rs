//! # safedm-analysis — static diversity analyzer
//!
//! A CFG/dataflow lint pass that predicts **no-diversity hazards** in a
//! linked [`Program`](safedm_asm::Program) *before* it ever runs under the
//! SafeDM monitor.
//!
//! SafeDM (DATE 2022) measures diversity between two redundant cores by
//! comparing per-cycle *data signatures* (register-port traffic over the
//! last *n* cycles) and *instruction signatures* (pipeline-stage opcode
//! occupancy). Some code shapes make those signatures collide no matter how
//! the cores are scheduled — idle loops, nop sleds, constant-traffic spins —
//! and this crate finds them statically:
//!
//! | lint | severity | finding |
//! |---|---|---|
//! | `DIV001` | error | cycle-periodic loop: traffic repeats with period *p* ≤ FIFO depth — guaranteed data-signature collision at stagger ≡ 0 (mod *p*) |
//! | `DIV002` | error | identical-instruction sled longer than the pipeline — guaranteed instruction-signature collision below its minimum safe stagger |
//! | `DIV003` | warning | data-independent loop: no load/CSR-derived value reaches the body, so redundant cores compute identical traffic |
//! | `DIV004` | error | the configured staggering is defeated by a DIV001/DIV002 hazard |
//! | `DIV005` | error | prover: data-signature collision proved at the configured stagger (lockstep or period re-alignment) |
//! | `DIV006` | warning | prover: instruction-signature collision window proved (opcode streams re-align) |
//! | `DIV007` | error | prover: configured stagger violates a loop's minimum-safe-stagger certificate |
//! | `DIV008` | warning | prover: diversity unprovable for a loop, with a refuting witness |
//! | `DIV009` | warning | pair prover: the diversity transform left a residue (shared encoding / unmapped body) that is not provably diverse at stagger 0 |
//! | `DIV010` | error | pair prover: correspondence-map violation — the twin is not a faithful renaming of the original |
//!
//! DIV001–DIV004 come from the syntactic lint pass ([`lints`]); DIV005–DIV008
//! come from the abstract-interpretation prover ([`absint::prove`]), which
//! runs a worklist fixpoint over interval, congruence and relational
//! stagger-offset domains and emits a per-loop minimum-safe-stagger
//! certificate. DIV009/DIV010 come from the two-program relational prover
//! ([`absint::prove_pair`]), which verifies a transform-produced
//! correspondence map between a program and its diversity-transformed twin
//! and certifies encoding-disjoint loop-body pairs diverse at stagger 0.
//!
//! The pipeline: [`cfg::DecodedProgram`] decodes the text section,
//! [`cfg::Cfg`] builds basic blocks / dominators / natural loops, the
//! [`dataflow`] passes (reaching definitions, constant propagation,
//! liveness, input taint) feed [`lints`], and findings come back as
//! rustc-style [`diag::Diagnostic`]s.
//!
//! ```
//! use safedm_analysis::{analyze, AnalysisConfig, LintCode};
//! use safedm_asm::Asm;
//!
//! let mut a = Asm::new();
//! let spin = a.new_label("spin");
//! a.bind(spin).unwrap();
//! a.nop();
//! a.j(spin);
//! let prog = a.link(0x8000_0000).unwrap();
//!
//! let report = analyze(&prog, &AnalysisConfig::default());
//! assert!(report.diagnostics.iter().any(|d| d.code == LintCode::Div001));
//! println!("{}", report.render());
//! ```

#![warn(missing_docs)]

pub mod absint;
pub mod baseline;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod diag;
pub mod lints;
pub mod sarif;
pub mod summary;

pub use absint::{
    prove, prove_pair, Abs, AbsInt, AbsState, LoopCertificate, PairCertificate, PairReport,
    ProveReport, Verdict,
};
pub use baseline::{Baseline, BaselineEntry, BaselineFilter};
pub use callgraph::{CallGraph, CallSite, CallTarget, Function};
pub use cfg::{BasicBlock, Cfg, DecodedProgram, NaturalLoop, Slot, Terminator};
pub use dataflow::{ConstProp, ConstVal, Liveness, LoopTraffic, ReachingDefs, Taint};
pub use diag::{Diagnostic, Level, LintCode, LintLevels, PcSpan, Severity};
pub use lints::{registry, LintContext, LintPass};
pub use summary::{CallEffect, FnSummary, Interproc, Summaries, ALL_WRITABLE};

use safedm_asm::Program;
use safedm_soc::{PIPE_STAGES, PIPE_WIDTH};

/// Tunables of the analyzer, mirroring the monitored platform.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Depth *n* of the data-signature FIFO (cycles of port traffic per
    /// signature). Mirrors `SafeDmConfig::data_fifo_depth`.
    pub fifo_depth: usize,
    /// Total pipeline slots per core (stages x issue width); an identical
    /// sled at least this long fills the whole instruction signature.
    pub pipeline_slots: usize,
    /// Staggering the run is configured with (nops delaying one core), when
    /// known. Enables the DIV004 cross-check.
    pub stagger_nops: Option<u64>,
    /// Correction from configured sled nops to the *effective* inter-core
    /// committed-instruction delta. The TACLe harness sled makes the delayed
    /// hart commit `nops` nops while the other hart commits one `j skip`, so
    /// harness-staggered runs use `-1`; a raw delay uses the default `0`.
    /// Residue-class lints (DIV004 and the prover) test
    /// `stagger_nops + stagger_phase` against loop periods.
    pub stagger_phase: i64,
    /// Maximum disassembly lines per rendered snippet.
    pub snippet_lines: usize,
    /// The program under analysis is a composed *twin pair* (original +
    /// diversity-transformed variant sharing one image, dispatched by hart
    /// id). The cores then execute **different** instruction streams, so
    /// every single-program staggered-pair assumption is off: the DIV004
    /// residue cross-check and the delta-zero lockstep collision claims are
    /// suppressed, and certification is the pair prover's
    /// ([`absint::prove_pair`]) job.
    pub pair_mode: bool,
    /// Per-lint severity overrides (`--deny/--warn/--allow` on the CLI):
    /// applied by the lint driver after every registered pass has run.
    pub levels: diag::LintLevels,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            fifo_depth: 8,
            pipeline_slots: PIPE_STAGES * PIPE_WIDTH,
            stagger_nops: None,
            stagger_phase: 0,
            snippet_lines: 6,
            pair_mode: false,
            levels: diag::LintLevels::default(),
        }
    }
}

/// Everything the analyzer learned about one program.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The decoded text section the findings refer to.
    pub program: DecodedProgram,
    /// Control-flow graph with dominator-derived natural loops.
    pub cfg: Cfg,
    /// The configuration the analysis ran with.
    pub config: AnalysisConfig,
    /// All findings, sorted by address.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Findings with [`Severity::Error`].
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Findings with [`Severity::Warning`].
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// The *guaranteed* hazards (DIV001/DIV002): regions where the monitor
    /// must observe no-diversity cycles when both cores execute them in
    /// lockstep (stagger 0). These are the findings the `safedm-core`
    /// pre-run gate cross-validates.
    pub fn guaranteed_hazards(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| matches!(d.code, LintCode::Div001 | LintCode::Div002))
    }

    /// Minimum staggering (committed instructions) clearing every sled
    /// hazard, i.e. the maximum of the per-sled minima (0 when no sleds).
    #[must_use]
    pub fn min_safe_stagger(&self) -> u64 {
        self.diagnostics.iter().filter_map(|d| d.min_safe_stagger).max().unwrap_or(0)
    }

    /// Traffic periods of the periodic loops found; safe staggers must avoid
    /// every multiple of each.
    #[must_use]
    pub fn hazardous_periods(&self) -> Vec<u64> {
        let mut p: Vec<u64> = self
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::Div001)
            .filter_map(|d| d.period)
            .collect();
        p.sort_unstable();
        p.dedup();
        p
    }

    /// Renders every diagnostic plus a one-line summary, rustc style.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(&self.program, self.config.snippet_lines));
            out.push('\n');
        }
        let summary = self.summary_line();
        out.push_str(&summary);
        out.push('\n');
        out
    }

    /// The trailing summary line of [`AnalysisReport::render`].
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "analysis: {} instructions, {} blocks, {} loops; {} errors, {} warnings; \
             min safe stagger {} insts{}",
            self.program.slots.len(),
            self.cfg.blocks.len(),
            self.cfg.loops.len(),
            self.error_count(),
            self.warning_count(),
            self.min_safe_stagger(),
            if self.hazardous_periods().is_empty() {
                String::new()
            } else {
                format!(", avoid stagger multiples of {:?}", self.hazardous_periods())
            }
        )
    }
}

/// Runs the full static diversity analysis on a linked program.
#[must_use]
pub fn analyze(prog: &Program, config: &AnalysisConfig) -> AnalysisReport {
    let program = DecodedProgram::from_program(prog);
    let cfg = Cfg::build(&program);
    let diagnostics = lints::run_lints(&program, &cfg, config);
    AnalysisReport { program, cfg, config: config.clone(), diagnostics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_asm::Asm;

    #[test]
    fn report_summarizes_and_renders() {
        let mut a = Asm::new();
        a.nops(20);
        let l = a.new_label("l");
        a.bind(l).unwrap();
        a.j(l);
        let prog = a.link(0x8000_0000).unwrap();
        let report = analyze(&prog, &AnalysisConfig::default());
        assert!(report.error_count() >= 2, "{}", report.render());
        assert!(report.min_safe_stagger() >= 7);
        assert_eq!(report.hazardous_periods(), vec![1]);
        let text = report.render();
        assert!(text.contains("DIV001") && text.contains("DIV002"));
        assert!(text.contains("min safe stagger"));
    }

    #[test]
    fn clean_program_has_no_guaranteed_hazards() {
        let mut a = Asm::new();
        a.li(safedm_isa::Reg::A0, 0x8010_0000);
        a.lw(safedm_isa::Reg::T0, 0, safedm_isa::Reg::A0);
        a.addi(safedm_isa::Reg::T0, safedm_isa::Reg::T0, 1);
        a.ebreak();
        let prog = a.link(0x8000_0000).unwrap();
        let report = analyze(&prog, &AnalysisConfig::default());
        assert_eq!(report.guaranteed_hazards().count(), 0, "{}", report.render());
    }
}
