//! The registry-driven lint driver and the syntactic diversity lints
//! (DIV001–DIV004).
//!
//! Each lint turns facts from the CFG and dataflow passes into
//! [`Diagnostic`]s predicting where the SafeDM runtime monitor would see no
//! diversity between two redundant cores. The lints only *predict* hazards —
//! the `safedm-core` pre-run gate cross-validates guaranteed findings
//! against the cycle-accurate monitor.
//!
//! The driver is a small registry of [`LintPass`] objects: every pass reads
//! one shared [`LintContext`] (the program, CFG and the dataflow facts
//! computed once per run) and appends findings. [`registry`] lists the
//! passes in execution order — order matters, because the DIV004 stagger
//! cross-check re-reads the findings of the passes before it. After the
//! registry runs, the per-lint severity overrides in
//! [`AnalysisConfig::levels`] rewrite or drop findings
//! (see [`crate::diag::LintLevels`]).

use safedm_isa::Reg;

use crate::cfg::{Cfg, DecodedProgram};
use crate::dataflow::{ConstProp, LoopTraffic, Taint};
use crate::diag::{Diagnostic, LintCode, PcSpan, Severity};
use crate::AnalysisConfig;

/// The facts a lint pass may read: computed once in [`run_lints`] and
/// shared by every pass in the registry.
pub struct LintContext<'a> {
    /// The decoded text section.
    pub prog: &'a DecodedProgram,
    /// Basic blocks, dominators and natural loops.
    pub cfg: &'a Cfg,
    /// The analysis configuration (FIFO depth, stagger, levels, …).
    pub config: &'a AnalysisConfig,
    /// Input-taint dataflow facts.
    pub taint: &'a Taint,
    /// Constant-propagation dataflow facts.
    pub constprop: &'a ConstProp,
}

/// One registered lint pass.
///
/// A pass may emit findings for several related [`LintCode`]s (the loop
/// pass classifies each loop as DIV001 *or* DIV003, for instance) and may
/// read findings appended by earlier passes — the DIV004 cross-check is
/// exactly that.
pub trait LintPass {
    /// Short machine-friendly pass name, for `--list-lints`-style output.
    fn name(&self) -> &'static str;
    /// The lint codes this pass can emit.
    fn codes(&self) -> &'static [LintCode];
    /// Runs the pass, appending findings to `diags` (which already holds
    /// the findings of every earlier pass in the registry).
    fn run(&self, ctx: &LintContext<'_>, diags: &mut Vec<Diagnostic>);
}

/// The syntactic lint passes, in execution order. The stagger cross-check
/// must stay last: it derives DIV004 findings from the DIV001/DIV002
/// findings already in the list.
#[must_use]
pub fn registry() -> Vec<Box<dyn LintPass>> {
    vec![Box::new(LoopLints), Box::new(SledLints), Box::new(StaggerLints)]
}

fn reg_list(mask: u32) -> String {
    let names: Vec<&str> =
        (1..32u8).filter(|r| mask & (1 << r) != 0).map(|r| Reg::new(r).abi_name()).collect();
    names.join(", ")
}

fn loop_span(
    prog: &DecodedProgram,
    cfg: &Cfg,
    blocks: &std::collections::BTreeSet<usize>,
) -> PcSpan {
    let start = blocks.iter().map(|&b| cfg.blocks[b].start).min().unwrap_or(0);
    let end = blocks.iter().map(|&b| cfg.blocks[b].end).max().unwrap_or(0);
    PcSpan { start: prog.pc_of(start), end: prog.pc_of(end) }
}

/// Runs the lint registry and returns the findings sorted by address then
/// code, with the [`AnalysisConfig::levels`] severity overrides applied.
#[must_use]
pub fn run_lints(prog: &DecodedProgram, cfg: &Cfg, config: &AnalysisConfig) -> Vec<Diagnostic> {
    let taint = Taint::compute(prog, cfg);
    let constprop = ConstProp::compute(prog, cfg);
    let ctx = LintContext { prog, cfg, config, taint: &taint, constprop: &constprop };

    let mut diags = Vec::new();
    for pass in registry() {
        pass.run(&ctx, &mut diags);
    }
    diags.sort_by_key(|d| (d.span.start, d.code));
    config.levels.apply(diags)
}

/// DIV001 + DIV003: per-loop traffic classification.
struct LoopLints;

impl LintPass for LoopLints {
    fn name(&self) -> &'static str {
        "loop-traffic"
    }

    fn codes(&self) -> &'static [LintCode] {
        &[LintCode::Div001, LintCode::Div003]
    }

    fn run(&self, ctx: &LintContext<'_>, diags: &mut Vec<Diagnostic>) {
        lint_loops(ctx.prog, ctx.cfg, ctx.config, ctx.taint, ctx.constprop, diags);
    }
}

/// DIV002: identical-instruction sleds.
struct SledLints;

impl LintPass for SledLints {
    fn name(&self) -> &'static str {
        "instruction-sleds"
    }

    fn codes(&self) -> &'static [LintCode] {
        &[LintCode::Div002]
    }

    fn run(&self, ctx: &LintContext<'_>, diags: &mut Vec<Diagnostic>) {
        lint_sleds(ctx.prog, ctx.cfg, ctx.config, diags);
    }
}

/// DIV004: configured-stagger cross-check over earlier findings.
struct StaggerLints;

impl LintPass for StaggerLints {
    fn name(&self) -> &'static str {
        "stagger-cross-check"
    }

    fn codes(&self) -> &'static [LintCode] {
        &[LintCode::Div004]
    }

    fn run(&self, ctx: &LintContext<'_>, diags: &mut Vec<Diagnostic>) {
        lint_stagger(ctx.config, diags);
    }
}

/// DIV001 + DIV003: per-loop traffic classification.
fn lint_loops(
    prog: &DecodedProgram,
    cfg: &Cfg,
    config: &AnalysisConfig,
    taint: &Taint,
    constprop: &ConstProp,
    diags: &mut Vec<Diagnostic>,
) {
    for lp in &cfg.loops {
        let t = LoopTraffic::analyze(prog, cfg, lp, taint, constprop);
        let span = loop_span(prog, cfg, &lp.blocks);

        // DIV001: fully iteration-invariant traffic — every register read
        // and write repeats identically each time around, so the data
        // signature stream is periodic with the loop period.
        if t.deterministic_body && t.varying == 0 && !t.has_load && !t.has_csr {
            let period = t.period.unwrap_or(lp.insts as u64).max(1);
            let severity = if period <= config.fifo_depth as u64 {
                Severity::Error
            } else {
                Severity::Warning
            };
            let mut notes = vec![format!(
                "note: guaranteed data-signature collision between cores staggered by \
                 any multiple of {period} committed instructions (including 0)"
            )];
            if period <= config.fifo_depth as u64 {
                notes.push(format!(
                    "note: the period fits inside the {}-cycle signature FIFO, so the \
                     collision persists every cycle of the loop",
                    config.fifo_depth
                ));
            }
            if t.reads & !t.const_reads == 0 && t.reads != 0 {
                notes.push(
                    "note: every register read in the body is a compile-time constant".into(),
                );
            }
            if let Some(trips) = t.trip_count {
                notes.push(format!("note: estimated trip count: {trips}"));
            }
            notes.push(format!(
                "help: stagger the cores by an amount that is not a multiple of {period}, \
                 or introduce core-specific state (e.g. an mhartid-derived value) into the loop"
            ));
            diags.push(Diagnostic {
                code: LintCode::Div001,
                severity,
                span,
                message: format!(
                    "cycle-periodic loop: register-port traffic repeats every {period} instructions"
                ),
                notes,
                period: Some(period),
                min_safe_stagger: None,
            });
            continue;
        }

        // DIV003: no input-derived value reaches the body — both cores
        // compute bit-identical traffic and only staggering separates them.
        if !t.has_load && !t.has_csr && !t.tainted_read {
            let mut notes = vec![
                "note: the body reads no load- or CSR-derived value, so redundant cores \
                 compute identical register traffic"
                    .into(),
                "note: diversity inside this loop relies on staggering alone".into(),
            ];
            if t.varying != 0 {
                notes.push(format!(
                    "note: iteration-varying registers ({}) still separate *shifted* copies \
                     of the traffic",
                    reg_list(t.varying)
                ));
            }
            if let Some(trips) = t.trip_count {
                notes.push(format!("note: estimated trip count: {trips}"));
            }
            diags.push(Diagnostic {
                code: LintCode::Div003,
                severity: Severity::Warning,
                span,
                message: "data-independent loop: both cores compute identical register traffic"
                    .into(),
                notes,
                period: t.period,
                min_safe_stagger: None,
            });
        }
    }
}

/// DIV002: straight-line runs of identical instruction words at least as
/// long as the pipeline is deep.
fn lint_sleds(
    prog: &DecodedProgram,
    cfg: &Cfg,
    config: &AnalysisConfig,
    diags: &mut Vec<Diagnostic>,
) {
    let threshold = config.pipeline_slots;
    for b in &cfg.blocks {
        let mut run_start = b.start;
        let mut i = b.start;
        while i <= b.end {
            let extend = i < b.end
                && prog.slots[i].raw == prog.slots[run_start].raw
                && prog.slots[i].inst.is_some();
            if extend {
                i += 1;
                continue;
            }
            let len = i - run_start;
            if len >= threshold {
                let slot = prog.slots[run_start];
                let inst = slot.inst.expect("runs only cover decodable slots");
                let min_safe = (len - threshold + 1) as u64;
                let mut notes = vec![
                    format!(
                        "note: {len} consecutive `{inst}` fill all {} pipeline slots of both \
                         cores with identical opcodes when their stagger is below {min_safe} \
                         committed instructions",
                        config.pipeline_slots
                    ),
                    "note: guaranteed instruction-signature collision in that window".into(),
                ];
                if inst.is_nop() {
                    notes.push(
                        "note: nops also read and write only x0, so the data signatures \
                         collide as well"
                            .into(),
                    );
                }
                notes.push(format!(
                    "help: stagger the cores by at least {min_safe} committed instructions, \
                     or diversify the sled (e.g. alternate addi/ori encodings)"
                ));
                diags.push(Diagnostic {
                    code: LintCode::Div002,
                    severity: Severity::Error,
                    span: PcSpan { start: prog.pc_of(run_start), end: prog.pc_of(run_start + len) },
                    message: format!("identical-instruction sled: {len} x `{inst}`"),
                    notes,
                    period: None,
                    min_safe_stagger: Some(min_safe),
                });
            }
            if i >= b.end {
                break;
            }
            run_start = i;
            if prog.slots[i].inst.is_none() {
                run_start = i + 1;
            }
            i += 1;
        }
    }
}

/// DIV004: check the configured staggering against the hazards found by
/// DIV001/DIV002.
fn lint_stagger(config: &AnalysisConfig, diags: &mut Vec<Diagnostic>) {
    // A twin pair runs *different* binaries on the two cores; the DIV004
    // residue argument (periodic traffic of one shared stream re-aligning
    // under a stagger) does not apply, so a pair at stagger 0 must not trip
    // it. Certification there is the pair prover's job.
    if config.pair_mode {
        return;
    }
    let Some(stagger) = config.stagger_nops else { return };
    // What the periodic-traffic argument actually depends on is the
    // *effective* inter-core committed-instruction delta, which differs from
    // the configured nop count by a fixed phase (the harness sled's `j skip`
    // on the non-delayed hart, for instance). A stagger that is a multiple
    // of a loop period *plus a nonzero phase* lands in a different residue
    // class and is not a re-alignment hazard.
    let s_eff = (stagger as i64).saturating_add(config.stagger_phase);
    let mut extra = Vec::new();
    for d in diags.iter() {
        match d.code {
            LintCode::Div001 => {
                let period = d.period.unwrap_or(1).max(1);
                if s_eff.rem_euclid(period as i64) == 0 {
                    extra.push(Diagnostic {
                        code: LintCode::Div004,
                        severity: Severity::Error,
                        span: d.span,
                        message: format!(
                            "configured stagger of {stagger} nops (effective delta {s_eff}) \
                             is a multiple of this loop's {period}-instruction traffic period"
                        ),
                        notes: vec![format!(
                            "note: the periodic traffic re-aligns exactly, reproducing the \
                             stagger-0 data-signature collision; see {} at {}",
                            d.code, d.span
                        )],
                        period: Some(period),
                        min_safe_stagger: None,
                    });
                }
            }
            LintCode::Div002 => {
                let min_safe = d.min_safe_stagger.unwrap_or(1);
                if s_eff < min_safe as i64 {
                    extra.push(Diagnostic {
                        code: LintCode::Div004,
                        severity: Severity::Error,
                        span: d.span,
                        message: format!(
                            "configured stagger of {stagger} nops (effective delta {s_eff}) \
                             is below this sled's minimum safe stagger of {min_safe}"
                        ),
                        notes: vec![format!(
                            "note: both pipelines sit fully inside the sled at the same \
                             time; see {} at {}",
                            d.code, d.span
                        )],
                        period: None,
                        min_safe_stagger: Some(min_safe),
                    });
                }
            }
            _ => {}
        }
    }
    diags.extend(extra);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::DecodedProgram;
    use safedm_asm::Asm;
    use safedm_isa::Reg;

    fn lints(config: &AnalysisConfig, f: impl FnOnce(&mut Asm)) -> Vec<Diagnostic> {
        let mut a = Asm::new();
        f(&mut a);
        let p = DecodedProgram::from_program(&a.link(0x8000_0000).unwrap());
        let c = Cfg::build(&p);
        run_lints(&p, &c, config)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<LintCode> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn registry_covers_the_syntactic_lints_in_order() {
        let passes = registry();
        let names: Vec<&str> = passes.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["loop-traffic", "instruction-sleds", "stagger-cross-check"]);
        let mut covered: Vec<LintCode> = passes.iter().flat_map(|p| p.codes()).copied().collect();
        covered.sort();
        assert_eq!(
            covered,
            [LintCode::Div001, LintCode::Div002, LintCode::Div003, LintCode::Div004]
        );
        // The cross-check must run after the passes it reads.
        assert_eq!(names.last(), Some(&"stagger-cross-check"));
    }

    #[test]
    fn severity_overrides_rewrite_and_drop_findings() {
        use crate::diag::{Level, LintLevels};
        let idle = |a: &mut Asm| {
            let l = a.new_label("l");
            a.bind(l).unwrap();
            a.nop();
            a.j(l);
        };

        // Baseline: DIV001 fires as an error.
        let d = lints(&AnalysisConfig::default(), idle);
        assert!(d.iter().any(|x| x.code == LintCode::Div001 && x.severity == Severity::Error));

        // --warn DIV001 downgrades, --allow DIV001 drops.
        let mut levels = LintLevels::default();
        levels.set(LintCode::Div001, Level::Warn);
        let cfg = AnalysisConfig { levels, ..AnalysisConfig::default() };
        let d = lints(&cfg, idle);
        assert!(d.iter().any(|x| x.code == LintCode::Div001 && x.severity == Severity::Warning));

        let mut levels = LintLevels::default();
        levels.set(LintCode::Div001, Level::Allow);
        let cfg = AnalysisConfig { levels, ..AnalysisConfig::default() };
        let d = lints(&cfg, idle);
        assert!(!codes(&d).contains(&LintCode::Div001), "{d:?}");

        // --deny DIV003 upgrades the warning-by-default lint.
        let mut levels = LintLevels::default();
        levels.set(LintCode::Div003, Level::Deny);
        let cfg = AnalysisConfig { levels, ..AnalysisConfig::default() };
        let d = lints(&cfg, |a| {
            a.li(Reg::T0, 100);
            let l = a.new_label("l");
            a.bind(l).unwrap();
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, l);
            a.ebreak();
        });
        assert!(d.iter().any(|x| x.code == LintCode::Div003 && x.severity == Severity::Error));
    }

    #[test]
    fn div001_fires_on_idle_loop() {
        let d = lints(&AnalysisConfig::default(), |a| {
            let l = a.new_label("l");
            a.bind(l).unwrap();
            a.nop();
            a.j(l);
        });
        assert!(codes(&d).contains(&LintCode::Div001), "{d:?}");
        let div1 = d.iter().find(|x| x.code == LintCode::Div001).unwrap();
        assert_eq!(div1.period, Some(2));
        assert_eq!(div1.severity, Severity::Error);
    }

    #[test]
    fn div001_not_fired_on_counted_loop() {
        // A counter makes the write-port traffic vary per iteration.
        let d = lints(&AnalysisConfig::default(), |a| {
            a.li(Reg::T0, 100);
            let l = a.new_label("l");
            a.bind(l).unwrap();
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, l);
            a.ebreak();
        });
        assert!(!codes(&d).contains(&LintCode::Div001), "{d:?}");
        // ... but DIV003 fires: the traffic is data-independent.
        assert!(codes(&d).contains(&LintCode::Div003), "{d:?}");
    }

    #[test]
    fn div003_not_fired_when_loop_reads_loaded_data() {
        let d = lints(&AnalysisConfig::default(), |a| {
            a.li(Reg::A0, 0x8010_0000);
            let l = a.new_label("l");
            a.bind(l).unwrap();
            a.lw(Reg::T0, 0, Reg::A0);
            a.bnez(Reg::T0, l);
            a.ebreak();
        });
        assert!(!codes(&d).contains(&LintCode::Div003), "{d:?}");
        assert!(!codes(&d).contains(&LintCode::Div001), "{d:?}");
    }

    #[test]
    fn div003_not_fired_when_loop_reads_hartid() {
        let d = lints(&AnalysisConfig::default(), |a| {
            a.hartid(Reg::T0);
            let l = a.new_label("l");
            a.bind(l).unwrap();
            a.addi(Reg::T1, Reg::T0, 1);
            a.bnez(Reg::T1, l);
            a.ebreak();
        });
        assert!(!codes(&d).contains(&LintCode::Div003), "{d:?}");
    }

    #[test]
    fn div002_fires_on_nop_sled() {
        let cfg = AnalysisConfig::default();
        let d = lints(&cfg, |a| {
            a.nops(40);
            a.ebreak();
        });
        let sled = d.iter().find(|x| x.code == LintCode::Div002).expect("sled diagnostic");
        assert_eq!(sled.span.insts(), 40);
        assert_eq!(sled.min_safe_stagger, Some((40 - cfg.pipeline_slots + 1) as u64));
    }

    #[test]
    fn div002_ignores_short_sleds() {
        let cfg = AnalysisConfig::default();
        let d = lints(&cfg, |a| {
            a.nops(cfg.pipeline_slots - 1);
            a.ebreak();
        });
        assert!(!codes(&d).contains(&LintCode::Div002), "{d:?}");
    }

    #[test]
    fn div004_flags_stagger_multiple_of_period() {
        let cfg = AnalysisConfig { stagger_nops: Some(4), ..AnalysisConfig::default() }; // multiple of the 2-instruction period
        let d = lints(&cfg, |a| {
            let l = a.new_label("l");
            a.bind(l).unwrap();
            a.nop();
            a.j(l);
        });
        assert!(codes(&d).contains(&LintCode::Div004), "{d:?}");

        let cfg = AnalysisConfig { stagger_nops: Some(5), ..AnalysisConfig::default() }; // NOT a multiple: safe
        let d = lints(&cfg, |a| {
            let l = a.new_label("l");
            a.bind(l).unwrap();
            a.nop();
            a.j(l);
        });
        assert!(!codes(&d).contains(&LintCode::Div004), "{d:?}");
    }

    #[test]
    fn pair_mode_suppresses_div004_residue_path() {
        // A twin pair at stagger 0 (or any stagger) runs different binaries;
        // the DIV004 residue argument presupposes one shared stream and must
        // not fire in pair mode. DIV001 itself (a per-copy code-shape fact)
        // still does.
        for nops in [0u64, 4] {
            let cfg = AnalysisConfig {
                stagger_nops: Some(nops),
                pair_mode: true,
                ..AnalysisConfig::default()
            };
            let d = lints(&cfg, |a| {
                let l = a.new_label("l");
                a.bind(l).unwrap();
                a.nop();
                a.j(l);
            });
            assert!(!codes(&d).contains(&LintCode::Div004), "nops={nops}: {d:?}");
            assert!(codes(&d).contains(&LintCode::Div001), "nops={nops}: {d:?}");
        }
    }

    #[test]
    fn div004_respects_the_stagger_phase() {
        // Regression: a configured stagger that is a multiple of the loop
        // period *plus a nonzero phase* lands in a different residue class
        // and must not be flagged. With the harness phase of -1, 4 nops give
        // an effective delta of 3 (safe against a period of 2) while 5 nops
        // give 4 (a true re-alignment).
        let idle = |a: &mut Asm| {
            let l = a.new_label("l");
            a.bind(l).unwrap();
            a.nop();
            a.j(l);
        };
        let cfg = AnalysisConfig {
            stagger_nops: Some(4),
            stagger_phase: -1,
            ..AnalysisConfig::default()
        };
        let d = lints(&cfg, idle);
        assert!(!codes(&d).contains(&LintCode::Div004), "{d:?}");

        let cfg = AnalysisConfig {
            stagger_nops: Some(5),
            stagger_phase: -1,
            ..AnalysisConfig::default()
        };
        let d = lints(&cfg, idle);
        assert!(codes(&d).contains(&LintCode::Div004), "{d:?}");
        let div4 = d.iter().find(|x| x.code == LintCode::Div004).unwrap();
        assert!(div4.message.contains("effective delta 4"), "{}", div4.message);
    }

    #[test]
    fn div004_flags_stagger_below_sled_minimum() {
        let cfg = AnalysisConfig { stagger_nops: Some(3), ..AnalysisConfig::default() };
        let d = lints(&cfg, |a| {
            a.nops(40);
            a.ebreak();
        });
        assert!(codes(&d).contains(&LintCode::Div004), "{d:?}");
    }
}
