//! SARIF 2.1.0 emission for the diversity lints.
//!
//! [SARIF](https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html)
//! is the interchange format CI forges ingest for static-analysis findings.
//! This module renders any set of [`Diagnostic`]s — syntactic lints and
//! prover findings alike — as one SARIF log with a single run:
//!
//! * `tool.driver.rules` carries all ten stable rule ids (`DIV001` …
//!   `DIV010`) with their short descriptions and default severities, so a
//!   viewer can show rule metadata even for rules with no findings;
//! * each result's `locations[0].physicalLocation` uses the *program name*
//!   as the artifact URI and the PC span as `byteOffset`/`byteLength`
//!   (the analyzed artifact is a linked text section, not a source file);
//! * the machine-readable extras a [`Diagnostic`] carries (PC span, traffic
//!   period, minimum safe stagger) ride along in `properties`.
//!
//! The output is deterministic: object keys keep insertion order
//! ([`JsonValue`] guarantees that) and results appear in the order given.

use safedm_obs::json::JsonValue;

use crate::diag::{Diagnostic, LintCode, Severity};

/// The `$schema` URI stamped on every emitted log.
pub const SCHEMA_URI: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// The SARIF `level` string for a severity.
#[must_use]
pub fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Note => "note",
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(members.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn text(s: impl Into<String>) -> JsonValue {
    JsonValue::Str(s.into())
}

/// The `tool.driver.rules` array: one reporting descriptor per lint code.
fn rules() -> JsonValue {
    JsonValue::Arr(
        LintCode::ALL
            .iter()
            .map(|&code| {
                obj(vec![
                    ("id", text(code.id())),
                    ("shortDescription", obj(vec![("text", text(code.summary()))])),
                    (
                        "defaultConfiguration",
                        obj(vec![("level", text(level(code.default_severity())))]),
                    ),
                ])
            })
            .collect(),
    )
}

/// One SARIF `result` object for a finding in `program`.
fn result(program: &str, d: &Diagnostic) -> JsonValue {
    let mut props = vec![
        ("pc", text(format!("{:#x}", d.span.start))),
        ("pcEnd", text(format!("{:#x}", d.span.end))),
    ];
    if let Some(p) = d.period {
        props.push(("period", JsonValue::Uint(p)));
    }
    if let Some(m) = d.min_safe_stagger {
        props.push(("minSafeStagger", JsonValue::Uint(m)));
    }
    let mut message = d.message.clone();
    for n in &d.notes {
        message.push('\n');
        message.push_str(n);
    }
    obj(vec![
        ("ruleId", text(d.code.id())),
        ("level", text(level(d.severity))),
        ("message", obj(vec![("text", text(message))])),
        (
            "locations",
            JsonValue::Arr(vec![obj(vec![(
                "physicalLocation",
                obj(vec![
                    ("artifactLocation", obj(vec![("uri", text(program))])),
                    (
                        "region",
                        obj(vec![
                            ("byteOffset", JsonValue::Uint(d.span.start)),
                            (
                                "byteLength",
                                JsonValue::Uint(d.span.end.saturating_sub(d.span.start)),
                            ),
                        ]),
                    ),
                ]),
            )])]),
        ),
        ("properties", obj(props)),
    ])
}

/// Renders one or more analyzed programs' findings as a SARIF 2.1.0 log
/// (a single run; each program becomes one artifact URI).
#[must_use]
pub fn to_sarif(runs: &[(String, Vec<Diagnostic>)]) -> JsonValue {
    let results: Vec<JsonValue> =
        runs.iter().flat_map(|(name, diags)| diags.iter().map(|d| result(name, d))).collect();
    obj(vec![
        ("$schema", text(SCHEMA_URI)),
        ("version", text("2.1.0")),
        (
            "runs",
            JsonValue::Arr(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", text("safedm-analysis")),
                            ("version", text(env!("CARGO_PKG_VERSION"))),
                            ("informationUri", text("https://example.com/safedm")),
                            ("rules", rules()),
                        ]),
                    )]),
                ),
                ("results", JsonValue::Arr(results)),
            ])]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::PcSpan;
    use safedm_obs::json;

    fn finding(code: LintCode, start: u64) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            span: PcSpan { start, end: start + 8 },
            message: format!("finding at {start:#x}"),
            notes: vec!["note: extra context".into()],
            period: Some(2),
            min_safe_stagger: None,
        }
    }

    #[test]
    fn emitted_log_parses_back_with_rules_and_results() {
        let runs = vec![
            ("fac".to_owned(), vec![finding(LintCode::Div001, 0x8000_0010)]),
            ("bitcount".to_owned(), vec![finding(LintCode::Div003, 0x8000_0200)]),
        ];
        let doc = to_sarif(&runs);
        let parsed = json::parse(&doc.render()).expect("valid JSON");
        assert_eq!(parsed.get("version").and_then(JsonValue::as_str), Some("2.1.0"));
        assert_eq!(parsed.get("$schema").and_then(JsonValue::as_str), Some(SCHEMA_URI));

        let run = &parsed.get("runs").unwrap().as_array().unwrap()[0];
        let driver = run.get("tool").unwrap().get("driver").unwrap();
        assert_eq!(driver.get("name").and_then(JsonValue::as_str), Some("safedm-analysis"));
        let rules = driver.get("rules").unwrap().as_array().unwrap();
        assert_eq!(rules.len(), LintCode::ALL.len());
        assert_eq!(rules[0].get("id").and_then(JsonValue::as_str), Some("DIV001"));

        let results = run.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("ruleId").and_then(JsonValue::as_str), Some("DIV001"));
        assert_eq!(results[0].get("level").and_then(JsonValue::as_str), Some("error"));
        assert_eq!(results[1].get("level").and_then(JsonValue::as_str), Some("warning"));
        let loc = results[0].get("locations").unwrap().as_array().unwrap()[0]
            .get("physicalLocation")
            .unwrap();
        assert_eq!(
            loc.get("artifactLocation").unwrap().get("uri").and_then(JsonValue::as_str),
            Some("fac")
        );
        assert_eq!(
            loc.get("region").unwrap().get("byteOffset").and_then(JsonValue::as_u64),
            Some(0x8000_0010)
        );
        let props = results[0].get("properties").unwrap();
        assert_eq!(props.get("pc").and_then(JsonValue::as_str), Some("0x80000010"));
        assert_eq!(props.get("period").and_then(JsonValue::as_u64), Some(2));
    }

    #[test]
    fn notes_fold_into_the_message_text() {
        let doc = to_sarif(&[("p".to_owned(), vec![finding(LintCode::Div002, 0x1000)])]);
        let parsed = json::parse(&doc.render()).unwrap();
        let msg = parsed.get("runs").unwrap().as_array().unwrap()[0]
            .get("results")
            .unwrap()
            .as_array()
            .unwrap()[0]
            .get("message")
            .unwrap()
            .get("text")
            .and_then(JsonValue::as_str)
            .unwrap()
            .to_owned();
        assert!(msg.contains("finding at") && msg.contains("extra context"), "{msg}");
    }

    #[test]
    fn empty_input_still_produces_a_valid_log() {
        let doc = to_sarif(&[]);
        let parsed = json::parse(&doc.render()).unwrap();
        let run = &parsed.get("runs").unwrap().as_array().unwrap()[0];
        assert_eq!(run.get("results").unwrap().as_array().unwrap().len(), 0);
    }
}
