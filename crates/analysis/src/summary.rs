//! Bottom-up interprocedural function summaries.
//!
//! For every function of the [`CallGraph`] a [`FnSummary`] records the facts
//! the intraprocedural prover needs at a call site:
//!
//! * **frame shape** — the net stack-pointer delta across an activation
//!   (`sp_delta`, `Some(0)` = provably balanced), the maximum frame
//!   excursion, the spilled callee-saved registers and spill-slot count;
//! * **register effects** — the may-clobber and may-read masks, closed
//!   transitively over callees;
//! * **relational facts** — whether the callee is CSR-free (the only
//!   architectural divergence source between the redundant cores is
//!   `mhartid`) and whether it may store, which together decide whether the
//!   inter-core register deltas and the memory mirror survive the call;
//! * **stagger-offset transfer** — the exact committed-instruction count of
//!   one activation when it is path-invariant, so loop certificates can
//!   account for callee commits;
//! * **composition** — for straight-line leaf callees, the slot sequence of
//!   the body, which [`crate::absint::prove`] splices into enclosing loop
//!   bodies instead of bailing at the call.
//!
//! Summaries are computed callee-first over the SCC condensation. Recursive
//! components are handled coinductively: members start from the hypothesis
//! `sp_delta == Some(0)`, and the hypothesis is kept only when every member's
//! recomputed delta confirms it (each activation balances given that its
//! recursive calls balance; the non-recursive base paths anchor the
//! induction). Unresolved indirect calls poison every fact conservatively.

use std::collections::BTreeSet;

use safedm_isa::{Inst, Reg};

use crate::callgraph::CallGraph;
use crate::cfg::{Cfg, DecodedProgram, Terminator};
use crate::dataflow::ConstProp;

/// Callee-saved registers of the RV64 calling convention (`ra`, `s0`–`s11`):
/// the registers a well-formed callee spills before reuse.
pub const CALLEE_SAVED: u32 = {
    let mut m = 1 << 1; // ra
    m |= 1 << 8; // s0
    m |= 1 << 9; // s1
    let mut i = 18; // s2..s11
    while i <= 27 {
        m |= 1 << i;
        i += 1;
    }
    m
};

/// Every register except `x0` (which is never writable): the worst-case
/// may-clobber / may-use mask of an unknown callee.
pub const ALL_WRITABLE: u32 = !1;

/// Interprocedural facts about one function, in the caller's frame of
/// reference.
#[derive(Debug, Clone)]
pub struct FnSummary {
    /// Entry address.
    pub entry: u64,
    /// Registers the activation may leave changed, transitively over
    /// callees (32-bit mask, bit *i* = `x{i}`; `x0` never set).
    pub clobbers: u32,
    /// Registers the activation may read, transitively over callees.
    pub uses: u32,
    /// Net stack-pointer change across one activation, when every path
    /// agrees statically; `Some(0)` means provably balanced.
    pub sp_delta: Option<i64>,
    /// Maximum bytes the frame extends below the entry `sp`, when the
    /// stack discipline is statically tracked on every path.
    pub frame_bytes: Option<u64>,
    /// Callee-saved registers stored to the function's own frame.
    pub saved: u32,
    /// Distinct static `sp`-relative store offsets (spill slots).
    pub spill_slots: u32,
    /// Committed instructions of one activation, when path-invariant
    /// (the stagger-offset a call contributes to its caller's stream).
    pub insts: Option<u64>,
    /// No CSR read anywhere in the activation (transitively): the one
    /// architectural divergence source between the cores is absent, so
    /// delta-zero inputs give delta-zero outputs and a preserved mirror.
    pub csr_free: bool,
    /// The activation may store to memory (transitively).
    pub may_store: bool,
    /// The slot sequence of a straight-line leaf body (entry through `ret`,
    /// inclusive), when the function is composable into caller loop bodies.
    pub body: Option<Vec<usize>>,
    /// Whether the function can re-enter itself.
    pub recursive: bool,
    /// Whether the function can return.
    pub returns: bool,
}

impl FnSummary {
    /// The summary of a wholly unknown callee: everything clobbered,
    /// everything read, nothing balanced.
    #[must_use]
    pub fn unknown(entry: u64) -> FnSummary {
        FnSummary {
            entry,
            clobbers: ALL_WRITABLE,
            uses: ALL_WRITABLE,
            sp_delta: None,
            frame_bytes: None,
            saved: 0,
            spill_slots: 0,
            insts: None,
            csr_free: false,
            may_store: true,
            body: None,
            recursive: false,
            returns: true,
        }
    }

    /// One-line rendering used by reports and goldens.
    #[must_use]
    pub fn render_line(&self) -> String {
        let opt_i64 = |v: Option<i64>| v.map_or("?".to_owned(), |d| d.to_string());
        let opt_u64 = |v: Option<u64>| v.map_or("?".to_owned(), |d| d.to_string());
        format!(
            "summary @{:#x}: clobbers={:#010x} uses={:#010x} sp-delta={} frame={} saved={:#010x} \
             spills={} insts={} csr-free={} may-store={} composable={} recursive={} returns={}",
            self.entry,
            self.clobbers,
            self.uses,
            opt_i64(self.sp_delta),
            opt_u64(self.frame_bytes),
            self.saved,
            self.spill_slots,
            opt_u64(self.insts),
            self.csr_free,
            self.may_store,
            self.body.is_some(),
            self.recursive,
            self.returns
        )
    }
}

/// The abstract effect a call applies at its fall-through point, derived
/// from the callee's summary (or the unknown-callee worst case).
#[derive(Debug, Clone, Copy)]
pub struct CallEffect {
    /// Registers to havoc.
    pub clobbers: u32,
    /// Net `sp` adjustment, when known.
    pub sp_delta: Option<i64>,
    /// Registers whose inter-core delta must be zero at the call for the
    /// callee's outputs to be provably delta-zero.
    pub uses: u32,
    /// Whether the callee is transitively CSR-free.
    pub csr_free: bool,
    /// Whether the callee may store.
    pub may_store: bool,
    /// Whether control provably comes back through `ret`, preserving `ra`.
    pub ra_restored: bool,
}

impl CallEffect {
    /// The worst case: an unknown callee.
    #[must_use]
    pub fn unknown() -> CallEffect {
        CallEffect {
            clobbers: ALL_WRITABLE,
            sp_delta: None,
            uses: ALL_WRITABLE,
            csr_free: false,
            may_store: true,
            ra_restored: false,
        }
    }
}

impl From<&FnSummary> for CallEffect {
    fn from(s: &FnSummary) -> CallEffect {
        CallEffect {
            clobbers: s.clobbers,
            sp_delta: s.sp_delta,
            uses: s.uses,
            csr_free: s.csr_free,
            may_store: s.may_store,
            ra_restored: s.returns,
        }
    }
}

/// Per-function summaries, parallel to [`CallGraph::functions`].
#[derive(Debug, Clone)]
pub struct Summaries {
    /// `list[i]` summarises `callgraph.functions[i]`.
    pub list: Vec<FnSummary>,
}

/// One statically-tracked quantity along the frame dataflow: a known value
/// or an absorbing unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    Known(i64),
    Unknown,
}

impl Val {
    fn meet(self, other: Val) -> Val {
        match (self, other) {
            (Val::Known(a), Val::Known(b)) if a == b => Val::Known(a),
            _ => Val::Unknown,
        }
    }

    fn add(self, d: Option<i64>) -> Val {
        match (self, d) {
            (Val::Known(a), Some(d)) => Val::Known(a.wrapping_add(d)),
            _ => Val::Unknown,
        }
    }

    fn known(self) -> Option<i64> {
        match self {
            Val::Known(v) => Some(v),
            Val::Unknown => None,
        }
    }
}

/// Per-block frame-dataflow state: running `sp` offset from the entry `sp`,
/// running committed-instruction count, and the lowest `sp` offset seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FrameFlow {
    sp: Val,
    insts: Val,
    min_sp: i64,
}

impl FrameFlow {
    fn meet(self, other: FrameFlow) -> FrameFlow {
        FrameFlow {
            sp: self.sp.meet(other.sp),
            insts: self.insts.meet(other.insts),
            min_sp: self.min_sp.min(other.min_sp),
        }
    }
}

impl Summaries {
    /// Computes summaries bottom-up over the call graph's SCC condensation.
    #[must_use]
    pub fn compute(prog: &DecodedProgram, cfg: &Cfg, cg: &CallGraph) -> Summaries {
        let n = cg.functions.len();
        let mut list: Vec<FnSummary> = cg
            .functions
            .iter()
            .map(|f| FnSummary {
                entry: f.entry,
                clobbers: 0,
                uses: 0,
                sp_delta: Some(0),
                frame_bytes: None,
                saved: 0,
                spill_slots: 0,
                insts: None,
                csr_free: true,
                may_store: false,
                body: None,
                recursive: f.recursive,
                returns: f.returns,
            })
            .collect();
        if n == 0 {
            return Summaries { list };
        }

        for comp in &cg.sccs {
            // Masks and flags close over the component by monotone
            // iteration; bounded by the 32-bit masks, so it terminates fast.
            loop {
                let mut changed = false;
                for &fi in comp {
                    let (clob, uses, csr_free, may_store) =
                        direct_effects(prog, cfg, cg, &list, fi);
                    let s = &mut list[fi];
                    if s.clobbers != clob
                        || s.uses != uses
                        || s.csr_free != csr_free
                        || s.may_store != may_store
                    {
                        s.clobbers = clob;
                        s.uses = uses;
                        s.csr_free = csr_free;
                        s.may_store = may_store;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }

            // Frame shape + instruction count. Recursive components start
            // from the balanced hypothesis `sp_delta = Some(0)` (already the
            // initial value); it is kept only when every member confirms it.
            let shapes: Vec<Option<FrameShape>> =
                comp.iter().map(|&fi| frame_shape(prog, cfg, cg, &list, fi)).collect();
            let recursive = cg.functions[comp[0]].recursive;
            let confirmed = !recursive
                || shapes.iter().all(|s| s.as_ref().is_some_and(|s| s.sp_delta == Some(0)));
            for (&fi, shape) in comp.iter().zip(&shapes) {
                let s = &mut list[fi];
                match (confirmed, shape) {
                    (true, Some(sh)) => {
                        s.sp_delta = sh.sp_delta;
                        s.frame_bytes = sh.frame_bytes;
                        s.insts = if recursive { None } else { sh.insts };
                    }
                    _ => {
                        s.sp_delta = None;
                        s.frame_bytes = None;
                        s.insts = None;
                    }
                }
                let (saved, spill_slots) = spills(prog, cfg, cg, fi);
                s.saved = saved;
                s.spill_slots = spill_slots;
            }

            // Straight-line leaf bodies compose into caller loops.
            for &fi in comp {
                if !cg.functions[fi].recursive {
                    list[fi].body = straight_line_body(prog, cfg, cg, fi);
                }
            }
        }

        // A provably balanced callee leaves `sp` as it found it: the caller
        // keeps its frame fact even though the callee wrote `sp` inside.
        for s in &mut list {
            if s.sp_delta == Some(0) {
                s.clobbers &= !Reg::SP.bit();
            }
        }

        Summaries { list }
    }

    /// The summary for the function entered at `pc`.
    #[must_use]
    pub fn of_entry(&self, cg: &CallGraph, pc: u64) -> Option<&FnSummary> {
        cg.function_at(pc).map(|i| &self.list[i])
    }

    /// Deterministic multi-line rendering, one line per function.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.list {
            out.push_str(&s.render_line());
            out.push('\n');
        }
        out
    }
}

/// Union of the component-visible effects of function `fi`: its own
/// instructions plus the current summaries of everything it calls.
fn direct_effects(
    prog: &DecodedProgram,
    cfg: &Cfg,
    cg: &CallGraph,
    list: &[FnSummary],
    fi: usize,
) -> (u32, u32, bool, bool) {
    let f = &cg.functions[fi];
    let mut clobbers = 0u32;
    let mut uses = 0u32;
    let mut csr_free = true;
    let mut may_store = false;
    for &bid in &f.blocks {
        let b = &cfg.blocks[bid];
        for i in b.start..b.end {
            let Some(inst) = prog.slots[i].inst else { continue };
            clobbers |= inst.def_mask();
            uses |= inst.use_mask();
            csr_free &= !matches!(inst, Inst::Csr { .. } | Inst::CsrImm { .. });
            may_store |= inst.is_store();
        }
    }
    if f.irregular {
        return (ALL_WRITABLE, ALL_WRITABLE, false, true);
    }
    for &si in &f.sites {
        match cg.sites[si].callee {
            Some(j) => {
                clobbers |= list[j].clobbers;
                uses |= list[j].uses;
                csr_free &= list[j].csr_free;
                may_store |= list[j].may_store;
            }
            None => return (ALL_WRITABLE, ALL_WRITABLE, false, true),
        }
    }
    (clobbers, uses, csr_free, may_store)
}

struct FrameShape {
    sp_delta: Option<i64>,
    frame_bytes: Option<u64>,
    insts: Option<u64>,
}

/// Forward dataflow over one function's blocks tracking the running `sp`
/// offset and instruction count; `None` when the walk cannot even start.
fn frame_shape(
    prog: &DecodedProgram,
    cfg: &Cfg,
    cg: &CallGraph,
    list: &[FnSummary],
    fi: usize,
) -> Option<FrameShape> {
    let f = &cg.functions[fi];
    let entry = FrameFlow { sp: Val::Known(0), insts: Val::Known(0), min_sp: 0 };
    let mut flow_in: std::collections::BTreeMap<usize, FrameFlow> =
        std::collections::BTreeMap::new();
    flow_in.insert(f.entry_block, entry);
    let mut exits: Vec<FrameFlow> = Vec::new();
    let mut sp_tracked = true;
    let mut global_min = 0i64;

    let mut work = vec![f.entry_block];
    let mut steps = 0usize;
    while let Some(bid) = work.pop() {
        steps += 1;
        if steps > 64 * f.blocks.len().max(1) {
            sp_tracked = false;
            break;
        }
        let Some(&inflow) = flow_in.get(&bid) else { continue };
        let b = &cfg.blocks[bid];
        let mut st = inflow;
        let last = b.end - 1;
        let call = cg.site_at_slot(last).filter(|s| s.block == bid);
        for i in b.start..b.end {
            let Some(inst) = prog.slots[i].inst else {
                st.sp = Val::Unknown;
                st.insts = Val::Unknown;
                continue;
            };
            st.insts = st.insts.add(Some(1));
            if call.is_some() && i == last {
                // The call instruction itself committed above; now add the
                // callee's activation.
                let callee = call.and_then(|s| s.callee).map(|j| &list[j]);
                st.sp = st.sp.add(callee.and_then(|c| c.sp_delta));
                st.insts = match callee.and_then(|c| c.insts) {
                    Some(k) => st.insts.add(Some(k as i64)),
                    None => Val::Unknown,
                };
            } else if inst.rd() == Some(Reg::SP) {
                match inst {
                    Inst::OpImm { kind: safedm_isa::AluKind::Add, rs1: Reg::SP, imm, .. } => {
                        st.sp = st.sp.add(Some(imm));
                    }
                    _ => st.sp = Val::Unknown,
                }
            }
            if let Val::Known(sp) = st.sp {
                st.min_sp = st.min_sp.min(sp);
                global_min = global_min.min(sp);
            } else {
                sp_tracked = false;
            }
        }

        // Where does the flow go inside this function?
        let push = |next: usize,
                    st: FrameFlow,
                    flow_in: &mut std::collections::BTreeMap<usize, FrameFlow>,
                    work: &mut Vec<usize>| {
            if !f.blocks.contains(&next) {
                return;
            }
            let merged = flow_in.get(&next).map_or(st, |old| old.meet(st));
            if flow_in.get(&next) != Some(&merged) {
                flow_in.insert(next, merged);
                work.push(next);
            }
        };
        if call.is_some() {
            if last + 1 < prog.slots.len() {
                if let Some(next) = cfg.block_of_slot(last + 1) {
                    push(next, st, &mut flow_in, &mut work);
                }
            }
        } else if b.term == Terminator::IndirectJump {
            let is_ret = matches!(
                prog.slots[last].inst,
                Some(Inst::Jalr { rd, rs1, .. }) if rd.is_zero() && rs1 == Reg::RA
            );
            if is_ret {
                exits.push(st);
            } else {
                // A computed jump we cannot follow: stop trusting the frame.
                sp_tracked = false;
            }
        } else {
            for &s in &b.succs {
                push(s, st, &mut flow_in, &mut work);
            }
        }
    }

    let exit = exits.into_iter().reduce(FrameFlow::meet);
    let sp_delta = exit.and_then(|e| e.sp.known());
    let insts = exit.and_then(|e| e.insts.known()).and_then(|v| u64::try_from(v).ok());
    let frame_bytes = (sp_tracked && global_min <= 0).then_some((-global_min) as u64);
    Some(FrameShape { sp_delta, frame_bytes, insts })
}

/// Callee-saved spill mask and distinct `sp`-relative store offsets.
fn spills(prog: &DecodedProgram, cfg: &Cfg, cg: &CallGraph, fi: usize) -> (u32, u32) {
    let mut saved = 0u32;
    let mut offsets: BTreeSet<i64> = BTreeSet::new();
    for &bid in &cg.functions[fi].blocks {
        let b = &cfg.blocks[bid];
        for i in b.start..b.end {
            if let Some(Inst::Store { rs1: Reg::SP, rs2, offset, .. }) = prog.slots[i].inst {
                offsets.insert(offset);
                saved |= rs2.bit() & CALLEE_SAVED;
            }
        }
    }
    (saved, offsets.len() as u32)
}

/// The slot sequence of a straight-line leaf body: entry through `ret`, no
/// branches, no calls, every block with exactly one in-function successor.
fn straight_line_body(
    prog: &DecodedProgram,
    cfg: &Cfg,
    cg: &CallGraph,
    fi: usize,
) -> Option<Vec<usize>> {
    const MAX_BODY: usize = 512;
    let f = &cg.functions[fi];
    if !f.returns || f.irregular || !f.sites.is_empty() {
        return None;
    }
    let mut seq = Vec::new();
    let mut seen = BTreeSet::new();
    let mut bid = f.entry_block;
    loop {
        if !seen.insert(bid) || seq.len() > MAX_BODY {
            return None;
        }
        let b = &cfg.blocks[bid];
        seq.extend(b.start..b.end);
        match b.term {
            Terminator::IndirectJump => {
                // The leaf walk only reaches `ret`-shaped indirect jumps.
                let last = b.end - 1;
                return matches!(
                    prog.slots[last].inst,
                    Some(Inst::Jalr { rd, rs1, .. }) if rd.is_zero() && rs1 == Reg::RA
                )
                .then_some(seq);
            }
            Terminator::FallThrough | Terminator::Jump => {
                let inside: Vec<usize> =
                    b.succs.iter().copied().filter(|s| f.blocks.contains(s)).collect();
                let [next] = inside.as_slice() else { return None };
                bid = *next;
            }
            Terminator::Branch | Terminator::Halt => return None,
        }
    }
}

/// The call graph and its summaries, bundled for the prover.
#[derive(Debug, Clone)]
pub struct Interproc {
    /// The whole-program call graph.
    pub callgraph: CallGraph,
    /// Per-function summaries, parallel to `callgraph.functions`.
    pub summaries: Summaries,
}

impl Interproc {
    /// Builds the call graph and summaries for a decoded program.
    #[must_use]
    pub fn compute(prog: &DecodedProgram, cfg: &Cfg, constprop: &ConstProp) -> Interproc {
        let callgraph = CallGraph::build(prog, cfg, constprop);
        let summaries = Summaries::compute(prog, cfg, &callgraph);
        Interproc { callgraph, summaries }
    }

    /// The callee summary for the call instruction at slot `slot`, when the
    /// site resolves to a discovered function.
    #[must_use]
    pub fn summary_for_slot(&self, slot: usize) -> Option<&FnSummary> {
        let site = self.callgraph.site_at_slot(slot)?;
        site.callee.map(|j| &self.summaries.list[j])
    }

    /// The abstract effect of the call at slot `slot` (worst case for
    /// unresolved or undiscovered callees).
    #[must_use]
    pub fn effect_for_slot(&self, slot: usize) -> CallEffect {
        self.summary_for_slot(slot).map_or_else(CallEffect::unknown, CallEffect::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_asm::Asm;

    fn summarize(f: impl FnOnce(&mut Asm)) -> (DecodedProgram, Cfg, CallGraph, Summaries) {
        let mut a = Asm::new();
        f(&mut a);
        let p = DecodedProgram::from_program(&a.link(0x8000_0000).unwrap());
        let c = Cfg::build(&p);
        let cp = ConstProp::compute(&p, &c);
        let g = CallGraph::build(&p, &c, &cp);
        let s = Summaries::compute(&p, &c, &g);
        (p, c, g, s)
    }

    /// A balanced leaf with one spill: `addi sp,sp,-16; sd s0; ...; ld s0;
    /// addi sp,sp,16; ret`.
    fn balanced_leaf(a: &mut Asm, f: safedm_asm::Label) {
        a.bind(f).unwrap();
        a.addi(Reg::SP, Reg::SP, -16);
        a.sd(Reg::S0, 0, Reg::SP);
        a.addi(Reg::S0, Reg::A0, 1);
        a.add(Reg::A0, Reg::S0, Reg::A0);
        a.ld(Reg::S0, 0, Reg::SP);
        a.addi(Reg::SP, Reg::SP, 16);
        a.ret();
    }

    #[test]
    fn balanced_leaf_summary_is_precise() {
        let (_, _, g, s) = summarize(|a| {
            let f = a.new_label("f");
            a.call(f);
            a.ebreak();
            balanced_leaf(a, f);
        });
        let fi = g.function_at(0x8000_0000).map(|e| 1 - e).unwrap(); // the other one
        let sum = &s.list[fi];
        assert_eq!(sum.sp_delta, Some(0), "{}", sum.render_line());
        assert_eq!(sum.frame_bytes, Some(16));
        assert_ne!(sum.saved & Reg::S0.bit(), 0);
        assert_eq!(sum.spill_slots, 1);
        assert_eq!(sum.insts, Some(7));
        assert!(sum.csr_free);
        assert!(sum.may_store);
        // Balanced: sp is not reported clobbered, but s0/a0 are.
        assert_eq!(sum.clobbers & Reg::SP.bit(), 0);
        assert_ne!(sum.clobbers & Reg::A0.bit(), 0);
        assert_ne!(sum.clobbers & Reg::S0.bit(), 0);
        // Straight-line leaf: composable.
        assert_eq!(sum.body.as_ref().map(Vec::len), Some(7));
    }

    #[test]
    fn caller_inherits_callee_effects_transitively() {
        let (_, _, g, s) = summarize(|a| {
            let f = a.new_label("f");
            let h = a.new_label("h");
            a.call(f);
            a.ebreak();
            a.bind(f).unwrap();
            a.call(h);
            a.ret();
            a.bind(h).unwrap();
            a.sw(Reg::T1, 0, Reg::GP);
            a.addi(Reg::T1, Reg::T1, 1);
            a.ret();
        });
        let entry = g.function_at(0x8000_0000).unwrap();
        let sum = &s.list[entry];
        assert_ne!(sum.clobbers & Reg::T1.bit(), 0, "{}", sum.render_line());
        assert!(sum.may_store);
        assert!(sum.csr_free);
        // `f` calls through to `h`, so it is not a leaf: not composable.
        let f_idx =
            g.functions.iter().position(|f| !f.sites.is_empty() && f.entry != 0x8000_0000).unwrap();
        assert!(s.list[f_idx].body.is_none());
    }

    #[test]
    fn recursive_balanced_function_confirms_the_hypothesis() {
        let (_, _, g, s) = summarize(|a| {
            let f = a.new_label("f");
            let done = a.new_label("done");
            a.call(f);
            a.ebreak();
            a.bind(f).unwrap();
            a.addi(Reg::SP, Reg::SP, -16);
            a.sd(Reg::RA, 0, Reg::SP);
            a.beqz(Reg::A0, done);
            a.addi(Reg::A0, Reg::A0, -1);
            a.call(f);
            a.bind(done).unwrap();
            a.ld(Reg::RA, 0, Reg::SP);
            a.addi(Reg::SP, Reg::SP, 16);
            a.ret();
        });
        let fi = g.functions.iter().position(|f| f.recursive).unwrap();
        let sum = &s.list[fi];
        assert_eq!(sum.sp_delta, Some(0), "{}", sum.render_line());
        assert!(sum.recursive);
        // Depth-dependent commit count: never path-invariant.
        assert_eq!(sum.insts, None);
        assert!(sum.body.is_none());
        assert_ne!(sum.saved & Reg::RA.bit(), 0);
    }

    #[test]
    fn unbalanced_frame_poisons_sp_delta() {
        let (_, _, g, s) = summarize(|a| {
            let f = a.new_label("f");
            a.call(f);
            a.ebreak();
            a.bind(f).unwrap();
            a.addi(Reg::SP, Reg::SP, -32);
            a.ret(); // leaks 32 bytes
        });
        let fi = g.function_at(0x8000_0000).map(|e| 1 - e).unwrap();
        assert_eq!(s.list[fi].sp_delta, Some(-32), "{}", s.list[fi].render_line());
        // The caller's own delta across the call is then also -32.
        let entry = g.function_at(0x8000_0000).unwrap();
        // sp stays in the callee's clobber mask (not balanced).
        assert_ne!(s.list[fi].clobbers & Reg::SP.bit(), 0);
        let _ = entry;
    }

    #[test]
    fn unresolved_call_poisons_everything() {
        let (_, _, g, s) = summarize(|a| {
            a.ld(Reg::T0, 0, Reg::SP);
            a.jalr(Reg::RA, Reg::T0, 0);
            a.ebreak();
        });
        let entry = g.function_at(0x8000_0000).unwrap();
        let sum = &s.list[entry];
        assert_eq!(sum.clobbers, ALL_WRITABLE, "{}", sum.render_line());
        assert_eq!(sum.sp_delta, None);
        assert!(!sum.csr_free);
        assert!(sum.may_store);
    }

    #[test]
    fn branchy_leaf_is_not_composable_but_keeps_frame_facts() {
        let (_, _, g, s) = summarize(|a| {
            let f = a.new_label("f");
            let skip = a.new_label("skip");
            a.call(f);
            a.ebreak();
            a.bind(f).unwrap();
            a.beqz(Reg::A0, skip);
            a.addi(Reg::A0, Reg::A0, -1);
            a.bind(skip).unwrap();
            a.ret();
        });
        let fi = g.function_at(0x8000_0000).map(|e| 1 - e).unwrap();
        let sum = &s.list[fi];
        assert!(sum.body.is_none(), "{}", sum.render_line());
        assert_eq!(sum.sp_delta, Some(0));
        // Path-dependent commit count (2 vs 3): not invariant.
        assert_eq!(sum.insts, None);
    }

    #[test]
    fn hartid_read_breaks_csr_freedom() {
        let (_, _, g, s) = summarize(|a| {
            let f = a.new_label("f");
            a.call(f);
            a.ebreak();
            a.bind(f).unwrap();
            a.hartid(Reg::T0);
            a.ret();
        });
        let entry = g.function_at(0x8000_0000).unwrap();
        assert!(!s.list[entry].csr_free, "{}", s.list[entry].render_line());
    }
}
