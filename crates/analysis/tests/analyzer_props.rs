//! Property tests: the analyzer never panics on any program the assembler
//! can produce, its CFG partitions the decoded text into well-formed blocks
//! whose edges land on decoded instruction boundaries, and diagnostics stay
//! inside the text section.

use proptest::collection::vec;
use proptest::prelude::*;

use safedm_analysis::{analyze, AnalysisConfig, Cfg, DecodedProgram};
use safedm_asm::{Asm, Label, Program};
use safedm_isa::Reg;

/// Builds a linked program from a generated op list: arithmetic, memory,
/// and control flow against a pool of labels scattered through the text.
fn build_program(ops: &[(u8, u8, u8, i64)]) -> Program {
    let mut a = Asm::new();
    let nlabels = ops.len() / 4 + 1;
    let labels: Vec<Label> = (0..nlabels).map(|i| a.new_label(&format!("l{i}"))).collect();
    let mut next = 0usize;
    for (i, &(sel, x, y, imm)) in ops.iter().enumerate() {
        if i % 4 == 0 && next < nlabels {
            a.bind(labels[next]).unwrap();
            next += 1;
        }
        let rd = Reg::new(x % 32);
        let rs = Reg::new(y % 32);
        let target = labels[(x as usize) % nlabels];
        match sel % 8 {
            0 => {
                a.nop();
            }
            1 => {
                a.addi(rd, rs, imm);
            }
            2 => {
                a.lw(rd, imm & !3, Reg::SP);
            }
            3 => {
                a.sw(rs, imm & !3, Reg::SP);
            }
            4 => {
                a.beq(rd, rs, target);
            }
            5 => {
                a.j(target);
            }
            6 => {
                a.mv(rd, rs);
            }
            _ => {
                a.hartid(rd);
            }
        }
    }
    while next < nlabels {
        a.bind(labels[next]).unwrap();
        next += 1;
    }
    a.ebreak();
    a.link(0x8000_0000).unwrap()
}

/// CFG well-formedness: blocks partition the slots in address order, edges
/// are symmetric, and every edge target starts at a decoded boundary.
fn check_cfg(prog: &DecodedProgram, cfg: &Cfg) {
    let mut covered = 0usize;
    for (i, b) in cfg.blocks.iter().enumerate() {
        assert_eq!(b.id, i);
        assert_eq!(b.start, covered, "blocks must tile the text in order");
        assert!(b.start < b.end && b.end <= prog.slots.len());
        covered = b.end;
        for &s in &b.succs {
            assert!(s < cfg.blocks.len());
            let spc = prog.pc_of(cfg.blocks[s].start);
            assert!(prog.index_of(spc).is_some(), "edge target off instruction boundary");
            assert!(cfg.blocks[s].preds.contains(&b.id), "missing reverse edge");
        }
        for &p in &b.preds {
            assert!(cfg.blocks[p].succs.contains(&b.id), "missing forward edge");
        }
    }
    assert_eq!(covered, prog.slots.len(), "blocks must cover every slot");
    for lp in &cfg.loops {
        assert!(lp.blocks.contains(&lp.header));
        assert!(!lp.latches.is_empty());
        assert!(lp.insts >= 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Structured random programs: analysis completes and all invariants
    /// hold, with and without a configured stagger.
    fn analyzer_handles_assembled_programs(
        ops in vec((0u8..8, 0u8..32, 0u8..32, -64i64..64), 1..120),
        stagger in 0u64..64,
    ) {
        let prog = build_program(&ops);
        let report = analyze(&prog, &AnalysisConfig::default());
        check_cfg(&report.program, &report.cfg);
        for d in &report.diagnostics {
            prop_assert!(d.span.start >= prog.text_base);
            prop_assert!(d.span.end <= prog.text_base + prog.text.len() as u64);
            prop_assert!(d.span.start % 4 == 0 && d.span.end % 4 == 0);
            prop_assert!(d.span.insts() >= 1);
            // Rendering never panics either.
            let _ = d.render(&report.program, 6);
        }
        let cfg = AnalysisConfig { stagger_nops: Some(stagger), ..AnalysisConfig::default() };
        let _ = analyze(&prog, &cfg);
    }

    /// Raw-word fuzz: arbitrary (mostly undecodable) text sections never
    /// panic the decoder, CFG builder, or lints.
    fn analyzer_handles_arbitrary_words(words in vec(any::<u32>(), 0..256)) {
        let mut a = Asm::new();
        for &w in &words {
            a.word(w);
        }
        let prog = a.link(0x8000_0000).unwrap();
        let report = analyze(&prog, &AnalysisConfig::default());
        check_cfg(&report.program, &report.cfg);
        let _ = report.render();
    }
}
