//! Scratch tests for review verification — delete before merge.

use safedm_analysis::cfg::{Cfg, DecodedProgram};
use safedm_analysis::{prove, AnalysisConfig, Verdict};
use safedm_asm::Asm;
use safedm_isa::Reg;

fn build(f: impl FnOnce(&mut Asm)) -> (DecodedProgram, Cfg) {
    let mut a = Asm::new();
    f(&mut a);
    let p = DecodedProgram::from_program(&a.link(0x8000_0000).unwrap());
    let c = Cfg::build(&p);
    (p, c)
}

// Irreducible cycle containing a counter increment: no natural loop header,
// so no widening — does AbsInt::compute terminate?
#[test]
fn irreducible_counter_terminates() {
    let (p, c) = build(|a| {
        let a_lbl = a.new_label("a");
        let b_lbl = a.new_label("b");
        a.bnez(Reg::A0, b_lbl); // entry -> {a, b}
        a.bind(a_lbl).unwrap();
        a.addi(Reg::T0, Reg::T0, 1); // counter inside the irreducible cycle
        a.j(b_lbl);
        a.bind(b_lbl).unwrap();
        a.nop();
        a.bnez(Reg::A1, a_lbl); // b -> a closes the cycle
        a.ebreak();
    });
    assert!(c.loops.is_empty(), "{:?}", c.loops);
    let _ = safedm_analysis::AbsInt::compute(&p, &c);
}

// Loop-invariant register seeded from mhartid before the loop: the loop body
// has no loads/CSRs, traffic is "invariant", but the two cores' data values
// differ by 1 at every sample — a collision can never occur. Does the prover
// still claim ProvedCollision at a stagger that is a multiple of the period?
#[test]
fn hartid_invariant_loop_not_proved_collision() {
    let mut a = Asm::new();
    a.hartid(Reg::S0); // s0 = 0 on core0, 1 on core1
    let l = a.new_label("l");
    a.bind(l).unwrap();
    a.addi(Reg::T1, Reg::S0, 1); // reads the cross-core-divergent s0
    a.j(l);
    let p = DecodedProgram::from_program(&a.link(0x8000_0000).unwrap());
    let c = Cfg::build(&p);
    let cfg = AnalysisConfig { stagger_nops: Some(4), ..AnalysisConfig::default() };
    let r = prove(&p, &c, &cfg);
    let cert = &r.certificates[0];
    eprintln!("cert = {cert:?}");
    assert_ne!(
        cert.verdict,
        Verdict::ProvedCollision,
        "data differs across cores (delta 1 via s0) at every cycle; \
         a no-diversity cycle cannot occur, yet the prover claims it must"
    );
}
