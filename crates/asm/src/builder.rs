//! The [`Asm`] program builder.

use std::collections::BTreeMap;

use safedm_isa::{encode, AluKind, BranchKind, CsrKind, Inst, LoadKind, Reg, StoreKind};

use crate::{AsmError, Program};

/// A handle to a position in the program, usable before it is bound.
///
/// Created with [`Asm::new_label`], bound with [`Asm::bind`] (in text) or by
/// the data-emitting methods (in data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) enum LabelPos {
    Text(u64),
    Data(u64),
}

#[derive(Debug, Clone)]
pub(crate) struct LabelInfo {
    pub(crate) name: String,
    pub(crate) pos: Option<LabelPos>,
}

#[derive(Debug, Clone)]
pub(crate) enum Item {
    Fixed(Inst),
    Raw(u32),
    Branch { kind: BranchKind, rs1: Reg, rs2: Reg, target: Label },
    Jal { rd: Reg, target: Label },
    La { rd: Reg, target: Label },
}

impl Item {
    pub(crate) fn size(&self) -> u64 {
        match self {
            Item::La { .. } => 8,
            _ => 4,
        }
    }
}

/// A programmatic RV64IM assembler.
///
/// Instructions are appended with one method per mnemonic; control flow uses
/// [`Label`]s which may be referenced before they are bound. [`Asm::link`]
/// resolves labels, lays out text and data, and produces a [`Program`].
///
/// # Examples
///
/// A count-down loop:
///
/// ```
/// use safedm_asm::Asm;
/// use safedm_isa::Reg;
///
/// let mut a = Asm::new();
/// a.li(Reg::T0, 10);
/// let top = a.new_label("top");
/// a.bind(top)?;
/// a.addi(Reg::T0, Reg::T0, -1);
/// a.bnez(Reg::T0, top);
/// a.ebreak();
/// let prog = a.link(0x8000_0000)?;
/// assert!(prog.inst_count() >= 4);
/// # Ok::<(), safedm_asm::AsmError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Asm {
    pub(crate) items: Vec<Item>,
    pub(crate) text_off: u64,
    pub(crate) labels: Vec<LabelInfo>,
    pub(crate) data: Vec<u8>,
    data_align: u64,
}

impl Asm {
    /// Creates an empty program builder.
    #[must_use]
    pub fn new() -> Asm {
        Asm { items: Vec::new(), text_off: 0, labels: Vec::new(), data: Vec::new(), data_align: 8 }
    }

    /// Creates a new, unbound label with a debug `name`.
    ///
    /// Names are used in error messages and exported as symbols; they do not
    /// need to be unique (labels are identified by the returned handle).
    pub fn new_label(&mut self, name: &str) -> Label {
        self.labels.push(LabelInfo { name: name.to_owned(), pos: None });
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current text position.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::DuplicateBind`] if the label is already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        let info = &mut self.labels[label.0];
        if info.pos.is_some() {
            return Err(AsmError::DuplicateBind { name: info.name.clone() });
        }
        info.pos = Some(LabelPos::Text(self.text_off));
        Ok(())
    }

    /// Creates and immediately binds a label at the current text position.
    ///
    /// # Panics
    ///
    /// Never panics: the fresh label cannot already be bound.
    pub fn here(&mut self, name: &str) -> Label {
        let l = self.new_label(name);
        self.bind(l).expect("fresh label cannot be bound");
        l
    }

    /// Current text offset in bytes (the address of the next instruction,
    /// relative to the link base).
    #[must_use]
    pub fn text_offset(&self) -> u64 {
        self.text_off
    }

    /// Number of items (instructions and raw words; an `la` pseudo counts
    /// as one item of two words) appended so far. The diversity transform's
    /// item permutation indexes into this sequence.
    #[must_use]
    pub fn item_count(&self) -> usize {
        self.items.len()
    }

    fn push(&mut self, item: Item) -> &mut Asm {
        self.text_off += item.size();
        self.items.push(item);
        self
    }

    /// Appends an already-constructed instruction.
    pub fn inst(&mut self, i: Inst) -> &mut Asm {
        self.push(Item::Fixed(i))
    }

    /// Appends a raw 32-bit word into the text section (e.g. to plant an
    /// illegal encoding for trap testing).
    pub fn word(&mut self, raw: u32) -> &mut Asm {
        self.push(Item::Raw(raw))
    }

    // ---- data section -----------------------------------------------------

    fn data_label(&mut self, name: &str) -> Label {
        // align before binding so the label points at the payload
        while !(self.data.len() as u64).is_multiple_of(self.data_align) {
            self.data.push(0);
        }
        self.labels.push(LabelInfo {
            name: name.to_owned(),
            pos: Some(LabelPos::Data(self.data.len() as u64)),
        });
        Label(self.labels.len() - 1)
    }

    /// Sets the alignment applied before each subsequent data object.
    pub fn data_alignment(&mut self, align: u64) -> &mut Asm {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.data_align = align;
        self
    }

    /// Emits raw bytes into the data section, returning their label.
    pub fn d_bytes(&mut self, name: &str, bytes: &[u8]) -> Label {
        let l = self.data_label(name);
        self.data.extend_from_slice(bytes);
        l
    }

    /// Emits little-endian 32-bit words into the data section.
    pub fn d_words(&mut self, name: &str, words: &[u32]) -> Label {
        let l = self.data_label(name);
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        l
    }

    /// Emits little-endian 64-bit doublewords into the data section.
    pub fn d_dwords(&mut self, name: &str, dwords: &[u64]) -> Label {
        let l = self.data_label(name);
        for d in dwords {
            self.data.extend_from_slice(&d.to_le_bytes());
        }
        l
    }

    /// Reserves `len` zeroed bytes in the data section.
    pub fn d_zero(&mut self, name: &str, len: u64) -> Label {
        let l = self.data_label(name);
        self.data.extend(std::iter::repeat_n(0u8, len as usize));
        l
    }

    // ---- register-register ops ---------------------------------------------

    fn op(&mut self, kind: AluKind, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.inst(Inst::Op { kind, rd, rs1, rs2 })
    }

    fn op_imm(&mut self, kind: AluKind, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.inst(Inst::OpImm { kind, rd, rs1, imm })
    }

    /// `add rd, rs1, rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Add, rd, rs1, rs2)
    }
    /// `sub rd, rs1, rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Sub, rd, rs1, rs2)
    }
    /// `sll rd, rs1, rs2`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Sll, rd, rs1, rs2)
    }
    /// `slt rd, rs1, rs2`
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Slt, rd, rs1, rs2)
    }
    /// `sltu rd, rs1, rs2`
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Sltu, rd, rs1, rs2)
    }
    /// `xor rd, rs1, rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Xor, rd, rs1, rs2)
    }
    /// `srl rd, rs1, rs2`
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Srl, rd, rs1, rs2)
    }
    /// `sra rd, rs1, rs2`
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Sra, rd, rs1, rs2)
    }
    /// `or rd, rs1, rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Or, rd, rs1, rs2)
    }
    /// `and rd, rs1, rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::And, rd, rs1, rs2)
    }
    /// `addw rd, rs1, rs2`
    pub fn addw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Addw, rd, rs1, rs2)
    }
    /// `subw rd, rs1, rs2`
    pub fn subw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Subw, rd, rs1, rs2)
    }
    /// `sllw rd, rs1, rs2`
    pub fn sllw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Sllw, rd, rs1, rs2)
    }
    /// `srlw rd, rs1, rs2`
    pub fn srlw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Srlw, rd, rs1, rs2)
    }
    /// `sraw rd, rs1, rs2`
    pub fn sraw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Sraw, rd, rs1, rs2)
    }
    /// `mul rd, rs1, rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Mul, rd, rs1, rs2)
    }
    /// `mulh rd, rs1, rs2`
    pub fn mulh(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Mulh, rd, rs1, rs2)
    }
    /// `mulhu rd, rs1, rs2`
    pub fn mulhu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Mulhu, rd, rs1, rs2)
    }
    /// `mulhsu rd, rs1, rs2`
    pub fn mulhsu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Mulhsu, rd, rs1, rs2)
    }
    /// `div rd, rs1, rs2`
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Div, rd, rs1, rs2)
    }
    /// `divu rd, rs1, rs2`
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Divu, rd, rs1, rs2)
    }
    /// `rem rd, rs1, rs2`
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Rem, rd, rs1, rs2)
    }
    /// `remu rd, rs1, rs2`
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Remu, rd, rs1, rs2)
    }
    /// `mulw rd, rs1, rs2`
    pub fn mulw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Mulw, rd, rs1, rs2)
    }
    /// `divw rd, rs1, rs2`
    pub fn divw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Divw, rd, rs1, rs2)
    }
    /// `divuw rd, rs1, rs2`
    pub fn divuw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Divuw, rd, rs1, rs2)
    }
    /// `remw rd, rs1, rs2`
    pub fn remw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Remw, rd, rs1, rs2)
    }
    /// `remuw rd, rs1, rs2`
    pub fn remuw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.op(AluKind::Remuw, rd, rs1, rs2)
    }

    // ---- register-immediate ops ---------------------------------------------

    /// `addi rd, rs1, imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.op_imm(AluKind::Add, rd, rs1, imm)
    }
    /// `slti rd, rs1, imm`
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.op_imm(AluKind::Slt, rd, rs1, imm)
    }
    /// `sltiu rd, rs1, imm`
    pub fn sltiu(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.op_imm(AluKind::Sltu, rd, rs1, imm)
    }
    /// `xori rd, rs1, imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.op_imm(AluKind::Xor, rd, rs1, imm)
    }
    /// `ori rd, rs1, imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.op_imm(AluKind::Or, rd, rs1, imm)
    }
    /// `andi rd, rs1, imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.op_imm(AluKind::And, rd, rs1, imm)
    }
    /// `slli rd, rs1, shamt`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: i64) -> &mut Asm {
        self.op_imm(AluKind::Sll, rd, rs1, shamt)
    }
    /// `srli rd, rs1, shamt`
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: i64) -> &mut Asm {
        self.op_imm(AluKind::Srl, rd, rs1, shamt)
    }
    /// `srai rd, rs1, shamt`
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: i64) -> &mut Asm {
        self.op_imm(AluKind::Sra, rd, rs1, shamt)
    }
    /// `addiw rd, rs1, imm`
    pub fn addiw(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.op_imm(AluKind::Addw, rd, rs1, imm)
    }
    /// `slliw rd, rs1, shamt`
    pub fn slliw(&mut self, rd: Reg, rs1: Reg, shamt: i64) -> &mut Asm {
        self.op_imm(AluKind::Sllw, rd, rs1, shamt)
    }
    /// `srliw rd, rs1, shamt`
    pub fn srliw(&mut self, rd: Reg, rs1: Reg, shamt: i64) -> &mut Asm {
        self.op_imm(AluKind::Srlw, rd, rs1, shamt)
    }
    /// `sraiw rd, rs1, shamt`
    pub fn sraiw(&mut self, rd: Reg, rs1: Reg, shamt: i64) -> &mut Asm {
        self.op_imm(AluKind::Sraw, rd, rs1, shamt)
    }
    /// `lui rd, imm` — `imm` is the full (already shifted) value.
    pub fn lui(&mut self, rd: Reg, imm: i64) -> &mut Asm {
        self.inst(Inst::Lui { rd, imm })
    }

    // ---- loads / stores -------------------------------------------------------

    fn load(&mut self, kind: LoadKind, rd: Reg, offset: i64, rs1: Reg) -> &mut Asm {
        self.inst(Inst::Load { kind, rd, rs1, offset })
    }
    fn store(&mut self, kind: StoreKind, rs2: Reg, offset: i64, rs1: Reg) -> &mut Asm {
        self.inst(Inst::Store { kind, rs1, rs2, offset })
    }

    /// `lb rd, offset(rs1)`
    pub fn lb(&mut self, rd: Reg, offset: i64, rs1: Reg) -> &mut Asm {
        self.load(LoadKind::B, rd, offset, rs1)
    }
    /// `lh rd, offset(rs1)`
    pub fn lh(&mut self, rd: Reg, offset: i64, rs1: Reg) -> &mut Asm {
        self.load(LoadKind::H, rd, offset, rs1)
    }
    /// `lw rd, offset(rs1)`
    pub fn lw(&mut self, rd: Reg, offset: i64, rs1: Reg) -> &mut Asm {
        self.load(LoadKind::W, rd, offset, rs1)
    }
    /// `ld rd, offset(rs1)`
    pub fn ld(&mut self, rd: Reg, offset: i64, rs1: Reg) -> &mut Asm {
        self.load(LoadKind::D, rd, offset, rs1)
    }
    /// `lbu rd, offset(rs1)`
    pub fn lbu(&mut self, rd: Reg, offset: i64, rs1: Reg) -> &mut Asm {
        self.load(LoadKind::Bu, rd, offset, rs1)
    }
    /// `lhu rd, offset(rs1)`
    pub fn lhu(&mut self, rd: Reg, offset: i64, rs1: Reg) -> &mut Asm {
        self.load(LoadKind::Hu, rd, offset, rs1)
    }
    /// `lwu rd, offset(rs1)`
    pub fn lwu(&mut self, rd: Reg, offset: i64, rs1: Reg) -> &mut Asm {
        self.load(LoadKind::Wu, rd, offset, rs1)
    }
    /// `sb rs2, offset(rs1)`
    pub fn sb(&mut self, rs2: Reg, offset: i64, rs1: Reg) -> &mut Asm {
        self.store(StoreKind::B, rs2, offset, rs1)
    }
    /// `sh rs2, offset(rs1)`
    pub fn sh(&mut self, rs2: Reg, offset: i64, rs1: Reg) -> &mut Asm {
        self.store(StoreKind::H, rs2, offset, rs1)
    }
    /// `sw rs2, offset(rs1)`
    pub fn sw(&mut self, rs2: Reg, offset: i64, rs1: Reg) -> &mut Asm {
        self.store(StoreKind::W, rs2, offset, rs1)
    }
    /// `sd rs2, offset(rs1)`
    pub fn sd(&mut self, rs2: Reg, offset: i64, rs1: Reg) -> &mut Asm {
        self.store(StoreKind::D, rs2, offset, rs1)
    }

    // ---- control flow ----------------------------------------------------------

    fn branch(&mut self, kind: BranchKind, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.push(Item::Branch { kind, rs1, rs2, target })
    }

    /// `beq rs1, rs2, label`
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(BranchKind::Eq, rs1, rs2, target)
    }
    /// `bne rs1, rs2, label`
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(BranchKind::Ne, rs1, rs2, target)
    }
    /// `blt rs1, rs2, label`
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(BranchKind::Lt, rs1, rs2, target)
    }
    /// `bge rs1, rs2, label`
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(BranchKind::Ge, rs1, rs2, target)
    }
    /// `bltu rs1, rs2, label`
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(BranchKind::Ltu, rs1, rs2, target)
    }
    /// `bgeu rs1, rs2, label`
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(BranchKind::Geu, rs1, rs2, target)
    }
    /// `beqz rs, label` — branch if zero.
    pub fn beqz(&mut self, rs: Reg, target: Label) -> &mut Asm {
        self.beq(rs, Reg::ZERO, target)
    }
    /// `bnez rs, label` — branch if not zero.
    pub fn bnez(&mut self, rs: Reg, target: Label) -> &mut Asm {
        self.bne(rs, Reg::ZERO, target)
    }
    /// `bltz rs, label` — branch if negative.
    pub fn bltz(&mut self, rs: Reg, target: Label) -> &mut Asm {
        self.blt(rs, Reg::ZERO, target)
    }
    /// `bgez rs, label` — branch if non-negative.
    pub fn bgez(&mut self, rs: Reg, target: Label) -> &mut Asm {
        self.bge(rs, Reg::ZERO, target)
    }
    /// `bgtz rs, label` — branch if positive.
    pub fn bgtz(&mut self, rs: Reg, target: Label) -> &mut Asm {
        self.blt(Reg::ZERO, rs, target)
    }
    /// `blez rs, label` — branch if `rs <= 0`.
    pub fn blez(&mut self, rs: Reg, target: Label) -> &mut Asm {
        self.bge(Reg::ZERO, rs, target)
    }

    /// `j label` — unconditional jump.
    pub fn j(&mut self, target: Label) -> &mut Asm {
        self.push(Item::Jal { rd: Reg::ZERO, target })
    }
    /// `jal rd, label`
    pub fn jal(&mut self, rd: Reg, target: Label) -> &mut Asm {
        self.push(Item::Jal { rd, target })
    }
    /// `jalr rd, offset(rs1)`
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, offset: i64) -> &mut Asm {
        self.inst(Inst::Jalr { rd, rs1, offset })
    }
    /// `call label` — `jal ra, label`.
    pub fn call(&mut self, target: Label) -> &mut Asm {
        self.jal(Reg::RA, target)
    }
    /// `ret` — `jalr zero, 0(ra)`.
    pub fn ret(&mut self) -> &mut Asm {
        self.jalr(Reg::ZERO, Reg::RA, 0)
    }

    // ---- pseudo-instructions ------------------------------------------------------

    /// `nop`
    pub fn nop(&mut self) -> &mut Asm {
        self.inst(Inst::NOP)
    }

    /// Emits `count` consecutive `nop`s (used for staggering prologues).
    pub fn nops(&mut self, count: usize) -> &mut Asm {
        for _ in 0..count {
            self.nop();
        }
        self
    }

    /// `mv rd, rs` — copy register.
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Asm {
        self.addi(rd, rs, 0)
    }
    /// `not rd, rs` — bitwise complement.
    pub fn not(&mut self, rd: Reg, rs: Reg) -> &mut Asm {
        self.xori(rd, rs, -1)
    }
    /// `neg rd, rs` — two's complement negate.
    pub fn neg(&mut self, rd: Reg, rs: Reg) -> &mut Asm {
        self.sub(rd, Reg::ZERO, rs)
    }
    /// `seqz rd, rs` — set if zero.
    pub fn seqz(&mut self, rd: Reg, rs: Reg) -> &mut Asm {
        self.sltiu(rd, rs, 1)
    }
    /// `snez rd, rs` — set if not zero.
    pub fn snez(&mut self, rd: Reg, rs: Reg) -> &mut Asm {
        self.sltu(rd, Reg::ZERO, rs)
    }

    /// `li rd, value` — materialise an arbitrary 64-bit constant using the
    /// standard `lui`/`addiw`/`slli`/`addi` expansion.
    pub fn li(&mut self, rd: Reg, value: i64) -> &mut Asm {
        self.li_rec(rd, value);
        self
    }

    fn li_rec(&mut self, rd: Reg, value: i64) {
        if (-2048..=2047).contains(&value) {
            self.addi(rd, Reg::ZERO, value);
            return;
        }
        if value >= i32::MIN as i64 && value <= i32::MAX as i64 {
            let lo = (value << 52) >> 52; // sign-extended low 12
            let hi = value - lo; // multiple of 0x1000, may be ±2^31
                                 // hi fits U-type after sign-extension of the 20-bit field
            let hi_sext = ((hi as u32) as i32) as i64 & !0xfff;
            self.lui(rd, hi_sext);
            if lo != 0 {
                self.addiw(rd, rd, lo);
            }
            return;
        }
        // Wide constant: build upper part, shift, add low 12 bits, recurse.
        // All arithmetic is mod 2^64, matching the wrapping ALU semantics.
        let lo = (value << 52) >> 52;
        let hi = value.wrapping_sub(lo) >> 12;
        self.li_rec(rd, hi);
        self.slli(rd, rd, 12);
        if lo != 0 {
            self.addi(rd, rd, lo);
        }
    }

    /// `la rd, label` — load the absolute address of `label` (PC-relative
    /// `auipc` + `addi` pair, 8 bytes).
    pub fn la(&mut self, rd: Reg, target: Label) -> &mut Asm {
        self.push(Item::La { rd, target })
    }

    // ---- system ----------------------------------------------------------------------

    /// `ecall`
    pub fn ecall(&mut self) -> &mut Asm {
        self.inst(Inst::Ecall)
    }
    /// `ebreak` — halts the modelled core.
    pub fn ebreak(&mut self) -> &mut Asm {
        self.inst(Inst::Ebreak)
    }
    /// `fence`
    pub fn fence(&mut self) -> &mut Asm {
        self.inst(Inst::Fence)
    }
    /// `csrr rd, csr` — read a CSR.
    pub fn csrr(&mut self, rd: Reg, csr: u16) -> &mut Asm {
        self.inst(Inst::Csr { kind: CsrKind::Rs, rd, rs1: Reg::ZERO, csr })
    }
    /// `csrw csr, rs` — write a CSR.
    pub fn csrw(&mut self, csr: u16, rs: Reg) -> &mut Asm {
        self.inst(Inst::Csr { kind: CsrKind::Rw, rd: Reg::ZERO, rs1: rs, csr })
    }
    /// Reads `mhartid` into `rd`.
    pub fn hartid(&mut self, rd: Reg) -> &mut Asm {
        self.csrr(rd, safedm_isa::csr::addr::MHARTID)
    }

    // ---- linking -------------------------------------------------------------------------

    /// Links the program at `base`, placing data right after text (64-byte
    /// aligned).
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] for unbound labels, out-of-range control flow,
    /// or encoding failures.
    pub fn link(&self, base: u64) -> Result<Program, AsmError> {
        let text_end = base + self.text_off;
        let data_base = (text_end + 63) & !63;
        self.link_with_data_base(base, data_base)
    }

    /// Links the program with an explicit data-section base address.
    ///
    /// # Errors
    ///
    /// As [`Asm::link`], plus [`AsmError::LayoutOverlap`] when `data_base`
    /// falls inside the text section.
    pub fn link_with_data_base(&self, base: u64, data_base: u64) -> Result<Program, AsmError> {
        let text_end = base + self.text_off;
        if !self.data.is_empty() && data_base < text_end {
            return Err(AsmError::LayoutOverlap { text_end, data_base });
        }

        let resolve = |label: Label| -> Result<u64, AsmError> {
            let info = &self.labels[label.0];
            match info.pos {
                Some(LabelPos::Text(off)) => Ok(base + off),
                Some(LabelPos::Data(off)) => Ok(data_base + off),
                None => Err(AsmError::UnboundLabel { name: info.name.clone() }),
            }
        };

        let text = std::cell::RefCell::new(Vec::with_capacity(self.text_off as usize));
        let emit = |inst: &Inst| -> Result<(), AsmError> {
            text.borrow_mut().extend_from_slice(&encode(inst)?.to_le_bytes());
            Ok(())
        };
        let emit_raw = |raw: u32| -> Result<(), AsmError> {
            text.borrow_mut().extend_from_slice(&raw.to_le_bytes());
            Ok(())
        };

        let mut addr = base;
        for item in &self.items {
            match item {
                Item::Fixed(inst) => emit(inst)?,
                Item::Raw(raw) => emit_raw(*raw)?,
                Item::Branch { kind, rs1, rs2, target } => {
                    let offset = resolve(*target)? as i64 - addr as i64;
                    if !(-4096..=4094).contains(&offset) {
                        return Err(AsmError::BranchOutOfRange {
                            name: self.labels[target.0].name.clone(),
                            offset,
                        });
                    }
                    emit(&Inst::Branch { kind: *kind, rs1: *rs1, rs2: *rs2, offset })?;
                }
                Item::Jal { rd, target } => {
                    let offset = resolve(*target)? as i64 - addr as i64;
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                        return Err(AsmError::JumpOutOfRange {
                            name: self.labels[target.0].name.clone(),
                            offset,
                        });
                    }
                    emit(&Inst::Jal { rd: *rd, offset })?;
                }
                Item::La { rd, target } => {
                    let delta = resolve(*target)? as i64 - addr as i64;
                    let lo = (delta << 52) >> 52;
                    let hi = delta - lo;
                    emit(&Inst::Auipc { rd: *rd, imm: (hi as i32) as i64 })?;
                    emit(&Inst::OpImm { kind: AluKind::Add, rd: *rd, rs1: *rd, imm: lo })?;
                }
            }
            addr += item.size();
        }

        let mut symbols = BTreeMap::new();
        for info in &self.labels {
            if let Some(pos) = &info.pos {
                let a = match pos {
                    LabelPos::Text(off) => base + off,
                    LabelPos::Data(off) => data_base + off,
                };
                symbols.insert(info.name.clone(), a);
            }
        }

        Ok(Program {
            entry: base,
            text_base: base,
            text: text.into_inner(),
            data_base,
            data: self.data.clone(),
            symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_isa::{decode, Inst};

    #[test]
    fn empty_program_links() {
        let prog = Asm::new().link(0x8000_0000).unwrap();
        assert_eq!(prog.text_size(), 0);
        assert_eq!(prog.data_size(), 0);
    }

    #[test]
    fn backward_branch_resolves() {
        let mut a = Asm::new();
        let top = a.here("top");
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, top);
        let prog = a.link(0x1000).unwrap();
        let words: Vec<u32> = prog.words().map(|(_, w)| w).collect();
        let Inst::Branch { offset, .. } = decode(words[1]).unwrap() else {
            panic!("expected branch")
        };
        assert_eq!(offset, -4);
    }

    #[test]
    fn forward_branch_resolves() {
        let mut a = Asm::new();
        let skip = a.new_label("skip");
        a.beqz(Reg::A0, skip);
        a.nop();
        a.nop();
        a.bind(skip).unwrap();
        a.ebreak();
        let prog = a.link(0).unwrap();
        let words: Vec<u32> = prog.words().map(|(_, w)| w).collect();
        let Inst::Branch { offset, .. } = decode(words[0]).unwrap() else {
            panic!("expected branch")
        };
        assert_eq!(offset, 12);
    }

    #[test]
    fn unbound_label_errors() {
        let mut a = Asm::new();
        let l = a.new_label("nowhere");
        a.j(l);
        assert_eq!(a.link(0).unwrap_err(), AsmError::UnboundLabel { name: "nowhere".into() });
    }

    #[test]
    fn duplicate_bind_errors() {
        let mut a = Asm::new();
        let l = a.new_label("x");
        a.bind(l).unwrap();
        assert_eq!(a.bind(l).unwrap_err(), AsmError::DuplicateBind { name: "x".into() });
    }

    #[test]
    fn branch_out_of_range_errors() {
        let mut a = Asm::new();
        let far = a.new_label("far");
        a.beqz(Reg::A0, far);
        a.nops(2000); // 8000 bytes
        a.bind(far).unwrap();
        assert!(matches!(a.link(0), Err(AsmError::BranchOutOfRange { .. })));
    }

    #[test]
    fn data_labels_and_symbols() {
        let mut a = Asm::new();
        a.nop();
        let tab = a.d_dwords("table", &[1, 2, 3]);
        a.la(Reg::A0, tab);
        let prog = a.link(0x8000_0000).unwrap();
        assert_eq!(prog.symbol("table"), Some(prog.data_base));
        assert_eq!(prog.data_base % 64, 0);
        assert_eq!(prog.data.len(), 24);
        assert_eq!(&prog.data[0..8], &1u64.to_le_bytes());
    }

    #[test]
    fn la_emits_pcrel_pair() {
        let mut a = Asm::new();
        let tab = a.d_dwords("t", &[0xdead]);
        a.la(Reg::A0, tab);
        a.ebreak();
        let prog = a.link(0x8000_0000).unwrap();
        let words: Vec<u32> = prog.words().map(|(_, w)| w).collect();
        let Inst::Auipc { rd, imm: hi } = decode(words[0]).unwrap() else {
            panic!("expected auipc")
        };
        assert_eq!(rd, Reg::A0);
        let Inst::OpImm { imm: lo, .. } = decode(words[1]).unwrap() else {
            panic!("expected addi")
        };
        assert_eq!(0x8000_0000u64.wrapping_add((hi + lo) as u64), prog.data_base);
    }

    #[test]
    fn layout_overlap_detected() {
        let mut a = Asm::new();
        a.nops(16);
        a.d_bytes("d", &[1]);
        assert!(matches!(
            a.link_with_data_base(0, 16),
            Err(AsmError::LayoutOverlap { text_end: 64, data_base: 16 })
        ));
    }

    /// Interprets a register-only instruction sequence (for li validation).
    fn eval_sequence(words: &[u32]) -> [u64; 32] {
        let mut regs = [0u64; 32];
        for w in words {
            match decode(*w).unwrap() {
                Inst::OpImm { kind, rd, rs1, imm } => {
                    let v = safedm_isa::alu(kind, regs[rs1.index() as usize], imm as u64);
                    if !rd.is_zero() {
                        regs[rd.index() as usize] = v;
                    }
                }
                Inst::Lui { rd, imm } => {
                    if !rd.is_zero() {
                        regs[rd.index() as usize] = imm as u64;
                    }
                }
                other => panic!("unexpected instruction {other}"),
            }
        }
        regs
    }

    #[test]
    fn li_materialises_constants() {
        for value in [
            0i64,
            1,
            -1,
            2047,
            -2048,
            2048,
            0x1234,
            -4096,
            0x7fff_ffff,
            -0x8000_0000,
            0x1_0000_0000,
            0x1234_5678_9abc_def0,
            i64::MAX,
            i64::MIN,
            -0x1234_5678_9abc_def0,
            0x8000_0000, // does not fit i32
        ] {
            let mut a = Asm::new();
            a.li(Reg::A0, value);
            let prog = a.link(0).unwrap();
            let words: Vec<u32> = prog.words().map(|(_, w)| w).collect();
            let regs = eval_sequence(&words);
            assert_eq!(regs[10] as i64, value, "li {value:#x} produced {:#x}", regs[10]);
        }
    }

    #[test]
    fn nops_emit_exact_count() {
        let mut a = Asm::new();
        a.nops(100);
        let prog = a.link(0).unwrap();
        assert_eq!(prog.inst_count(), 100);
        for (_, w) in prog.words() {
            assert_eq!(decode(w).unwrap(), Inst::NOP);
        }
    }

    #[test]
    fn pseudo_expansions() {
        let mut a = Asm::new();
        a.mv(Reg::A0, Reg::A1);
        a.not(Reg::A0, Reg::A0);
        a.neg(Reg::A0, Reg::A0);
        a.seqz(Reg::A0, Reg::A1);
        a.snez(Reg::A0, Reg::A1);
        a.ret();
        let prog = a.link(0).unwrap();
        assert_eq!(prog.inst_count(), 6);
        // every word decodes
        for (_, w) in prog.words() {
            decode(w).unwrap();
        }
    }
}
