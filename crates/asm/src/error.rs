//! Assembly and linking errors.

use std::error::Error;
use std::fmt;

use safedm_isa::EncodeError;

/// Error produced while assembling or linking a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound to a position.
    UnboundLabel {
        /// The label's debug name.
        name: String,
    },
    /// A label was bound twice.
    DuplicateBind {
        /// The label's debug name.
        name: String,
    },
    /// A conditional branch target is beyond the ±4 KiB B-format range.
    BranchOutOfRange {
        /// The label's debug name.
        name: String,
        /// The required byte offset.
        offset: i64,
    },
    /// A `jal` target is beyond the ±1 MiB J-format range.
    JumpOutOfRange {
        /// The label's debug name.
        name: String,
        /// The required byte offset.
        offset: i64,
    },
    /// An instruction failed to encode.
    Encode(EncodeError),
    /// The data section would overlap the text section.
    LayoutOverlap {
        /// End of the text section.
        text_end: u64,
        /// Configured base of the data section.
        data_base: u64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { name } => write!(f, "label `{name}` was never bound"),
            AsmError::DuplicateBind { name } => write!(f, "label `{name}` bound twice"),
            AsmError::BranchOutOfRange { name, offset } => {
                write!(f, "branch to `{name}` out of range (offset {offset})")
            }
            AsmError::JumpOutOfRange { name, offset } => {
                write!(f, "jump to `{name}` out of range (offset {offset})")
            }
            AsmError::Encode(e) => write!(f, "encoding failed: {e}"),
            AsmError::LayoutOverlap { text_end, data_base } => {
                write!(f, "data base {data_base:#x} overlaps text ending at {text_end:#x}")
            }
        }
    }
}

impl Error for AsmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AsmError::Encode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> AsmError {
        AsmError::Encode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = AsmError::UnboundLabel { name: "loop".into() };
        assert_eq!(e.to_string(), "label `loop` was never bound");
        let e = AsmError::BranchOutOfRange { name: "far".into(), offset: 5000 };
        assert!(e.to_string().contains("5000"));
    }
}
