//! # safedm-asm — programmatic RV64IM assembler
//!
//! A small assembler used to author the TACLe-style benchmark kernels of the
//! SafeDM reproduction without an external toolchain. Programs are built with
//! one method call per instruction, labels resolve forward and backward, the
//! usual pseudo-instructions (`li`, `la`, `mv`, `call`, `ret`, …) expand to
//! their standard sequences, and [`Asm::link`] produces a loadable
//! [`Program`] image.
//!
//! ## Example
//!
//! ```
//! use safedm_asm::Asm;
//! use safedm_isa::Reg;
//!
//! // sum the doublewords of a table
//! let mut a = Asm::new();
//! let table = a.d_dwords("table", &[3, 7, 32]);
//! a.la(Reg::T0, table);
//! a.li(Reg::T1, 3);          // element count
//! a.li(Reg::A0, 0);          // accumulator
//! let top = a.here("top");
//! a.ld(Reg::T2, 0, Reg::T0);
//! a.add(Reg::A0, Reg::A0, Reg::T2);
//! a.addi(Reg::T0, Reg::T0, 8);
//! a.addi(Reg::T1, Reg::T1, -1);
//! a.bnez(Reg::T1, top);
//! a.ebreak();
//! let prog = a.link(0x8000_0000)?;
//! assert!(prog.inst_count() > 8);
//! # Ok::<(), safedm_asm::AsmError>(())
//! ```

#![warn(missing_docs)]

mod builder;
mod error;
mod program;
mod text;
pub mod transform;

pub use builder::{Asm, Label};
pub use error::AsmError;
pub use program::Program;
pub use text::{assemble, ParseError};
pub use transform::{
    apply_frame_map, pair_map, rename_permutation, transform, FrameRemap, MatchKind, PairMap,
    PcPair, TransformConfig, TransformReport,
};
