//! The linked program artifact.

use std::collections::BTreeMap;

/// A linked, loadable bare-metal program image.
///
/// Produced by [`Asm::link`](crate::Asm::link); consumed by the SoC loader.
///
/// # Examples
///
/// ```
/// use safedm_asm::Asm;
/// use safedm_isa::Reg;
///
/// let mut a = Asm::new();
/// a.li(Reg::A0, 42);
/// a.ebreak();
/// let prog = a.link(0x8000_0000)?;
/// assert_eq!(prog.entry, 0x8000_0000);
/// assert!(prog.text_size() >= 8);
/// # Ok::<(), safedm_asm::AsmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Entry point (the base address the text was linked at).
    pub entry: u64,
    /// Base address of the text section.
    pub text_base: u64,
    /// Encoded text section (little-endian instruction words).
    pub text: Vec<u8>,
    /// Base address of the data section.
    pub data_base: u64,
    /// Initialised data section bytes.
    pub data: Vec<u8>,
    /// Label name → resolved absolute address (named labels only).
    pub symbols: BTreeMap<String, u64>,
}

impl Program {
    /// Size of the text section in bytes.
    #[must_use]
    pub fn text_size(&self) -> u64 {
        self.text.len() as u64
    }

    /// Size of the data section in bytes.
    #[must_use]
    pub fn data_size(&self) -> u64 {
        self.data.len() as u64
    }

    /// Number of instructions in the text section.
    #[must_use]
    pub fn inst_count(&self) -> u64 {
        self.text_size() / 4
    }

    /// Looks up a named symbol's absolute address.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Iterates over `(address, word)` pairs of the text section.
    pub fn words(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.text.chunks_exact(4).enumerate().map(move |(i, c)| {
            (self.text_base + 4 * i as u64, u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        })
    }

    /// The memory footprint as `(base, bytes)` segments, text first.
    #[must_use]
    pub fn segments(&self) -> Vec<(u64, &[u8])> {
        let mut segs = vec![(self.text_base, self.text.as_slice())];
        if !self.data.is_empty() {
            segs.push((self.data_base, self.data.as_slice()));
        }
        segs
    }

    /// End address (exclusive) of the highest segment.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.segments().iter().map(|(b, s)| b + s.len() as u64).max().unwrap_or(self.text_base)
    }
}
