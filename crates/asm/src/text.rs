//! A text front end for the assembler: parse conventional RISC-V assembly
//! source into a [`Program`], so experiments and tests can be written as
//! `.s`-style strings instead of builder calls.
//!
//! Supported subset: the RV64IM instructions and pseudo-instructions of
//! [`Asm`], labels (forward and backward), `#`/`//` comments, and the
//! directives `.text`, `.data`, `.byte`, `.word`, `.dword`, `.zero`,
//! `.align`.

use std::collections::HashMap;

use safedm_isa::{Reg, ABI_NAMES};

use crate::{Asm, Label, Program};

/// Error produced while parsing assembly text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    if let Some(rest) = tok.strip_prefix('x') {
        if let Ok(n) = rest.parse::<u8>() {
            return Reg::try_new(n)
                .ok_or_else(|| err(line, format!("register {tok} out of range")));
        }
    }
    // fp is the conventional alias for s0/x8
    if tok == "fp" {
        return Ok(Reg::S0);
    }
    ABI_NAMES
        .iter()
        .position(|n| *n == tok)
        .map(|i| Reg::new(i as u8))
        .ok_or_else(|| err(line, format!("unknown register `{tok}`")))
}

fn parse_int(tok: &str, line: usize) -> Result<i64, ParseError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(&hex.replace('_', ""), 16)
    } else {
        body.replace('_', "").parse::<i64>()
    }
    .map_err(|_| err(line, format!("invalid number `{tok}`")))?;
    Ok(if neg { -value } else { value })
}

/// `offset(base)` memory operand.
fn parse_mem(tok: &str, line: usize) -> Result<(i64, Reg), ParseError> {
    let open =
        tok.find('(').ok_or_else(|| err(line, format!("expected offset(base), got `{tok}`")))?;
    let close =
        tok.strip_suffix(')').ok_or_else(|| err(line, format!("missing `)` in `{tok}`")))?;
    let offset = if open == 0 { 0 } else { parse_int(&tok[..open], line)? };
    let base = parse_reg(&close[open + 1..], line)?;
    Ok((offset, base))
}

struct Parser<'a> {
    asm: Asm,
    labels: HashMap<String, Label>,
    /// Data-section payloads are buffered and emitted at their defining
    /// label so `.data` regions can be interleaved with `.text`.
    line: usize,
    source: &'a str,
}

impl<'a> Parser<'a> {
    fn label_for(&mut self, name: &str) -> Label {
        if let Some(l) = self.labels.get(name) {
            return *l;
        }
        let l = self.asm.new_label(name);
        self.labels.insert(name.to_owned(), l);
        l
    }

    fn run(mut self, base: u64) -> Result<Program, ParseError> {
        #[derive(PartialEq)]
        enum Section {
            Text,
            Data,
        }
        let mut section = Section::Text;
        // Data directives are applied immediately; labels inside .data bind
        // to the next data payload.
        let mut pending_data_label: Option<String> = None;
        let source = self.source;

        for (idx, raw_line) in source.lines().enumerate() {
            self.line = idx + 1;
            let line_no = self.line;
            // strip comments
            let mut text = raw_line;
            for marker in ["#", "//"] {
                if let Some(pos) = text.find(marker) {
                    text = &text[..pos];
                }
            }
            let mut text = text.trim();
            if text.is_empty() {
                continue;
            }
            // labels (possibly several on one line)
            while let Some(colon) = text.find(':') {
                let (name, rest) = text.split_at(colon);
                let name = name.trim();
                if name.is_empty() || name.contains(char::is_whitespace) {
                    break;
                }
                match section {
                    Section::Text => {
                        let l = self.label_for(name);
                        self.asm
                            .bind(l)
                            .map_err(|e| err(line_no, format!("label `{name}`: {e}")))?;
                    }
                    Section::Data => {
                        if pending_data_label.is_some() {
                            return Err(err(line_no, "data label without payload"));
                        }
                        pending_data_label = Some(name.to_owned());
                    }
                }
                text = rest[1..].trim();
            }
            if text.is_empty() {
                continue;
            }

            // tokenize: mnemonic + comma-separated operands
            let (mnemonic, rest) = match text.find(char::is_whitespace) {
                Some(p) => (&text[..p], text[p..].trim()),
                None => (text, ""),
            };
            let ops: Vec<&str> =
                if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };

            if let Some(directive) = mnemonic.strip_prefix('.') {
                match directive {
                    "text" => section = Section::Text,
                    "data" => section = Section::Data,
                    "align" => {
                        let n = parse_int(ops.first().copied().unwrap_or("8"), line_no)?;
                        if section == Section::Data {
                            self.asm.data_alignment(n as u64);
                        }
                    }
                    "byte" | "word" | "dword" | "zero" => {
                        if section != Section::Data {
                            return Err(err(line_no, format!(".{directive} outside .data")));
                        }
                        let name = pending_data_label
                            .take()
                            .unwrap_or_else(|| format!("__anon_{line_no}"));
                        let label = match directive {
                            "byte" => {
                                let bytes: Vec<u8> = ops
                                    .iter()
                                    .map(|o| parse_int(o, line_no).map(|v| v as u8))
                                    .collect::<Result<_, _>>()?;
                                self.asm.d_bytes(&name, &bytes)
                            }
                            "word" => {
                                let words: Vec<u32> = ops
                                    .iter()
                                    .map(|o| parse_int(o, line_no).map(|v| v as u32))
                                    .collect::<Result<_, _>>()?;
                                self.asm.d_words(&name, &words)
                            }
                            "dword" => {
                                let dwords: Vec<u64> = ops
                                    .iter()
                                    .map(|o| parse_int(o, line_no).map(|v| v as u64))
                                    .collect::<Result<_, _>>()?;
                                self.asm.d_dwords(&name, &dwords)
                            }
                            _ => {
                                let n = parse_int(
                                    ops.first()
                                        .copied()
                                        .ok_or_else(|| err(line_no, ".zero needs a length"))?,
                                    line_no,
                                )?;
                                self.asm.d_zero(&name, n as u64)
                            }
                        };
                        self.labels.insert(name, label);
                    }
                    other => return Err(err(line_no, format!("unknown directive `.{other}`"))),
                }
                continue;
            }

            if section != Section::Text {
                return Err(err(line_no, "instruction outside .text"));
            }
            self.instruction(mnemonic, &ops, line_no)?;
        }

        self.asm.link(base).map_err(|e| ParseError { line: 0, message: e.to_string() })
    }

    fn instruction(&mut self, m: &str, ops: &[&str], line: usize) -> Result<(), ParseError> {
        let need = |n: usize| -> Result<(), ParseError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(line, format!("`{m}` expects {n} operands, got {}", ops.len())))
            }
        };
        let r = |i: usize| parse_reg(ops[i], line);
        let n = |i: usize| parse_int(ops[i], line);
        macro_rules! rrr {
            ($f:ident) => {{
                need(3)?;
                self.asm.$f(r(0)?, r(1)?, r(2)?);
            }};
        }
        macro_rules! rri {
            ($f:ident) => {{
                need(3)?;
                self.asm.$f(r(0)?, r(1)?, n(2)?);
            }};
        }
        macro_rules! mem {
            ($f:ident) => {{
                need(2)?;
                let (off, base) = parse_mem(ops[1], line)?;
                self.asm.$f(r(0)?, off, base);
            }};
        }
        macro_rules! br {
            ($f:ident, $kind:expr) => {{
                need(3)?;
                if let Ok(offset) = parse_int(ops[2], line) {
                    // numeric byte offset (as the disassembler prints)
                    self.asm.inst(safedm_isa::Inst::Branch {
                        kind: $kind,
                        rs1: r(0)?,
                        rs2: r(1)?,
                        offset,
                    });
                } else {
                    let target = self.label_for(ops[2]);
                    self.asm.$f(r(0)?, r(1)?, target);
                }
            }};
        }
        macro_rules! brz {
            ($f:ident) => {{
                need(2)?;
                let target = self.label_for(ops[1]);
                self.asm.$f(r(0)?, target);
            }};
        }
        match m {
            "add" => rrr!(add),
            "sub" => rrr!(sub),
            "sll" => rrr!(sll),
            "slt" => rrr!(slt),
            "sltu" => rrr!(sltu),
            "xor" => rrr!(xor),
            "srl" => rrr!(srl),
            "sra" => rrr!(sra),
            "or" => rrr!(or),
            "and" => rrr!(and),
            "addw" => rrr!(addw),
            "subw" => rrr!(subw),
            "sllw" => rrr!(sllw),
            "srlw" => rrr!(srlw),
            "sraw" => rrr!(sraw),
            "mul" => rrr!(mul),
            "mulh" => rrr!(mulh),
            "mulhu" => rrr!(mulhu),
            "mulhsu" => rrr!(mulhsu),
            "div" => rrr!(div),
            "divu" => rrr!(divu),
            "rem" => rrr!(rem),
            "remu" => rrr!(remu),
            "mulw" => rrr!(mulw),
            "divw" => rrr!(divw),
            "divuw" => rrr!(divuw),
            "remw" => rrr!(remw),
            "remuw" => rrr!(remuw),
            "addi" => rri!(addi),
            "slti" => rri!(slti),
            "sltiu" => rri!(sltiu),
            "xori" => rri!(xori),
            "ori" => rri!(ori),
            "andi" => rri!(andi),
            "slli" => rri!(slli),
            "srli" => rri!(srli),
            "srai" => rri!(srai),
            "addiw" => rri!(addiw),
            "slliw" => rri!(slliw),
            "srliw" => rri!(srliw),
            "sraiw" => rri!(sraiw),
            "li" => {
                need(2)?;
                self.asm.li(r(0)?, n(1)?);
            }
            "lui" => {
                // GNU-as semantics: the operand is the 20-bit hi field,
                // sign-extended after shifting (0xfffff == -4096).
                need(2)?;
                let field = n(1)?;
                if !(-(1 << 19)..(1 << 20)).contains(&field) {
                    return Err(err(line, format!("lui immediate {field} out of range")));
                }
                let value = ((field << 12) as u32) as i32 as i64;
                self.asm.lui(r(0)?, value);
            }
            "lb" => mem!(lb),
            "lh" => mem!(lh),
            "lw" => mem!(lw),
            "ld" => mem!(ld),
            "lbu" => mem!(lbu),
            "lhu" => mem!(lhu),
            "lwu" => mem!(lwu),
            "sb" => mem!(sb),
            "sh" => mem!(sh),
            "sw" => mem!(sw),
            "sd" => mem!(sd),
            "beq" => br!(beq, safedm_isa::BranchKind::Eq),
            "bne" => br!(bne, safedm_isa::BranchKind::Ne),
            "blt" => br!(blt, safedm_isa::BranchKind::Lt),
            "bge" => br!(bge, safedm_isa::BranchKind::Ge),
            "bltu" => br!(bltu, safedm_isa::BranchKind::Ltu),
            "bgeu" => br!(bgeu, safedm_isa::BranchKind::Geu),
            "beqz" => brz!(beqz),
            "bnez" => brz!(bnez),
            "bltz" => brz!(bltz),
            "bgez" => brz!(bgez),
            "bgtz" => brz!(bgtz),
            "blez" => brz!(blez),
            "j" => {
                need(1)?;
                let t = self.label_for(ops[0]);
                self.asm.j(t);
            }
            "jal" => {
                need(2)?;
                if let Ok(offset) = parse_int(ops[1], line) {
                    self.asm.inst(safedm_isa::Inst::Jal { rd: r(0)?, offset });
                } else {
                    let t = self.label_for(ops[1]);
                    self.asm.jal(r(0)?, t);
                }
            }
            "jalr" => {
                need(2)?;
                let (off, base) = parse_mem(ops[1], line)?;
                self.asm.jalr(r(0)?, base, off);
            }
            "call" => {
                need(1)?;
                let t = self.label_for(ops[0]);
                self.asm.call(t);
            }
            "ret" => {
                need(0)?;
                self.asm.ret();
            }
            "la" => {
                need(2)?;
                let t = self.label_for(ops[1]);
                self.asm.la(r(0)?, t);
            }
            "mv" => {
                need(2)?;
                self.asm.mv(r(0)?, r(1)?);
            }
            "not" => {
                need(2)?;
                self.asm.not(r(0)?, r(1)?);
            }
            "neg" => {
                need(2)?;
                self.asm.neg(r(0)?, r(1)?);
            }
            "seqz" => {
                need(2)?;
                self.asm.seqz(r(0)?, r(1)?);
            }
            "snez" => {
                need(2)?;
                self.asm.snez(r(0)?, r(1)?);
            }
            "nop" => {
                need(0)?;
                self.asm.nop();
            }
            "fence" => {
                need(0)?;
                self.asm.fence();
            }
            "ecall" => {
                need(0)?;
                self.asm.ecall();
            }
            "ebreak" => {
                need(0)?;
                self.asm.ebreak();
            }
            "csrr" => {
                need(2)?;
                self.asm.csrr(r(0)?, n(1)? as u16);
            }
            "csrw" => {
                need(2)?;
                self.asm.csrw(n(0)? as u16, r(1)?);
            }
            // full register forms, `csrrs rd, csr, rs1` (disassembler order)
            "csrrw" | "csrrs" | "csrrc" => {
                need(3)?;
                let kind = match m {
                    "csrrw" => safedm_isa::CsrKind::Rw,
                    "csrrs" => safedm_isa::CsrKind::Rs,
                    _ => safedm_isa::CsrKind::Rc,
                };
                self.asm.inst(safedm_isa::Inst::Csr {
                    kind,
                    rd: r(0)?,
                    rs1: r(2)?,
                    csr: n(1)? as u16,
                });
            }
            "csrrwi" | "csrrsi" | "csrrci" => {
                need(3)?;
                let kind = match m {
                    "csrrwi" => safedm_isa::CsrKind::Rw,
                    "csrrsi" => safedm_isa::CsrKind::Rs,
                    _ => safedm_isa::CsrKind::Rc,
                };
                self.asm.inst(safedm_isa::Inst::CsrImm {
                    kind,
                    rd: r(0)?,
                    zimm: n(2)? as u8,
                    csr: n(1)? as u16,
                });
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        }
        Ok(())
    }
}

/// Assembles RISC-V source text into a linked [`Program`] at `base`.
///
/// # Errors
///
/// Returns a [`ParseError`] for syntax errors; link-time failures (unbound
/// labels, branch range) are reported with line 0 and the underlying
/// [`AsmError`](crate::AsmError) message.
///
/// # Examples
///
/// ```
/// use safedm_asm::assemble;
///
/// let prog = assemble(
///     r"
///         .data
///     table: .dword 5, 6, 7
///         .text
///         la   t0, table
///         ld   a0, 8(t0)      # a0 = 6
///         addi a0, a0, 36
///         ebreak
///     ",
///     0x8000_0000,
/// )?;
/// assert!(prog.symbol("table").is_some());
/// # Ok::<(), safedm_asm::ParseError>(())
/// ```
pub fn assemble(source: &str, base: u64) -> Result<Program, ParseError> {
    let parser = Parser { asm: Asm::new(), labels: HashMap::new(), line: 0, source };
    parser.run(base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_isa::{decode, Inst};

    #[test]
    fn parses_loop_with_labels() {
        let prog = assemble(
            r"
                li t0, 5
                li a0, 0
            top:
                add a0, a0, t0
                addi t0, t0, -1
                bnez t0, top
                ebreak
            ",
            0x8000_0000,
        )
        .unwrap();
        assert_eq!(prog.inst_count(), 6);
        assert_eq!(prog.symbol("top"), Some(0x8000_0000 + 8));
    }

    #[test]
    fn parses_memory_operands_and_regs() {
        let prog = assemble(
            r"
                ld   a0, 16(sp)
                sd   a1, -8(s0)     # fp alias below
                sw   x5, (fp)
                jalr ra, 0(t0)
                ebreak
            ",
            0,
        )
        .unwrap();
        let words: Vec<u32> = prog.words().map(|(_, w)| w).collect();
        assert!(matches!(decode(words[0]).unwrap(), Inst::Load { offset: 16, .. }));
        assert!(matches!(decode(words[1]).unwrap(), Inst::Store { offset: -8, .. }));
        assert!(matches!(decode(words[2]).unwrap(), Inst::Store { offset: 0, .. }));
        assert!(matches!(decode(words[3]).unwrap(), Inst::Jalr { .. }));
    }

    #[test]
    fn data_section_and_la() {
        let prog = assemble(
            r"
                .data
            nums:  .dword 1, 2, 3
            bytes: .byte 0xff, 2
            hole:  .zero 16
                .text
                la t0, nums
                la t1, hole
                ebreak
            ",
            0x8000_0000,
        )
        .unwrap();
        let nums = prog.symbol("nums").unwrap();
        assert_eq!(prog.symbol("bytes"), Some(nums + 24));
        assert_eq!(&prog.data[..8], &1u64.to_le_bytes());
        assert_eq!(prog.data[24], 0xff);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let prog = assemble(
            "# full line comment\n\n  nop // trailing\n  nop # other style\n  ebreak\n",
            0,
        )
        .unwrap();
        assert_eq!(prog.inst_count(), 3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nfrobnicate a0\n", 0).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
        let e = assemble("addi a0, a1\n", 0).unwrap_err();
        assert!(e.message.contains("expects 3 operands"));
        let e = assemble("add a0, a1, q7\n", 0).unwrap_err();
        assert!(e.message.contains("unknown register"));
        let e = assemble("ld a0, 8[sp]\n", 0).unwrap_err();
        assert!(e.message.contains("offset(base)"));
    }

    #[test]
    fn unbound_label_reported_at_link() {
        let e = assemble("j nowhere\n", 0).unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn text_program_runs_like_builder_program() {
        // Equivalence check: same program via both front ends.
        let text = assemble(
            r"
                li t0, 100
                li a0, 0
            top:
                add a0, a0, t0
                addi t0, t0, -1
                bnez t0, top
                ebreak
            ",
            0x8000_0000,
        )
        .unwrap();
        let mut builder = Asm::new();
        builder.li(Reg::T0, 100);
        builder.li(Reg::A0, 0);
        let top = builder.here("top");
        builder.add(Reg::A0, Reg::A0, Reg::T0);
        builder.addi(Reg::T0, Reg::T0, -1);
        builder.bnez(Reg::T0, top);
        builder.ebreak();
        let built = builder.link(0x8000_0000).unwrap();
        assert_eq!(text.text, built.text, "both front ends must emit identical code");
    }

    #[test]
    fn pseudo_instructions_and_csr() {
        let prog = assemble(
            r"
                csrr a0, 0xf14
                csrw 0x340, a0
                mv   t0, a0
                not  t1, t0
                seqz t2, t1
                call fn
                ebreak
            fn:
                ret
            ",
            0,
        )
        .unwrap();
        assert!(prog.inst_count() >= 8);
        for (_, w) in prog.words() {
            decode(w).unwrap();
        }
    }
}
