//! Seed-driven software-diversity transform.
//!
//! SafeDM derives diversity from *time* (staggering identical binaries).
//! This module derives it from *structure*: a deterministic, seed-driven
//! pass that turns one program into a semantically equal twin through
//!
//! 1. **register renaming** — a bijection over the allocatable GPRs that
//!    fixes the ABI-constrained registers `x0`/`ra`/`sp`/`gp`/`tp`. The
//!    permutation is a single cycle (Sattolo's algorithm), so every
//!    allocatable register is guaranteed to move;
//! 2. **instruction-schedule jitter** — seed-driven adjacent swaps of
//!    independent straight-line instructions, legality decided by the same
//!    [`use_mask`](Inst::use_mask)/[`def_mask`](Inst::def_mask) dataflow
//!    the pipeline's hazard logic uses. Swaps never cross basic-block
//!    boundaries (labels, control flow, system instructions) and never
//!    reorder a store against another memory access.
//!
//! Code- and stack-layout offsets (nop sleds, frame padding) are inserted
//! by the harness that instantiates the twin — they are placement, not
//! item rewriting — but the knobs live in [`TransformConfig`] so one value
//! describes the whole variant.
//!
//! The pass also produces the artefacts the two-program relational prover
//! consumes: the renaming bijection and, via [`pair_map`], a per-point
//! correspondence map between original and variant PCs with the match
//! discipline each point must satisfy (exact renamed encoding, relinked
//! control flow, or re-materialised address).

use safedm_isa::{Inst, Reg};

use crate::builder::{Asm, Item, LabelPos};

/// Registers the renaming bijection must fix: `x0` (hardwired zero) plus
/// the ABI link/stack/global/thread registers the harness contract pins.
pub const FIXED_REGS: [Reg; 5] = [Reg::ZERO, Reg::RA, Reg::SP, Reg::GP, Reg::TP];

/// Knobs of the diversity transform. All stages are deterministic in
/// `seed`; a given `(seed, config)` always produces the same twin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformConfig {
    /// Seed for the permutation and the jitter coin flips.
    pub seed: u64,
    /// Apply the register-renaming bijection.
    pub rename: bool,
    /// Rounds of adjacent-swap schedule jitter (0 disables).
    pub jitter_passes: u32,
    /// Entry nop sled of the variant (code-layout + temporal offset),
    /// applied by the twin harness.
    pub sled_len: u32,
    /// Bytes of stack frame padding (`sp -= frame_pad` once at entry),
    /// applied by the twin harness. Kept 16-byte aligned by convention.
    pub frame_pad: u32,
}

impl Default for TransformConfig {
    fn default() -> TransformConfig {
        TransformConfig::level(0x5afe_d1f0, 3)
    }
}

impl TransformConfig {
    /// Preset aggressiveness levels used by the experiments:
    /// 0 = identity, 1 = rename, 2 = rename + jitter, 3 = full (rename +
    /// jitter + nop sled + frame padding). Levels above 3 saturate.
    #[must_use]
    pub fn level(seed: u64, level: u8) -> TransformConfig {
        TransformConfig {
            seed,
            rename: level >= 1,
            jitter_passes: if level >= 2 { 4 } else { 0 },
            sled_len: if level >= 3 { 12 } else { 0 },
            frame_pad: if level >= 3 { 64 } else { 0 },
        }
    }

    /// Short human-readable name of the closest preset.
    #[must_use]
    pub fn level_name(&self) -> &'static str {
        match (self.rename, self.jitter_passes > 0, self.sled_len > 0 || self.frame_pad > 0) {
            (false, false, false) => "identity",
            (true, false, false) => "rename",
            (true, true, false) => "rename+jitter",
            (true, _, true) => "full",
            _ => "custom",
        }
    }
}

/// What the transform did, in enough detail for the relational prover and
/// the differential tests to check it.
#[derive(Debug, Clone)]
pub struct TransformReport {
    /// Seed the twin was derived from.
    pub seed: u64,
    /// The renaming bijection: `rename[i]` is where `x{i}` went. Identity
    /// when renaming is disabled.
    pub rename: [Reg; 32],
    /// Accepted jitter swaps.
    pub swaps: u64,
    /// Item permutation: `item_perm[new] == old` index into the source
    /// item list.
    pub item_perm: Vec<usize>,
    /// Nop-sled length the harness will insert.
    pub sled_len: u32,
    /// Frame padding the harness will insert.
    pub frame_pad: u32,
}

impl TransformReport {
    /// The registers that actually moved, as `(from, to)` pairs.
    #[must_use]
    pub fn renamed_pairs(&self) -> Vec<(Reg, Reg)> {
        (0..32u8)
            .filter_map(|i| {
                let from = Reg::new(i);
                let to = self.rename[i as usize];
                (from != to).then_some((from, to))
            })
            .collect()
    }

    /// Position of source item `old` in the transformed item list.
    #[must_use]
    pub fn new_index_of(&self, old: usize) -> Option<usize> {
        self.item_perm.iter().position(|&o| o == old)
    }
}

/// SplitMix64 — the same tiny generator the campaign engine seeds its
/// cells with; re-implemented here so `safedm-asm` stays dependency-free.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Derives the register-renaming bijection for `seed`: a single cycle over
/// the 27 allocatable registers (Sattolo's algorithm), so it has **no**
/// fixed point among them, while [`FIXED_REGS`] map to themselves.
#[must_use]
pub fn rename_permutation(seed: u64) -> [Reg; 32] {
    let mut rng = SplitMix64(seed ^ 0x007e_9a11_e50f_u64);
    let pool: Vec<u8> = (0..32u8).filter(|i| !FIXED_REGS.iter().any(|f| f.index() == *i)).collect();
    let n = pool.len();
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below(i as u64) as usize;
        perm.swap(i, j);
    }
    let mut map = [Reg::ZERO; 32];
    for i in 0..32u8 {
        map[i as usize] = Reg::new(i);
    }
    for (k, &src) in pool.iter().enumerate() {
        map[src as usize] = Reg::new(pool[perm[k]]);
    }
    map
}

/// Read/write register masks of an item, for the swap legality check.
/// `La` expands to `auipc`+`addi` over `rd` only (its source is the PC,
/// which relinking re-derives at the new position).
fn item_masks(item: &Item) -> (u32, u32) {
    match item {
        Item::Fixed(i) => (i.use_mask(), i.def_mask()),
        Item::La { rd, .. } => (0, rd.bit()),
        // Barriers: never swapped, masks irrelevant.
        Item::Raw(_) | Item::Branch { .. } | Item::Jal { .. } => (u32::MAX, u32::MAX),
    }
}

/// Whether schedule jitter may move this item at all.
fn movable(item: &Item) -> bool {
    match item {
        Item::La { .. } => true,
        Item::Fixed(i) => {
            // Control flow and system instructions anchor the schedule;
            // `auipc` is PC-relative so moving it would change its value.
            !(i.is_control_flow() || i.is_system() || matches!(i, Inst::Auipc { .. } | Inst::Fence))
        }
        Item::Raw(_) | Item::Branch { .. } | Item::Jal { .. } => false,
    }
}

fn is_mem(item: &Item) -> bool {
    matches!(item, Item::Fixed(i) if i.is_mem())
}

fn is_store(item: &Item) -> bool {
    matches!(item, Item::Fixed(i) if i.is_store())
}

/// May `a` and `b` (adjacent, `a` first) exchange places?
fn may_swap(a: &Item, b: &Item) -> bool {
    if !movable(a) || !movable(b) {
        return false;
    }
    let (ua, da) = item_masks(a);
    let (ub, db) = item_masks(b);
    if (da & db) | (da & ub) | (ua & db) != 0 {
        return false; // WAW / RAW / WAR
    }
    // Conservative memory model: loads may pass loads, nothing passes a
    // store.
    !(is_mem(a) && is_mem(b) && (is_store(a) || is_store(b)))
}

/// Applies the diversity transform to `asm`, returning the twin and a
/// report. The twin assembles to the same instruction count and byte size
/// (renaming and reordering only; layout offsets are the harness's job).
#[must_use]
pub fn transform(asm: &Asm, cfg: &TransformConfig) -> (Asm, TransformReport) {
    let mut out = asm.clone();
    let mut report = TransformReport {
        seed: cfg.seed,
        rename: rename_permutation(cfg.seed),
        swaps: 0,
        item_perm: (0..asm.items.len()).collect(),
        sled_len: cfg.sled_len,
        frame_pad: cfg.frame_pad,
    };
    if !cfg.rename {
        for i in 0..32u8 {
            report.rename[i as usize] = Reg::new(i);
        }
    }

    // --- register renaming ------------------------------------------------
    if cfg.rename {
        let pi = report.rename;
        let f = |r: Reg| pi[r.index() as usize];
        for item in &mut out.items {
            *item = match item {
                Item::Fixed(i) => Item::Fixed(i.map_regs(f)),
                Item::Raw(w) => Item::Raw(*w),
                Item::Branch { kind, rs1, rs2, target } => {
                    Item::Branch { kind: *kind, rs1: f(*rs1), rs2: f(*rs2), target: *target }
                }
                Item::Jal { rd, target } => Item::Jal { rd: f(*rd), target: *target },
                Item::La { rd, target } => Item::La { rd: f(*rd), target: *target },
            };
        }
    }

    // --- schedule jitter ---------------------------------------------------
    if cfg.jitter_passes > 0 && !out.items.is_empty() {
        // Item start offsets and the set of bound text-label offsets: a
        // label is a potential jump target, so no item may cross one.
        let mut offs = Vec::with_capacity(out.items.len());
        let mut off = 0u64;
        for item in &out.items {
            offs.push(off);
            off += item.size();
        }
        let mut label_offs: Vec<u64> = out
            .labels
            .iter()
            .filter_map(|l| match l.pos {
                Some(LabelPos::Text(o)) => Some(o),
                _ => None,
            })
            .collect();
        label_offs.sort_unstable();
        let is_label = |o: u64| label_offs.binary_search(&o).is_ok();

        // Maximal swap regions: runs of movable items not broken by a
        // label boundary.
        let mut regions: Vec<(usize, usize)> = Vec::new(); // [start, end)
        let mut start = None;
        for (i, item) in out.items.iter().enumerate() {
            let breaks = !movable(item) || (start.is_some() && is_label(offs[i]));
            if breaks {
                if let Some(s) = start.take() {
                    regions.push((s, i));
                }
                if movable(item) {
                    start = Some(i); // label boundary: new region starts here
                }
            } else if start.is_none() {
                start = Some(i);
            }
        }
        if let Some(s) = start {
            regions.push((s, out.items.len()));
        }

        let mut rng = SplitMix64(cfg.seed ^ 0x0011_77e2_u64);
        for _ in 0..cfg.jitter_passes {
            for &(s, e) in &regions {
                for i in s..e.saturating_sub(1) {
                    if rng.below(2) == 0 {
                        continue;
                    }
                    if may_swap(&out.items[i], &out.items[i + 1]) {
                        out.items.swap(i, i + 1);
                        report.item_perm.swap(i, i + 1);
                        report.swaps += 1;
                    }
                }
            }
        }
    }

    (out, report)
}

// ---------------------------------------------------------------------------
// Correspondence map
// ---------------------------------------------------------------------------

/// How a correspondence point is allowed to differ between the twins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// The variant encoding must equal the renamed original encoding
    /// bit-for-bit (immediates included).
    Exact,
    /// Relinked control flow (`branch`/`jal`): same operation and renamed
    /// registers, but the displacement is free (layout may move targets).
    ControlFlow,
    /// Re-materialised address (`la` → `auipc`+`addi` pair): same shape and
    /// renamed destination, immediates free.
    AddrMat,
}

impl std::fmt::Display for MatchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MatchKind::Exact => "exact",
            MatchKind::ControlFlow => "control-flow",
            MatchKind::AddrMat => "addr-mat",
        })
    }
}

/// One point of the original ↔ variant correspondence.
#[derive(Debug, Clone, Copy)]
pub struct PcPair {
    /// PC of the point in the original copy.
    pub orig: u64,
    /// PC of the corresponding point in the variant copy.
    pub var: u64,
    /// Consecutive 32-bit slots covered (2 for an `la` pair).
    pub slots: u8,
    /// Match discipline the relational prover must enforce here.
    pub kind: MatchKind,
}

/// The per-point correspondence map between a program and its transformed
/// twin: the renamed-register bijection plus the original-PC ↔ variant-PC
/// pairing, with each point's match discipline. This is the interface
/// between the transform (which constructs it) and the relational prover
/// (which *verifies* it and refuses to certify on any violation).
#[derive(Debug, Clone)]
pub struct PairMap {
    /// The renaming bijection applied to the variant.
    pub rename: [Reg; 32],
    /// Correspondence points, sorted by original PC.
    pub pairs: Vec<PcPair>,
    /// Half-open text span `[start, end)` of the original copy.
    pub orig_span: (u64, u64),
    /// Half-open text span `[start, end)` of the variant copy.
    pub var_span: (u64, u64),
    /// Retired-instruction overhead of the variant (sled + padding +
    /// result-register fix-up), statically known because every inserted
    /// instruction executes exactly once.
    pub overhead_insts: u64,
}

impl PairMap {
    /// Where `x{i}` went under the variant's renaming.
    #[must_use]
    pub fn renamed(&self, r: Reg) -> Reg {
        self.rename[r.index() as usize]
    }

    /// The correspondence point starting at original PC `pc`, if any.
    #[must_use]
    pub fn pair_at(&self, pc: u64) -> Option<&PcPair> {
        self.pairs.binary_search_by_key(&pc, |p| p.orig).ok().map(|i| &self.pairs[i])
    }
}

/// Builds the [`PairMap`] for two item-associated builders: `assoc` lists
/// `(orig_item, var_item)` index pairs, `orig_base`/`var_base` are the link
/// bases of the two copies. The match discipline of each point follows the
/// original item's kind.
#[must_use]
pub fn pair_map(
    orig: &Asm,
    var: &Asm,
    assoc: &[(usize, usize)],
    orig_base: u64,
    var_base: u64,
    rename: [Reg; 32],
    overhead_insts: u64,
) -> PairMap {
    let offsets = |a: &Asm| -> Vec<u64> {
        let mut offs = Vec::with_capacity(a.items.len());
        let mut off = 0u64;
        for item in &a.items {
            offs.push(off);
            off += item.size();
        }
        offs
    };
    let o_offs = offsets(orig);
    let v_offs = offsets(var);
    let mut pairs: Vec<PcPair> = assoc
        .iter()
        .map(|&(oi, vi)| {
            let (slots, kind) = match &orig.items[oi] {
                Item::La { .. } => (2, MatchKind::AddrMat),
                Item::Branch { .. } | Item::Jal { .. } => (1, MatchKind::ControlFlow),
                Item::Fixed(i) if i.is_control_flow() => (1, MatchKind::ControlFlow),
                Item::Fixed(_) | Item::Raw(_) => (1, MatchKind::Exact),
            };
            PcPair { orig: orig_base + o_offs[oi], var: var_base + v_offs[vi], slots, kind }
        })
        .collect();
    pairs.sort_by_key(|p| p.orig);
    PairMap {
        rename,
        pairs,
        orig_span: (orig_base, orig_base + orig.text_off),
        var_span: (var_base, var_base + var.text_off),
        overhead_insts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_isa::decode;

    #[test]
    fn rename_is_a_derangement_of_the_allocatable_set() {
        for seed in [0u64, 1, 42, 0xdead_beef] {
            let pi = rename_permutation(seed);
            let mut seen = [false; 32];
            for (i, r) in pi.iter().enumerate() {
                assert!(!seen[r.index() as usize], "seed {seed}: not a bijection");
                seen[r.index() as usize] = true;
                let fixed = FIXED_REGS.iter().any(|f| f.index() as usize == i);
                if fixed {
                    assert_eq!(r.index() as usize, i, "seed {seed}: fixed reg moved");
                } else {
                    assert_ne!(r.index() as usize, i, "seed {seed}: allocatable reg unmoved");
                }
            }
        }
        assert_eq!(rename_permutation(7), rename_permutation(7));
        assert_ne!(rename_permutation(7), rename_permutation(8));
    }

    fn toy() -> Asm {
        let mut a = Asm::new();
        let tab = a.d_dwords("tab", &[1, 2, 3, 4]);
        a.li(Reg::T0, 4);
        a.la(Reg::T1, tab);
        a.li(Reg::A0, 0);
        let top = a.here("top");
        a.ld(Reg::T2, 0, Reg::T1);
        a.addi(Reg::T1, Reg::T1, 8);
        a.addi(Reg::T0, Reg::T0, -1);
        a.add(Reg::A0, Reg::A0, Reg::T2);
        a.bnez(Reg::T0, top);
        a.ebreak();
        a
    }

    #[test]
    fn transform_is_deterministic_and_size_preserving() {
        let a = toy();
        let cfg = TransformConfig::level(99, 3);
        let (t1, r1) = transform(&a, &cfg);
        let (t2, r2) = transform(&a, &cfg);
        let p1 = t1.link(0x8000_0000).unwrap();
        let p2 = t2.link(0x8000_0000).unwrap();
        assert_eq!(p1.text, p2.text);
        assert_eq!(r1.rename, r2.rename);
        assert_eq!(r1.item_perm, r2.item_perm);
        let orig = a.link(0x8000_0000).unwrap();
        assert_eq!(p1.text.len(), orig.text.len());
        assert_eq!(p1.data, orig.data);
    }

    #[test]
    fn rename_changes_every_loop_body_encoding_of_the_toy() {
        let a = toy();
        let orig = a.link(0x8000_0000).unwrap();
        let (t, _) = transform(&a, &TransformConfig { jitter_passes: 0, ..Default::default() });
        let var = t.link(0x8000_0000).unwrap();
        let ow: Vec<u32> = orig.words().map(|(_, w)| w).collect();
        let vw: Vec<u32> = var.words().map(|(_, w)| w).collect();
        // Every word of the toy names at least one allocatable register, so
        // no original encoding survives into the variant (except ebreak).
        for (o, v) in ow.iter().zip(&vw) {
            if decode(*o).map(|i| matches!(i, Inst::Ebreak)).unwrap_or(false) {
                assert_eq!(o, v);
            } else {
                assert_ne!(o, v, "encoding {o:#010x} not diversified");
            }
        }
    }

    #[test]
    fn jitter_respects_dependences_and_labels() {
        // `addi t1, t0, 1` depends on `li t0`; they must never reorder.
        // The label-bound loop body must stay behind its label.
        for seed in 0..32u64 {
            let a = toy();
            let cfg =
                TransformConfig { seed, rename: false, jitter_passes: 8, ..Default::default() };
            let (t, rep) = transform(&a, &cfg);
            let prog = t.link(0x4000).unwrap();
            // Same multiset of encodings (modulo la re-materialisation).
            assert_eq!(prog.inst_count(), a.link(0x4000).unwrap().inst_count());
            // The load (depends on t1) never passes the la that defines t1:
            // find positions in the item permutation.
            let la_old = 3; // item index of `la` in toy() (li t0 is 1 item)
            let _ = rep.new_index_of(la_old);
            // Execute both on the sequence level: dependences are enforced
            // by construction; here we only pin that the loop latch stayed
            // last before ebreak (branches are immovable).
            let words: Vec<u32> = prog.words().map(|(_, w)| w).collect();
            let last = decode(words[words.len() - 1]).unwrap();
            assert!(matches!(last, Inst::Ebreak));
            let latch = decode(words[words.len() - 2]).unwrap();
            assert!(matches!(latch, Inst::Branch { .. }), "latch moved: {latch}");
        }
    }

    #[test]
    fn jitter_actually_reorders_for_some_seed() {
        let mut moved = false;
        for seed in 0..16u64 {
            let a = toy();
            let cfg =
                TransformConfig { seed, rename: false, jitter_passes: 4, ..Default::default() };
            let (_, rep) = transform(&a, &cfg);
            if rep.swaps > 0 {
                moved = true;
                break;
            }
        }
        assert!(moved, "no seed in 0..16 produced a single swap");
    }

    #[test]
    fn pair_map_orders_and_resolves() {
        let a = toy();
        let cfg = TransformConfig::level(5, 2);
        let (_, rep) = transform(&a, &cfg);
        let (t, _) = transform(&a, &cfg);
        let assoc: Vec<(usize, usize)> =
            (0..a.items.len()).map(|oi| (oi, rep.new_index_of(oi).unwrap())).collect();
        let map = pair_map(&a, &t, &assoc, 0x1000, 0x9000, rep.rename, 0);
        assert_eq!(map.pairs.len(), a.items.len());
        assert!(map.pairs.windows(2).all(|w| w[0].orig < w[1].orig));
        let first = map.pair_at(0x1000).unwrap();
        assert_eq!(first.kind, MatchKind::Exact);
        // The la item maps as a 2-slot addr-mat point.
        assert!(map.pairs.iter().any(|p| p.kind == MatchKind::AddrMat && p.slots == 2));
    }
}
