//! Seed-driven software-diversity transform.
//!
//! SafeDM derives diversity from *time* (staggering identical binaries).
//! This module derives it from *structure*: a deterministic, seed-driven
//! pass that turns one program into a semantically equal twin through
//!
//! 1. **register renaming** — a bijection over the allocatable GPRs that
//!    fixes the ABI-constrained registers `x0`/`ra`/`sp`/`gp`/`tp`. The
//!    permutation is a single cycle (Sattolo's algorithm), so every
//!    allocatable register is guaranteed to move;
//! 2. **instruction-schedule jitter** — seed-driven adjacent swaps of
//!    independent straight-line instructions, legality decided by the same
//!    [`use_mask`](Inst::use_mask)/[`def_mask`](Inst::def_mask) dataflow
//!    the pipeline's hazard logic uses. Swaps never cross basic-block
//!    boundaries (labels, control flow, system instructions) and never
//!    reorder a store against another memory access.
//!
//! Code- and stack-layout offsets (nop sleds, frame padding) are inserted
//! by the harness that instantiates the twin — they are placement, not
//! item rewriting — but the knobs live in [`TransformConfig`] so one value
//! describes the whole variant.
//!
//! The pass also produces the artefacts the two-program relational prover
//! consumes: the renaming bijection and, via [`pair_map`], a per-point
//! correspondence map between original and variant PCs with the match
//! discipline each point must satisfy (exact renamed encoding, relinked
//! control flow, or re-materialised address).

use safedm_isa::{AluKind, BranchKind, Inst, Reg};

use crate::builder::{Asm, Item, LabelPos};

/// Registers the renaming bijection must fix: `x0` (hardwired zero) plus
/// the ABI link/stack/global/thread registers the harness contract pins.
pub const FIXED_REGS: [Reg; 5] = [Reg::ZERO, Reg::RA, Reg::SP, Reg::GP, Reg::TP];

/// Knobs of the diversity transform. All stages are deterministic in
/// `seed`; a given `(seed, config)` always produces the same twin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformConfig {
    /// Seed for the permutation and the jitter coin flips.
    pub seed: u64,
    /// Apply the register-renaming bijection.
    pub rename: bool,
    /// Rounds of adjacent-swap schedule jitter (0 disables).
    pub jitter_passes: u32,
    /// Entry nop sled of the variant (code-layout + temporal offset),
    /// applied by the twin harness.
    pub sled_len: u32,
    /// Bytes of stack frame padding (`sp -= frame_pad` once at entry),
    /// applied by the twin harness. Kept 16-byte aligned by convention.
    pub frame_pad: u32,
    /// Rewrite unconditional `j` into the architecturally equal
    /// always-taken `beq x0, x0` when the displacement allows, so jump
    /// encodings stop being shared between the twins.
    pub branch_canon: bool,
    /// Re-layout balanced `sp`-relative stack frames: seeded permutation of
    /// the 8-byte spill slots plus 16-byte-aligned padding, so frame
    /// allocation and spill encodings diversify too.
    pub frame_shuffle: bool,
    /// Insert never-executed filler words behind unconditional transfers to
    /// shift downstream code layout (and with it call/jump displacements).
    pub layout_fill: bool,
}

impl Default for TransformConfig {
    fn default() -> TransformConfig {
        TransformConfig::level(0x5afe_d1f0, 3)
    }
}

impl TransformConfig {
    /// Preset aggressiveness levels used by the experiments:
    /// 0 = identity, 1 = rename, 2 = rename + jitter, 3 = full (rename +
    /// jitter + nop sled + frame padding + branch canonicalisation + frame
    /// re-layout + layout filler). Levels above 3 saturate.
    #[must_use]
    pub fn level(seed: u64, level: u8) -> TransformConfig {
        TransformConfig {
            seed,
            rename: level >= 1,
            jitter_passes: if level >= 2 { 4 } else { 0 },
            sled_len: if level >= 3 { 12 } else { 0 },
            frame_pad: if level >= 3 { 64 } else { 0 },
            branch_canon: level >= 3,
            frame_shuffle: level >= 3,
            layout_fill: level >= 3,
        }
    }

    /// Short human-readable name of the closest preset.
    #[must_use]
    pub fn level_name(&self) -> &'static str {
        match (self.rename, self.jitter_passes > 0, self.sled_len > 0 || self.frame_pad > 0) {
            (false, false, false) => "identity",
            (true, false, false) => "rename",
            (true, true, false) => "rename+jitter",
            (true, _, true) => "full",
            _ => "custom",
        }
    }
}

/// One re-laid-out stack frame: how the variant's slot numbering relates to
/// the original's. Slot `j` of the original frame (bytes `8j..8j+8` above
/// `sp` after allocation) lives at slot `slots[j]` of the variant's enlarged
/// frame of `orig_bytes + pad` bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRemap {
    /// Original frame size in bytes (the `addi sp, sp, -K` magnitude).
    pub orig_bytes: u32,
    /// Padding added by the variant (16-byte aligned).
    pub pad: u32,
    /// Slot permutation: original slot `j` → variant slot `slots[j]`.
    /// Injective into `0..(orig_bytes + pad) / 8`.
    pub slots: Vec<u32>,
}

impl FrameRemap {
    /// Total variant frame size in bytes.
    #[must_use]
    pub fn var_bytes(&self) -> u32 {
        self.orig_bytes + self.pad
    }
}

/// What the transform did, in enough detail for the relational prover and
/// the differential tests to check it.
#[derive(Debug, Clone)]
pub struct TransformReport {
    /// Seed the twin was derived from.
    pub seed: u64,
    /// The renaming bijection: `rename[i]` is where `x{i}` went. Identity
    /// when renaming is disabled.
    pub rename: [Reg; 32],
    /// Accepted jitter swaps.
    pub swaps: u64,
    /// Item permutation: `item_perm[new] == old` index into the source
    /// item list (`usize::MAX` marks inserted layout-filler items with no
    /// source counterpart).
    pub item_perm: Vec<usize>,
    /// Nop-sled length the harness will insert.
    pub sled_len: u32,
    /// Frame padding the harness will insert.
    pub frame_pad: u32,
    /// Re-laid-out stack frames, in textual order of their allocation.
    pub frames: Vec<FrameRemap>,
    /// Items rewritten by the frame re-layout, as `(source item index,
    /// index into [`TransformReport::frames`])` — the allocation, the
    /// deallocation and every `sp`-relative access of each frame.
    pub frame_points: Vec<(usize, u8)>,
    /// Number of never-executed layout-filler items inserted.
    pub fillers: usize,
}

impl TransformReport {
    /// The registers that actually moved, as `(from, to)` pairs.
    #[must_use]
    pub fn renamed_pairs(&self) -> Vec<(Reg, Reg)> {
        (0..32u8)
            .filter_map(|i| {
                let from = Reg::new(i);
                let to = self.rename[i as usize];
                (from != to).then_some((from, to))
            })
            .collect()
    }

    /// Position of source item `old` in the transformed item list.
    #[must_use]
    pub fn new_index_of(&self, old: usize) -> Option<usize> {
        self.item_perm.iter().position(|&o| o == old)
    }
}

/// SplitMix64 — the same tiny generator the campaign engine seeds its
/// cells with; re-implemented here so `safedm-asm` stays dependency-free.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Derives the register-renaming bijection for `seed`: a single cycle over
/// the 27 allocatable registers (Sattolo's algorithm), so it has **no**
/// fixed point among them, while [`FIXED_REGS`] map to themselves.
#[must_use]
pub fn rename_permutation(seed: u64) -> [Reg; 32] {
    let mut rng = SplitMix64(seed ^ 0x007e_9a11_e50f_u64);
    let pool: Vec<u8> = (0..32u8).filter(|i| !FIXED_REGS.iter().any(|f| f.index() == *i)).collect();
    let n = pool.len();
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below(i as u64) as usize;
        perm.swap(i, j);
    }
    let mut map = [Reg::ZERO; 32];
    for i in 0..32u8 {
        map[i as usize] = Reg::new(i);
    }
    for (k, &src) in pool.iter().enumerate() {
        map[src as usize] = Reg::new(pool[perm[k]]);
    }
    map
}

/// Read/write register masks of an item, for the swap legality check.
/// `La` expands to `auipc`+`addi` over `rd` only (its source is the PC,
/// which relinking re-derives at the new position).
fn item_masks(item: &Item) -> (u32, u32) {
    match item {
        Item::Fixed(i) => (i.use_mask(), i.def_mask()),
        Item::La { rd, .. } => (0, rd.bit()),
        // Barriers: never swapped, masks irrelevant.
        Item::Raw(_) | Item::Branch { .. } | Item::Jal { .. } => (u32::MAX, u32::MAX),
    }
}

/// Whether schedule jitter may move this item at all.
fn movable(item: &Item) -> bool {
    match item {
        Item::La { .. } => true,
        Item::Fixed(i) => {
            // Control flow and system instructions anchor the schedule;
            // `auipc` is PC-relative so moving it would change its value.
            !(i.is_control_flow() || i.is_system() || matches!(i, Inst::Auipc { .. } | Inst::Fence))
        }
        Item::Raw(_) | Item::Branch { .. } | Item::Jal { .. } => false,
    }
}

fn is_mem(item: &Item) -> bool {
    matches!(item, Item::Fixed(i) if i.is_mem())
}

fn is_store(item: &Item) -> bool {
    matches!(item, Item::Fixed(i) if i.is_store())
}

/// May `a` and `b` (adjacent, `a` first) exchange places?
fn may_swap(a: &Item, b: &Item) -> bool {
    if !movable(a) || !movable(b) {
        return false;
    }
    let (ua, da) = item_masks(a);
    let (ub, db) = item_masks(b);
    if (da & db) | (da & ub) | (ua & db) != 0 {
        return false; // WAW / RAW / WAR
    }
    // Conservative memory model: loads may pass loads, nothing passes a
    // store.
    !(is_mem(a) && is_mem(b) && (is_store(a) || is_store(b)))
}

/// Applies the diversity transform to `asm`, returning the twin and a
/// report. The twin assembles to the same instruction count and byte size
/// (renaming and reordering only; layout offsets are the harness's job).
#[must_use]
pub fn transform(asm: &Asm, cfg: &TransformConfig) -> (Asm, TransformReport) {
    let mut out = asm.clone();
    let mut report = TransformReport {
        seed: cfg.seed,
        rename: rename_permutation(cfg.seed),
        swaps: 0,
        item_perm: (0..asm.items.len()).collect(),
        sled_len: cfg.sled_len,
        frame_pad: cfg.frame_pad,
        frames: Vec::new(),
        frame_points: Vec::new(),
        fillers: 0,
    };
    if !cfg.rename {
        for i in 0..32u8 {
            report.rename[i as usize] = Reg::new(i);
        }
    }

    // --- register renaming ------------------------------------------------
    if cfg.rename {
        let pi = report.rename;
        let f = |r: Reg| pi[r.index() as usize];
        for item in &mut out.items {
            *item = match item {
                Item::Fixed(i) => Item::Fixed(i.map_regs(f)),
                Item::Raw(w) => Item::Raw(*w),
                Item::Branch { kind, rs1, rs2, target } => {
                    Item::Branch { kind: *kind, rs1: f(*rs1), rs2: f(*rs2), target: *target }
                }
                Item::Jal { rd, target } => Item::Jal { rd: f(*rd), target: *target },
                Item::La { rd, target } => Item::La { rd: f(*rd), target: *target },
            };
        }
    }

    // --- branch canonicalisation -------------------------------------------
    if cfg.branch_canon {
        canonicalise_branches(&mut out);
    }

    // --- stack-frame re-layout ---------------------------------------------
    if cfg.frame_shuffle {
        let (frames, points) = shuffle_frames(&mut out, cfg.seed);
        report.frames = frames;
        report.frame_points = points;
    }

    // --- schedule jitter ---------------------------------------------------
    if cfg.jitter_passes > 0 && !out.items.is_empty() {
        // Item start offsets and the set of bound text-label offsets: a
        // label is a potential jump target, so no item may cross one.
        let mut offs = Vec::with_capacity(out.items.len());
        let mut off = 0u64;
        for item in &out.items {
            offs.push(off);
            off += item.size();
        }
        let mut label_offs: Vec<u64> = out
            .labels
            .iter()
            .filter_map(|l| match l.pos {
                Some(LabelPos::Text(o)) => Some(o),
                _ => None,
            })
            .collect();
        label_offs.sort_unstable();
        let is_label = |o: u64| label_offs.binary_search(&o).is_ok();

        // Maximal swap regions: runs of movable items not broken by a
        // label boundary.
        let mut regions: Vec<(usize, usize)> = Vec::new(); // [start, end)
        let mut start = None;
        for (i, item) in out.items.iter().enumerate() {
            let breaks = !movable(item) || (start.is_some() && is_label(offs[i]));
            if breaks {
                if let Some(s) = start.take() {
                    regions.push((s, i));
                }
                if movable(item) {
                    start = Some(i); // label boundary: new region starts here
                }
            } else if start.is_none() {
                start = Some(i);
            }
        }
        if let Some(s) = start {
            regions.push((s, out.items.len()));
        }

        let mut rng = SplitMix64(cfg.seed ^ 0x0011_77e2_u64);
        for _ in 0..cfg.jitter_passes {
            for &(s, e) in &regions {
                for i in s..e.saturating_sub(1) {
                    if rng.below(2) == 0 {
                        continue;
                    }
                    if may_swap(&out.items[i], &out.items[i + 1]) {
                        out.items.swap(i, i + 1);
                        report.item_perm.swap(i, i + 1);
                        report.swaps += 1;
                    }
                }
            }
        }
    }

    // --- layout filler -----------------------------------------------------
    if cfg.layout_fill {
        report.fillers = insert_fillers(&mut out, &mut report.item_perm, cfg.seed);
    }

    (out, report)
}

/// Item start offsets of the current item list.
fn item_offsets(asm: &Asm) -> Vec<u64> {
    let mut offs = Vec::with_capacity(asm.items.len());
    let mut off = 0u64;
    for item in &asm.items {
        offs.push(off);
        off += item.size();
    }
    offs
}

/// Whether control provably never falls through this item: unconditional
/// jumps (`j`, `jr`/`ret`) and always-taken same-register branches.
fn never_falls_through(item: &Item) -> bool {
    match item {
        Item::Jal { rd, .. } => rd.is_zero(),
        Item::Branch { kind, rs1, rs2, .. } => {
            rs1 == rs2 && matches!(kind, BranchKind::Eq | BranchKind::Ge | BranchKind::Geu)
        }
        Item::Fixed(i) => match *i {
            Inst::Jal { rd, .. } | Inst::Jalr { rd, .. } => rd.is_zero(),
            Inst::Branch { kind, rs1, rs2, .. } => {
                rs1 == rs2 && matches!(kind, BranchKind::Eq | BranchKind::Ge | BranchKind::Geu)
            }
            _ => false,
        },
        Item::La { .. } | Item::Raw(_) => false,
    }
}

/// Rewrites unconditional `j` items into the architecturally equal
/// always-taken `beq x0, x0, target` when the displacement (with headroom
/// for later layout-filler shifts) fits the conditional-branch range. The
/// two forms commit identically — no link register, same target — but their
/// encodings never collide, which removes the `j` encodings the twins would
/// otherwise share.
fn canonicalise_branches(out: &mut Asm) {
    let offs = item_offsets(out);
    // Every never-falling-through item may later receive one 4-byte filler;
    // leave that much headroom so relinking cannot go out of range.
    let headroom = 4 * out.items.len().min(512) as i64 + 64;
    let limit = 4094 - headroom.min(2048);
    let labels = &out.labels;
    for (i, item) in out.items.iter_mut().enumerate() {
        let (rd, target) = match item {
            Item::Jal { rd, target } => (*rd, *target),
            _ => continue,
        };
        if !rd.is_zero() {
            continue;
        }
        let Some(LabelPos::Text(t)) = labels[target.0].pos else { continue };
        let disp = t as i64 - offs[i] as i64;
        if disp >= -limit && disp <= limit {
            *item = Item::Branch { kind: BranchKind::Eq, rs1: Reg::ZERO, rs2: Reg::ZERO, target };
        }
    }
}

/// One frame open during the re-layout scan.
struct OpenFrame {
    /// Item index of the `addi sp, sp, -K` allocation.
    alloc: usize,
    /// Frame size `K` in bytes.
    k: u32,
    /// `sp`-relative accesses seen so far: `(item index, byte offset)`.
    accesses: Vec<(usize, u32)>,
    /// Whether anything unanalysable touched the region.
    bad: bool,
}

/// Scans the item list for balanced `sp` frames (`addi sp, sp, -K` …
/// `addi sp, sp, +K` with every intervening `sp` use an in-range, 8-byte
/// aligned spill access and no label bound inside) and re-lays them out:
/// the variant frame grows by a seeded 16-byte-aligned pad and the 8-byte
/// slots are permuted with a full-cycle (Sattolo) permutation, so every
/// spill offset and both frame `addi` encodings provably change. Anything
/// irregular — branches inside the frame, out-of-range or misaligned
/// offsets, unknown `sp` writes, labels into the region — conservatively
/// disqualifies the enclosing frames.
fn shuffle_frames(out: &mut Asm, seed: u64) -> (Vec<FrameRemap>, Vec<(usize, u8)>) {
    let offs = item_offsets(out);
    let mut label_offs: Vec<u64> = out
        .labels
        .iter()
        .filter_map(|l| match l.pos {
            Some(LabelPos::Text(o)) => Some(o),
            _ => None,
        })
        .collect();
    label_offs.sort_unstable();
    let is_label = |o: u64| label_offs.binary_search(&o).is_ok();

    let sp = Reg::SP.bit();
    let mut open: Vec<OpenFrame> = Vec::new();
    // Closed, analysable regions: (alloc idx, dealloc idx, K, accesses).
    type Region = (usize, usize, u32, Vec<(usize, u32)>);
    let mut regions: Vec<Region> = Vec::new();

    for (i, item) in out.items.iter().enumerate() {
        // A label bound inside an open region is a potential entry that
        // skips the allocation: disqualify every enclosing frame.
        if !open.is_empty() && i > 0 && is_label(offs[i]) {
            for f in &mut open {
                f.bad = true;
            }
        }
        match item {
            Item::Fixed(Inst::OpImm { kind: AluKind::Add, rd, rs1, imm })
                if *rd == Reg::SP && *rs1 == Reg::SP =>
            {
                if *imm < 0 {
                    let k = (-imm) as u64;
                    if k.is_multiple_of(8) && k <= 2047 {
                        open.push(OpenFrame {
                            alloc: i,
                            k: k as u32,
                            accesses: vec![],
                            bad: false,
                        });
                    } else {
                        open.clear(); // unanalysable sp adjustment
                    }
                } else if *imm > 0 {
                    match open.pop() {
                        Some(f) if u64::from(f.k) == *imm as u64 => {
                            if !f.bad {
                                regions.push((f.alloc, i, f.k, f.accesses));
                            }
                        }
                        _ => open.clear(), // unbalanced: stop tracking
                    }
                }
            }
            Item::Fixed(Inst::Load { rd, rs1, offset, .. }) if *rs1 == Reg::SP => {
                if *rd == Reg::SP {
                    open.clear(); // sp redefined from memory
                } else if let Some(f) = open.last_mut() {
                    if *offset >= 0 && *offset % 8 == 0 && (*offset as u64) + 8 <= u64::from(f.k) {
                        f.accesses.push((i, *offset as u32));
                    } else {
                        for f in &mut open {
                            f.bad = true;
                        }
                    }
                }
            }
            Item::Fixed(Inst::Store { rs1, rs2, offset, .. }) if *rs1 == Reg::SP => {
                let in_range = |f: &OpenFrame| {
                    *offset >= 0 && *offset % 8 == 0 && (*offset as u64) + 8 <= u64::from(f.k)
                };
                match open.last_mut() {
                    Some(f) if *rs2 != Reg::SP && in_range(f) => {
                        f.accesses.push((i, *offset as u32));
                    }
                    Some(_) => {
                        for f in &mut open {
                            f.bad = true;
                        }
                    }
                    None => {}
                }
            }
            Item::Fixed(inst) => {
                if inst.def_mask() & sp != 0 {
                    open.clear(); // sp redefined by something we don't model
                } else if open.is_empty() {
                    // nothing to protect
                } else if matches!(inst, Inst::Jal { rd, .. } if *rd == Reg::RA) {
                    // A call: the callee runs in its own frame and returns.
                } else if inst.is_control_flow()
                    || inst.is_system()
                    || matches!(inst, Inst::Ecall | Inst::Ebreak)
                    || inst.use_mask() & sp != 0
                {
                    for f in &mut open {
                        f.bad = true;
                    }
                }
            }
            Item::Jal { rd, .. } if *rd == Reg::RA => {} // call, see above
            Item::La { rd, .. } if *rd != Reg::SP => {}
            Item::Branch { .. } | Item::Jal { .. } | Item::Raw(_) | Item::La { .. } => {
                if !open.is_empty() {
                    for f in &mut open {
                        f.bad = true;
                    }
                }
            }
        }
    }

    regions.sort_by_key(|r| r.0);
    let mut rng = SplitMix64(seed ^ 0x00f7_a3e5_1a7e_u64);
    let mut frames = Vec::new();
    let mut points = Vec::new();
    for (alloc, dealloc, k, accesses) in regions {
        if frames.len() == u8::MAX as usize {
            break; // frame ids are u8; more regions than that stay as-is
        }
        let mut pad = 16 * (1 + rng.below(4) as u32);
        while pad > 0 && k + pad > 2040 {
            pad -= 16;
        }
        if pad == 0 {
            continue; // frame too large to enlarge — leave it alone
        }
        let total = ((k + pad) / 8) as usize;
        // Sattolo: a single cycle, so *every* slot moves and every rewritten
        // offset provably differs from the original.
        let mut perm: Vec<u32> = (0..total as u32).collect();
        for i in (1..total).rev() {
            let j = rng.below(i as u64) as usize;
            perm.swap(i, j);
        }
        let fi = frames.len() as u8;
        let var_bytes = i64::from(k + pad);
        if let Item::Fixed(Inst::OpImm { imm, .. }) = &mut out.items[alloc] {
            *imm = -var_bytes;
        }
        if let Item::Fixed(Inst::OpImm { imm, .. }) = &mut out.items[dealloc] {
            *imm = var_bytes;
        }
        points.push((alloc, fi));
        points.push((dealloc, fi));
        for &(idx, off) in &accesses {
            let new_off = i64::from(8 * perm[(off / 8) as usize]);
            match &mut out.items[idx] {
                Item::Fixed(Inst::Load { offset, .. })
                | Item::Fixed(Inst::Store { offset, .. }) => {
                    *offset = new_off;
                }
                _ => unreachable!("frame access is always a load or store"),
            }
            points.push((idx, fi));
        }
        frames.push(FrameRemap { orig_bytes: k, pad, slots: perm[..(k / 8) as usize].to_vec() });
    }
    (frames, points)
}

/// Inserts one never-executed 4-byte filler word behind every item control
/// provably never falls through, shifting all downstream code by 4 bytes per
/// filler — and with it every call/jump displacement crossing a filler.
/// Fillers encode as `addi x0, x0, c` with per-program-distinct `c != 0`, so
/// they decode as plain non-control instructions (the pair prover's tiling
/// check demands that) yet collide with no real or pad-nop encoding.
/// Labels at or after an insertion point shift past the filler, so every
/// branch target still reaches the instruction it used to.
fn insert_fillers(out: &mut Asm, item_perm: &mut Vec<usize>, seed: u64) -> usize {
    let offs = item_offsets(out);
    let mut rng = SplitMix64(seed ^ 0x0f11_1e55_u64);
    let mut used = std::collections::BTreeSet::new();
    let mut items = Vec::with_capacity(out.items.len());
    let mut perm = Vec::with_capacity(item_perm.len());
    let mut fill_points: Vec<u64> = Vec::new();
    for (i, item) in out.items.drain(..).enumerate() {
        let fills_here = never_falls_through(&item);
        let end = offs[i] + item.size();
        items.push(item);
        perm.push(item_perm[i]);
        if fills_here {
            let mut c = 0u64;
            for _ in 0..64 {
                c = 1 + rng.below(2047);
                if used.insert(c) {
                    break;
                }
            }
            let raw = ((c as u32) << 20) | 0x13; // addi x0, x0, c
            items.push(Item::Raw(raw));
            perm.push(usize::MAX);
            fill_points.push(end);
        }
    }
    let fills = fill_points.len();
    for label in &mut out.labels {
        if let Some(LabelPos::Text(o)) = &mut label.pos {
            let shift = 4 * fill_points.iter().filter(|&&fp| fp <= *o).count() as u64;
            *o += shift;
        }
    }
    out.text_off += 4 * fills as u64;
    out.items = items;
    *item_perm = perm;
    fills
}

// ---------------------------------------------------------------------------
// Correspondence map
// ---------------------------------------------------------------------------

/// How a correspondence point is allowed to differ between the twins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// The variant encoding must equal the renamed original encoding
    /// bit-for-bit (immediates included).
    Exact,
    /// Relinked control flow (`branch`/`jal`): same operation and renamed
    /// registers, but the displacement is free (layout may move targets).
    ControlFlow,
    /// Re-materialised address (`la` → `auipc`+`addi` pair): same shape and
    /// renamed destination, immediates free.
    AddrMat,
    /// Re-laid-out stack-frame instruction: the frame `addi` magnitudes and
    /// spill offsets must relate exactly as the indexed
    /// [`FrameRemap`](PairMap::frames) dictates.
    Frame(u8),
}

impl std::fmt::Display for MatchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchKind::Exact => f.write_str("exact"),
            MatchKind::ControlFlow => f.write_str("control-flow"),
            MatchKind::AddrMat => f.write_str("addr-mat"),
            MatchKind::Frame(i) => write!(f, "frame#{i}"),
        }
    }
}

/// One point of the original ↔ variant correspondence.
#[derive(Debug, Clone, Copy)]
pub struct PcPair {
    /// PC of the point in the original copy.
    pub orig: u64,
    /// PC of the corresponding point in the variant copy.
    pub var: u64,
    /// Consecutive 32-bit slots covered (2 for an `la` pair).
    pub slots: u8,
    /// Match discipline the relational prover must enforce here.
    pub kind: MatchKind,
}

/// The per-point correspondence map between a program and its transformed
/// twin: the renamed-register bijection plus the original-PC ↔ variant-PC
/// pairing, with each point's match discipline. This is the interface
/// between the transform (which constructs it) and the relational prover
/// (which *verifies* it and refuses to certify on any violation).
#[derive(Debug, Clone)]
pub struct PairMap {
    /// The renaming bijection applied to the variant.
    pub rename: [Reg; 32],
    /// Correspondence points, sorted by original PC.
    pub pairs: Vec<PcPair>,
    /// Half-open text span `[start, end)` of the original copy.
    pub orig_span: (u64, u64),
    /// Half-open text span `[start, end)` of the variant copy.
    pub var_span: (u64, u64),
    /// Slot overhead of the variant over the original inside `var_span`:
    /// sled + padding + result-register fix-up + layout filler. This is the
    /// tiling budget — uncovered variant slots — not the retired-instruction
    /// overhead (filler never executes).
    pub overhead_insts: u64,
    /// Stack-frame re-layouts referenced by [`MatchKind::Frame`] points.
    pub frames: Vec<FrameRemap>,
}

impl PairMap {
    /// Where `x{i}` went under the variant's renaming.
    #[must_use]
    pub fn renamed(&self, r: Reg) -> Reg {
        self.rename[r.index() as usize]
    }

    /// The correspondence point starting at original PC `pc`, if any.
    #[must_use]
    pub fn pair_at(&self, pc: u64) -> Option<&PcPair> {
        self.pairs.binary_search_by_key(&pc, |p| p.orig).ok().map(|i| &self.pairs[i])
    }
}

/// Builds the [`PairMap`] for two item-associated builders: `assoc` lists
/// `(orig_item, var_item)` index pairs, `orig_base`/`var_base` are the link
/// bases of the two copies. The match discipline of each point follows the
/// original item's kind.
#[must_use]
pub fn pair_map(
    orig: &Asm,
    var: &Asm,
    assoc: &[(usize, usize)],
    orig_base: u64,
    var_base: u64,
    rename: [Reg; 32],
    overhead_insts: u64,
) -> PairMap {
    let offsets = |a: &Asm| -> Vec<u64> {
        let mut offs = Vec::with_capacity(a.items.len());
        let mut off = 0u64;
        for item in &a.items {
            offs.push(off);
            off += item.size();
        }
        offs
    };
    let o_offs = offsets(orig);
    let v_offs = offsets(var);
    let mut pairs: Vec<PcPair> = assoc
        .iter()
        .map(|&(oi, vi)| {
            let (slots, kind) = match &orig.items[oi] {
                Item::La { .. } => (2, MatchKind::AddrMat),
                Item::Branch { .. } | Item::Jal { .. } => (1, MatchKind::ControlFlow),
                Item::Fixed(i) if i.is_control_flow() => (1, MatchKind::ControlFlow),
                Item::Fixed(_) | Item::Raw(_) => (1, MatchKind::Exact),
            };
            PcPair { orig: orig_base + o_offs[oi], var: var_base + v_offs[vi], slots, kind }
        })
        .collect();
    pairs.sort_by_key(|p| p.orig);
    PairMap {
        rename,
        pairs,
        orig_span: (orig_base, orig_base + orig.text_off),
        var_span: (var_base, var_base + var.text_off),
        overhead_insts,
        frames: Vec::new(),
    }
}

/// Attaches the frame re-layout artefacts of `report` to a [`PairMap`]:
/// every correspondence point whose variant item the frame shuffle rewrote
/// flips to [`MatchKind::Frame`], and the remap table is copied over so the
/// relational prover can check alloc magnitudes and spill offsets exactly.
///
/// `src_to_orig` maps a source item index of the *transformed* builder to
/// the corresponding item index of `orig` (`None` for items with no
/// original counterpart, e.g. harness extras).
pub fn apply_frame_map(
    map: &mut PairMap,
    orig: &Asm,
    report: &TransformReport,
    orig_base: u64,
    src_to_orig: impl Fn(usize) -> Option<usize>,
) {
    if report.frames.is_empty() {
        return;
    }
    let o_offs = item_offsets(orig);
    map.frames = report.frames.clone();
    for &(src, fi) in &report.frame_points {
        let Some(oi) = src_to_orig(src) else { continue };
        let pc = orig_base + o_offs[oi];
        if let Ok(i) = map.pairs.binary_search_by_key(&pc, |p| p.orig) {
            map.pairs[i].kind = MatchKind::Frame(fi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_isa::decode;

    #[test]
    fn rename_is_a_derangement_of_the_allocatable_set() {
        for seed in [0u64, 1, 42, 0xdead_beef] {
            let pi = rename_permutation(seed);
            let mut seen = [false; 32];
            for (i, r) in pi.iter().enumerate() {
                assert!(!seen[r.index() as usize], "seed {seed}: not a bijection");
                seen[r.index() as usize] = true;
                let fixed = FIXED_REGS.iter().any(|f| f.index() as usize == i);
                if fixed {
                    assert_eq!(r.index() as usize, i, "seed {seed}: fixed reg moved");
                } else {
                    assert_ne!(r.index() as usize, i, "seed {seed}: allocatable reg unmoved");
                }
            }
        }
        assert_eq!(rename_permutation(7), rename_permutation(7));
        assert_ne!(rename_permutation(7), rename_permutation(8));
    }

    fn toy() -> Asm {
        let mut a = Asm::new();
        let tab = a.d_dwords("tab", &[1, 2, 3, 4]);
        a.li(Reg::T0, 4);
        a.la(Reg::T1, tab);
        a.li(Reg::A0, 0);
        let top = a.here("top");
        a.ld(Reg::T2, 0, Reg::T1);
        a.addi(Reg::T1, Reg::T1, 8);
        a.addi(Reg::T0, Reg::T0, -1);
        a.add(Reg::A0, Reg::A0, Reg::T2);
        a.bnez(Reg::T0, top);
        a.ebreak();
        a
    }

    #[test]
    fn transform_is_deterministic_and_size_preserving() {
        let a = toy();
        let cfg = TransformConfig::level(99, 3);
        let (t1, r1) = transform(&a, &cfg);
        let (t2, r2) = transform(&a, &cfg);
        let p1 = t1.link(0x8000_0000).unwrap();
        let p2 = t2.link(0x8000_0000).unwrap();
        assert_eq!(p1.text, p2.text);
        assert_eq!(r1.rename, r2.rename);
        assert_eq!(r1.item_perm, r2.item_perm);
        let orig = a.link(0x8000_0000).unwrap();
        assert_eq!(p1.text.len(), orig.text.len());
        assert_eq!(p1.data, orig.data);
    }

    #[test]
    fn rename_changes_every_loop_body_encoding_of_the_toy() {
        let a = toy();
        let orig = a.link(0x8000_0000).unwrap();
        let (t, _) = transform(&a, &TransformConfig { jitter_passes: 0, ..Default::default() });
        let var = t.link(0x8000_0000).unwrap();
        let ow: Vec<u32> = orig.words().map(|(_, w)| w).collect();
        let vw: Vec<u32> = var.words().map(|(_, w)| w).collect();
        // Every word of the toy names at least one allocatable register, so
        // no original encoding survives into the variant (except ebreak).
        for (o, v) in ow.iter().zip(&vw) {
            if decode(*o).map(|i| matches!(i, Inst::Ebreak)).unwrap_or(false) {
                assert_eq!(o, v);
            } else {
                assert_ne!(o, v, "encoding {o:#010x} not diversified");
            }
        }
    }

    #[test]
    fn jitter_respects_dependences_and_labels() {
        // `addi t1, t0, 1` depends on `li t0`; they must never reorder.
        // The label-bound loop body must stay behind its label.
        for seed in 0..32u64 {
            let a = toy();
            let cfg =
                TransformConfig { seed, rename: false, jitter_passes: 8, ..Default::default() };
            let (t, rep) = transform(&a, &cfg);
            let prog = t.link(0x4000).unwrap();
            // Same multiset of encodings (modulo la re-materialisation).
            assert_eq!(prog.inst_count(), a.link(0x4000).unwrap().inst_count());
            // The load (depends on t1) never passes the la that defines t1:
            // find positions in the item permutation.
            let la_old = 3; // item index of `la` in toy() (li t0 is 1 item)
            let _ = rep.new_index_of(la_old);
            // Execute both on the sequence level: dependences are enforced
            // by construction; here we only pin that the loop latch stayed
            // last before ebreak (branches are immovable).
            let words: Vec<u32> = prog.words().map(|(_, w)| w).collect();
            let last = decode(words[words.len() - 1]).unwrap();
            assert!(matches!(last, Inst::Ebreak));
            let latch = decode(words[words.len() - 2]).unwrap();
            assert!(matches!(latch, Inst::Branch { .. }), "latch moved: {latch}");
        }
    }

    #[test]
    fn jitter_actually_reorders_for_some_seed() {
        let mut moved = false;
        for seed in 0..16u64 {
            let a = toy();
            let cfg =
                TransformConfig { seed, rename: false, jitter_passes: 4, ..Default::default() };
            let (_, rep) = transform(&a, &cfg);
            if rep.swaps > 0 {
                moved = true;
                break;
            }
        }
        assert!(moved, "no seed in 0..16 produced a single swap");
    }

    #[test]
    fn branch_canon_rewrites_short_jumps_in_place() {
        let mut a = Asm::new();
        let done = a.new_label("done");
        a.li(Reg::T0, 3);
        a.j(done);
        a.nop();
        a.bind(done).unwrap();
        a.ebreak();
        let cfg = TransformConfig {
            rename: false,
            jitter_passes: 0,
            layout_fill: false,
            frame_shuffle: false,
            branch_canon: true,
            ..TransformConfig::level(7, 3)
        };
        let (t, rep) = transform(&a, &cfg);
        assert_eq!(rep.fillers, 0);
        let prog = t.link(0x8000_0000).unwrap();
        let words: Vec<Inst> = prog.words().map(|(_, w)| decode(w).unwrap()).collect();
        // The `j` slot now decodes as an always-taken beq x0, x0 with the
        // same target (two slots ahead: skip the nop).
        let j_slot = words.iter().position(|i| matches!(i, Inst::Branch { .. })).unwrap();
        let Inst::Branch { kind, rs1, rs2, offset } = words[j_slot] else { unreachable!() };
        assert_eq!(kind, safedm_isa::BranchKind::Eq);
        assert!(rs1.is_zero() && rs2.is_zero());
        assert_eq!(offset, 8, "target must still skip the nop");
        assert!(!words.iter().any(|i| matches!(i, Inst::Jal { .. })));
    }

    #[test]
    fn frame_shuffle_permutes_slots_and_stays_balanced() {
        let mut a = Asm::new();
        a.addi(Reg::SP, Reg::SP, -16);
        a.sd(Reg::A0, 0, Reg::SP);
        a.sd(Reg::A1, 8, Reg::SP);
        a.ld(Reg::A0, 0, Reg::SP);
        a.ld(Reg::A1, 8, Reg::SP);
        a.addi(Reg::SP, Reg::SP, 16);
        a.ebreak();
        let cfg = TransformConfig {
            rename: false,
            jitter_passes: 0,
            branch_canon: false,
            layout_fill: false,
            frame_shuffle: true,
            ..TransformConfig::level(11, 3)
        };
        let (t, rep) = transform(&a, &cfg);
        assert_eq!(rep.frames.len(), 1, "{:?}", rep.frames);
        let fr = &rep.frames[0];
        assert_eq!(fr.orig_bytes, 16);
        assert!(fr.pad >= 16 && fr.pad % 16 == 0, "{fr:?}");
        assert_eq!(fr.slots.len(), 2);
        // Sattolo: every original slot moved.
        assert!(fr.slots[0] != 0 && fr.slots[1] != 1, "{fr:?}");
        assert!(fr.slots[0] != fr.slots[1]);
        // Alloc/dealloc rewritten to the padded size, accesses follow the
        // permutation, and the frame stays balanced.
        let var = i64::from(fr.var_bytes());
        let insts: Vec<Inst> =
            t.link(0x1000).unwrap().words().map(|(_, w)| decode(w).unwrap()).collect();
        let mut sp_delta = 0i64;
        for i in &insts {
            if let Inst::OpImm { rd: Reg::SP, rs1: Reg::SP, imm, .. } = i {
                sp_delta += imm;
                assert!(imm.unsigned_abs() == var as u64, "{i}");
            }
            if let Inst::Store { rs1: Reg::SP, offset, .. } = i {
                assert_eq!(*offset % 8, 0);
                assert!(*offset < var && *offset != 0 || *offset != 8, "offset moved: {i}");
            }
        }
        assert_eq!(sp_delta, 0, "frame must stay balanced");
        // 2 addis + 4 accesses = 6 frame points, all frame id 0.
        assert_eq!(rep.frame_points.len(), 6, "{:?}", rep.frame_points);
        assert!(rep.frame_points.iter().all(|&(_, fi)| fi == 0));
    }

    #[test]
    fn frame_shuffle_skips_irregular_regions() {
        // A branch inside the frame region disqualifies it.
        let mut a = Asm::new();
        let out = a.new_label("out");
        a.addi(Reg::SP, Reg::SP, -16);
        a.sd(Reg::A0, 0, Reg::SP);
        a.beqz(Reg::A1, out);
        a.ld(Reg::A0, 0, Reg::SP);
        a.addi(Reg::SP, Reg::SP, 16);
        a.bind(out).unwrap();
        a.ebreak();
        let cfg = TransformConfig {
            rename: false,
            jitter_passes: 0,
            branch_canon: false,
            layout_fill: false,
            frame_shuffle: true,
            ..TransformConfig::level(11, 3)
        };
        let (t, rep) = transform(&a, &cfg);
        assert!(rep.frames.is_empty(), "{:?}", rep.frames);
        assert_eq!(t.link(0x1000).unwrap().text, a.link(0x1000).unwrap().text);
    }

    #[test]
    fn layout_fill_inserts_unreachable_distinct_words_and_relinks() {
        let mut a = Asm::new();
        let f = a.new_label("f");
        let done = a.new_label("done");
        a.li(Reg::T0, 1);
        a.call(f);
        a.j(done);
        a.nop(); // dead, but keeps the shape interesting
        a.bind(f).unwrap();
        a.ret();
        a.bind(done).unwrap();
        a.ebreak();
        let cfg = TransformConfig {
            rename: false,
            jitter_passes: 0,
            branch_canon: false,
            frame_shuffle: false,
            layout_fill: true,
            ..TransformConfig::level(13, 3)
        };
        let orig = a.link(0x8000_0000).unwrap();
        let (t, rep) = transform(&a, &cfg);
        // One filler behind the `j`, one behind the `ret`.
        assert_eq!(rep.fillers, 2, "{:?}", rep.item_perm);
        assert_eq!(rep.item_perm.iter().filter(|&&o| o == usize::MAX).count(), 2);
        let prog = t.link(0x8000_0000).unwrap();
        assert_eq!(prog.text.len(), orig.text.len() + 8);
        // Fillers decode as addi x0, x0, c with distinct non-zero c.
        let mut cs = Vec::new();
        for (_, w) in prog.words() {
            if let Ok(Inst::OpImm { kind: AluKind::Add, rd, rs1, imm }) = decode(w) {
                if rd.is_zero() && rs1.is_zero() && imm != 0 {
                    cs.push(imm);
                }
            }
        }
        assert_eq!(cs.len(), 2, "{cs:?}");
        assert_ne!(cs[0], cs[1]);
        // The call still reaches `f` (now shifted past the j-filler) and the
        // `j` still reaches the ebreak behind both fillers.
        let words: Vec<(u64, u32)> = prog.words().collect();
        let find = |pred: &dyn Fn(&Inst) -> bool| {
            words
                .iter()
                .find(|(_, w)| decode(*w).map(|i| pred(&i)).unwrap_or(false))
                .map(|&(pc, w)| (pc, decode(w).unwrap()))
                .unwrap()
        };
        let (call_pc, call) = find(&|i| matches!(i, Inst::Jal { rd, .. } if *rd == Reg::RA));
        let Inst::Jal { offset, .. } = call else { unreachable!() };
        let f_target = call_pc.wrapping_add(offset as u64);
        let (ret_pc, _) = find(&|i| matches!(i, Inst::Jalr { rd, .. } if rd.is_zero()));
        assert_eq!(f_target, ret_pc, "call must still land on the ret");
        let (j_pc, j) = find(&|i| matches!(i, Inst::Jal { rd, .. } if rd.is_zero()));
        let Inst::Jal { offset, .. } = j else { unreachable!() };
        let (ebreak_pc, _) = find(&|i| matches!(i, Inst::Ebreak));
        assert_eq!(j_pc.wrapping_add(offset as u64), ebreak_pc, "j must still land on the ebreak");
    }

    #[test]
    fn pair_map_orders_and_resolves() {
        let a = toy();
        let cfg = TransformConfig::level(5, 2);
        let (_, rep) = transform(&a, &cfg);
        let (t, _) = transform(&a, &cfg);
        let assoc: Vec<(usize, usize)> =
            (0..a.items.len()).map(|oi| (oi, rep.new_index_of(oi).unwrap())).collect();
        let map = pair_map(&a, &t, &assoc, 0x1000, 0x9000, rep.rename, 0);
        assert_eq!(map.pairs.len(), a.items.len());
        assert!(map.pairs.windows(2).all(|w| w[0].orig < w[1].orig));
        let first = map.pair_at(0x1000).unwrap();
        assert_eq!(first.kind, MatchKind::Exact);
        // The la item maps as a 2-slot addr-mat point.
        assert!(map.pairs.iter().any(|p| p.kind == MatchKind::AddrMat && p.slots == 2));
    }
}
