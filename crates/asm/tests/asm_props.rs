//! Property tests for the assembler: every linked word decodes, label
//! arithmetic is exact, and `li` materialises arbitrary constants.

use proptest::prelude::*;
use safedm_asm::Asm;
use safedm_isa::{decode, Inst, Reg};

proptest! {
    /// `li` materialises any i64 exactly (validated by interpreting the
    /// emitted sequence with the reference ALU semantics).
    #[test]
    fn li_materialises_any_constant(value in any::<i64>()) {
        let mut a = Asm::new();
        a.li(Reg::A0, value);
        let prog = a.link(0).expect("links");
        let mut regs = [0u64; 32];
        for (_, w) in prog.words() {
            match decode(w).expect("emitted word decodes") {
                Inst::OpImm { kind, rd, rs1, imm } => {
                    let v = safedm_isa::alu(kind, regs[rs1.index() as usize], imm as u64);
                    if !rd.is_zero() {
                        regs[rd.index() as usize] = v;
                    }
                }
                Inst::Lui { rd, imm } => {
                    if !rd.is_zero() {
                        regs[rd.index() as usize] = imm as u64;
                    }
                }
                other => prop_assert!(false, "unexpected instruction {other}"),
            }
        }
        prop_assert_eq!(regs[10] as i64, value);
        // The expansion is bounded (worst case: lui+addiw + 4×(slli+addi)).
        prop_assert!(prog.inst_count() <= 8, "li too long: {}", prog.inst_count());
    }

    /// Every word of a randomly-built straight-line program decodes, and
    /// label targets land exactly on their bound positions.
    #[test]
    fn random_programs_link_and_decode(
        ops in proptest::collection::vec(0usize..6, 1..60),
        base_page in 0u64..1024,
    ) {
        let base = 0x8000_0000 + base_page * 4096;
        let mut a = Asm::new();
        let mut expected_branches = 0usize;
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => { a.add(Reg::T0, Reg::T1, Reg::T2); }
                1 => { a.addi(Reg::T3, Reg::T3, (i as i64 % 100) - 50); }
                2 => { a.ld(Reg::A0, 8, Reg::SP); }
                3 => { a.sd(Reg::A1, 16, Reg::SP); }
                4 => {
                    // forward branch over one nop
                    let skip = a.new_label("skip");
                    a.beqz(Reg::T0, skip);
                    a.nop();
                    a.bind(skip).expect("fresh");
                    expected_branches += 1;
                }
                _ => { a.mul(Reg::T4, Reg::T5, Reg::T6); }
            }
        }
        a.ebreak();
        let prog = a.link(base).expect("links");
        let mut branches = 0usize;
        for (addr, w) in prog.words() {
            let inst = decode(w).expect("every word decodes");
            if let Inst::Branch { offset, .. } = inst {
                branches += 1;
                // target = this branch + 8 (skip exactly one nop)
                prop_assert_eq!(offset, 8, "branch at {:#x}", addr);
            }
        }
        prop_assert_eq!(branches, expected_branches);
        prop_assert_eq!(prog.text_base, base);
        prop_assert_eq!(prog.text_size() % 4, 0);
    }

    /// Data labels resolve to aligned, in-section addresses and symbols
    /// agree with the layout.
    #[test]
    fn data_layout_is_consistent(
        blobs in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 1..8), 1..6),
    ) {
        let mut a = Asm::new();
        a.nop();
        let labels: Vec<String> = blobs
            .iter()
            .enumerate()
            .map(|(i, blob)| {
                let name = format!("blob{i}");
                a.d_dwords(&name, blob);
                name
            })
            .collect();
        a.ebreak();
        let prog = a.link(0x8000_0000).expect("links");
        let mut expected = prog.data_base;
        for (name, blob) in labels.iter().zip(&blobs) {
            let addr = prog.symbol(name).expect("symbol exported");
            prop_assert_eq!(addr, expected, "{} misplaced", name);
            prop_assert_eq!(addr % 8, 0);
            // contents round-trip
            for (j, v) in blob.iter().enumerate() {
                let off = (addr - prog.data_base) as usize + j * 8;
                let got = u64::from_le_bytes(prog.data[off..off + 8].try_into().expect("8 bytes"));
                prop_assert_eq!(got, *v);
            }
            expected = addr + blob.len() as u64 * 8;
        }
    }
}

mod display_roundtrip {
    use proptest::prelude::*;
    use safedm_asm::assemble;
    use safedm_isa::{decode, AluKind, BranchKind, CsrKind, Inst, LoadKind, Reg, StoreKind};

    fn any_reg() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(Reg::new)
    }

    /// Instructions whose `Display` output the text parser must accept and
    /// re-encode identically (`la`/`auipc` excluded: they are PC-relative
    /// pairs the parser expresses only through labels).
    fn any_printable_inst() -> impl Strategy<Value = Inst> {
        prop_oneof![
            (any_reg(), (-524_288i64..524_288)).prop_map(|(rd, v)| Inst::Lui { rd, imm: v << 12 }),
            (any_reg(), (-1000i64..=1000)).prop_map(|(rd, h)| Inst::Jal { rd, offset: h * 2 }),
            (any_reg(), any_reg(), -2048i64..=2047).prop_map(|(rd, rs1, offset)| Inst::Jalr {
                rd,
                rs1,
                offset
            }),
            (
                prop_oneof![
                    Just(BranchKind::Eq),
                    Just(BranchKind::Ne),
                    Just(BranchKind::Lt),
                    Just(BranchKind::Ge),
                    Just(BranchKind::Ltu),
                    Just(BranchKind::Geu)
                ],
                any_reg(),
                any_reg(),
                -2048i64..=2047
            )
                .prop_map(|(kind, rs1, rs2, h)| Inst::Branch {
                    kind,
                    rs1,
                    rs2,
                    offset: h * 2
                }),
            (
                prop_oneof![
                    Just(LoadKind::B),
                    Just(LoadKind::H),
                    Just(LoadKind::W),
                    Just(LoadKind::D),
                    Just(LoadKind::Bu),
                    Just(LoadKind::Hu),
                    Just(LoadKind::Wu)
                ],
                any_reg(),
                any_reg(),
                -2048i64..=2047
            )
                .prop_map(|(kind, rd, rs1, offset)| Inst::Load {
                    kind,
                    rd,
                    rs1,
                    offset
                }),
            (
                prop_oneof![
                    Just(StoreKind::B),
                    Just(StoreKind::H),
                    Just(StoreKind::W),
                    Just(StoreKind::D)
                ],
                any_reg(),
                any_reg(),
                -2048i64..=2047
            )
                .prop_map(|(kind, rs1, rs2, offset)| Inst::Store {
                    kind,
                    rs1,
                    rs2,
                    offset
                }),
            (
                prop_oneof![
                    Just(AluKind::Add),
                    Just(AluKind::Sub),
                    Just(AluKind::Sltu),
                    Just(AluKind::Xor),
                    Just(AluKind::Mulhsu),
                    Just(AluKind::Divu),
                    Just(AluKind::Remw)
                ],
                any_reg(),
                any_reg(),
                any_reg()
            )
                .prop_map(|(kind, rd, rs1, rs2)| Inst::Op { kind, rd, rs1, rs2 }),
            (
                prop_oneof![Just(AluKind::Add), Just(AluKind::Xor), Just(AluKind::Addw)],
                any_reg(),
                any_reg(),
                -2048i64..=2047
            )
                .prop_map(|(kind, rd, rs1, imm)| Inst::OpImm { kind, rd, rs1, imm }),
            (prop_oneof![Just(AluKind::Sll), Just(AluKind::Sra)], any_reg(), any_reg(), 0i64..64)
                .prop_map(|(kind, rd, rs1, imm)| Inst::OpImm { kind, rd, rs1, imm }),
            Just(Inst::Fence),
            Just(Inst::Ecall),
            Just(Inst::Ebreak),
            (
                prop_oneof![Just(CsrKind::Rw), Just(CsrKind::Rs), Just(CsrKind::Rc)],
                any_reg(),
                any_reg(),
                0u16..4096
            )
                .prop_map(|(kind, rd, rs1, csr)| Inst::Csr { kind, rd, rs1, csr }),
            (
                prop_oneof![Just(CsrKind::Rw), Just(CsrKind::Rs), Just(CsrKind::Rc)],
                any_reg(),
                0u8..32,
                0u16..4096
            )
                .prop_map(|(kind, rd, zimm, csr)| Inst::CsrImm { kind, rd, zimm, csr }),
        ]
    }

    proptest! {
        /// Disassembler output is valid assembler input: for every printable
        /// instruction, `assemble(inst.to_string())` re-produces the same
        /// decoded instruction (the canonical `nop` prints as `nop`, which
        /// re-encodes to the same word — also covered).
        #[test]
        fn display_output_reassembles(inst in any_printable_inst()) {
            let text = inst.to_string();
            let prog = assemble(&text, 0).map_err(|e| {
                TestCaseError::fail(format!("`{text}` did not parse: {e}"))
            })?;
            prop_assert_eq!(prog.inst_count(), 1, "`{}` produced several words", text);
            let (_, word) = prog.words().next().expect("one word");
            let back = decode(word).expect("reassembled word decodes");
            prop_assert_eq!(back, inst, "`{}` round-tripped differently", text);
        }
    }
}
