//! Criterion microbenchmark: per-cycle cost of `SafeDm::observe` — the
//! monitor must keep up with the core clock, so its software model must be
//! cheap enough to run in-loop with the simulator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use safedm_core::{SafeDm, SafeDmConfig};
use safedm_soc::{CoreProbe, PortSample, StageSlot};

fn probe(v: u64, raw: u32) -> CoreProbe {
    let mut p = CoreProbe::default();
    for (i, port) in p.reads.iter_mut().enumerate() {
        *port = PortSample { enable: true, value: v.wrapping_mul(i as u64 + 1) };
    }
    p.stages[3][0] = StageSlot { valid: true, raw };
    p.stages[4][0] = StageSlot { valid: true, raw: raw ^ 0x1000 };
    p.committed = 1;
    p
}

fn bench_observe(c: &mut Criterion) {
    let mut g = c.benchmark_group("monitor");

    g.bench_function("observe_identical", |b| {
        b.iter_batched_ref(
            || SafeDm::new(SafeDmConfig::default()),
            |dm| {
                for i in 0..64u64 {
                    let p = probe(i, 0x13);
                    dm.observe(&p, &p);
                }
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("observe_divergent", |b| {
        b.iter_batched_ref(
            || SafeDm::new(SafeDmConfig::default()),
            |dm| {
                for i in 0..64u64 {
                    let p0 = probe(i, 0x13);
                    let p1 = probe(i ^ 1, 0x93);
                    dm.observe(&p0, &p1);
                }
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("observe_deep_fifo_n16", |b| {
        b.iter_batched_ref(
            || SafeDm::new(SafeDmConfig { data_fifo_depth: 16, ..SafeDmConfig::default() }),
            |dm| {
                for i in 0..64u64 {
                    let p = probe(i, 0x13);
                    dm.observe(&p, &p);
                }
            },
            BatchSize::SmallInput,
        );
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_observe
}
criterion_main!(benches);
