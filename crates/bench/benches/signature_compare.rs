//! Criterion microbenchmark: signature capture and comparison — the inner
//! operations of the monitor (hold-gated FIFO shift, bit-equality).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use safedm_core::{DataSignature, InstructionSignature, SafeDmConfig};
use safedm_soc::{CoreProbe, PortSample, StageSlot};

fn busy_probe(seed: u64) -> CoreProbe {
    let mut p = CoreProbe::default();
    for (i, port) in p.reads.iter_mut().enumerate() {
        *port = PortSample { enable: true, value: seed.wrapping_mul(i as u64 | 1) };
    }
    for (i, port) in p.writes.iter_mut().enumerate() {
        *port = PortSample { enable: true, value: seed.rotate_left(i as u32) };
    }
    for s in 0..7 {
        p.stages[s][0] = StageSlot { valid: true, raw: (seed as u32) ^ (s as u32) };
    }
    p
}

fn bench_signatures(c: &mut Criterion) {
    let cfg = SafeDmConfig::default();
    let mut g = c.benchmark_group("signature");

    g.bench_function("ds_capture", |b| {
        b.iter_batched_ref(
            || DataSignature::new(&cfg),
            |ds| {
                for i in 0..64u64 {
                    ds.capture(&busy_probe(i));
                }
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("ds_compare_equal", |b| {
        let mut a = DataSignature::new(&cfg);
        let mut bb = DataSignature::new(&cfg);
        for i in 0..16u64 {
            a.capture(&busy_probe(i));
            bb.capture(&busy_probe(i));
        }
        b.iter(|| a == bb);
    });

    g.bench_function("is_capture_per_stage", |b| {
        b.iter_batched_ref(
            || InstructionSignature::new(&cfg),
            |is| {
                for i in 0..64u64 {
                    is.capture(&busy_probe(i));
                }
            },
            BatchSize::SmallInput,
        );
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_signatures
}
criterion_main!(benches);
