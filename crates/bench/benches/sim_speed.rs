//! Criterion microbenchmark: simulator throughput (SoC cycles per second)
//! for the bare MPSoC and for the monitored system, on a mixed workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use safedm_core::{MonitoredSoc, SafeDmConfig};
use safedm_soc::{MpSoc, SocConfig};
use safedm_tacle::{build_kernel_program, kernels, HarnessConfig};

const CYCLES: u64 = 20_000;

fn bench_sim(c: &mut Criterion) {
    let prog =
        build_kernel_program(kernels::by_name("iir").expect("kernel"), &HarnessConfig::default());

    let mut g = c.benchmark_group("sim");
    g.throughput(Throughput::Elements(CYCLES));

    g.bench_function("mpsoc_step_2core", |b| {
        b.iter(|| {
            let mut soc = MpSoc::new(SocConfig::default());
            soc.load_program(&prog);
            for _ in 0..CYCLES {
                soc.step();
            }
            soc.core(0).retired()
        });
    });

    g.bench_function("monitored_step_2core", |b| {
        b.iter(|| {
            let mut sys = MonitoredSoc::new(SocConfig::default(), SafeDmConfig::default());
            sys.load_program(&prog);
            for _ in 0..CYCLES {
                sys.step();
            }
            sys.monitor().counters().cycles_observed
        });
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sim
}
criterion_main!(benches);
