//! The one argument parser for every bench binary (and the `safedm-sim`
//! CLI): `--flag value` lookup, typed parsing with a single
//! `"invalid value for FLAG"` error path, comma-separated lists, hex-aware
//! integers, `--jobs` resolution and artefact writing.
//!
//! Before PR 9 each binary carried its own ad-hoc copies of these helpers
//! (`arg_u64_or` here, `try_arg_list` there, subtly different error
//! strings). The old free functions in [`crate::experiments`] remain as
//! deprecated delegates; new code uses this module.
//!
//! Two calling styles, one error format:
//!
//! * `Result`-returning cores ([`opt_parsed`], [`parsed_or`], [`opt_u64`],
//!   [`u64_or`], [`f64_or`], [`opt_list`]) for callers that surface errors
//!   themselves (the `safedm-sim` subcommands);
//! * [`or_exit`] / [`list_or_exit`] / [`jobs`] wrappers for binaries whose
//!   contract is "print `error: …` and exit 2".

/// The single error formatter every helper funnels through:
/// `invalid value for FLAG: \`VALUE\` (expected EXPECTED)`.
#[must_use]
pub fn invalid(flag: &str, value: &str, expected: &str) -> String {
    format!("invalid value for {flag}: `{value}` (expected {expected})")
}

/// The value of `--flag value`, if present.
#[must_use]
pub fn value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// Whether a bare `--flag` is present.
#[must_use]
pub fn flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Whether `tok` is the value of some `--flag value` pair (used by
/// positional-argument scans to skip flag values).
#[must_use]
pub fn is_flag_value(args: &[String], tok: &str) -> bool {
    args.iter()
        .position(|a| a == tok)
        .and_then(|i| i.checked_sub(1))
        .and_then(|i| args.get(i))
        .is_some_and(|prev| prev.starts_with("--"))
}

/// Parses a `u64` accepting decimal or `0x`-prefixed hex.
///
/// # Errors
///
/// Returns a bare `invalid number` message (flag-agnostic; the `*_u64`
/// helpers wrap it with the flag name).
pub fn parse_u64(s: &str) -> Result<u64, String> {
    let t = s.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        t.parse()
    }
    .map_err(|_| format!("invalid number `{s}`"))
}

/// Parses the value of `--flag` as a `T`, distinguishing "absent"
/// (`Ok(None)`) from "present but invalid" (`Err`).
///
/// # Errors
///
/// Returns the [`invalid`] message when the value does not parse.
pub fn opt_parsed<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match value(args, flag) {
        None => Ok(None),
        Some(v) => v.trim().parse().map(Some).map_err(|_| invalid(flag, &v, "a number")),
    }
}

/// [`opt_parsed`] with a default for the absent case.
///
/// # Errors
///
/// Returns the [`invalid`] message when the value does not parse.
pub fn parsed_or<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, String> {
    opt_parsed(args, flag).map(|v| v.unwrap_or(default))
}

/// Hex-aware `--flag N` without a default: `None` when absent.
///
/// # Errors
///
/// Returns the [`invalid`] message when the value does not parse.
pub fn opt_u64(args: &[String], flag: &str) -> Result<Option<u64>, String> {
    value(args, flag).map(|v| parse_u64(&v).map_err(|_| invalid(flag, &v, "a number"))).transpose()
}

/// Hex-aware `--flag N` with a default.
///
/// # Errors
///
/// Returns the [`invalid`] message when the value does not parse.
pub fn u64_or(args: &[String], flag: &str, default: u64) -> Result<u64, String> {
    opt_u64(args, flag).map(|v| v.unwrap_or(default))
}

/// `--flag F` as a float with a default.
///
/// # Errors
///
/// Returns the [`invalid`] message when the value does not parse.
pub fn f64_or(args: &[String], flag: &str, default: f64) -> Result<f64, String> {
    match value(args, flag) {
        None => Ok(default),
        Some(v) => v.trim().parse().map_err(|_| invalid(flag, &v, "a number")),
    }
}

/// Parses the value of `--flag` as a comma-separated list of `T`. Empty
/// entries (stray commas, whitespace) are skipped; `Ok(None)` when absent.
///
/// # Errors
///
/// Returns the [`invalid`] message naming the first entry that does not
/// parse.
pub fn opt_list<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
) -> Result<Option<Vec<T>>, String> {
    match value(args, flag) {
        None => Ok(None),
        Some(list) => list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().map_err(|_| invalid(flag, s, "a comma-separated list of numbers")))
            .collect::<Result<Vec<T>, String>>()
            .map(Some),
    }
}

/// Unwraps a helper's `Result`, printing `error: …` and exiting 2 on
/// failure — the bench binaries' shared error tail.
pub fn or_exit<T>(result: Result<T, String>) -> T {
    match result {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// [`opt_list`] with the exit-style tail; `None` when the flag is absent
/// (callers pick their own default).
#[must_use]
pub fn list_or_exit<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<Vec<T>> {
    or_exit(opt_list(args, flag))
}

/// Resolves `--jobs`: the machine's available parallelism when absent, a
/// positive integer otherwise; exit-style on invalid values.
#[must_use]
pub fn jobs(args: &[String]) -> usize {
    or_exit(safedm_campaign::parse_jobs(value(args, "--jobs").as_deref()))
}

/// Writes `contents` to `path`, exiting with a diagnostic on I/O failure —
/// the shared artefact-writing tail (`--json`, `--csv`, `--events-out`).
pub fn write_file_or_exit(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn value_and_flag_lookup() {
        let a = args(&["bin", "--runs", "4", "--quick"]);
        assert_eq!(value(&a, "--runs").as_deref(), Some("4"));
        assert_eq!(value(&a, "--seed"), None);
        assert!(flag(&a, "--quick"));
        assert!(!flag(&a, "--json"));
        assert!(is_flag_value(&a, "4"));
        assert!(!is_flag_value(&a, "bin"));
    }

    #[test]
    fn typed_parsing_uses_the_one_error_path() {
        let a = args(&["bin", "--runs", "x"]);
        let err = opt_parsed::<u64>(&a, "--runs").unwrap_err();
        assert_eq!(err, invalid("--runs", "x", "a number"));
        let err = u64_or(&a, "--runs", 1).unwrap_err();
        assert_eq!(err, invalid("--runs", "x", "a number"));
        let err = f64_or(&a, "--runs", 1.0).unwrap_err();
        assert_eq!(err, invalid("--runs", "x", "a number"));
    }

    #[test]
    fn hex_and_defaults() {
        let a = args(&["bin", "--base", "0x8000"]);
        assert_eq!(u64_or(&a, "--base", 0), Ok(0x8000));
        assert_eq!(u64_or(&a, "--seed", 7), Ok(7));
        assert_eq!(opt_u64(&a, "--seed"), Ok(None));
        assert_eq!(parsed_or(&a, "--level", 3u32), Ok(3));
    }

    #[test]
    fn lists_skip_empty_entries_and_name_the_bad_one() {
        let a = args(&["bin", "--staggers", "0, 100,,1000"]);
        assert_eq!(opt_list::<u64>(&a, "--staggers"), Ok(Some(vec![0, 100, 1000])));
        let bad = args(&["bin", "--staggers", "0,ten"]);
        let err = opt_list::<u64>(&bad, "--staggers").unwrap_err();
        assert_eq!(err, invalid("--staggers", "ten", "a comma-separated list of numbers"));
        assert_eq!(opt_list::<u64>(&a, "--nope"), Ok(None));
    }
}
