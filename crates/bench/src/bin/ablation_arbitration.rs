//! **Ablation A3**: bus arbitration policy and natural diversity.
//!
//! The paper credits serialisation at shared resources for natural
//! diversity ("one core is granted access first", Section V-C). The
//! arbiter's *policy* shapes that serialisation: fair round-robin spreads
//! the lead between the cores; fixed priority systematically favours
//! core 0, biasing which core leads but still breaking lockstep. This sweep
//! quantifies the effect on the Table I metrics.
//!
//! Usage: `cargo run -p safedm-bench --bin ablation_arbitration --release
//! [--jobs N]`

use std::fmt::Write as _;

use safedm_bench::experiments::jobs_from_args;
use safedm_campaign::par_map;
use safedm_core::{MonitoredSoc, ReportMode, SafeDmConfig};
use safedm_soc::{ArbitrationPolicy, SocConfig};
use safedm_tacle::{build_kernel_program, kernels, HarnessConfig};

fn run(name: &str, policy: ArbitrationPolicy) -> (u64, u64, u64, i64) {
    let k = kernels::by_name(name).expect("kernel");
    let prog = build_kernel_program(k, &HarnessConfig::default());
    let soc_cfg = SocConfig { arbitration: policy, ..SocConfig::default() };
    let mut sys = MonitoredSoc::new(
        soc_cfg,
        SafeDmConfig { report_mode: ReportMode::Polling, ..SafeDmConfig::default() },
    );
    sys.load_program(&prog);
    sys.enable_trace();
    let out = sys.run(200_000_000);
    assert!(out.run.all_clean(), "{name}: {:?}", out.run.exits);
    let trace = sys.take_trace();
    // Which core led (positive diff = core 0 ahead)?
    let lead_core0 = trace.iter().filter(|s| s.diff > 0).count() as i64;
    let lead_core1 = trace.iter().filter(|s| s.diff < 0).count() as i64;
    let bias = lead_core0 - lead_core1;
    (out.zero_stag_cycles, out.no_div_cycles, out.run.cycles, bias)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = jobs_from_args(&args);
    let names = ["bitcount", "fac", "insertsort", "quicksort", "lms"];
    // One campaign cell per (kernel, policy); ordered collection keeps the
    // table identical for any --jobs N.
    let cells: Vec<(&str, ArbitrationPolicy)> = names
        .iter()
        .flat_map(|&n| [(n, ArbitrationPolicy::RoundRobin), (n, ArbitrationPolicy::FixedPriority)])
        .collect();
    let outs = par_map(jobs, &cells, |_, &(name, policy)| run(name, policy));
    let mut rows = String::new();
    for (i, name) in names.iter().enumerate() {
        let (zs_rr, nd_rr, _, bias_rr) = outs[2 * i];
        let (zs_fp, nd_fp, _, bias_fp) = outs[2 * i + 1];
        let _ = writeln!(
            rows,
            "{:<12} | {:>10} {:>8} {:>10} | {:>10} {:>8} {:>10}",
            name, zs_rr, nd_rr, bias_rr, zs_fp, nd_fp, bias_fp
        );
    }
    println!("ABLATION A3: bus arbitration policy vs natural diversity");
    println!();
    println!(
        "{:<12} | {:>10} {:>8} {:>10} | {:>10} {:>8} {:>10}",
        "", "round-robin", "", "", "fixed-prio", "", ""
    );
    println!(
        "{:<12} | {:>10} {:>8} {:>10} | {:>10} {:>8} {:>10}",
        "benchmark", "zero-stag", "no-div", "lead-bias", "zero-stag", "no-div", "lead-bias"
    );
    print!("{rows}");
    println!();
    println!(
        "lead-bias = (cycles core 0 led) − (cycles core 1 led): fixed priority\n\
         pushes the bias towards core 0, while both policies break lockstep —\n\
         natural diversity does not depend on arbiter fairness, only on\n\
         serialisation existing at all."
    );
}
