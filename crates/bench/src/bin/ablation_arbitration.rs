//! **Ablation A3**: bus arbitration policy and natural diversity.
//!
//! The paper credits serialisation at shared resources for natural
//! diversity ("one core is granted access first", Section V-C). The
//! arbiter's *policy* shapes that serialisation: fair round-robin spreads
//! the lead between the cores; fixed priority systematically favours
//! core 0, biasing which core leads but still breaking lockstep. This sweep
//! quantifies the effect on the Table I metrics.
//!
//! Usage: `cargo run -p safedm-bench --bin ablation_arbitration --release
//! [--jobs N] [--events-out PATH] [--events-timing] [--progress]`

use std::fmt::Write as _;

use safedm_bench::args;
use safedm_bench::experiments::{run_cells_with_telemetry, Telemetry};
use safedm_core::{MonitoredSoc, ReportMode, SafeDmConfig};
use safedm_obs::events::CellEvent;
use safedm_soc::{ArbitrationPolicy, SocConfig};
use safedm_tacle::{build_kernel_program, kernels, HarnessConfig};

struct RunOut {
    zero_stag: u64,
    no_div: u64,
    cycles: u64,
    bias: i64,
    observed: u64,
    episodes: u64,
}

fn run(name: &str, policy: ArbitrationPolicy) -> RunOut {
    let k = kernels::by_name(name).expect("kernel");
    let prog = build_kernel_program(k, &HarnessConfig::default());
    let soc_cfg = SocConfig { arbitration: policy, ..SocConfig::default() };
    let mut sys = MonitoredSoc::new(
        soc_cfg,
        SafeDmConfig { report_mode: ReportMode::Polling, ..SafeDmConfig::default() },
    );
    sys.load_program(&prog);
    sys.enable_trace();
    let out = sys.run(200_000_000);
    assert!(out.run.all_clean(), "{name}: {:?}", out.run.exits);
    let trace = sys.take_trace();
    // Which core led (positive diff = core 0 ahead)?
    let lead_core0 = trace.iter().filter(|s| s.diff > 0).count() as i64;
    let lead_core1 = trace.iter().filter(|s| s.diff < 0).count() as i64;
    let bias = lead_core0 - lead_core1;
    RunOut {
        zero_stag: out.zero_stag_cycles,
        no_div: out.no_div_cycles,
        cycles: out.run.cycles,
        bias,
        observed: out.cycles_observed,
        episodes: sys.monitor().no_diversity_history().total_episodes(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = args::jobs(&args);
    let telemetry = Telemetry::from_args(&args);
    let names = ["bitcount", "fac", "insertsort", "quicksort", "lms"];
    // One campaign cell per (kernel, policy); ordered collection keeps the
    // table identical for any --jobs N.
    let cells: Vec<(&str, ArbitrationPolicy)> = names
        .iter()
        .flat_map(|&n| [(n, ArbitrationPolicy::RoundRobin), (n, ArbitrationPolicy::FixedPriority)])
        .collect();
    let outs = run_cells_with_telemetry(
        jobs,
        &telemetry,
        &cells,
        |&(name, _)| name.to_owned(),
        |_, &(name, policy)| run(name, policy),
        |index, &(name, policy), r| CellEvent {
            index,
            kernel: name.to_owned(),
            config: format!("arb={policy:?}"),
            engine: "cycle".to_owned(),
            run: 0,
            seed: 0,
            cycles: r.cycles,
            guarded: r.observed,
            zero_stag: r.zero_stag,
            no_div: r.no_div,
            episodes: r.episodes,
            violations: 0,
            ok: true,
            wall_us: None,
        },
    );
    let mut rows = String::new();
    for (i, name) in names.iter().enumerate() {
        let rr = &outs[2 * i];
        let fp = &outs[2 * i + 1];
        let _ = writeln!(
            rows,
            "{:<12} | {:>10} {:>8} {:>10} | {:>10} {:>8} {:>10}",
            name, rr.zero_stag, rr.no_div, rr.bias, fp.zero_stag, fp.no_div, fp.bias
        );
    }
    println!("ABLATION A3: bus arbitration policy vs natural diversity");
    println!();
    println!(
        "{:<12} | {:>10} {:>8} {:>10} | {:>10} {:>8} {:>10}",
        "", "round-robin", "", "", "fixed-prio", "", ""
    );
    println!(
        "{:<12} | {:>10} {:>8} {:>10} | {:>10} {:>8} {:>10}",
        "benchmark", "zero-stag", "no-div", "lead-bias", "zero-stag", "no-div", "lead-bias"
    );
    print!("{rows}");
    println!();
    println!(
        "lead-bias = (cycles core 0 led) − (cycles core 1 led): fixed priority\n\
         pushes the bias towards core 0, while both policies break lockstep —\n\
         natural diversity does not depend on arbiter fairness, only on\n\
         serialisation existing at all."
    );
}
