//! **Ablation A1**: sensitivity of the Data-Signature FIFO depth *n*
//! (paper, Section III-B1: "the size of n depends on the depth of the
//! processor pipeline").
//!
//! A deeper FIFO remembers more port history, so one divergent value
//! suppresses the no-diversity flag for longer — fewer flagged cycles — at
//! a linear area cost. The sweep quantifies that trade-off.
//!
//! Usage: `cargo run -p safedm-bench --bin ablation_fifo_depth --release
//! [--jobs N] [--events-out PATH] [--events-timing] [--progress]`

use std::fmt::Write as _;

use safedm_bench::args;
use safedm_bench::experiments::{
    event_from_summary, run_cells_with_telemetry, run_monitored, Telemetry,
};
use safedm_core::SafeDmConfig;
use safedm_power::estimate_area;
use safedm_tacle::kernels;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = args::jobs(&args);
    let telemetry = Telemetry::from_args(&args);
    let names = ["fac", "iir", "bitcount", "md5"];
    let depths = [1usize, 2, 4, 8, 12, 16];

    // One campaign cell per (depth, kernel); ordered collection keeps the
    // table identical for any --jobs N.
    let cells: Vec<(usize, &str)> =
        depths.iter().flat_map(|&d| names.iter().map(move |&n| (d, n))).collect();
    let runs = run_cells_with_telemetry(
        jobs,
        &telemetry,
        &cells,
        |&(_, name)| name.to_owned(),
        |_, &(depth, name)| {
            let cfg = SafeDmConfig { data_fifo_depth: depth, ..SafeDmConfig::default() };
            let k = kernels::by_name(name).expect("kernel");
            let r = run_monitored(k, None, 0, cfg);
            assert!(r.checksum_ok);
            r
        },
        |index, &(depth, _), r| event_from_summary(index, &format!("fifo={depth}"), r),
    );
    let no_divs: Vec<u64> = runs.iter().map(|r| r.no_div).collect();

    let mut rows = String::new();
    let mut per_depth: Vec<Vec<u64>> = Vec::new();
    for (i, depth) in depths.iter().enumerate() {
        let cfg = SafeDmConfig { data_fifo_depth: *depth, ..SafeDmConfig::default() };
        let area = estimate_area(&cfg);
        let _ =
            write!(rows, "{:>4} {:>9} {:>7.2}", depth, area.total_luts, area.percent_of_baseline);
        let row: Vec<u64> = no_divs[i * names.len()..(i + 1) * names.len()].to_vec();
        for nd in &row {
            let _ = write!(rows, " {:>10}", nd);
        }
        let _ = writeln!(rows);
        per_depth.push(row);
    }

    println!("ABLATION A1: data-FIFO depth n vs no-diversity cycles and area");
    println!();
    print!("{:>4} {:>9} {:>7}", "n", "LUTs", "%SoC");
    for n in names {
        print!(" {:>10}", n);
    }
    println!("   (no-div cycles, 0-nop runs)");
    print!("{rows}");

    // Deeper FIFOs can only extend the protection window: no-div counts
    // must be non-increasing in n (each divergent sample lives n cycles).
    let mut monotone = true;
    for col in 0..names.len() {
        for w in per_depth.windows(2) {
            if w[1][col] > w[0][col] {
                monotone = false;
            }
        }
    }
    println!();
    println!("no-div non-increasing in n: {monotone}");
}
