//! **Ablation A2**: per-stage vs in-flight Instruction-Signature layout
//! (paper, Section III-B2).
//!
//! The per-stage layout distinguishes two cores that hold the *same*
//! instructions in *different* pipeline stages; the flat in-flight list
//! (the paper's fallback for cores without group advance) cannot, so it
//! reports **more** cycles without instruction diversity — extra false
//! positives the paper's design decision avoids.
//!
//! Usage: `cargo run -p safedm-bench --bin ablation_is_layout --release
//! [--jobs N] [--events-out PATH] [--events-timing] [--progress]`

use std::fmt::Write as _;

use safedm_bench::args;
use safedm_bench::experiments::{
    dm_config_with_layout, event_from_summary, run_cells_with_telemetry, run_monitored, Telemetry,
};
use safedm_core::IsLayout;
use safedm_tacle::kernels;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = args::jobs(&args);
    let telemetry = Telemetry::from_args(&args);
    let names = ["fac", "bitcount", "iir", "insertsort", "quicksort", "pm"];

    // One campaign cell per (kernel, layout); ordered collection keeps the
    // table identical for any --jobs N.
    let cells: Vec<(&str, IsLayout)> =
        names.iter().flat_map(|&n| [(n, IsLayout::PerStage), (n, IsLayout::InFlight)]).collect();
    let outs = run_cells_with_telemetry(
        jobs,
        &telemetry,
        &cells,
        |&(name, _)| name.to_owned(),
        |_, &(name, layout)| {
            let k = kernels::by_name(name).expect("kernel");
            run_monitored(k, None, 0, dm_config_with_layout(layout))
        },
        |index, &(_, layout), r| event_from_summary(index, &format!("layout={layout:?}"), r),
    );

    let mut rows = String::new();
    let mut total_extra = 0i64;
    for (i, name) in names.iter().enumerate() {
        let ps = &outs[2 * i];
        let fl = &outs[2 * i + 1];
        assert!(ps.checksum_ok && fl.checksum_ok);
        let extra = fl.is_match as i64 - ps.is_match as i64;
        total_extra += extra;
        let _ = writeln!(
            rows,
            "{:<12} {:>14} {:>14} {:>12} {:>14} {:>14}",
            name, ps.is_match, fl.is_match, extra, ps.no_div, fl.no_div
        );
    }
    println!("ABLATION A2: Instruction-Signature layout (is-match cycles, 0-nop runs)");
    println!();
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>14} {:>14}",
        "benchmark", "per-stage IS", "in-flight IS", "extra", "no-div (ps)", "no-div (if)"
    );
    print!("{rows}");
    println!();
    println!(
        "the flat layout reports {total_extra} additional instruction-match cycles in total \
         (>= 0 expected: it is strictly coarser)"
    );
    assert!(total_extra >= 0, "in-flight layout cannot be finer than per-stage");
}
