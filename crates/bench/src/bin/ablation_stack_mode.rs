//! **Ablation A4**: mirrored vs per-hart address spaces.
//!
//! The paper observes that software-created redundant threads "have
//! different address spaces ... whenever an address is read and/or
//! operated, the actual address differs, hence bringing some diversity"
//! (Section V-C). The harness can run both ways: `Mirrored` (both copies at
//! identical addresses — the diversity-scarce stress case) and `PerHart`
//! (each hart's stack offset by 64 KiB — the software-replication case).
//! Per-hart layouts should slash the no-diversity counts for every
//! stack-using kernel, with zero-staggering barely affected (address
//! diversity is data diversity, not timing).
//!
//! Usage: `cargo run -p safedm-bench --bin ablation_stack_mode --release
//! [--jobs N] [--events-out PATH] [--events-timing] [--progress]`

use std::fmt::Write as _;

use safedm_bench::args;
use safedm_bench::experiments::{
    event_from_summary, run_cells_with_telemetry, run_monitored_cfg, Telemetry,
};
use safedm_core::SafeDmConfig;
use safedm_tacle::{kernels, HarnessConfig, StackMode};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = args::jobs(&args);
    let telemetry = Telemetry::from_args(&args);
    // Stack-using kernels (calls / explicit work stacks) versus controls
    // whose data lives only in mirrored tables or registers.
    let stack_users = ["fac", "recursion", "quicksort"];
    let controls = ["md5", "prime"];
    let names: Vec<&str> = stack_users.iter().chain(&controls).copied().collect();

    // One campaign cell per (kernel, stack mode); ordered collection keeps
    // the table identical for any --jobs N.
    let cells: Vec<(&str, StackMode)> =
        names.iter().flat_map(|&n| [(n, StackMode::Mirrored), (n, StackMode::PerHart)]).collect();
    let outs = run_cells_with_telemetry(
        jobs,
        &telemetry,
        &cells,
        |&(name, _)| name.to_owned(),
        |_, &(name, stack)| {
            let k = kernels::by_name(name).expect("kernel");
            run_monitored_cfg(k, HarnessConfig { stagger: None, stack }, 0, SafeDmConfig::default())
        },
        |index, &(_, stack), r| event_from_summary(index, &format!("stack={stack:?}"), r),
    );

    let mut rows = String::new();
    for (i, &name) in names.iter().enumerate() {
        let mirrored = &outs[2 * i];
        let per_hart = &outs[2 * i + 1];
        assert!(mirrored.checksum_ok && per_hart.checksum_ok, "{name}");
        let _ = writeln!(
            rows,
            "{:<12} | {:>10} {:>8} | {:>10} {:>8}",
            name, mirrored.zero_stag, mirrored.no_div, per_hart.zero_stag, per_hart.no_div
        );
        if stack_users.contains(&name) {
            assert!(
                per_hart.no_div * 2 < mirrored.no_div,
                "{name}: address diversity must slash no-div ({} vs {})",
                per_hart.no_div,
                mirrored.no_div
            );
        }
    }
    println!("ABLATION A4: mirrored vs per-hart address spaces (0-nop runs)");
    println!();
    println!("{:<12} | {:>10} {:>8} | {:>10} {:>8}", "", "mirrored", "", "per-hart", "");
    println!(
        "{:<12} | {:>10} {:>8} | {:>10} {:>8}",
        "benchmark", "zero-stag", "no-div", "zero-stag", "no-div"
    );
    print!("{rows}");
    println!();
    println!(
        "distinct address spaces put different values on the register ports\n\
         (pointers, spilled addresses) — the DS differs even in cycle\n\
         lockstep, the paper's software-replication argument. The controls\n\
         (`md5`, `prime`) are unaffected: their data never involves the stack."
    );
}
