//! **Ablation A4**: mirrored vs per-hart address spaces.
//!
//! The paper observes that software-created redundant threads "have
//! different address spaces ... whenever an address is read and/or
//! operated, the actual address differs, hence bringing some diversity"
//! (Section V-C). The harness can run both ways: `Mirrored` (both copies at
//! identical addresses — the diversity-scarce stress case) and `PerHart`
//! (each hart's stack offset by 64 KiB — the software-replication case).
//! Per-hart layouts should slash the no-diversity counts for every
//! stack-using kernel, with zero-staggering barely affected (address
//! diversity is data diversity, not timing).
//!
//! Usage: `cargo run -p safedm-bench --bin ablation_stack_mode --release`

use std::fmt::Write as _;

use safedm_bench::experiments::run_monitored_cfg;
use safedm_core::SafeDmConfig;
use safedm_tacle::{kernels, HarnessConfig, StackMode};

fn main() {
    // Stack-using kernels (calls / explicit work stacks) versus controls
    // whose data lives only in mirrored tables or registers.
    let stack_users = ["fac", "recursion", "quicksort"];
    let controls = ["md5", "prime"];
    let names: Vec<&str> = stack_users.iter().chain(&controls).copied().collect();
    // Rows accumulate while the runs execute; the table prints once at the end.
    let mut rows = String::new();
    for name in names {
        let k = kernels::by_name(name).expect("kernel");
        let mirrored = run_monitored_cfg(
            k,
            HarnessConfig { stagger: None, stack: StackMode::Mirrored },
            0,
            SafeDmConfig::default(),
        );
        let per_hart = run_monitored_cfg(
            k,
            HarnessConfig { stagger: None, stack: StackMode::PerHart },
            0,
            SafeDmConfig::default(),
        );
        assert!(mirrored.checksum_ok && per_hart.checksum_ok, "{name}");
        let _ = writeln!(
            rows,
            "{:<12} | {:>10} {:>8} | {:>10} {:>8}",
            name, mirrored.zero_stag, mirrored.no_div, per_hart.zero_stag, per_hart.no_div
        );
        if stack_users.contains(&name) {
            assert!(
                per_hart.no_div * 2 < mirrored.no_div,
                "{name}: address diversity must slash no-div ({} vs {})",
                per_hart.no_div,
                mirrored.no_div
            );
        }
    }
    println!("ABLATION A4: mirrored vs per-hart address spaces (0-nop runs)");
    println!();
    println!("{:<12} | {:>10} {:>8} | {:>10} {:>8}", "", "mirrored", "", "per-hart", "");
    println!(
        "{:<12} | {:>10} {:>8} | {:>10} {:>8}",
        "benchmark", "zero-stag", "no-div", "zero-stag", "no-div"
    );
    print!("{rows}");
    println!();
    println!(
        "distinct address spaces put different values on the register ports\n\
         (pointers, spilled addresses) — the DS differs even in cycle\n\
         lockstep, the paper's software-replication argument. The controls\n\
         (`md5`, `prime`) are unaffected: their data never involves the stack."
    );
}
