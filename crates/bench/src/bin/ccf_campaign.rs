//! **Validation V1**: common-cause fault-injection campaign supporting the
//! paper's safety argument (Section III-A).
//!
//! For every injection, the campaign records SafeDM's verdict at the
//! injection cycle and the outcome of the redundant run. The formally
//! checkable property: when SafeDM flags *no diversity* and the identical
//! flip lands in both (bit-identical) cores, output comparison can never
//! raise a mismatch — whatever corrupts, corrupts silently. The campaign
//! also quantifies how much more dangerous flagged cycles are.
//!
//! Usage: `cargo run -p safedm-bench --bin ccf_campaign --release
//! [--trials N] [--seed S] [--metrics-out PATH]`

use std::fmt::Write as _;

use safedm_bench::experiments::arg_value;
use safedm_faults::{Campaign, CampaignConfig};
use safedm_tacle::kernels;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: usize = arg_value(&args, "--trials").map_or(120, |v| v.parse().expect("--trials"));
    let seed: u64 = arg_value(&args, "--seed").map_or(2024, |v| v.parse().expect("--seed"));

    let names = ["fac", "bitcount", "iir", "quicksort"];

    let mut grand_silent_flagged = 0u64;
    let mut grand_silent_unflagged = 0u64;
    let mut grand_mismatch_flagged = 0u64;
    let mut grand_flagged_trials = 0u64;
    let mut grand_unflagged_trials = 0u64;
    // Campaigns run silently; per-kernel rows and metrics accumulate here
    // and render as a final report below.
    let mut rows = String::new();
    let mut reg = safedm_obs::MetricsRegistry::new(true);
    for name in names {
        let k = kernels::by_name(name).expect("kernel");
        let stats = Campaign::new(CampaignConfig {
            trials,
            seed,
            max_cycle: 10_000,
            ..CampaignConfig::default()
        })
        .run(k);
        for r in &stats.records {
            if r.no_diversity_at_injection {
                grand_flagged_trials += 1;
            } else {
                grand_unflagged_trials += 1;
            }
        }
        grand_silent_flagged += stats.silent_with_no_diversity;
        grand_silent_unflagged += stats.silent_with_diversity + stats.silent_site_divergent;
        grand_mismatch_flagged += stats.mismatch_with_no_diversity;
        let lat = stats.mean_detect_latency().map_or_else(|| "-".to_owned(), |l| format!("{l:.0}"));
        let _ = writeln!(
            rows,
            "{:<12} {:>7} {:>9} {:>9} {:>12} {:>12} {:>12} {:>12}",
            name,
            stats.masked,
            stats.detected_mismatch,
            stats.detected_anomaly,
            stats.silent_with_no_diversity,
            stats.silent_with_diversity,
            stats.silent_site_divergent,
            lat
        );
        for (metric, value) in [
            ("masked", stats.masked),
            ("mismatch", stats.detected_mismatch),
            ("anomaly", stats.detected_anomaly),
            ("silent_no_div", stats.silent_with_no_diversity),
            ("silent_div", stats.silent_with_diversity),
            ("silent_site_divergent", stats.silent_site_divergent),
        ] {
            let id = reg.counter(&format!("ccf.{name}.{metric}"));
            reg.set_total(id, value);
        }
    }

    println!("VALIDATION V1: common-cause fault injection ({trials} trials/kernel, seed {seed})");
    println!();
    println!(
        "{:<12} {:>7} {:>9} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "benchmark",
        "masked",
        "mismatch",
        "anomaly",
        "silent@nodiv",
        "silent@div",
        "site-diverg",
        "det-lat(cyc)"
    );
    print!("{rows}");
    println!();
    let p_flagged = grand_silent_flagged as f64 / grand_flagged_trials.max(1) as f64;
    let p_unflagged = grand_silent_unflagged as f64 / grand_unflagged_trials.max(1) as f64;
    println!(
        "P(silent corruption | no-diversity flagged)   = {:.3}  ({} / {})",
        p_flagged, grand_silent_flagged, grand_flagged_trials
    );
    println!(
        "P(silent corruption | diversity observed)     = {:.3}  ({} / {})",
        p_unflagged, grand_silent_unflagged, grand_unflagged_trials
    );
    println!();
    println!("mismatches from flagged-cycle injections: {grand_mismatch_flagged}");
    println!(
        "  (nonzero is only possible via false-positive windows; true-lockstep
            blindness is asserted in tests/paper_claims.rs)"
    );
    if grand_flagged_trials > 0 && p_flagged > p_unflagged {
        println!("flagged cycles are measurably more CCF-vulnerable, as the paper argues");
    }
    if let Some(path) = arg_value(&args, "--metrics-out") {
        for (metric, value) in [
            ("silent_flagged", grand_silent_flagged),
            ("silent_unflagged", grand_silent_unflagged),
            ("mismatch_flagged", grand_mismatch_flagged),
            ("flagged_trials", grand_flagged_trials),
            ("unflagged_trials", grand_unflagged_trials),
        ] {
            let id = reg.counter(&format!("ccf.total.{metric}"));
            reg.set_total(id, value);
        }
        std::fs::write(&path, reg.snapshot().to_json()).expect("write metrics");
        eprintln!("wrote {path}");
    }
}
