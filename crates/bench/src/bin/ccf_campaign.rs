//! **Validation V1**: common-cause fault-injection campaign supporting the
//! paper's safety argument (Section III-A).
//!
//! For every injection, the campaign records SafeDM's verdict at the
//! injection cycle and the outcome of the redundant run. The formally
//! checkable property: when SafeDM flags *no diversity* and the identical
//! flip lands in both (bit-identical) cores, output comparison can never
//! raise a mismatch — whatever corrupts, corrupts silently. The campaign
//! also quantifies how much more dangerous flagged cycles are.
//!
//! Faults are planned serially from the seeded RNG, injections execute on
//! the `safedm-campaign` pool, and records fold back in trial order, so
//! every output is byte-identical for any `--jobs N`.
//!
//! Usage: `cargo run -p safedm-bench --bin ccf_campaign --release
//! [--trials N] [--seed S] [--jobs N] [--metrics-out PATH]
//! [--events-out PATH] [--progress]`
//!
//! `--events-out` emits one aggregate event per kernel campaign (trials
//! fold inside `safedm-faults`; `violations` counts detected mismatches,
//! `no_div` counts silent corruptions under flagged cycles).

use std::fmt::Write as _;

use safedm_bench::args;
use safedm_bench::experiments::{ccf_metrics, set_metric_totals, write_metrics_json, Telemetry};
use safedm_bench::service::CCF_MAX_CYCLE;
use safedm_campaign::spec::{CampaignSpec, Protocol};
use safedm_faults::{Campaign, CampaignConfig};
use safedm_obs::events::CellEvent;
use safedm_tacle::kernels;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let telemetry = Telemetry::from_args(&args);

    // The campaign inputs route through the shared `safedm-api/1` request
    // type: the same document `safedm-sim serve` accepts (protocol `ccf`,
    // `runs` = trials per kernel) and whose digest keys the result cache.
    let spec = CampaignSpec {
        protocol: Protocol::Ccf,
        kernels: ["fac", "bitcount", "iir", "quicksort"].map(str::to_owned).to_vec(),
        staggers: Vec::new(), // injections sweep cycles, not staggers
        runs: args::or_exit(args::parsed_or(&args, "--trials", 120)),
        root_seed: Some(args::or_exit(args::parsed_or(&args, "--seed", 2024))),
        engine: "cycle".to_owned(),
        jobs: Some(args::jobs(&args) as u64),
        keep_timing: telemetry.keep_timing,
    };
    args::or_exit(spec.validate());
    let trials = spec.runs as usize;
    let seed = spec.root_seed.unwrap_or(2024);
    let jobs = spec.jobs.map_or(1, |j| j.max(1) as usize);

    let progress = telemetry.progress_for(spec.kernels.len());
    let mut events: Vec<CellEvent> = Vec::new();

    let mut grand_silent_flagged = 0u64;
    let mut grand_silent_unflagged = 0u64;
    let mut grand_mismatch_flagged = 0u64;
    let mut grand_flagged_trials = 0u64;
    let mut grand_unflagged_trials = 0u64;
    // Campaigns run silently; per-kernel rows and stats accumulate here
    // and render as a final report below.
    let mut rows = String::new();
    let mut per_kernel = Vec::new();
    for name in &spec.kernels {
        let name = name.as_str();
        let k = kernels::by_name(name).expect("kernel");
        let stats = Campaign::new(CampaignConfig {
            trials,
            seed,
            max_cycle: CCF_MAX_CYCLE,
            ..CampaignConfig::default()
        })
        .run_jobs(k, jobs);
        for r in &stats.records {
            if r.no_diversity_at_injection {
                grand_flagged_trials += 1;
            } else {
                grand_unflagged_trials += 1;
            }
        }
        grand_silent_flagged += stats.silent_with_no_diversity;
        grand_silent_unflagged += stats.silent_with_diversity + stats.silent_site_divergent;
        grand_mismatch_flagged += stats.mismatch_with_no_diversity;
        let lat = stats.mean_detect_latency().map_or_else(|| "-".to_owned(), |l| format!("{l:.0}"));
        let _ = writeln!(
            rows,
            "{:<12} {:>7} {:>9} {:>9} {:>12} {:>12} {:>12} {:>12}",
            name,
            stats.masked,
            stats.detected_mismatch,
            stats.detected_anomaly,
            stats.silent_with_no_diversity,
            stats.silent_with_diversity,
            stats.silent_site_divergent,
            lat
        );
        events.push(CellEvent {
            index: events.len() as u64,
            kernel: name.to_owned(),
            config: format!("trials={trials}"),
            engine: "cycle".to_owned(),
            run: 0,
            seed,
            cycles: 0,
            guarded: trials as u64,
            zero_stag: 0,
            no_div: stats.silent_with_no_diversity,
            episodes: 0,
            violations: stats.detected_mismatch,
            ok: true,
            wall_us: None,
        });
        progress.cell_done(name);
        per_kernel.push((name, stats));
    }
    progress.finish();
    telemetry.write_events(&events);

    println!("VALIDATION V1: common-cause fault injection ({trials} trials/kernel, seed {seed})");
    println!();
    println!(
        "{:<12} {:>7} {:>9} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "benchmark",
        "masked",
        "mismatch",
        "anomaly",
        "silent@nodiv",
        "silent@div",
        "site-diverg",
        "det-lat(cyc)"
    );
    print!("{rows}");
    println!();
    let p_flagged = grand_silent_flagged as f64 / grand_flagged_trials.max(1) as f64;
    let p_unflagged = grand_silent_unflagged as f64 / grand_unflagged_trials.max(1) as f64;
    println!(
        "P(silent corruption | no-diversity flagged)   = {:.3}  ({} / {})",
        p_flagged, grand_silent_flagged, grand_flagged_trials
    );
    println!(
        "P(silent corruption | diversity observed)     = {:.3}  ({} / {})",
        p_unflagged, grand_silent_unflagged, grand_unflagged_trials
    );
    println!();
    println!("mismatches from flagged-cycle injections: {grand_mismatch_flagged}");
    println!(
        "  (nonzero is only possible via false-positive windows; true-lockstep
            blindness is asserted in tests/paper_claims.rs)"
    );
    if grand_flagged_trials > 0 && p_flagged > p_unflagged {
        println!("flagged cycles are measurably more CCF-vulnerable, as the paper argues");
    }
    if let Some(path) = args::value(&args, "--metrics-out") {
        let refs: Vec<(&str, &safedm_faults::CampaignStats)> =
            per_kernel.iter().map(|(n, s)| (*n, s)).collect();
        let mut reg = ccf_metrics(&refs);
        set_metric_totals(
            &mut reg,
            [
                ("silent_flagged", grand_silent_flagged),
                ("silent_unflagged", grand_silent_unflagged),
                ("mismatch_flagged", grand_mismatch_flagged),
                ("flagged_trials", grand_flagged_trials),
                ("unflagged_trials", grand_unflagged_trials),
            ]
            .map(|(metric, value)| (format!("ccf.total.{metric}"), value)),
        );
        write_metrics_json(&path, &reg.snapshot());
    }
}
