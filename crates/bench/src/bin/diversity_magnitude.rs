//! **Extension E1**: diversity *magnitude*. The paper's monitor gives a
//! binary verdict; the model can also measure *how far apart* the cores'
//! observed states are (Hamming distance over the signature bits). The
//! distribution shows that when diversity exists it is usually massive —
//! hundreds of differing bits — which is why occasional false positives are
//! the only failure mode worth discussing.
//!
//! Usage: `cargo run -p safedm-bench --bin diversity_magnitude --release
//! [--kernel NAME]`

use safedm_bench::args;
use safedm_core::{MonitoredSoc, ReportMode, SafeDmConfig};
use safedm_soc::SocConfig;
use safedm_tacle::{build_kernel_program, kernels, HarnessConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args::value(&args, "--kernel").unwrap_or_else(|| "bitcount".to_owned());
    let k = kernels::by_name(&name).unwrap_or_else(|| {
        eprintln!("error: unknown kernel `{name}` (see kernel_stats for the list)");
        std::process::exit(2);
    });
    let prog = build_kernel_program(k, &HarnessConfig::default());

    let dm_cfg = SafeDmConfig {
        report_mode: ReportMode::Polling,
        track_hamming: true,
        ..SafeDmConfig::default()
    };
    let mut sys = MonitoredSoc::new(SocConfig::default(), dm_cfg);
    sys.load_program(&prog);

    // Histogram of combined per-cycle distances, log2 bins.
    let mut bins = [0u64; 16];
    let mut observed = 0u64;
    loop {
        if sys.soc().all_halted() {
            break;
        }
        let r = sys.step();
        if !r.observed {
            continue;
        }
        observed += 1;
        let h = sys.monitor().hamming_stats().expect("tracking enabled");
        let total = u64::from(h.last.0) + u64::from(h.last.1);
        let bin = if total == 0 { 0 } else { (64 - total.leading_zeros()) as usize };
        bins[bin.min(bins.len() - 1)] += 1;
    }
    let h = sys.monitor().hamming_stats().expect("tracking enabled");

    println!("EXTENSION E1: diversity magnitude for `{name}` (synchronised start)");
    println!();
    println!("{:>14} {:>12} {:>8}", "distance bits", "cycles", "share");
    let labels = |b: usize| -> String {
        match b {
            0 => "0 (no div)".to_owned(),
            1 => "1".to_owned(),
            _ => format!("{}-{}", 1u64 << (b - 1), (1u64 << b) - 1),
        }
    };
    for (b, count) in bins.iter().enumerate() {
        if *count > 0 {
            println!(
                "{:>14} {:>12} {:>7.2}%",
                labels(b),
                count,
                *count as f64 / observed as f64 * 100.0
            );
        }
    }
    println!();
    println!(
        "mean DS distance {:.1} bits, mean IS distance {:.1} bits, max combined {} bits",
        h.ds_sum as f64 / observed as f64,
        h.is_sum as f64 / observed as f64,
        h.max_total
    );
    println!(
        "diverse cycles overwhelmingly differ in many signature bits at once:\n\
         a physical common-cause disturbance cannot affect both cores' logic\n\
         identically there."
    );
}
