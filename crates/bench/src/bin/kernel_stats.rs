//! Workload characterisation: dynamic instruction mix, cycle counts and IPC
//! for every Table I kernel — the context table for interpreting the
//! diversity results (memory-rich kernels diverge early; register-pure ones
//! stay in lockstep).
//!
//! Usage: `cargo run -p safedm-bench --bin kernel_stats --release
//! [--jobs N] [--events-out PATH] [--events-timing] [--progress]`

use safedm_bench::args;
use safedm_bench::experiments::{run_cells_with_telemetry, Telemetry};
use safedm_isa::Inst;
use safedm_obs::events::CellEvent;
use safedm_soc::{Iss, MpSoc, SocConfig};
use safedm_tacle::{build_kernel_program, kernels, HarnessConfig};

#[derive(Default)]
struct Mix {
    total: u64,
    mem: u64,
    branch: u64,
    muldiv: u64,
    system: u64,
}

fn characterize(prog: &safedm_asm::Program) -> Mix {
    let mut iss = Iss::new(0);
    iss.load_program(prog);
    let mut mix = Mix::default();
    loop {
        let pc = iss.pc();
        let word = iss.mem.read_word(safedm_soc::MemSpace::Code, pc);
        if !iss.step() {
            break;
        }
        mix.total += 1;
        match safedm_isa::decode(word) {
            Ok(i) if i.is_mem() => mix.mem += 1,
            Ok(i) if i.is_control_flow() => mix.branch += 1,
            Ok(i) if i.is_muldiv() => mix.muldiv += 1,
            Ok(Inst::Csr { .. } | Inst::CsrImm { .. } | Inst::Fence) => mix.system += 1,
            _ => {}
        }
        assert!(mix.total < 100_000_000, "runaway kernel");
    }
    mix
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = args::jobs(&args);
    let telemetry = Telemetry::from_args(&args);
    // One campaign cell per kernel; ordered collection keeps the table
    // identical for any --jobs N.
    let all = kernels::all();
    let outs = run_cells_with_telemetry(
        jobs,
        &telemetry,
        all,
        |k| k.name.to_owned(),
        |_, k| {
            let prog = build_kernel_program(k, &HarnessConfig::default());
            let mix = characterize(&prog);

            let cfg = SocConfig { cores: 1, ..SocConfig::default() };
            let mut soc = MpSoc::new(cfg);
            soc.load_program(&prog);
            let r = soc.run(400_000_000);
            assert!(r.all_clean(), "{}: {:?}", k.name, r.exits);

            let row = format!(
                "{:<16} {:>10} {:>7.1}% {:>7.1}% {:>7.1}% {:>10} {:>6.2}\n",
                k.name,
                mix.total,
                mix.mem as f64 / mix.total as f64 * 100.0,
                mix.branch as f64 / mix.total as f64 * 100.0,
                mix.muldiv as f64 / mix.total as f64 * 100.0,
                r.cycles,
                mix.total as f64 / r.cycles as f64,
            );
            (row, r.cycles)
        },
        |index, k, &(_, cycles)| CellEvent {
            index,
            kernel: k.name.to_owned(),
            config: "single-core".to_owned(),
            engine: "cycle".to_owned(),
            run: 0,
            seed: 0,
            cycles,
            guarded: 0,
            zero_stag: 0,
            no_div: 0,
            episodes: 0,
            violations: 0,
            ok: true,
            wall_us: None,
        },
    );
    let rows: String = outs.into_iter().map(|(row, _)| row).collect();
    println!("KERNEL CHARACTERISATION (dynamic, single core)");
    println!();
    println!(
        "{:<16} {:>10} {:>8} {:>8} {:>8} {:>10} {:>6}",
        "benchmark", "insts", "mem %", "br %", "muldiv %", "cycles", "IPC"
    );
    print!("{rows}");
    println!();
    println!("IPC < 2 reflects the dual-issue in-order bound minus hazards and misses.");
}
