//! Load test for the campaign service: N concurrent SDK clients against
//! `safedm-sim serve`, mixed cache hit/miss grids, throughput and latency
//! percentiles (see EXPERIMENTS.md, "Campaign service load test").
//!
//! Three phases over one server:
//!
//! 1. **cold** — one client submits a `--cells`-cell grid nobody has run:
//!    every cell simulates (all cache misses);
//! 2. **warm** — `--clients` concurrent clients each resubmit the same
//!    grid 3 times: every cell replays from the content-addressed cache;
//! 3. **mixed** — the grid doubled in `runs`: the original half hits, the
//!    new half simulates.
//!
//! The run *fails* (exit 1) on any SDK/HTTP error, on a cache-consistency
//! mismatch (warm hits/misses not exactly all-hit, streamed bytes not
//! identical to the cold stream), or if the warm/cold throughput ratio
//! falls below the 5x acceptance floor — so CI can gate on it directly.
//!
//! Usage: `cargo run -p safedm-bench --bin load_test --release --
//! [--clients N] [--cells N] [--addr HOST:PORT] [--json PATH]`
//!
//! Without `--addr` an in-process server on an ephemeral port is used.

use std::time::{Duration, Instant};

use safedm_bench::args;
use safedm_bench::http::{ServeConfig, Server};
use safedm_campaign::spec::{CampaignSpec, Protocol};
use safedm_sdk::Client;

/// A grid with exactly `cells` cells whose identity prefix survives a
/// `runs` extension: one kernel, one stagger, `cells` runs — cell index
/// equals run index, so doubling `runs` keeps the first half's digests.
fn grid_spec(cells: u64) -> CampaignSpec {
    CampaignSpec {
        protocol: Protocol::Grid,
        kernels: vec!["bitcount".to_owned()],
        staggers: vec![0],
        runs: cells.max(1),
        root_seed: Some(0x10ad_7e57),
        engine: "cycle".to_owned(),
        jobs: None,
        keep_timing: false,
    }
}

/// Per-client warm-phase tally: (hits, misses, per-request latencies).
type ClientTally = Result<(u64, u64, Vec<Duration>), String>;

struct Phase {
    label: &'static str,
    wall: Duration,
    cells: u64,
    hits: u64,
    misses: u64,
    /// Per-request submit→stream-complete latencies.
    latencies: Vec<Duration>,
}

impl Phase {
    fn cells_per_s(&self) -> f64 {
        self.cells as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs `spec` once on `client`, checking status and stream shape.
fn one_request(
    client: &Client,
    spec: &CampaignSpec,
    expect_cells: u64,
) -> Result<(Vec<String>, u64, u64, Duration), String> {
    let t = Instant::now();
    let run = client.run(spec).map_err(|e| e.to_string())?;
    let dt = t.elapsed();
    if run.result.status != "done" || !run.result.ok {
        return Err(format!(
            "campaign {} ended {} (ok={})",
            run.submission.id, run.result.status, run.result.ok
        ));
    }
    if run.lines.len() as u64 != expect_cells {
        return Err(format!("expected {expect_cells} event lines, got {}", run.lines.len()));
    }
    Ok((run.lines, run.result.cache_hits, run.result.cache_misses, dt))
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let clients = args::or_exit(args::parsed_or::<usize>(&argv, "--clients", 4)).max(1);
    let cells = args::or_exit(args::u64_or(&argv, "--cells", 32)).max(1);
    let json_out = args::value(&argv, "--json");

    // An explicit --addr targets a running server; otherwise serve
    // in-process on an ephemeral port (the accept loop thread is detached
    // and dies with the process).
    let addr = match args::value(&argv, "--addr") {
        Some(a) => a,
        None => {
            let server = args::or_exit(Server::bind(&ServeConfig {
                addr: "127.0.0.1:0".to_owned(),
                ..ServeConfig::default()
            }));
            let addr = args::or_exit(server.local_addr());
            std::thread::spawn(move || server.run());
            addr
        }
    };
    let client = Client::new(addr.clone()).with_deadline(Duration::from_secs(600));
    args::or_exit(client.healthz().map_err(|e| format!("server not reachable at {addr}: {e}")));

    let spec = grid_spec(cells);
    eprintln!("load_test: {cells}-cell grid, {clients} client(s), server {addr}");

    // Phase 1: cold — every cell simulates.
    let t = Instant::now();
    let (cold_lines, cold_hits, cold_misses, cold_lat) =
        args::or_exit(one_request(&client, &spec, cells));
    let cold = Phase {
        label: "cold",
        wall: t.elapsed(),
        cells,
        hits: cold_hits,
        misses: cold_misses,
        latencies: vec![cold_lat],
    };

    // Phase 2: warm — N concurrent clients, 3 resubmissions each, every
    // cell a cache hit, every stream byte-identical to the cold one.
    const WARM_REPS: usize = 3;
    let t = Instant::now();
    let warm_results: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let spec = &spec;
                let cold_lines = &cold_lines;
                let addr = addr.clone();
                scope.spawn(move || {
                    let client = Client::new(addr).with_deadline(Duration::from_secs(600));
                    let (mut hits, mut misses) = (0u64, 0u64);
                    let mut lats = Vec::with_capacity(WARM_REPS);
                    for _ in 0..WARM_REPS {
                        let (lines, h, m, dt) = one_request(&client, spec, cells)?;
                        if &lines != cold_lines {
                            return Err("warm stream differs from cold stream (cache served \
                                     different bytes)"
                                .to_owned());
                        }
                        hits += h;
                        misses += m;
                        lats.push(dt);
                    }
                    Ok((hits, misses, lats))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let mut warm =
        Phase { label: "warm", wall: t.elapsed(), cells: 0, hits: 0, misses: 0, latencies: vec![] };
    for r in warm_results {
        let (h, m, lats) = args::or_exit(r);
        warm.hits += h;
        warm.misses += m;
        warm.latencies.extend(lats);
    }
    warm.cells = cells * (clients * WARM_REPS) as u64;

    // Phase 3: mixed — double the runs: the original half hits, the
    // extension simulates.
    let mixed_spec = CampaignSpec { runs: cells * 2, ..spec.clone() };
    let t = Instant::now();
    let (mixed_lines, mixed_hits, mixed_misses, mixed_lat) =
        args::or_exit(one_request(&client, &mixed_spec, cells * 2));
    let mixed = Phase {
        label: "mixed",
        wall: t.elapsed(),
        cells: cells * 2,
        hits: mixed_hits,
        misses: mixed_misses,
        latencies: vec![mixed_lat],
    };

    // Cache-consistency gates.
    let mut failures = Vec::new();
    if cold.hits != 0 || cold.misses != cells {
        failures.push(format!(
            "cold phase expected 0/{cells} hit/miss, got {}/{}",
            cold.hits, cold.misses
        ));
    }
    let warm_total = cells * (clients * WARM_REPS) as u64;
    if warm.hits != warm_total || warm.misses != 0 {
        failures.push(format!(
            "warm phase expected {warm_total}/0 hit/miss, got {}/{}",
            warm.hits, warm.misses
        ));
    }
    if mixed.hits != cells || mixed.misses != cells {
        failures.push(format!(
            "mixed phase expected {cells}/{cells} hit/miss, got {}/{}",
            mixed.hits, mixed.misses
        ));
    }
    if mixed_lines[..cells as usize] != cold_lines[..] {
        failures.push("mixed stream's cached prefix differs from the cold stream".to_owned());
    }

    let speedup = warm.cells_per_s() / cold.cells_per_s().max(1e-9);
    println!("LOAD TEST: campaign service ({cells}-cell grid, {clients} concurrent client(s))");
    println!();
    println!(
        "{:<7} {:>9} {:>6} {:>6} {:>12} {:>10} {:>10} {:>10}",
        "phase", "cells", "hits", "miss", "cells/s", "p50 ms", "p90 ms", "p99 ms"
    );
    for phase in [&cold, &warm, &mixed] {
        let mut sorted = phase.latencies.clone();
        sorted.sort();
        println!(
            "{:<7} {:>9} {:>6} {:>6} {:>12.1} {:>10.1} {:>10.1} {:>10.1}",
            phase.label,
            phase.cells,
            phase.hits,
            phase.misses,
            phase.cells_per_s(),
            percentile(&sorted, 0.50).as_secs_f64() * 1e3,
            percentile(&sorted, 0.90).as_secs_f64() * 1e3,
            percentile(&sorted, 0.99).as_secs_f64() * 1e3,
        );
    }
    println!();
    println!("warm/cold throughput: {speedup:.1}x (acceptance floor 5x)");

    if let Some(path) = &json_out {
        // A `safedm-bench/1` baseline document, so the serve metrics ride
        // the same trend/regression tooling as the simulator benches.
        let mut sorted = warm.latencies.clone();
        sorted.sort();
        let doc = format!(
            "{{\"schema\":\"safedm-bench/1\",\"date\":\"-\",\"reps\":{WARM_REPS},\"metrics\":{{\
             \"serve_cold_cells_per_s\":{{\"value\":{:.3},\"unit\":\"cells/s\",\"better\":\"higher\"}},\
             \"serve_warm_cells_per_s\":{{\"value\":{:.3},\"unit\":\"cells/s\",\"better\":\"higher\"}},\
             \"serve_cache_speedup\":{{\"value\":{:.3},\"unit\":\"x\",\"better\":\"higher\"}},\
             \"serve_warm_p99_ms\":{{\"value\":{:.3},\"unit\":\"ms\",\"better\":\"lower\"}}}}}}",
            cold.cells_per_s(),
            warm.cells_per_s(),
            speedup,
            percentile(&sorted, 0.99).as_secs_f64() * 1e3,
        );
        args::write_file_or_exit(path, &doc);
    }

    if speedup < 5.0 {
        failures.push(format!("warm/cold speedup {speedup:.1}x below the 5x acceptance floor"));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("cache consistency: ok (hits replay byte-identical streams, misses simulate)");
}
