//! Regenerates the **Section V-D overheads**: SafeDM area (LUTs, % of the
//! MPSoC) and power (W, % of baseline), plus a configuration sweep showing
//! how the costs scale with the data-FIFO depth.
//!
//! Usage: `cargo run -p safedm-bench --bin overheads --release`

use safedm_bench::experiments::run_monitored;
use safedm_core::SafeDmConfig;
use safedm_power::{estimate_area, estimate_power, Activity, BASELINE_LUTS, BASELINE_POWER_W};
use safedm_tacle::kernels;

fn main() {
    let cfg = SafeDmConfig::default();
    let area = estimate_area(&cfg);

    // Derive switching activity from a real monitored run.
    let k = kernels::by_name("bitcount").expect("kernel exists");
    let run = run_monitored(k, None, 0, cfg);
    let activity = Activity::from_run(run.cycles, run.cycles - run.observed.min(run.cycles));
    let power = estimate_power(&cfg, activity);

    println!("SECTION V-D: SafeDM overheads (structural model, calibrated)");
    println!();
    println!("  paper:  4000 LUTs   (3.4% of MPSoC)    0.019 W (<1% of >2 W)");
    println!(
        "  model:  {:>4} LUTs   ({:.1}% of {} LUTs)   {:.3} W ({:.2}% of {} W)",
        area.total_luts,
        area.percent_of_baseline,
        BASELINE_LUTS,
        power.total_w,
        power.percent_of_baseline,
        BASELINE_POWER_W,
    );
    println!();
    println!("  breakdown:");
    println!(
        "    signature storage : {:>5} LUTs ({} DS bits + {} IS bits)",
        area.storage_luts, area.ds_bits, area.is_bits
    );
    println!(
        "    comparators       : {:>5} LUTs ({} compared bits)",
        area.compare_luts, area.cmp_bits
    );
    println!("    APB/control       : {:>5} LUTs", area.control_luts);
    println!("    flip-flops        : {:>5}", area.total_ffs);
    println!();
    println!("  activity from run: shift fraction {:.2}", activity.shift_fraction);
    println!();
    println!("  FIFO-depth sweep (ablation A1 cost axis):");
    println!("    {:>5} {:>10} {:>8} {:>10}", "n", "LUTs", "%SoC", "power(W)");
    for n in [1usize, 2, 4, 8, 12, 16] {
        let c = SafeDmConfig { data_fifo_depth: n, ..SafeDmConfig::default() };
        let a = estimate_area(&c);
        let p = estimate_power(&c, activity);
        println!(
            "    {:>5} {:>10} {:>8.2} {:>10.4}",
            n, a.total_luts, a.percent_of_baseline, p.total_w
        );
    }
}
