//! Soundness harness for the abstract-interpretation diversity prover:
//! runs every TACLe kernel (plus synthetic programs that actually earn
//! `ProvedDiverse` certificates) across a stagger grid under the *dynamic*
//! SafeDM monitor, and fails if the monitor ever observes a no-diversity
//! cycle inside a region the prover marked `ProvedDiverse`.
//!
//! The check is warmup-gated: a no-diversity verdict only counts against a
//! `ProvedDiverse` region (the loop span plus any spliced callee-body
//! spans) once both cores' last-committed PCs have stayed inside that same
//! region for at least `2 * data_fifo_depth` consecutive observed cycles,
//! so both signature FIFOs contain only in-region traffic.
//! `ProvedCollision` claims are existential (a collision *exists* at some
//! alignment), so they are confirmed informationally, never failed.
//!
//! Cells run on the `safedm-campaign` pool with ordered collection:
//! stdout is byte-identical for any `--jobs N`.
//!
//! Usage: `cargo run -p safedm-bench --bin prove_soundness --release
//! [--quick] [--jobs N] [--staggers 0,100,1000,10000] [--max-cycles N]
//! [--events-out PATH] [--events-timing] [--progress]`

use std::process::ExitCode;
use std::sync::Arc;

use safedm_analysis::{analyze, prove, AnalysisConfig, PcSpan};
use safedm_asm::{Asm, Program};
use safedm_bench::args;
use safedm_bench::experiments::{run_cells_with_telemetry, Telemetry};
use safedm_campaign::ConfigGrid;
use safedm_core::{MonitoredSoc, SafeDmConfig};
use safedm_isa::Reg;
use safedm_obs::events::CellEvent;
use safedm_soc::SocConfig;
use safedm_tacle::{build_kernel_program, kernels, HarnessConfig, Kernel, StaggerConfig};

/// One program under test: a TACLe kernel or a synthetic diverse-by-proof
/// program.
#[derive(Clone)]
enum Target {
    Tacle(&'static Kernel),
    Synth(&'static str),
}

impl Target {
    fn name(&self) -> &'static str {
        match self {
            Target::Tacle(k) => k.name,
            Target::Synth(n) => n,
        }
    }

    fn build(&self, stagger: Option<StaggerConfig>) -> Program {
        match self {
            Target::Tacle(k) => {
                build_kernel_program(k, &HarnessConfig { stagger, ..HarnessConfig::default() })
            }
            Target::Synth("countdown") => synth_countdown(stagger),
            Target::Synth("memcpy") => synth_memcpy(stagger),
            Target::Synth("call-loop") => synth_call_loop(stagger),
            Target::Synth(other) => unreachable!("unknown synthetic {other}"),
        }
    }
}

/// Emits the same hart-gated nop sled as the TACLe harness prologue: the
/// delayed hart commits `nops` nops, the other commits one `j skip`, so the
/// effective committed-instruction delta is `nops - 1` (sled phase `-1`).
fn sled(a: &mut Asm, st: StaggerConfig) {
    let sled = a.new_label("sled");
    let skip = a.new_label("skip_sled");
    a.hartid(Reg::T0);
    a.li(Reg::T1, st.delayed_core as i64);
    a.beq(Reg::T0, Reg::T1, sled);
    a.j(skip);
    a.bind(sled).expect("fresh label");
    a.nops(st.nops);
    a.bind(skip).expect("fresh label");
}

/// A long countdown loop: two instructions per iteration, each reading the
/// iteration-injective counter — the simplest loop the prover certifies
/// `ProvedDiverse` at any effective stagger >= 2. Long enough that both
/// cores overlap inside the loop even at a 10000-nop sled.
fn synth_countdown(stagger: Option<StaggerConfig>) -> Program {
    let mut a = Asm::new();
    if let Some(st) = stagger {
        sled(&mut a, st);
    }
    a.li(Reg::T0, 60_000);
    let l = a.new_label("l");
    a.bind(l).unwrap();
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, l);
    a.ebreak();
    a.link(0x8000_0000).unwrap()
}

/// A countdown loop whose body lives behind `call leaf`: the leaf is a
/// straight-line composable function, so the prover certifies the loop
/// through its *spliced* stream (`jal` + leaf body + `ret` + counter step)
/// built from the interprocedural summaries. Every certificate this target
/// earns is therefore a whole-program one, cross-checked dynamically.
fn synth_call_loop(stagger: Option<StaggerConfig>) -> Program {
    let mut a = Asm::new();
    if let Some(st) = stagger {
        sled(&mut a, st);
    }
    a.li(Reg::T0, 60_000);
    let l = a.new_label("l");
    let leaf = a.new_label("leaf");
    a.bind(l).unwrap();
    a.call(leaf);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, l);
    a.ebreak();
    a.bind(leaf).unwrap();
    a.add(Reg::T2, Reg::T0, Reg::T0);
    a.xor(Reg::T3, Reg::T2, Reg::T0);
    a.ret();
    a.link(0x8000_0000).unwrap()
}

/// A memcpy-style loop with loads and stores: qualifies via the injective
/// closure (every instruction reads an injective pointer or counter) plus
/// the relational memory-equality proof.
fn synth_memcpy(stagger: Option<StaggerConfig>) -> Program {
    const WORDS: usize = 16_384; // 64 KiB copied, 4 bytes per iteration
    let mut a = Asm::new();
    let src: Vec<u64> = (0..WORDS as u64 / 2).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    let src = a.d_dwords("src", &src);
    let dst = a.d_dwords("dst", &vec![0u64; WORDS / 2]);
    if let Some(st) = stagger {
        sled(&mut a, st);
    }
    a.la(Reg::A0, src);
    a.la(Reg::A1, dst);
    a.li(Reg::T0, WORDS as i64);
    let l = a.new_label("l");
    a.bind(l).unwrap();
    a.lw(Reg::T1, 0, Reg::A0);
    a.sw(Reg::T1, 0, Reg::A1);
    a.addi(Reg::A0, Reg::A0, 4);
    a.addi(Reg::A1, Reg::A1, 4);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, l);
    a.ebreak();
    a.link(0x8000_0000).unwrap()
}

/// Everything precomputed for one (target, stagger) setup. Regions are
/// per-certificate span unions (loop plus spliced callee bodies), so
/// interprocedural certificates stay guarded while a core's PC sits inside
/// a composable callee.
struct Setup {
    prog: Arc<Program>,
    diverse: Vec<Vec<PcSpan>>,
    collision: Vec<Vec<PcSpan>>,
    effective: i64,
    golden: Option<u64>,
}

/// Dynamic observations of one cell.
struct CellOut {
    cycles: u64,
    observed: u64,
    no_div: u64,
    guarded: u64,
    violations: Vec<(u64, u64, u64)>,
    collision_nodiv: u64,
    timed_out: bool,
    checksum_ok: bool,
}

fn run_cell(setup: &Setup, max_cycles: u64) -> CellOut {
    let dm_cfg = SafeDmConfig::default();
    let warmup = 2 * dm_cfg.data_fifo_depth as u64;
    let mut sys = MonitoredSoc::new(SocConfig::default(), dm_cfg);
    sys.load_program(&setup.prog);

    let mut streak = 0u64;
    let mut streak_span: Option<usize> = None;
    let mut guarded = 0u64;
    let mut violations = Vec::new();
    let mut collision_nodiv = 0u64;
    for _ in 0..max_cycles {
        if sys.soc().all_halted()
            && (0..sys.soc().core_count()).all(|i| sys.soc().core(i).store_buffer_len() == 0)
        {
            break;
        }
        let rep = sys.step();
        let pcs = (sys.soc().core(0).last_commit_pc(), sys.soc().core(1).last_commit_pc());
        let both_in = |regions: &[Vec<PcSpan>]| match pcs {
            (Some(p0), Some(p1)) => regions
                .iter()
                .position(|r| r.iter().any(|s| s.contains(p0)) && r.iter().any(|s| s.contains(p1))),
            _ => None,
        };
        match (rep.observed, both_in(&setup.diverse)) {
            (true, Some(si)) => {
                if streak_span == Some(si) {
                    streak += 1;
                } else {
                    streak_span = Some(si);
                    streak = 1;
                }
            }
            _ => {
                streak = 0;
                streak_span = None;
            }
        }
        if streak >= warmup {
            guarded += 1;
        }
        if rep.observed && rep.no_diversity {
            if streak >= warmup {
                let (p0, p1) = (pcs.0.unwrap_or(0), pcs.1.unwrap_or(0));
                violations.push((sys.soc().cycle(), p0, p1));
            }
            if both_in(&setup.collision).is_some() {
                collision_nodiv += 1;
            }
        }
    }
    sys.monitor_mut().finish();
    let timed_out = !sys.soc().all_halted();
    let checksum_ok = match setup.golden {
        Some(golden) => !timed_out && (0..2).all(|c| sys.soc().core(c).reg(Reg::A0) == golden),
        None => !timed_out,
    };
    let counters = sys.monitor().counters();
    CellOut {
        cycles: sys.soc().cycle(),
        observed: counters.cycles_observed,
        no_div: counters.no_div_cycles,
        guarded,
        violations,
        collision_nodiv,
        timed_out,
        checksum_ok,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args::flag(&args, "--quick");
    let jobs = args::jobs(&args);
    let telemetry = Telemetry::from_args(&args);
    let max_cycles = args::or_exit(args::parsed_or::<u64>(&args, "--max-cycles", 20_000_000));

    let staggers: Vec<u64> = match args::list_or_exit::<u64>(&args, "--staggers") {
        Some(list) => list,
        None if quick => vec![0, 100],
        None => vec![0, 100, 1000, 10000],
    };

    let mut targets: Vec<Target> = if quick {
        ["fac", "bitcount", "insertsort"]
            .iter()
            .map(|n| Target::Tacle(kernels::by_name(n).expect("kernel")))
            .collect()
    } else {
        kernels::all().iter().map(Target::Tacle).collect()
    };
    targets.push(Target::Synth("countdown"));
    targets.push(Target::Synth("memcpy"));
    targets.push(Target::Synth("call-loop"));

    let grid =
        ConfigGrid { kernels: targets, staggers, configs: vec![()], runs: 1, root_seed: 2024 };

    // Static phase: prove every (target, stagger) setup once, up front.
    // Setup index == cell index (runs and configs are singleton axes).
    let cells = grid.cells();
    let setups: Vec<Setup> = cells
        .iter()
        .map(|cell| {
            let nops = cell.stagger;
            let stagger =
                (nops > 0).then_some(StaggerConfig { nops: nops as usize, delayed_core: 1 });
            let prog = cell.kernel.build(stagger);
            let cfg = AnalysisConfig {
                stagger_nops: (nops > 0).then_some(nops),
                stagger_phase: if nops > 0 { -1 } else { 0 },
                ..AnalysisConfig::default()
            };
            let report = analyze(&prog, &cfg);
            let proof = prove(&report.program, &report.cfg, &cfg);
            let golden = match cell.kernel {
                Target::Tacle(k) => Some((k.reference)()),
                Target::Synth(_) => None,
            };
            Setup {
                prog: Arc::new(prog),
                diverse: proof.diverse_regions(),
                collision: proof.collision_regions(),
                effective: proof.effective_stagger,
                golden,
            }
        })
        .collect();

    if telemetry.progress {
        eprintln!(
            "prove-soundness: {} targets x {} staggers on {jobs} worker(s), max {max_cycles} \
             cycles",
            grid.kernels.len(),
            grid.staggers.len()
        );
    }

    // Dynamic phase: run every cell under the monitor, in parallel.
    let results = run_cells_with_telemetry(
        jobs,
        &telemetry,
        &cells,
        |cell| cell.kernel.name().to_owned(),
        |_, cell| run_cell(&setups[cell.index], max_cycles),
        |index, cell, r| CellEvent {
            index,
            kernel: cell.kernel.name().to_owned(),
            config: format!("nops={}", cell.stagger),
            engine: "cycle".to_owned(),
            run: 0,
            seed: cell.seed,
            cycles: r.cycles,
            guarded: r.guarded,
            zero_stag: 0,
            no_div: r.no_div,
            episodes: 0,
            violations: r.violations.len() as u64,
            ok: r.checksum_ok && !r.timed_out && r.violations.is_empty(),
            wall_us: None,
        },
    );

    println!(
        "{:<16} {:>7} {:>8} {:>10} {:>10} {:>8} {:>8} {:>9} {:>10} {:>6}",
        "target",
        "nops",
        "eff",
        "cycles",
        "observed",
        "no-div",
        "guarded",
        "col-hits",
        "violations",
        "check"
    );
    let mut total_violations = 0usize;
    let mut total_guarded = 0u64;
    let mut bad_runs = 0usize;
    for (cell, r) in cells.iter().zip(&results) {
        total_violations += r.violations.len();
        total_guarded += r.guarded;
        if !r.checksum_ok || r.timed_out {
            bad_runs += 1;
        }
        println!(
            "{:<16} {:>7} {:>8} {:>10} {:>10} {:>8} {:>8} {:>9} {:>10} {:>6}",
            cell.kernel.name(),
            cell.stagger,
            setups[cell.index].effective,
            r.cycles,
            r.observed,
            r.no_div,
            r.guarded,
            r.collision_nodiv,
            r.violations.len(),
            if r.checksum_ok { "ok" } else { "FAIL" }
        );
        for &(cycle, p0, p1) in r.violations.iter().take(5) {
            println!(
                "  VIOLATION {} nops={}: no-diversity cycle {cycle} inside ProvedDiverse \
                 region (pc0={p0:#x}, pc1={p1:#x})",
                cell.kernel.name(),
                cell.stagger
            );
        }
    }

    println!();
    if total_violations == 0 && bad_runs == 0 {
        println!(
            "PROVE-SOUNDNESS: PASS ({} cells, {} warmup-gated cycles guarded, 0 violations)",
            cells.len(),
            total_guarded
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "PROVE-SOUNDNESS: FAIL ({total_violations} violations, {bad_runs} bad runs across {} \
             cells)",
            cells.len()
        );
        ExitCode::FAILURE
    }
}
