//! Regenerates the **staggering/diversity time series** behind the paper's
//! Section V-C discussion (including the `pm` timing-anomaly narrative):
//! per-cycle committed-instruction staggering and the monitor's verdicts,
//! down-sampled into fixed windows and rendered as a final report.
//!
//! The run is observed by a `safedm-obs` [`RunObserver`], so the same
//! invocation can emit a machine-readable metric snapshot
//! (`--metrics-out`) alongside the CSV.
//!
//! Usage: `cargo run -p safedm-bench --bin staggering_trace --release
//! [--kernel pm] [--nops 1000] [--window 256] [--csv PATH]
//! [--metrics-out PATH]`

use std::fmt::Write as _;

use safedm_bench::args;
use safedm_bench::experiments::{write_metrics_json, RUN_BUDGET};
use safedm_core::{MonitoredSoc, ObsConfig, ReportMode, RunObserver, SafeDmConfig};
use safedm_soc::SocConfig;
use safedm_tacle::{build_kernel_program, kernels, HarnessConfig, StackMode, StaggerConfig};

struct WindowRow {
    start: u64,
    mean_abs: f64,
    min_abs: u64,
    zero_stag: usize,
    no_div: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kernel_name = args::value(&args, "--kernel").unwrap_or_else(|| "pm".to_owned());
    let nops: usize = args::or_exit(args::parsed_or(&args, "--nops", 1000));
    let window: u64 = args::or_exit(args::parsed_or(&args, "--window", 256)).max(1);

    let k = kernels::by_name(&kernel_name).unwrap_or_else(|| {
        eprintln!("error: unknown kernel `{kernel_name}` (see kernel_stats for the list)");
        std::process::exit(2);
    });
    let stagger = (nops > 0).then_some(StaggerConfig { nops, delayed_core: 1 });
    let prog = build_kernel_program(k, &HarnessConfig { stagger, stack: StackMode::Mirrored });

    let dm = SafeDmConfig { report_mode: ReportMode::Polling, ..SafeDmConfig::default() };
    let mut sys = MonitoredSoc::new(SocConfig::default(), dm);
    sys.load_program(&prog);
    sys.enable_trace();
    sys.attach_obs(RunObserver::new(ObsConfig::default(), 2));
    let out = sys.run(RUN_BUDGET);
    assert!(out.run.all_clean(), "{kernel_name}: {:?}", out.run.exits);
    let trace = sys.take_trace();
    let obs = sys.detach_obs().expect("observer attached");

    // Down-sample into windows: per window, mean |diff|, min |diff|,
    // zero-stag count, no-div count. No printing in this loop — rows are
    // accumulated and rendered once below.
    let mut rows = Vec::with_capacity(trace.len() / window as usize + 1);
    let mut csv = String::from("window_start,mean_abs_diff,min_abs_diff,zero_stag,no_div\n");
    for chunk in trace.chunks(window as usize) {
        let row = WindowRow {
            start: chunk.first().map_or(0, |s| s.cycle),
            mean_abs: chunk.iter().map(|s| s.diff.unsigned_abs() as f64).sum::<f64>()
                / chunk.len() as f64,
            min_abs: chunk.iter().map(|s| s.diff.unsigned_abs()).min().unwrap_or(0),
            zero_stag: chunk.iter().filter(|s| s.zero_stagger).count(),
            no_div: chunk.iter().filter(|s| s.no_diversity).count(),
        };
        let _ = writeln!(
            csv,
            "{},{:.2},{},{},{}",
            row.start, row.mean_abs, row.min_abs, row.zero_stag, row.no_div
        );
        rows.push(row);
    }

    // Final formatted report.
    let mut report = String::new();
    let _ = writeln!(
        report,
        "staggering trace: kernel={kernel_name} nops={nops} cycles={}",
        trace.len()
    );
    let _ = writeln!(
        report,
        "{:>12} {:>14} {:>12} {:>10} {:>8}",
        "cycle", "mean|diff|", "min|diff|", "zero-stag", "no-div"
    );
    for row in &rows {
        let _ = writeln!(
            report,
            "{:>12} {:>14.1} {:>12} {:>10} {:>8}",
            row.start, row.mean_abs, row.min_abs, row.zero_stag, row.no_div
        );
    }
    let _ = writeln!(report);
    let _ = writeln!(
        report,
        "totals: zero-stag {} cycles, no-div {} cycles over {} observed",
        out.zero_stag_cycles, out.no_div_cycles, out.cycles_observed
    );
    print!("{report}");
    // The pm narrative: staggered start, transient re-synchronisation
    // (small |diff|) while both cores work core-locally, yet diversity
    // persists (no-div stays near zero in those windows).
    if let Some(path) = args::value(&args, "--csv") {
        args::write_file_or_exit(&path, &csv);
    }
    if let Some(path) = args::value(&args, "--metrics-out") {
        write_metrics_json(&path, &obs.metrics_snapshot());
    }
}
