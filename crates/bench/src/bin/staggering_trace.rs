//! Regenerates the **staggering/diversity time series** behind the paper's
//! Section V-C discussion (including the `pm` timing-anomaly narrative):
//! per-cycle committed-instruction staggering and the monitor's verdicts,
//! down-sampled into fixed windows and printed as CSV.
//!
//! Usage: `cargo run -p safedm-bench --bin staggering_trace --release
//! [--kernel pm] [--nops 1000] [--window 256] [--csv PATH]`

use safedm_bench::experiments::{arg_value, RUN_BUDGET};
use safedm_core::{MonitoredSoc, ReportMode, SafeDmConfig};
use safedm_soc::SocConfig;
use safedm_tacle::{build_kernel_program, kernels, HarnessConfig, StackMode, StaggerConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kernel_name = arg_value(&args, "--kernel").unwrap_or_else(|| "pm".to_owned());
    let nops: usize = arg_value(&args, "--nops").map_or(1000, |v| v.parse().expect("--nops"));
    let window: u64 = arg_value(&args, "--window").map_or(256, |v| v.parse().expect("--window"));

    let k = kernels::by_name(&kernel_name).expect("unknown kernel");
    let stagger = (nops > 0).then_some(StaggerConfig { nops, delayed_core: 1 });
    let prog = build_kernel_program(k, &HarnessConfig { stagger, stack: StackMode::Mirrored });

    let dm = SafeDmConfig { report_mode: ReportMode::Polling, ..SafeDmConfig::default() };
    let mut sys = MonitoredSoc::new(SocConfig::default(), dm);
    sys.load_program(&prog);
    sys.enable_trace();
    let out = sys.run(RUN_BUDGET);
    assert!(out.run.all_clean(), "{kernel_name}: {:?}", out.run.exits);
    let trace = sys.take_trace();

    // Down-sample: per window, mean |diff|, min |diff|, zero-stag count,
    // no-div count.
    let mut lines = String::from("window_start,mean_abs_diff,min_abs_diff,zero_stag,no_div\n");
    println!("staggering trace: kernel={kernel_name} nops={nops} cycles={}", trace.len());
    println!(
        "{:>12} {:>14} {:>12} {:>10} {:>8}",
        "cycle", "mean|diff|", "min|diff|", "zero-stag", "no-div"
    );
    for chunk in trace.chunks(window as usize) {
        let start = chunk.first().map_or(0, |s| s.cycle);
        let mean =
            chunk.iter().map(|s| s.diff.unsigned_abs() as f64).sum::<f64>() / chunk.len() as f64;
        let min = chunk.iter().map(|s| s.diff.unsigned_abs()).min().unwrap_or(0);
        let zs = chunk.iter().filter(|s| s.zero_stagger).count();
        let nd = chunk.iter().filter(|s| s.no_diversity).count();
        println!("{start:>12} {mean:>14.1} {min:>12} {zs:>10} {nd:>8}");
        lines.push_str(&format!("{start},{mean:.2},{min},{zs},{nd}\n"));
    }

    println!();
    println!(
        "totals: zero-stag {} cycles, no-div {} cycles over {} observed",
        out.zero_stag_cycles, out.no_div_cycles, out.cycles_observed
    );
    // The pm narrative: staggered start, transient re-synchronisation
    // (small |diff|) while both cores work core-locally, yet diversity
    // persists (no-div stays near zero in those windows).
    if let Some(path) = arg_value(&args, "--csv") {
        std::fs::write(&path, lines).expect("write csv");
        eprintln!("wrote {path}");
    }
}
