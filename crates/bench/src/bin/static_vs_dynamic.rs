//! Compares the **static diversity analyzer** against the **runtime
//! monitor**: per TACLe kernel, what the lints predict vs. what SafeDM
//! measures at stagger 0, plus a set of synthetic hazard programs whose
//! guaranteed (DIV001/DIV002) findings are cross-validated by the pre-run
//! gate.
//!
//! Exits non-zero if any guaranteed prediction is refuted (a false
//! "guaranteed" — the acceptance criterion of the analyzer).
//!
//! Both the kernel comparison and the synthetic-hazard cross-validation run
//! on the `safedm-campaign` pool with ordered collection: output is
//! identical for any `--jobs N`.
//!
//! Usage: `cargo run -p safedm-bench --bin static_vs_dynamic --release
//! [--quick] [--jobs N] [--events-out PATH] [--events-timing] [--progress]`
//!
//! `--events-out` records the per-kernel gate campaign (the synthetic
//! hazard cross-validation is a fixed smoke set and stays out of the
//! stream).

use safedm_analysis::{AnalysisConfig, LintCode};
use safedm_asm::{Asm, Program};
use safedm_bench::args;
use safedm_bench::experiments::{run_cells_with_telemetry, Telemetry};
use safedm_campaign::par_map;
use safedm_core::{DiversityGate, MonitoredRun, MonitoredSoc, SafeDmConfig};
use safedm_isa::Reg;
use safedm_obs::events::CellEvent;
use safedm_soc::SocConfig;
use safedm_tacle::{build_kernel_program, kernels, HarnessConfig};

fn run_gated(prog: &Program, max_cycles: u64) -> (MonitoredRun, DiversityGate) {
    let mut sys = MonitoredSoc::new(SocConfig::default(), SafeDmConfig::default());
    sys.enable_static_gate(AnalysisConfig::default());
    sys.load_program(prog);
    let out = sys.run(max_cycles);
    let gate = sys.detach_gate().expect("gate armed by load_program");
    (out, gate)
}

fn count(gate: &DiversityGate, code: LintCode) -> usize {
    gate.report().diagnostics.iter().filter(|d| d.code == code).count()
}

/// Synthetic programs that must trip the guaranteed lints.
fn synthetic_hazards() -> Vec<(&'static str, Program)> {
    let mut out = Vec::new();

    // A nop sled far longer than the pipeline, then halt.
    let mut a = Asm::new();
    a.nops(64);
    a.ebreak();
    out.push(("nop_sled", a.link(0x8000_0000).unwrap()));

    // A short spin then a DIV001 idle loop (runs until the cycle budget).
    let mut a = Asm::new();
    a.li(Reg::T0, 200);
    let spin = a.new_label("spin");
    a.bind(spin).unwrap();
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, spin);
    let idle = a.new_label("idle");
    a.bind(idle).unwrap();
    a.nop();
    a.j(idle);
    out.push(("spin_then_idle", a.link(0x8000_0000).unwrap()));

    // A sled mid-program between data-dependent work.
    let mut a = Asm::new();
    a.li(Reg::A0, 0x8010_0000);
    a.lw(Reg::T1, 0, Reg::A0);
    a.nops(32);
    a.addi(Reg::T1, Reg::T1, 1);
    a.sw(Reg::T1, 0, Reg::A0);
    a.ebreak();
    out.push(("sled_between_loads", a.link(0x8000_0000).unwrap()));

    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args::flag(&args, "--quick");
    let jobs = args::jobs(&args);
    let telemetry = Telemetry::from_args(&args);

    let all = kernels::all();
    let selected: Vec<&safedm_tacle::Kernel> = if quick {
        all.iter()
            .filter(|k| ["bitcount", "fac", "prime", "fft", "iir"].contains(&k.name))
            .collect()
    } else {
        all.iter().collect()
    };

    // One campaign cell per kernel; each returns its rendered row plus the
    // two verdict bits the summary needs.
    let kernel_cells = run_cells_with_telemetry(
        jobs,
        &telemetry,
        &selected,
        |k| k.name.to_owned(),
        |_, k| {
            let prog = build_kernel_program(k, &HarnessConfig::default());
            let (out, gate) = run_gated(&prog, 200_000_000);
            assert!(!out.run.timed_out, "{}: kernel run timed out", k.name);
            let report = gate.report();
            let has_diags = !report.diagnostics.is_empty();
            let ok = gate.all_confirmed();
            let row = format!(
                "{:<18} {:>5} {:>7} {:>7} {:>7} {:>9} {:>9}  {}\n",
                k.name,
                report.cfg.loops.len(),
                count(&gate, LintCode::Div001),
                count(&gate, LintCode::Div002),
                count(&gate, LintCode::Div003),
                out.no_div_cycles,
                out.cycles_observed,
                if ok { "ok" } else { "REFUTED" }
            );
            (
                row,
                has_diags,
                ok,
                out.run.cycles,
                out.zero_stag_cycles,
                out.no_div_cycles,
                out.cycles_observed,
            )
        },
        |index, k, &(_, _, ok, cycles, zero_stag, no_div, observed)| CellEvent {
            index,
            kernel: k.name.to_owned(),
            config: "gate".to_owned(),
            engine: "cycle".to_owned(),
            run: 0,
            seed: 0,
            cycles,
            guarded: observed,
            zero_stag,
            no_div,
            episodes: 0,
            violations: u64::from(!ok),
            ok,
            wall_us: None,
        },
    );

    let mut refuted = 0usize;
    let mut kernels_with_diags = 0usize;
    let mut kernel_rows = String::new();
    for (row, has_diags, ok, ..) in kernel_cells {
        kernel_rows.push_str(&row);
        if has_diags {
            kernels_with_diags += 1;
        }
        if !ok {
            refuted += 1;
        }
    }

    let hazards = synthetic_hazards();
    let synth_cells = par_map(jobs, &hazards, |_, (name, prog)| {
        let (out, gate) = run_gated(prog, 100_000);
        let guaranteed = gate.report().guaranteed_hazards().count();
        assert!(guaranteed > 0, "{name}: expected a guaranteed hazard");
        let ok = gate.all_confirmed();
        let executed = gate.executed_count();
        let row = format!(
            "  {:<20} guaranteed {:>2}  executed {:>2}  no-div {:>7}  {}\n",
            name,
            guaranteed,
            executed,
            out.no_div_cycles,
            if ok { "all confirmed" } else { "REFUTED" }
        );
        assert!(executed > 0, "{name}: no predicted region was executed");
        (row, ok)
    });

    let mut synth_rows = String::new();
    for (row, ok) in synth_cells {
        synth_rows.push_str(&row);
        if !ok {
            refuted += 1;
        }
    }

    println!("STATIC vs DYNAMIC: analyzer predictions against the monitor (stagger 0)");
    println!(
        "{:<18} {:>5} {:>7} {:>7} {:>7} {:>9} {:>9}  verdict",
        "program", "loops", "DIV001", "DIV002", "DIV003", "no-div", "observed"
    );
    print!("{kernel_rows}");
    println!("\nsynthetic guaranteed-hazard programs (gate cross-validation):");
    print!("{synth_rows}");
    println!("\nkernels with diagnostics: {kernels_with_diags}/{}", selected.len());
    if refuted > 0 {
        println!("FALSE GUARANTEED PREDICTIONS: {refuted}");
        std::process::exit(1);
    }
    println!("zero false guaranteed predictions");
}
