//! **Extension E2**: natural diversity as a function of memory intensity.
//!
//! The paper attributes natural diversity to serialisation at shared
//! resources; the synthetic-workload generator lets us turn that knob
//! continuously. Sweeping the fraction of memory operations from 0 % (pure
//! register compute, cores stay in lockstep) to high percentages (constant
//! private-memory traffic, cores diverge almost immediately) produces the
//! mechanism curve behind Table I.
//!
//! Usage: `cargo run -p safedm-bench --bin sweep_mem_intensity --release`

use std::fmt::Write as _;

use safedm_core::{MonitoredSoc, ReportMode, SafeDmConfig};
use safedm_soc::SocConfig;
use safedm_tacle::{build_synthetic, StackMode, SynthConfig};

fn main() {
    // Rows accumulate while the sweep runs; the table prints once at the end.
    let mut rows = String::new();
    for percent in [0u32, 2, 5, 10, 20, 40, 60, 80] {
        // Average over a few seeds to smooth generator noise.
        let mut totals = (0u64, 0u64, 0u64, 0u64);
        const SEEDS: u64 = 3;
        for seed in 0..SEEDS {
            let prog = build_synthetic(
                &SynthConfig::with_mem_percent(percent, 11 + seed),
                None,
                StackMode::Mirrored,
            );
            let mut sys = MonitoredSoc::new(
                SocConfig::default(),
                SafeDmConfig { report_mode: ReportMode::Polling, ..SafeDmConfig::default() },
            );
            sys.load_program(&prog);
            let out = sys.run(400_000_000);
            assert!(out.run.all_clean(), "mem {percent}%: {:?}", out.run.exits);
            totals.0 += out.run.cycles;
            totals.1 += out.zero_stag_cycles;
            totals.2 += out.no_div_cycles;
            totals.3 += out.cycles_observed;
        }
        let share = totals.2 as f64 / totals.3.max(1) as f64 * 100.0;
        let _ = writeln!(
            rows,
            "{:>7} {:>10} {:>10} {:>10} {:>10} {:>8.2}%",
            percent,
            totals.0 / SEEDS,
            totals.1 / SEEDS,
            totals.2 / SEEDS,
            totals.3 / SEEDS,
            share
        );
    }
    println!("EXTENSION E2: diversity vs memory intensity (synthetic kernels)");
    println!();
    println!(
        "{:>7} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "mem %", "cycles", "zero-stag", "no-div", "observed", "no-div %"
    );
    print!("{rows}");
    println!();
    println!(
        "two regimes emerge:\n\
         * 0% memory keeps bit-identical cores in cycle lockstep (no-div ≈ 100%);\n\
           the first few percent of private-memory traffic collapse it — natural\n\
           diversity is driven by shared-resource serialisation, the paper's\n\
           Section V-C mechanism.\n\
         * at extreme memory-boundedness the shared bus paces both cores: they\n\
           spend most cycles frozen waiting on alternating grants, partially\n\
           re-coupling (no-div creeps back up) — a regime worth monitoring for,\n\
           and invisible to staggering-enforcement schemes that only count\n\
           committed instructions."
    );
}
