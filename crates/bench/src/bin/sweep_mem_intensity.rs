//! **Extension E2**: natural diversity as a function of memory intensity.
//!
//! The paper attributes natural diversity to serialisation at shared
//! resources; the synthetic-workload generator lets us turn that knob
//! continuously. Sweeping the fraction of memory operations from 0 % (pure
//! register compute, cores stay in lockstep) to high percentages (constant
//! private-memory traffic, cores diverge almost immediately) produces the
//! mechanism curve behind Table I.
//!
//! The (percent, seed) cells run on the `safedm-campaign` pool; per-percent
//! averages fold in cell order, so the table is identical for any
//! `--jobs N`.
//!
//! Usage: `cargo run -p safedm-bench --bin sweep_mem_intensity --release
//! [--jobs N] [--events-out PATH] [--events-timing] [--progress]`

use std::fmt::Write as _;

use safedm_bench::args;
use safedm_bench::experiments::{run_cells_with_telemetry, Telemetry};
use safedm_core::{MonitoredSoc, ReportMode, SafeDmConfig};
use safedm_obs::events::CellEvent;
use safedm_soc::SocConfig;
use safedm_tacle::{build_synthetic, StackMode, SynthConfig};

const PERCENTS: [u32; 8] = [0, 2, 5, 10, 20, 40, 60, 80];
const SEEDS: u64 = 3;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = args::jobs(&args);
    let telemetry = Telemetry::from_args(&args);

    // One campaign cell per (mem-percent, generator-seed) pair.
    let cells: Vec<(u32, u64)> =
        PERCENTS.iter().flat_map(|&p| (0..SEEDS).map(move |s| (p, s))).collect();
    let outs = run_cells_with_telemetry(
        jobs,
        &telemetry,
        &cells,
        |_| "synthetic".to_owned(),
        |_, &(percent, seed)| {
            let prog = build_synthetic(
                &SynthConfig::with_mem_percent(percent, 11 + seed),
                None,
                StackMode::Mirrored,
            );
            let mut sys = MonitoredSoc::new(
                SocConfig::default(),
                SafeDmConfig { report_mode: ReportMode::Polling, ..SafeDmConfig::default() },
            );
            sys.load_program(&prog);
            let out = sys.run(400_000_000);
            assert!(out.run.all_clean(), "mem {percent}%: {:?}", out.run.exits);
            let episodes = sys.monitor().no_diversity_history().total_episodes();
            (out.run.cycles, out.zero_stag_cycles, out.no_div_cycles, out.cycles_observed, episodes)
        },
        |index, &(percent, seed), &(cycles, zero_stag, no_div, observed, episodes)| CellEvent {
            index,
            kernel: "synthetic".to_owned(),
            config: format!("mem={percent}%"),
            engine: "cycle".to_owned(),
            run: seed,
            seed: 11 + seed,
            cycles,
            guarded: observed,
            zero_stag,
            no_div,
            episodes,
            violations: 0,
            ok: true,
            wall_us: None,
        },
    );

    // Fold per-seed results back into per-percent averages, in sweep order.
    let mut rows = String::new();
    for (i, &percent) in PERCENTS.iter().enumerate() {
        let mut totals = (0u64, 0u64, 0u64, 0u64);
        for out in &outs[i * SEEDS as usize..(i + 1) * SEEDS as usize] {
            totals.0 += out.0;
            totals.1 += out.1;
            totals.2 += out.2;
            totals.3 += out.3;
        }
        let share = totals.2 as f64 / totals.3.max(1) as f64 * 100.0;
        let _ = writeln!(
            rows,
            "{:>7} {:>10} {:>10} {:>10} {:>10} {:>8.2}%",
            percent,
            totals.0 / SEEDS,
            totals.1 / SEEDS,
            totals.2 / SEEDS,
            totals.3 / SEEDS,
            share
        );
    }
    println!("EXTENSION E2: diversity vs memory intensity (synthetic kernels)");
    println!();
    println!(
        "{:>7} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "mem %", "cycles", "zero-stag", "no-div", "observed", "no-div %"
    );
    print!("{rows}");
    println!();
    println!(
        "two regimes emerge:\n\
         * 0% memory keeps bit-identical cores in cycle lockstep (no-div ≈ 100%);\n\
           the first few percent of private-memory traffic collapse it — natural\n\
           diversity is driven by shared-resource serialisation, the paper's\n\
           Section V-C mechanism.\n\
         * at extreme memory-boundedness the shared bus paces both cores: they\n\
           spend most cycles frozen waiting on alternating grants, partially\n\
           re-coupling (no-div creeps back up) — a regime worth monitoring for,\n\
           and invisible to staggering-enforcement schemes that only count\n\
           committed instructions."
    );
}
