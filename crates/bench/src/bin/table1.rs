//! Regenerates **Table I** of the SafeDM paper: per-benchmark cycles with
//! zero staggering and cycles without diversity, for initial staggering of
//! 0 / 100 / 1,000 / 10,000 nops, plus the Section V-C summary block.
//!
//! The configuration grid runs through the `safedm-campaign` engine: rows
//! and JSON are byte-identical for every `--jobs N` (see
//! EXPERIMENTS.md, "Parallel campaigns").
//!
//! Usage: `cargo run -p safedm-bench --bin table1 --release [--quick]
//! [--jobs N] [--root-seed S] [--engine cycle|fast|hybrid] [--profile]
//! [--json PATH] [--metrics-out PATH] [--events-out PATH] [--events-timing]
//! [--progress]`
//!
//! `--engine hybrid` runs guarded regions on the cycle-accurate model (the
//! conservative fast-path default), so its table is byte-identical to
//! `--engine cycle`; `--engine fast` reports the block-compiled engine's
//! functional proxies instead (orders of magnitude faster, not
//! paper-grade — see DESIGN.md §10).

use safedm_bench::args;
use safedm_bench::experiments::{
    render_table1, summarize_table1, table1_cells, table1_events, table1_metrics,
    table1_rows_from_runs, table1_run_cells_engine, write_metrics_json, Telemetry, TABLE1_NOPS,
};
use safedm_campaign::spec::{CampaignSpec, Protocol};
use safedm_core::SafeDmConfig;
use safedm_obs::SelfProfiler;
use safedm_soc::Engine;
use safedm_tacle::kernels;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args::flag(&args, "--quick");
    let telemetry = Telemetry::from_args(&args);
    let root_seed = match args::opt_parsed::<u64>(&args, "--root-seed") {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    let all = kernels::all();
    let selected: Vec<&safedm_tacle::Kernel> = if quick {
        all.iter()
            .filter(|k| ["bitcount", "fac", "iir", "pm", "quicksort"].contains(&k.name))
            .collect()
    } else {
        all.iter().collect()
    };

    // The campaign inputs route through the shared `safedm-api/1` request
    // type: the same document `safedm-sim serve` accepts (protocol
    // `table1`) and whose digest keys the service's result cache.
    let spec = CampaignSpec {
        protocol: Protocol::Table1,
        kernels: selected.iter().map(|k| k.name.to_owned()).collect(),
        staggers: Vec::new(), // table1 pins its own stagger setups
        runs: 1,              // likewise its per-setup seed counts
        root_seed,
        engine: args::value(&args, "--engine").unwrap_or_else(|| "cycle".to_owned()),
        jobs: Some(args::jobs(&args) as u64),
        keep_timing: telemetry.keep_timing,
    };
    args::or_exit(spec.validate());
    let engine = args::or_exit(Engine::parse(&spec.engine));
    let jobs = spec.jobs.map_or(1, |j| j.max(1) as usize);

    // Campaign stderr is quiet by default; `--progress` turns on the
    // header and the live status line.
    if telemetry.progress {
        eprintln!(
            "table1: running {} kernels x 4 staggering setups (4 seeds for 0 nops, 2 for the \
             rest) on {jobs} worker(s)",
            selected.len()
        );
    }
    let t = std::time::Instant::now();
    let cells = table1_cells(&selected, spec.root_seed);
    let progress = telemetry.progress_for(cells.len());
    let (runs, timings) =
        table1_run_cells_engine(&cells, SafeDmConfig::default(), jobs, Some(&progress), engine);
    progress.finish();
    let mut prof = SelfProfiler::new();
    prof.record("campaign.total", t.elapsed());
    for (cell, dt) in cells.iter().zip(&timings) {
        let nops = TABLE1_NOPS[cell.setup_idx];
        prof.record(&format!("cell.{}.nops{nops}.run{}", cell.kernel.name, cell.run), *dt);
    }
    telemetry.write_events(&table1_events(&cells, &runs, &timings, engine));
    let rows = table1_rows_from_runs(&selected, &cells, &runs);
    if telemetry.progress {
        eprintln!("table1: finished in {:.1?}", t.elapsed());
    }

    println!("TABLE I: TACLe-style benchmarks under SafeDM (model reproduction)");
    println!("{}", render_table1(&rows));

    let summary = summarize_table1(&rows);
    println!("Summary (paper, Section V-C):");
    println!("  avg instructions / benchmark : {:.0}", summary.avg_instructions);
    for (i, nops) in safedm_bench::experiments::TABLE1_NOPS.iter().enumerate() {
        println!(
            "  {:>5} nops: avg zero-stag {:>10.1}  avg no-div {:>8.1}",
            nops, summary.avg_zero_stag[i], summary.avg_no_div[i]
        );
    }

    let failures: Vec<&str> =
        rows.iter().filter(|r| !r.all_checksums_ok).map(|r| r.name.as_str()).collect();
    if failures.is_empty() {
        println!("\nall kernels passed their self-checks on both cores");
    } else {
        println!("\nSELF-CHECK FAILURES: {failures:?}");
        std::process::exit(1);
    }

    // Shape checks mirroring the paper's qualitative findings.
    let monotone_ok = rows.iter().all(|r| r.cells[3].no_div <= r.cells[0].no_div.max(1));
    let nodiv_bounded = rows
        .iter()
        .all(|r| (0..4).all(|i| r.cells[i].no_div <= r.cells[i].zero_stag + r.cells[i].no_div));
    println!("shape: no-div vanishes with large staggering: {monotone_ok}");
    println!("shape: no-div bounded by observation: {nodiv_bounded}");

    if let Some(path) = args::value(&args, "--json") {
        let blob = safedm_bench::experiments::json::table1_document(&rows, &summary);
        args::write_file_or_exit(&path, &blob);
    }
    if let Some(path) = args::value(&args, "--metrics-out") {
        write_metrics_json(&path, &table1_metrics(&rows).snapshot());
    }
    if args::flag(&args, "--profile") {
        // Wall-clock per campaign cell (host measurement — deliberately on
        // stderr, never part of the deterministic outputs above).
        eprintln!("\nper-cell wall-clock (campaign profiler, {jobs} worker(s)):");
        eprint!("{}", prof.report());
    }
}
