//! Regenerates **Table II** of the paper as a quantitative comparison: the
//! three classes of non-lockstepped redundant execution, measured head to
//! head on the same kernels.
//!
//! * **Diversity unaware** — plain redundancy: zero overhead, but no
//!   evidence about CCF exposure.
//! * **Diversity enforced (intrusive)** — SafeDE: staggering guaranteed by
//!   stalling the trail core, measured as slowdown and stall cycles.
//! * **Diversity monitored (non-intrusive)** — SafeDM: zero slowdown, and
//!   quantified diversity evidence.
//!
//! Usage: `cargo run -p safedm-bench --bin table2_taxonomy --release
//! [--jobs N] [--events-out PATH] [--events-timing] [--progress]`

use safedm_bench::args;
use safedm_bench::experiments::{run_cells_with_telemetry, Telemetry};
use safedm_core::{MonitoredSoc, ReportMode, SafeDe, SafeDeConfig, SafeDmConfig};
use safedm_obs::events::CellEvent;
use safedm_soc::SocConfig;
use safedm_tacle::{build_kernel_program, kernels, HarnessConfig};

struct Row {
    name: &'static str,
    plain_cycles: u64,
    safede_cycles: u64,
    safede_stalls: u64,
    safedm_cycles: u64,
    no_div: u64,
    zero_stag: u64,
}

fn run_plain(prog: &safedm_asm::Program) -> u64 {
    let mut soc = safedm_soc::MpSoc::new(SocConfig::default());
    soc.load_program(prog);
    let r = soc.run(200_000_000);
    assert!(r.all_clean());
    r.cycles
}

fn run_safede(prog: &safedm_asm::Program, threshold: u64) -> (u64, u64) {
    let mut sys = MonitoredSoc::new(SocConfig::default(), SafeDmConfig::default());
    sys.load_program(prog);
    sys.attach_safede(SafeDe::new(SafeDeConfig { threshold, ..SafeDeConfig::default() }));
    let out = sys.run(400_000_000);
    assert!(out.run.all_clean());
    let de = sys.safede().expect("attached");
    (out.run.cycles, de.stall_cycles())
}

fn run_safedm(prog: &safedm_asm::Program) -> (u64, u64, u64) {
    let dm = SafeDmConfig { report_mode: ReportMode::Polling, ..SafeDmConfig::default() };
    let mut sys = MonitoredSoc::new(SocConfig::default(), dm);
    sys.load_program(prog);
    let out = sys.run(200_000_000);
    assert!(out.run.all_clean());
    (out.run.cycles, out.no_div_cycles, out.zero_stag_cycles)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = args::jobs(&args);
    let telemetry = Telemetry::from_args(&args);
    let names = ["bitcount", "fac", "iir", "insertsort", "pm", "quicksort", "md5", "fft"];
    let threshold = 200u64;
    // One campaign cell per kernel (each cell runs all three techniques);
    // ordered collection keeps the table identical for any --jobs N.
    let rows = run_cells_with_telemetry(
        jobs,
        &telemetry,
        &names,
        |name| (*name).to_owned(),
        |_, &name| {
            let k = kernels::by_name(name).expect("kernel exists");
            let prog = build_kernel_program(k, &HarnessConfig::default());
            let plain = run_plain(&prog);
            let (dec, stalls) = run_safede(&prog, threshold);
            let (dmc, no_div, zero_stag) = run_safedm(&prog);
            Row {
                name,
                plain_cycles: plain,
                safede_cycles: dec,
                safede_stalls: stalls,
                safedm_cycles: dmc,
                no_div,
                zero_stag,
            }
        },
        |index, &name, r| CellEvent {
            index,
            kernel: name.to_owned(),
            config: "taxonomy".to_owned(),
            engine: "cycle".to_owned(),
            run: 0,
            seed: 0,
            cycles: r.safedm_cycles,
            guarded: r.safedm_cycles,
            zero_stag: r.zero_stag,
            no_div: r.no_div,
            episodes: 0,
            violations: 0,
            ok: true,
            wall_us: None,
        },
    );

    println!("TABLE II (quantified): non-lockstepped redundant execution techniques");
    println!();
    println!(
        "{:<12} {:>10} | {:>10} {:>9} {:>8} | {:>10} {:>9} {:>9} {:>9}",
        "", "unaware", "SafeDE", "stalls", "slowdn", "SafeDM", "slowdn", "zero-stag", "no-div"
    );
    println!(
        "{:<12} {:>10} | {:>10} {:>9} {:>8} | {:>10} {:>9} {:>9} {:>9}",
        "benchmark", "cycles", "cycles", "cycles", "%", "cycles", "%", "cycles", "cycles"
    );
    let mut max_dm_slow = 0f64;
    for r in &rows {
        let de_slow = (r.safede_cycles as f64 / r.plain_cycles as f64 - 1.0) * 100.0;
        let dm_slow = (r.safedm_cycles as f64 / r.plain_cycles as f64 - 1.0) * 100.0;
        max_dm_slow = max_dm_slow.max(dm_slow.abs());
        println!(
            "{:<12} {:>10} | {:>10} {:>9} {:>8.2} | {:>10} {:>9.2} {:>9} {:>9}",
            r.name,
            r.plain_cycles,
            r.safede_cycles,
            r.safede_stalls,
            de_slow,
            r.safedm_cycles,
            dm_slow,
            r.zero_stag,
            r.no_div
        );
    }
    println!();
    println!("taxonomy (paper's Table II):");
    println!("  diversity unaware      : no CCF evidence, no overhead");
    println!("  diversity enforced     : SafeDE — intrusive (stalls the trail core; threshold {threshold} insts)");
    println!("  diversity monitored    : SafeDM — non-intrusive (max |slowdown| {max_dm_slow:.3}%), evidence via counters");
    assert!(max_dm_slow < 0.01, "SafeDM must not perturb execution");
    println!("\nnon-intrusiveness check passed: SafeDM slowdown is exactly 0");
}
