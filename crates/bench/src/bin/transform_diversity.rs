//! Transform-diversity experiment: software-diversity transform
//! aggressiveness vs proved-diverse coverage vs runtime overhead, across
//! the TACLe kernels, against the two baselines the transform is meant to
//! replace — *natural* diversity (identical binaries, stagger 0) and
//! *nop-staggering* (identical binaries, a 100-nop sled).
//!
//! Every cell is machine-checked against the dynamic SafeDM monitor: a
//! no-diversity cycle observed inside a region the (pair) prover marked
//! `ProvedDiverse` is a soundness violation and fails the run. The check
//! is warmup-gated exactly like `prove_soundness`: a verdict only counts
//! once both cores' last-committed PCs have stayed inside the same
//! certified span pair for `2 * data_fifo_depth` consecutive observed
//! cycles, so both signature FIFOs hold only in-span traffic.
//!
//! Cells run on the `safedm-campaign` pool with ordered collection:
//! stdout is byte-identical for any `--jobs N`.
//!
//! Usage: `cargo run -p safedm-bench --bin transform_diversity --release
//! [--quick] [--jobs N] [--max-cycles N] [--seed S] [--engine cycle|hybrid]
//! [--events-out PATH] [--events-timing] [--progress]`
//!
//! Every cell here *is* a monitor machine-check, so the whole run sits in
//! a monitor-relevant window: `--engine hybrid` stays on the cycle-accurate
//! model throughout (its conservative guarded-region rule) and produces
//! byte-identical output; `--engine fast` has no monitor probes to check
//! against and is rejected.

use std::process::ExitCode;
use std::sync::Arc;

use safedm_analysis::{analyze, prove, prove_pair, AnalysisConfig, PcSpan, Verdict};
use safedm_asm::transform::TransformConfig;
use safedm_asm::Program;
use safedm_bench::args;
use safedm_bench::experiments::{run_cells_with_telemetry, Telemetry};
use safedm_campaign::ConfigGrid;
use safedm_core::{MonitoredSoc, SafeDmConfig};
use safedm_isa::Reg;
use safedm_obs::events::CellEvent;
use safedm_soc::{Engine, SocConfig};
use safedm_tacle::{
    build_kernel_program, build_twin_program, kernels, HarnessConfig, Kernel, StaggerConfig,
    TwinConfig,
};

/// One point on the diversity-mechanism axis.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Identical binaries, stagger 0: whatever diversity occurs naturally.
    Natural,
    /// Identical binaries behind a 100-nop staggering sled (the SafeDM
    /// deployment the transform competes with).
    Nops100,
    /// Composed diversity twin at transform level 1..=3, stagger 0.
    Level(u8),
}

impl Mode {
    fn name(self) -> String {
        match self {
            Mode::Natural => "natural".to_owned(),
            Mode::Nops100 => "nops-100".to_owned(),
            Mode::Level(l) => format!("transform-L{l}"),
        }
    }
}

/// Everything precomputed for one (kernel, mode) cell: the program image,
/// the certified diverse span pairs `(core-0 span, core-1 span)`, and the
/// proved-diverse loop coverage.
struct Setup {
    prog: Arc<Program>,
    spans: Vec<(PcSpan, PcSpan)>,
    loops: usize,
    diverse: usize,
    golden: u64,
}

fn build_setup(k: &Kernel, mode: Mode, seed: u64) -> Setup {
    let golden = (k.reference)();
    match mode {
        Mode::Natural | Mode::Nops100 => {
            let nops = if mode == Mode::Nops100 { 100u64 } else { 0 };
            let stagger =
                (nops > 0).then_some(StaggerConfig { nops: nops as usize, delayed_core: 1 });
            let prog =
                build_kernel_program(k, &HarnessConfig { stagger, ..HarnessConfig::default() });
            let cfg = AnalysisConfig {
                stagger_nops: (nops > 0).then_some(nops),
                stagger_phase: if nops > 0 { -1 } else { 0 },
                ..AnalysisConfig::default()
            };
            let report = analyze(&prog, &cfg);
            let proof = prove(&report.program, &report.cfg, &cfg);
            let loops = proof.certificates.len();
            let diverse =
                proof.certificates.iter().filter(|c| c.verdict == Verdict::ProvedDiverse).count();
            let spans = proof.diverse_spans().into_iter().map(|s| (s, s)).collect();
            Setup { prog: Arc::new(prog), spans, loops, diverse, golden }
        }
        Mode::Level(level) => {
            let tcfg = TwinConfig {
                transform: TransformConfig::level(seed, level),
                ..TwinConfig::default()
            };
            let tw = build_twin_program(k, &tcfg);
            let cfg = AnalysisConfig { pair_mode: true, ..AnalysisConfig::default() };
            let report = analyze(&tw.program, &cfg);
            let pr = prove_pair(&report.program, &report.cfg, &tw.map, &cfg);
            assert!(pr.map_ok, "{}: transform produced an unfaithful twin (DIV010)", k.name);
            let loops = pr.certificates.len();
            let diverse = pr.count(Verdict::ProvedDiverse);
            Setup { prog: Arc::new(tw.program), spans: pr.diverse_spans(), loops, diverse, golden }
        }
    }
}

/// Dynamic observations of one cell.
struct CellOut {
    cycles: u64,
    observed: u64,
    no_div: u64,
    guarded: u64,
    violations: usize,
    checksum_ok: bool,
}

fn run_cell(setup: &Setup, max_cycles: u64) -> CellOut {
    let dm_cfg = SafeDmConfig::default();
    let warmup = 2 * dm_cfg.data_fifo_depth as u64;
    let mut sys = MonitoredSoc::new(SocConfig::default(), dm_cfg);
    sys.load_program(&setup.prog);

    let mut streak = 0u64;
    let mut streak_span: Option<usize> = None;
    let mut guarded = 0u64;
    let mut violations = 0usize;
    for _ in 0..max_cycles {
        if sys.soc().all_halted()
            && (0..sys.soc().core_count()).all(|i| sys.soc().core(i).store_buffer_len() == 0)
        {
            break;
        }
        let rep = sys.step();
        let pcs = (sys.soc().core(0).last_commit_pc(), sys.soc().core(1).last_commit_pc());
        let span_hit = match pcs {
            (Some(p0), Some(p1)) => {
                setup.spans.iter().position(|(s0, s1)| s0.contains(p0) && s1.contains(p1))
            }
            _ => None,
        };
        match (rep.observed, span_hit) {
            (true, Some(si)) => {
                if streak_span == Some(si) {
                    streak += 1;
                } else {
                    streak_span = Some(si);
                    streak = 1;
                }
            }
            _ => {
                streak = 0;
                streak_span = None;
            }
        }
        if streak >= warmup {
            guarded += 1;
            if rep.observed && rep.no_diversity {
                violations += 1;
            }
        }
    }
    sys.monitor_mut().finish();
    let timed_out = !sys.soc().all_halted();
    let checksum_ok = !timed_out && (0..2).all(|c| sys.soc().core(c).reg(Reg::A0) == setup.golden);
    let counters = sys.monitor().counters();
    CellOut {
        cycles: sys.soc().cycle(),
        observed: counters.cycles_observed,
        no_div: counters.no_div_cycles,
        guarded,
        violations,
        checksum_ok,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args::flag(&args, "--quick");
    let jobs = args::jobs(&args);
    let telemetry = Telemetry::from_args(&args);
    let max_cycles = args::or_exit(args::parsed_or::<u64>(&args, "--max-cycles", 20_000_000));
    let seed = args::or_exit(args::parsed_or::<u64>(&args, "--seed", 0x5afe_d1f0));
    let engine = match args
        .iter()
        .position(|a| a == "--engine")
        .and_then(|i| args.get(i + 1))
        .map_or(Ok(Engine::Cycle), |v| Engine::parse(v))
    {
        Ok(Engine::Fast) => {
            eprintln!(
                "transform_diversity: --engine fast has no monitor probes to machine-check; \
                 use cycle or hybrid"
            );
            return ExitCode::FAILURE;
        }
        Ok(e) => e,
        Err(msg) => {
            eprintln!("transform_diversity: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let targets: Vec<&'static Kernel> = if quick {
        ["fac", "bitcount", "insertsort"]
            .iter()
            .map(|n| kernels::by_name(n).expect("kernel"))
            .collect()
    } else {
        kernels::all().iter().collect()
    };
    let modes: Vec<Mode> = if quick {
        vec![Mode::Natural, Mode::Nops100, Mode::Level(3)]
    } else {
        vec![Mode::Natural, Mode::Nops100, Mode::Level(1), Mode::Level(2), Mode::Level(3)]
    };

    let grid = ConfigGrid {
        kernels: targets,
        staggers: modes,
        configs: vec![()],
        runs: 1,
        root_seed: 2024,
    };

    // Static phase: build + prove every (kernel, mode) cell once, up front.
    // Setup index == cell index (configs and runs are singleton axes).
    let cells = grid.cells();
    let setups: Vec<Setup> =
        cells.iter().map(|cell| build_setup(cell.kernel, cell.stagger, seed)).collect();

    if telemetry.progress {
        eprintln!(
            "transform-diversity: {} kernels x {} modes on {jobs} worker(s), max {max_cycles} \
             cycles, seed {seed:#x}",
            grid.kernels.len(),
            grid.staggers.len()
        );
    }

    // Dynamic phase: machine-check every cell under the monitor.
    let results = run_cells_with_telemetry(
        jobs,
        &telemetry,
        &cells,
        |cell| cell.kernel.name.to_owned(),
        |_, cell| run_cell(&setups[cell.index], max_cycles),
        |index, cell, r| CellEvent {
            index,
            kernel: cell.kernel.name.to_owned(),
            config: cell.stagger.name(),
            engine: engine.as_str().to_owned(),
            run: 0,
            seed: cell.seed,
            cycles: r.cycles,
            guarded: r.guarded,
            zero_stag: 0,
            no_div: r.no_div,
            episodes: 0,
            violations: r.violations as u64,
            ok: r.checksum_ok && r.violations == 0,
            wall_us: None,
        },
    );

    println!(
        "{:<16} {:<14} {:>5} {:>7} {:>6} {:>10} {:>7} {:>10} {:>8} {:>8} {:>10} {:>6}",
        "kernel",
        "mode",
        "loops",
        "diverse",
        "cov%",
        "cycles",
        "ovh%",
        "observed",
        "no-div",
        "guarded",
        "violations",
        "check"
    );
    let mut total_violations = 0usize;
    let mut total_guarded = 0u64;
    let mut bad_runs = 0usize;
    // Natural-mode cycle baseline per kernel, for the overhead column. The
    // modes axis varies faster than the kernel axis, so the Natural cell of
    // each kernel precedes its other modes in canonical order.
    let modes_per_kernel = grid.staggers.len();
    for (cell, r) in cells.iter().zip(&results) {
        let s = &setups[cell.index];
        total_violations += r.violations;
        total_guarded += r.guarded;
        if !r.checksum_ok {
            bad_runs += 1;
        }
        let base = results[(cell.index / modes_per_kernel) * modes_per_kernel].cycles;
        let ovh = (r.cycles as f64 - base as f64) / base as f64 * 100.0;
        let cov = if s.loops == 0 {
            "-".to_owned()
        } else {
            format!("{:.0}", s.diverse as f64 / s.loops as f64 * 100.0)
        };
        println!(
            "{:<16} {:<14} {:>5} {:>7} {:>6} {:>10} {:>7.1} {:>10} {:>8} {:>8} {:>10} {:>6}",
            cell.kernel.name,
            cell.stagger.name(),
            s.loops,
            s.diverse,
            cov,
            r.cycles,
            ovh,
            r.observed,
            r.no_div,
            r.guarded,
            r.violations,
            if r.checksum_ok { "ok" } else { "FAIL" }
        );
    }

    println!();
    if total_violations == 0 && bad_runs == 0 {
        println!(
            "TRANSFORM-DIVERSITY: PASS ({} cells, {} warmup-gated cycles guarded, 0 violations)",
            cells.len(),
            total_guarded
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "TRANSFORM-DIVERSITY: FAIL ({total_violations} violations, {bad_runs} bad runs \
             across {} cells)",
            cells.len()
        );
        ExitCode::FAILURE
    }
}
