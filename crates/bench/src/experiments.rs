//! Shared experiment plumbing: monitored kernel runs, the Table I sweep
//! (serial and parallel via the `safedm-campaign` engine), and report
//! structures (serialisable for EXPERIMENTS.md via the hand-rolled
//! [`mod@json`] helpers — no external serialisation dependency).

use std::sync::Arc;
use std::time::Duration;

use safedm_campaign::{derive_cell_seed, par_map_timed_observed, Progress};
use safedm_core::{IsLayout, MonitoredSoc, ReportMode, SafeDmConfig};
use safedm_isa::Reg;
use safedm_obs::events::{CellEvent, Timing};
use safedm_obs::{MetricsRegistry, MetricsSnapshot, SelfProfiler};
use safedm_soc::fastpath::{Engine, ExecMode, FastTwin};
use safedm_soc::SocConfig;
use safedm_tacle::{build_kernel_program, HarnessConfig, Kernel, StackMode, StaggerConfig};

/// Cycle budget per kernel run (generous; runs end at `ebreak`).
pub const RUN_BUDGET: u64 = 200_000_000;

/// One monitored redundant run of one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelRunSummary {
    /// Kernel name.
    pub name: String,
    /// Initial staggering in nops (0 = synchronised start).
    pub stagger_nops: usize,
    /// Which hart ran the sled.
    pub delayed_core: usize,
    /// Memory-jitter seed of this run.
    pub seed: u64,
    /// Cycles to completion.
    pub cycles: u64,
    /// Instructions retired by core 0.
    pub instructions: u64,
    /// Cycles with zero staggering.
    pub zero_stag: u64,
    /// Cycles without diversity.
    pub no_div: u64,
    /// Cycles with matching data signatures.
    pub ds_match: u64,
    /// Cycles with matching instruction signatures.
    pub is_match: u64,
    /// Monitored cycles.
    pub observed: u64,
    /// Completed no-diversity episodes.
    pub episodes: u64,
    /// Whether both cores produced the reference checksum.
    pub checksum_ok: bool,
}

/// Runs `kernel` redundantly under SafeDM with the given staggering and
/// jitter seed.
///
/// The measurement window starts when the cores leave reset and commit
/// their first instruction (the paper's synchronised start), excluding only
/// the empty-pipeline boot stall while the first cache line is in flight.
/// The staggering counter is seeded with the committed-instruction
/// difference at that point (what a hardware counter running from reset
/// would hold).
///
/// # Panics
///
/// Panics if the run exceeds [`RUN_BUDGET`] (indicates a model bug).
#[must_use]
pub fn run_monitored(
    kernel: &Kernel,
    stagger: Option<StaggerConfig>,
    seed: u64,
    dm_cfg: SafeDmConfig,
) -> KernelRunSummary {
    run_monitored_cfg(kernel, HarnessConfig { stagger, stack: StackMode::Mirrored }, seed, dm_cfg)
}

/// [`run_monitored`] with full harness control (stack placement included).
///
/// # Panics
///
/// Panics if the run exceeds [`RUN_BUDGET`] (indicates a model bug).
#[must_use]
pub fn run_monitored_cfg(
    kernel: &Kernel,
    harness: HarnessConfig,
    seed: u64,
    dm_cfg: SafeDmConfig,
) -> KernelRunSummary {
    let prog = build_kernel_program(kernel, &harness);
    run_monitored_prebuilt(kernel, &prog, harness.stagger, seed, dm_cfg)
}

/// [`run_monitored`] on a pre-built program image. Campaign cells share one
/// decoded [`Program`] per (kernel, staggering) setup via `Arc` instead of
/// re-assembling it per run.
///
/// # Panics
///
/// Panics if the run exceeds [`RUN_BUDGET`] (indicates a model bug).
#[must_use]
pub fn run_monitored_prebuilt(
    kernel: &Kernel,
    prog: &safedm_asm::Program,
    stagger: Option<StaggerConfig>,
    seed: u64,
    dm_cfg: SafeDmConfig,
) -> KernelRunSummary {
    let soc_cfg = SocConfig { mem_jitter: 2, jitter_seed: seed, ..SocConfig::default() };
    let mut dm_cfg = dm_cfg;
    dm_cfg.report_mode = ReportMode::Polling;
    let mut sys = MonitoredSoc::new(soc_cfg, dm_cfg);
    sys.load_program(prog);

    // Hold the monitor disabled until the first instruction commits.
    sys.write_ctrl(0);
    sys.monitor_mut().set_enabled(false);
    let mut spent = 0u64;
    while sys.soc().core(0).retired() == 0 && sys.soc().core(1).retired() == 0 {
        assert!(!sys.soc().all_halted(), "{}: halted before first commit", kernel.name);
        sys.step();
        spent += 1;
        assert!(spent < RUN_BUDGET, "{}: boot exceeded budget", kernel.name);
    }
    let seed_diff = sys.soc().core(0).retired() as i64 - sys.soc().core(1).retired() as i64;
    sys.monitor_mut().preset_diff(seed_diff);
    sys.write_ctrl(1 | (safedm_core::regs::encode_mode(ReportMode::Polling) << 1));

    let out = sys.run(RUN_BUDGET - spent);
    assert!(!out.run.timed_out, "{}: run exceeded budget", kernel.name);
    let golden = (kernel.reference)();
    let checksum_ok = (0..2).all(|c| sys.soc().core(c).reg(Reg::A0) == golden);
    let counters = sys.monitor().counters();
    KernelRunSummary {
        name: kernel.name.to_owned(),
        stagger_nops: stagger.map_or(0, |s| s.nops),
        delayed_core: stagger.map_or(0, |s| s.delayed_core),
        seed,
        cycles: out.run.cycles,
        instructions: sys.soc().core(0).retired(),
        zero_stag: out.zero_stag_cycles,
        no_div: out.no_div_cycles,
        ds_match: counters.ds_match_cycles,
        is_match: counters.is_match_cycles,
        observed: out.cycles_observed,
        episodes: sys.monitor().no_diversity_history().total_episodes(),
        checksum_ok,
    }
}

/// [`run_monitored_prebuilt`]'s functional analogue on the block-compiled
/// fast engine: a [`FastTwin`] pair over the same image, reporting the
/// functional monitor proxies described on [`FastTwin::run`]. `ds_match`
/// and `is_match` are set to the no-diversity proxy (a functional engine
/// has no per-cycle signatures to compare separately), and `seed` is
/// recorded but functionally inert — the fast engine models no memory
/// jitter, which is exactly why its counters are nominal rather than
/// comparable with the cycle engine's.
///
/// # Panics
///
/// Panics if the run exceeds [`RUN_BUDGET`] (indicates a model bug).
#[must_use]
pub fn run_fast_prebuilt(
    kernel: &Kernel,
    prog: &safedm_asm::Program,
    stagger: Option<StaggerConfig>,
    seed: u64,
    mode: ExecMode,
) -> KernelRunSummary {
    let mut twin = FastTwin::new(mode);
    twin.load_program(prog);
    let out = twin.run(RUN_BUDGET);
    assert!(!out.timed_out, "{}: fast run exceeded budget", kernel.name);
    let golden = (kernel.reference)();
    let checksum_ok = (0..2).all(|c| twin.hart(c).reg(Reg::A0) == golden);
    KernelRunSummary {
        name: kernel.name.to_owned(),
        stagger_nops: stagger.map_or(0, |s| s.nops),
        delayed_core: stagger.map_or(0, |s| s.delayed_core),
        seed,
        cycles: out.cycles,
        instructions: out.instructions[0],
        zero_stag: out.zero_stag,
        no_div: out.no_div,
        ds_match: out.no_div,
        is_match: out.no_div,
        observed: out.observed,
        episodes: out.episodes,
        checksum_ok,
    }
}

/// One kernel run on the selected engine.
///
/// [`Engine::Hybrid`] delegates to the cycle-accurate path: a monitored
/// kernel run is one guarded region end to end (observation starts at the
/// first commit and ends at the first halt), and hybrid's conservative
/// default runs guarded regions on the cycle model — so its monitor
/// verdicts are byte-identical to [`Engine::Cycle`] by construction.
/// [`Engine::Fast`] trades monitor fidelity for throughput via
/// [`run_fast_prebuilt`].
///
/// # Panics
///
/// Panics if the run exceeds [`RUN_BUDGET`] (indicates a model bug).
#[must_use]
pub fn run_engine_prebuilt(
    engine: Engine,
    kernel: &Kernel,
    prog: &safedm_asm::Program,
    stagger: Option<StaggerConfig>,
    seed: u64,
    dm_cfg: SafeDmConfig,
) -> KernelRunSummary {
    match engine {
        Engine::Cycle | Engine::Hybrid => {
            run_monitored_prebuilt(kernel, prog, stagger, seed, dm_cfg)
        }
        Engine::Fast => run_fast_prebuilt(kernel, prog, stagger, seed, ExecMode::Fast),
    }
}

/// One Table I cell: maxima across the runs of one staggering setup.
#[derive(Debug, Clone, Copy, Default)]
pub struct Table1Cell {
    /// Max cycles with zero staggering across runs.
    pub zero_stag: u64,
    /// Max cycles without diversity across runs.
    pub no_div: u64,
}

/// One Table I row (one benchmark, four staggering setups).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Cells for 0 / 100 / 1,000 / 10,000 nops.
    pub cells: [Table1Cell; 4],
    /// Instructions executed (no-staggering run, core 0).
    pub instructions: u64,
    /// Whether every run passed its self-check.
    pub all_checksums_ok: bool,
}

/// The staggering setups of Table I.
pub const TABLE1_NOPS: [usize; 4] = [0, 100, 1_000, 10_000];

/// Number of runs per Table I staggering setup: 4 jitter seeds for the
/// synchronised start, 2 (each core delayed once) for the staggered ones.
#[must_use]
pub fn table1_runs_per_setup(nops: usize) -> usize {
    if nops == 0 {
        4
    } else {
        2
    }
}

/// One scheduled run of the Table I protocol: a campaign cell.
#[derive(Debug, Clone)]
pub struct Table1CellRun<'k> {
    /// Dense cell index (kernel-major, run-minor).
    pub index: usize,
    /// Position of the kernel in the campaign's kernel list.
    pub kernel_idx: usize,
    /// The kernel.
    pub kernel: &'k Kernel,
    /// Position of the staggering setup in [`TABLE1_NOPS`].
    pub setup_idx: usize,
    /// Staggering of this run (`None` for the synchronised start).
    pub stagger: Option<StaggerConfig>,
    /// Repeat-run number within the setup.
    pub run: usize,
    /// Memory-jitter seed of this run.
    pub seed: u64,
    /// Pre-built program image, shared across the runs of one setup.
    pub program: Arc<safedm_asm::Program>,
}

/// Enumerates the Table I protocol as campaign cells, pre-building each
/// setup's program once (`Arc`-shared across its runs).
///
/// With `root_seed == None` the runs use the paper protocol's literal jitter
/// seeds (0–3 for the synchronised setup, the delayed-core index for the
/// staggered ones) — the seeds every checked-in table was produced with.
/// With `Some(root)`, each cell's seed is
/// [`derive_cell_seed`]`(root, index)`: distinct per cell, independent of
/// scheduling, reproducible from the root alone.
#[must_use]
pub fn table1_cells<'k>(kernels: &[&'k Kernel], root_seed: Option<u64>) -> Vec<Table1CellRun<'k>> {
    let mut cells = Vec::new();
    for (kernel_idx, k) in kernels.iter().enumerate() {
        for (setup_idx, nops) in TABLE1_NOPS.iter().enumerate() {
            let runs = table1_runs_per_setup(*nops);
            let mut shared: Option<Arc<safedm_asm::Program>> = None;
            for run in 0..runs {
                let stagger =
                    (*nops != 0).then_some(StaggerConfig { nops: *nops, delayed_core: run });
                // Synchronised runs share one image; staggered runs differ
                // per delayed core and build their own.
                let program = match (&stagger, &shared) {
                    (None, Some(p)) => Arc::clone(p),
                    _ => {
                        let harness = HarnessConfig { stagger, stack: StackMode::Mirrored };
                        let p = Arc::new(build_kernel_program(k, &harness));
                        if stagger.is_none() {
                            shared = Some(Arc::clone(&p));
                        }
                        p
                    }
                };
                let index = cells.len();
                let seed =
                    root_seed.map_or(run as u64, |root| derive_cell_seed(root, index as u64));
                cells.push(Table1CellRun {
                    index,
                    kernel_idx,
                    kernel: k,
                    setup_idx,
                    stagger,
                    run,
                    seed,
                    program,
                });
            }
        }
    }
    cells
}

/// Folds per-cell run summaries (in cell order) back into Table I rows.
fn table1_fold(
    kernels: &[&Kernel],
    cells: &[Table1CellRun],
    runs: &[KernelRunSummary],
) -> Vec<Table1Row> {
    let mut rows: Vec<Table1Row> = kernels
        .iter()
        .map(|k| Table1Row {
            name: k.name.to_owned(),
            cells: [Table1Cell::default(); 4],
            instructions: 0,
            all_checksums_ok: true,
        })
        .collect();
    for (cell, r) in cells.iter().zip(runs) {
        let row = &mut rows[cell.kernel_idx];
        let slot = &mut row.cells[cell.setup_idx];
        slot.zero_stag = slot.zero_stag.max(r.zero_stag);
        slot.no_div = slot.no_div.max(r.no_div);
        row.all_checksums_ok &= r.checksum_ok;
        if cell.stagger.is_none() {
            row.instructions = r.instructions;
        }
    }
    rows
}

/// Reproduces Table I for the given kernels. Per the paper's protocol,
/// the no-staggering setup runs four times (different memory-jitter seeds)
/// and each staggered setup runs twice (each core delayed once); cells
/// report the maxima.
///
/// Single-threaded convenience wrapper over [`table1_with_jobs`]; output is
/// byte-identical for every worker count.
#[must_use]
pub fn table1(kernels: &[&Kernel], dm_cfg: SafeDmConfig) -> Vec<Table1Row> {
    table1_with_jobs(kernels, dm_cfg, 1, None, None)
}

/// [`table1`] on `jobs` workers through the `safedm-campaign` engine.
///
/// The cells of [`table1_cells`] are executed by a chunked work-stealing
/// pool with ordered result collection; the fold then sees results in the
/// canonical cell order, so rows (and anything rendered from them) are
/// byte-identical for any `jobs`. When `prof` is given, each cell's
/// wall-clock is recorded under `cell.<kernel>.nops<N>.run<R>` plus a
/// `campaign.total` phase (wall-clock is reported via the profiler only —
/// never mixed into deterministic outputs).
#[must_use]
pub fn table1_with_jobs(
    kernels: &[&Kernel],
    dm_cfg: SafeDmConfig,
    jobs: usize,
    root_seed: Option<u64>,
    prof: Option<&mut SelfProfiler>,
) -> Vec<Table1Row> {
    let cells = table1_cells(kernels, root_seed);
    let campaign_start = std::time::Instant::now();
    let (runs, timings) = table1_run_cells(&cells, dm_cfg, jobs, None);
    if let Some(prof) = prof {
        prof.record("campaign.total", campaign_start.elapsed());
        for (cell, t) in cells.iter().zip(&timings) {
            let nops = TABLE1_NOPS[cell.setup_idx];
            prof.record(&format!("cell.{}.nops{nops}.run{}", cell.kernel.name, cell.run), *t);
        }
    }
    table1_fold(kernels, &cells, &runs)
}

/// Executes Table I campaign cells on `jobs` workers, reporting each
/// completion to `progress` (stderr only — outputs stay deterministic) and
/// returning run summaries plus per-cell wall-clock, both in cell order.
#[must_use]
pub fn table1_run_cells(
    cells: &[Table1CellRun],
    dm_cfg: SafeDmConfig,
    jobs: usize,
    progress: Option<&Progress>,
) -> (Vec<KernelRunSummary>, Vec<Duration>) {
    table1_run_cells_engine(cells, dm_cfg, jobs, progress, Engine::Cycle)
}

/// [`table1_run_cells`] on the selected engine (see
/// [`run_engine_prebuilt`] for what each engine means for the counters).
#[must_use]
pub fn table1_run_cells_engine(
    cells: &[Table1CellRun],
    dm_cfg: SafeDmConfig,
    jobs: usize,
    progress: Option<&Progress>,
    engine: Engine,
) -> (Vec<KernelRunSummary>, Vec<Duration>) {
    par_map_timed_observed(
        jobs,
        cells,
        |_, cell| {
            run_engine_prebuilt(engine, cell.kernel, &cell.program, cell.stagger, cell.seed, dm_cfg)
        },
        |i, _| {
            if let Some(p) = progress {
                p.cell_done(cells[i].kernel.name);
            }
        },
    )
}

/// Folds Table I campaign output into rows (the shared fold behind
/// [`table1_with_jobs`], exposed for callers that also want the per-cell
/// summaries).
#[must_use]
pub fn table1_rows_from_runs(
    kernels: &[&Kernel],
    cells: &[Table1CellRun],
    runs: &[KernelRunSummary],
) -> Vec<Table1Row> {
    table1_fold(kernels, cells, runs)
}

/// Builds the telemetry event stream for a Table I-protocol campaign: one
/// [`CellEvent`] per cell, in cell order, carrying the run's counters and
/// its wall-clock (which serialisation strips unless asked to keep).
#[must_use]
pub fn table1_events(
    cells: &[Table1CellRun],
    runs: &[KernelRunSummary],
    timings: &[Duration],
    engine: Engine,
) -> Vec<CellEvent> {
    cells
        .iter()
        .zip(runs)
        .zip(timings)
        .map(|((cell, r), t)| CellEvent {
            index: cell.index as u64,
            kernel: cell.kernel.name.to_owned(),
            config: format!("nops={}", TABLE1_NOPS[cell.setup_idx]),
            engine: engine.as_str().to_owned(),
            run: cell.run as u64,
            seed: cell.seed,
            cycles: r.cycles,
            guarded: r.observed,
            zero_stag: r.zero_stag,
            no_div: r.no_div,
            episodes: r.episodes,
            violations: u64::from(!r.checksum_ok),
            ok: r.checksum_ok,
            wall_us: Some(duration_us(*t)),
        })
        .collect()
}

/// A [`CellEvent`] from one run's summary: the shared conversion for bins
/// whose cells are single [`run_monitored`] calls. `run` defaults to 0 and
/// `wall_us` to `None` (the campaign helper fills the measured duration).
#[must_use]
pub fn event_from_summary(index: u64, config: &str, r: &KernelRunSummary) -> CellEvent {
    CellEvent {
        index,
        kernel: r.name.clone(),
        config: config.to_owned(),
        engine: "cycle".to_owned(),
        run: 0,
        seed: r.seed,
        cycles: r.cycles,
        guarded: r.observed,
        zero_stag: r.zero_stag,
        no_div: r.no_div,
        episodes: r.episodes,
        violations: u64::from(!r.checksum_ok),
        ok: r.checksum_ok,
        wall_us: None,
    }
}

/// A `Duration` as saturating whole microseconds.
#[must_use]
pub fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Runs a generic campaign through the pool with the full telemetry
/// surface: live progress (stderr, throttled, only under `--progress`),
/// per-cell wall-clock captured into events, and the event stream written
/// if `--events-out` was given. Outputs come back in cell order exactly as
/// [`par_map_timed_observed`] guarantees — telemetry observes, never
/// steers.
///
/// `label(item)` names the cell's kernel for the progress breakdown;
/// `event(index, item, out)` builds the cell's event (its `wall_us` is
/// overwritten with the measured duration).
pub fn run_cells_with_telemetry<T, O, F, L, E>(
    jobs: usize,
    telemetry: &Telemetry,
    items: &[T],
    label: L,
    f: F,
    event: E,
) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(usize, &T) -> O + Sync,
    L: Fn(&T) -> String + Sync,
    E: Fn(u64, &T, &O) -> CellEvent,
{
    let progress = telemetry.progress_for(items.len());
    let (outs, timings) =
        par_map_timed_observed(jobs, items, f, |i, _| progress.cell_done(&label(&items[i])));
    progress.finish();
    if telemetry.events_out.is_some() {
        let events: Vec<CellEvent> = items
            .iter()
            .zip(&outs)
            .zip(&timings)
            .enumerate()
            .map(|(i, ((item, o), t))| {
                let mut e = event(i as u64, item, o);
                e.wall_us = Some(duration_us(*t));
                e
            })
            .collect();
        telemetry.write_events(&events);
    }
    outs
}

/// The pre-engine nested-loop Table I: the differential baseline
/// `tests/parallel_determinism.rs` compares the campaign engine against.
/// Must stay byte-for-byte equivalent to [`table1_with_jobs`] for every
/// `jobs` and `root_seed`.
#[must_use]
pub fn table1_serial(
    kernels: &[&Kernel],
    dm_cfg: SafeDmConfig,
    root_seed: Option<u64>,
) -> Vec<Table1Row> {
    let mut index = 0usize;
    kernels
        .iter()
        .map(|k| {
            let mut cells = [Table1Cell::default(); 4];
            let mut instructions = 0;
            let mut ok = true;
            for (ci, nops) in TABLE1_NOPS.iter().enumerate() {
                for run in 0..table1_runs_per_setup(*nops) {
                    let stagger =
                        (*nops != 0).then_some(StaggerConfig { nops: *nops, delayed_core: run });
                    let seed =
                        root_seed.map_or(run as u64, |root| derive_cell_seed(root, index as u64));
                    index += 1;
                    let r = run_monitored(k, stagger, seed, dm_cfg);
                    cells[ci].zero_stag = cells[ci].zero_stag.max(r.zero_stag);
                    cells[ci].no_div = cells[ci].no_div.max(r.no_div);
                    ok &= r.checksum_ok;
                    if *nops == 0 {
                        instructions = r.instructions;
                    }
                }
            }
            Table1Row { name: k.name.to_owned(), cells, instructions, all_checksums_ok: ok }
        })
        .collect()
}

/// Summary block printed below Table I (the paper's Section V-C averages).
#[derive(Debug, Clone)]
pub struct Table1Summary {
    /// Mean instructions per benchmark.
    pub avg_instructions: f64,
    /// Mean of the per-benchmark zero-staggering maxima, per setup.
    pub avg_zero_stag: [f64; 4],
    /// Mean of the per-benchmark no-diversity maxima, per setup.
    pub avg_no_div: [f64; 4],
}

/// Computes the summary block from Table I rows.
#[must_use]
pub fn summarize_table1(rows: &[Table1Row]) -> Table1Summary {
    let n = rows.len().max(1) as f64;
    let mut avg_zero = [0f64; 4];
    let mut avg_nodiv = [0f64; 4];
    for row in rows {
        for i in 0..4 {
            avg_zero[i] += row.cells[i].zero_stag as f64 / n;
            avg_nodiv[i] += row.cells[i].no_div as f64 / n;
        }
    }
    Table1Summary {
        avg_instructions: rows.iter().map(|r| r.instructions as f64).sum::<f64>() / n,
        avg_zero_stag: avg_zero,
        avg_no_div: avg_nodiv,
    }
}

/// Renders Table I in the paper's layout.
#[must_use]
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<16}{:>10}{:>8}{:>10}{:>8}{:>10}{:>8}{:>10}{:>8}\n",
        "", "0 nops", "", "100 nops", "", "1000 nops", "", "10000 nops", ""
    ));
    s.push_str(&format!(
        "{:<16}{:>10}{:>8}{:>10}{:>8}{:>10}{:>8}{:>10}{:>8}\n",
        "Benchmark",
        "Zero stag",
        "No div",
        "Zero stag",
        "No div",
        "Zero stag",
        "No div",
        "Zero stag",
        "No div"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<16}{:>10}{:>8}{:>10}{:>8}{:>10}{:>8}{:>10}{:>8}\n",
            r.name,
            r.cells[0].zero_stag,
            r.cells[0].no_div,
            r.cells[1].zero_stag,
            r.cells[1].no_div,
            r.cells[2].zero_stag,
            r.cells[2].no_div,
            r.cells[3].zero_stag,
            r.cells[3].no_div,
        ));
    }
    s
}

/// Builds a [`SafeDmConfig`] for a given IS layout (ablation A2).
#[must_use]
pub fn dm_config_with_layout(layout: IsLayout) -> SafeDmConfig {
    SafeDmConfig { is_layout: layout, ..SafeDmConfig::default() }
}

/// Parses `--flag value`-style arguments (tiny helper; no external CLI
/// crate).
#[deprecated(since = "0.1.0", note = "use `safedm_bench::args::value` instead")]
#[must_use]
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    crate::args::value(args, flag)
}

/// Whether a bare `--flag` is present.
#[deprecated(since = "0.1.0", note = "use `safedm_bench::args::flag` instead")]
#[must_use]
pub fn arg_flag(args: &[String], flag: &str) -> bool {
    crate::args::flag(args, flag)
}

/// Parses the value of `--flag` as a `T`, distinguishing "absent" from
/// "present but invalid".
///
/// # Errors
///
/// Returns `Err` with a `"invalid value for FLAG"` message when the flag is
/// present but its value does not parse.
#[deprecated(since = "0.1.0", note = "use `safedm_bench::args::opt_parsed` instead")]
pub fn try_arg_parsed<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
) -> Result<Option<T>, String> {
    crate::args::opt_parsed(args, flag)
}

/// `--flag` parsed with a default, exiting with a helpful diagnostic
/// instead of panicking on an invalid value.
#[deprecated(
    since = "0.1.0",
    note = "use `safedm_bench::args::or_exit(args::parsed_or(..))` instead"
)]
pub fn arg_parsed_or<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    crate::args::or_exit(crate::args::parsed_or(args, flag, default))
}

/// Parses the value of `--flag` as a comma-separated list of `T`,
/// distinguishing "absent" from "present but invalid". Empty entries
/// (stray commas, whitespace) are skipped.
///
/// # Errors
///
/// Returns `Err` with an `"invalid value for FLAG"` message naming the
/// first entry that does not parse.
#[deprecated(since = "0.1.0", note = "use `safedm_bench::args::opt_list` instead")]
pub fn try_arg_list<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
) -> Result<Option<Vec<T>>, String> {
    crate::args::opt_list(args, flag)
}

/// Comma-separated `--flag` list exiting with a diagnostic on invalid
/// values; `None` when the flag is absent (callers pick their own default).
#[deprecated(since = "0.1.0", note = "use `safedm_bench::args::list_or_exit` instead")]
#[must_use]
pub fn arg_list_or_exit<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<Vec<T>> {
    crate::args::list_or_exit(args, flag)
}

/// Writes `contents` to `path`, exiting with a diagnostic on I/O failure.
#[deprecated(since = "0.1.0", note = "use `safedm_bench::args::write_file_or_exit` instead")]
pub fn write_file_or_exit(path: &str, contents: &str) {
    crate::args::write_file_or_exit(path, contents);
}

/// Resolves `--jobs` for a bench binary: the machine's available
/// parallelism when absent, a positive integer otherwise; exits with a
/// helpful diagnostic on invalid values.
#[deprecated(since = "0.1.0", note = "use `safedm_bench::args::jobs` instead")]
#[must_use]
pub fn jobs_from_args(args: &[String]) -> usize {
    crate::args::jobs(args)
}

/// The shared telemetry CLI surface: `--events-out FILE` (per-cell event
/// JSONL), `--events-timing` (keep wall-clock in the stream, forfeiting
/// byte-identity across runs) and `--progress` (live stderr status line).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Where to write the event JSONL, if anywhere.
    pub events_out: Option<String>,
    /// Whether serialised events keep their wall-clock field.
    pub keep_timing: bool,
    /// Whether the live stderr progress line is on.
    pub progress: bool,
}

impl Telemetry {
    /// Parses the telemetry flags out of `args`.
    #[must_use]
    pub fn from_args(args: &[String]) -> Telemetry {
        Telemetry {
            events_out: crate::args::value(args, "--events-out"),
            keep_timing: crate::args::flag(args, "--events-timing"),
            progress: crate::args::flag(args, "--progress"),
        }
    }

    /// The serialisation policy the flags ask for.
    #[must_use]
    pub fn timing(&self) -> Timing {
        if self.keep_timing {
            Timing::Keep
        } else {
            Timing::Strip
        }
    }

    /// A progress reporter for `total` cells, live only under `--progress`.
    #[must_use]
    pub fn progress_for(&self, total: usize) -> Progress {
        Progress::new(self.progress, total)
    }

    /// Writes the event stream if `--events-out` was given, exiting with a
    /// diagnostic on I/O failure (same contract as [`write_metrics_json`]).
    pub fn write_events(&self, events: &[CellEvent]) {
        if let Some(path) = &self.events_out {
            crate::args::write_file_or_exit(
                path,
                &safedm_obs::events::to_jsonl(events, self.timing()),
            );
        }
    }
}

/// Registers a batch of `(name, total)` pairs as mirrored counters — the
/// metrics-registration tail every bench binary used to hand-roll.
pub fn set_metric_totals(
    reg: &mut MetricsRegistry,
    entries: impl IntoIterator<Item = (String, u64)>,
) {
    for (name, value) in entries {
        let id = reg.counter(&name);
        reg.set_total(id, value);
    }
}

/// The CCF-campaign per-kernel metric registry: the six outcome counters
/// per benchmark. Shared between the `ccf_campaign` binary and the
/// parallel-determinism differential test, so the snapshot JSON is pinned
/// to one definition.
#[must_use]
pub fn ccf_metrics(results: &[(&str, &safedm_faults::CampaignStats)]) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new(true);
    for (name, stats) in results {
        set_metric_totals(
            &mut reg,
            [
                ("masked", stats.masked),
                ("mismatch", stats.detected_mismatch),
                ("anomaly", stats.detected_anomaly),
                ("silent_no_div", stats.silent_with_no_diversity),
                ("silent_div", stats.silent_with_diversity),
                ("silent_site_divergent", stats.silent_site_divergent),
            ]
            .map(|(metric, value)| (format!("ccf.{name}.{metric}"), value)),
        );
    }
    reg
}

/// Writes a metric snapshot's JSON to `path`, exiting with a diagnostic on
/// I/O failure (the shared `--metrics-out` tail).
pub fn write_metrics_json(path: &str, snap: &MetricsSnapshot) {
    if let Err(e) = std::fs::write(path, snap.to_json()) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("wrote {path}");
}

/// The Table I metric registry (`--metrics-out`): per-row zero-stag /
/// no-div / instruction totals. Shared between the `table1` binary and the
/// parallel-determinism differential test, and fed by [`table1_with_jobs`]
/// output only — so its snapshot inherits the engine's byte-determinism.
#[must_use]
pub fn table1_metrics(rows: &[Table1Row]) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new(true);
    for r in rows {
        set_metric_totals(
            &mut reg,
            TABLE1_NOPS.iter().enumerate().flat_map(|(i, nops)| {
                [
                    (format!("table1.{}.nops{nops}.zero_stag", r.name), r.cells[i].zero_stag),
                    (format!("table1.{}.nops{nops}.no_div", r.name), r.cells[i].no_div),
                ]
            }),
        );
        set_metric_totals(&mut reg, [(format!("table1.{}.instructions", r.name), r.instructions)]);
    }
    reg
}

/// Minimal JSON emission for the report structures (replaces the previous
/// serde derive: this workspace builds with no external serialisation crate).
pub mod json {
    use super::{Table1Row, Table1Summary};

    /// Escapes a string for inclusion in a JSON document.
    #[must_use]
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Renders a float the way JSON expects (`NaN`/infinities become null).
    #[must_use]
    pub fn number(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_owned()
        }
    }

    /// One Table I row as a JSON object.
    #[must_use]
    pub fn table1_row(r: &Table1Row) -> String {
        let cells: Vec<String> = r
            .cells
            .iter()
            .map(|c| format!("{{\"zero_stag\":{},\"no_div\":{}}}", c.zero_stag, c.no_div))
            .collect();
        format!(
            "{{\"name\":\"{}\",\"cells\":[{}],\"instructions\":{},\"all_checksums_ok\":{}}}",
            escape(&r.name),
            cells.join(","),
            r.instructions,
            r.all_checksums_ok
        )
    }

    /// The summary block as a JSON object.
    #[must_use]
    pub fn table1_summary(s: &Table1Summary) -> String {
        let zs: Vec<String> = s.avg_zero_stag.iter().map(|v| number(*v)).collect();
        let nd: Vec<String> = s.avg_no_div.iter().map(|v| number(*v)).collect();
        format!(
            "{{\"avg_instructions\":{},\"avg_zero_stag\":[{}],\"avg_no_div\":[{}]}}",
            number(s.avg_instructions),
            zs.join(","),
            nd.join(",")
        )
    }

    /// The full `table1 --json` document.
    #[must_use]
    pub fn table1_document(rows: &[Table1Row], summary: &Table1Summary) -> String {
        let rendered: Vec<String> = rows.iter().map(table1_row).collect();
        format!(
            "{{\n  \"rows\": [{}],\n  \"summary\": {}\n}}\n",
            rendered.join(","),
            table1_summary(summary)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_tacle::kernels;

    // The deprecated free functions must stay behaviour-identical to their
    // `crate::args` replacements until they are removed.
    #[allow(deprecated)]
    #[test]
    fn deprecated_arg_helpers_delegate_to_args() {
        let args: Vec<String> =
            ["prog", "--json", "out.json", "--quick"].iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(arg_value(&args, "--json"), crate::args::value(&args, "--json"));
        assert_eq!(arg_value(&args, "--missing"), None);
        assert!(arg_flag(&args, "--quick"));
        assert!(!arg_flag(&args, "--slow"));
        // flag at the end with no value
        assert_eq!(arg_value(&args, "--quick"), None);
        let lists: Vec<String> =
            ["prog", "--staggers", "0, 100,,1000"].iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(
            try_arg_list::<u64>(&lists, "--staggers"),
            crate::args::opt_list::<u64>(&lists, "--staggers")
        );
        let bad: Vec<String> =
            ["prog", "--staggers", "0,ten"].iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(
            try_arg_list::<u64>(&bad, "--staggers").unwrap_err(),
            crate::args::opt_list::<u64>(&bad, "--staggers").unwrap_err()
        );
    }

    #[test]
    fn telemetry_flags_parse_and_pick_timing() {
        let args: Vec<String> = ["prog", "--events-out", "ev.jsonl", "--progress"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let t = Telemetry::from_args(&args);
        assert_eq!(t.events_out.as_deref(), Some("ev.jsonl"));
        assert!(t.progress);
        assert_eq!(t.timing(), Timing::Strip);
        let args: Vec<String> =
            ["prog", "--events-timing"].iter().map(|s| (*s).to_owned()).collect();
        let t = Telemetry::from_args(&args);
        assert!(t.events_out.is_none());
        assert_eq!(t.timing(), Timing::Keep);
    }

    #[test]
    fn table1_events_carry_run_counters() {
        let k = kernels::by_name("fac").expect("kernel");
        let cells = table1_cells(&[k], Some(7));
        let (runs, timings) = table1_run_cells(&cells, SafeDmConfig::default(), 1, None);
        let events = table1_events(&cells, &runs, &timings, Engine::Cycle);
        assert_eq!(events.len(), cells.len());
        assert_eq!(events[0].kernel, "fac");
        assert_eq!(events[0].config, "nops=0");
        assert_eq!(events[0].seed, cells[0].seed);
        assert!(events.iter().all(|e| e.ok && e.wall_us.is_some()));
        assert!(events.iter().all(|e| e.guarded >= e.no_div));
        // Cell order is the canonical enumeration.
        assert!(events.windows(2).all(|w| w[0].index + 1 == w[1].index));
    }

    #[test]
    fn run_monitored_is_deterministic_and_self_checking() {
        let k = kernels::by_name("fac").expect("kernel");
        let a = run_monitored(k, None, 3, SafeDmConfig::default());
        let b = run_monitored(k, None, 3, SafeDmConfig::default());
        assert!(a.checksum_ok);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.zero_stag, b.zero_stag);
        assert_eq!(a.no_div, b.no_div);
        // a different jitter seed shifts timing
        let c = run_monitored(k, None, 4, SafeDmConfig::default());
        assert!(c.checksum_ok);
        assert_ne!((a.cycles, a.zero_stag), (c.cycles, c.zero_stag));
    }

    #[test]
    fn staggering_suppresses_counts_in_run_monitored() {
        let k = kernels::by_name("bitcount").expect("kernel");
        let sync = run_monitored(k, None, 0, SafeDmConfig::default());
        let st = StaggerConfig { nops: 1_000, delayed_core: 1 };
        let staggered = run_monitored(k, Some(st), 0, SafeDmConfig::default());
        assert!(sync.zero_stag > 10 * staggered.zero_stag.max(1));
        assert!(sync.no_div > staggered.no_div);
        assert_eq!(staggered.stagger_nops, 1_000);
    }

    #[test]
    fn table1_row_shape_on_one_kernel() {
        let k = kernels::by_name("fac").expect("kernel");
        let rows = table1(&[k], SafeDmConfig::default());
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(row.all_checksums_ok);
        assert!(row.cells[0].zero_stag >= row.cells[0].no_div);
        assert!(row.cells[3].no_div <= row.cells[0].no_div);
        let text = render_table1(&rows);
        assert!(text.contains("fac"));
        let summary = summarize_table1(&rows);
        assert!(summary.avg_instructions > 1_000.0);
    }
}
