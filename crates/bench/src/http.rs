//! `safedm-sim serve`: a dependency-free HTTP/1.1 campaign service over
//! `std::net::TcpListener`.
//!
//! Endpoints (all bodies are `safedm-api/1` JSON via the `safedm-obs`
//! layer):
//!
//! | method | path | semantics |
//! |---|---|---|
//! | `POST` | `/v1/campaigns` | submit a [`CampaignSpec`]; `201` with the campaign id |
//! | `GET` | `/v1/campaigns/{id}/events` | chunked `application/x-ndjson` stream of per-cell [`CellEvent`](safedm_obs::events::CellEvent) lines, in cell order, as they complete |
//! | `GET` | `/v1/campaigns/{id}/result` | status + cache counters (`running` until done) |
//! | `DELETE` | `/v1/campaigns/{id}` | cancel: raise the job's stop flag; `202` with `canceling` (or the final status when already done) |
//! | `GET` | `/v1/healthz` | liveness + code version |
//!
//! Each accepted connection is handled on its own thread
//! (`Connection: close`, one request per connection); campaign cells
//! execute on the shared `safedm-campaign` pool via [`crate::service`],
//! fronted by one server-wide content-addressed [`ResultCache`]. The
//! streamed lines are the cells' [`Timing::Strip`]-serialised events —
//! byte-identical to a local `--events-out` run of the same spec (see
//! `crate::service` for the argument).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use safedm_campaign::cache::ResultCache;
use safedm_campaign::spec::{CampaignSpec, CODE_VERSION, SCHEMA};
use safedm_campaign::Progress;
use safedm_obs::json::JsonValue;

use crate::service::{self, RunOptions};

/// Maximum request head (request line + headers) the server will read.
const MAX_HEAD: usize = 16 * 1024;
/// Maximum request body (a spec document) the server will read.
const MAX_BODY: usize = 1024 * 1024;

/// Server configuration.
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8787` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Worker count for campaign cells (a submitted spec's `jobs` hint is
    /// clamped to this).
    pub jobs: usize,
    /// In-memory result-cache capacity (cell records).
    pub cache_cap: usize,
    /// Optional on-disk cache directory (write-through tier).
    pub cache_dir: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:8787".to_owned(),
            jobs: safedm_campaign::default_jobs(),
            cache_cap: 4096,
            cache_dir: None,
        }
    }
}

struct JobInner {
    lines: Vec<String>,
    done: bool,
    canceled: bool,
    error: Option<String>,
    all_ok: bool,
    hits: u64,
    misses: u64,
}

struct Job {
    total: usize,
    inner: Mutex<JobInner>,
    cond: Condvar,
    /// Cooperative cancellation flag ([`RunOptions::stop`]): raised by
    /// `DELETE`, checked by the runner before each pending cell.
    stop: AtomicBool,
}

impl Job {
    fn finish(&self, update: impl FnOnce(&mut JobInner)) {
        let mut inner = lock(&self.inner);
        update(&mut inner);
        inner.done = true;
        self.cond.notify_all();
    }
}

struct State {
    jobs: usize,
    // `Arc` so runner threads (which are `'static`) can share the one
    // server-wide cache with the accept loop.
    cache: Arc<Mutex<ResultCache>>,
    campaigns: Mutex<HashMap<u64, Arc<Job>>>,
    next_id: AtomicU64,
}

/// A bound campaign server (listener + shared state). `bind` then `run`;
/// tests bind to `127.0.0.1:0` and read [`Server::local_addr`].
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Binds the listener and builds the shared state (cache included).
    ///
    /// # Errors
    ///
    /// Returns a message when the address cannot be bound.
    pub fn bind(cfg: &ServeConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
        let mut cache = ResultCache::new(cfg.cache_cap);
        if let Some(dir) = &cfg.cache_dir {
            cache = cache.with_dir(std::path::Path::new(dir));
        }
        Ok(Server {
            listener,
            state: Arc::new(State {
                jobs: cfg.jobs.max(1),
                cache: Arc::new(Mutex::new(cache)),
                campaigns: Mutex::new(HashMap::new()),
                next_id: AtomicU64::new(1),
            }),
        })
    }

    /// The bound address (`host:port`).
    ///
    /// # Errors
    ///
    /// Returns a message when the socket has no local address.
    pub fn local_addr(&self) -> Result<String, String> {
        self.listener.local_addr().map(|a| a.to_string()).map_err(|e| e.to_string())
    }

    /// Serves forever: accepts connections, one handler thread each.
    pub fn run(self) {
        for stream in self.listener.incoming() {
            let Ok(stream) = stream else { continue };
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &state);
            });
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn json_body(members: Vec<(&str, JsonValue)>) -> String {
    let mut obj = vec![("schema".to_owned(), JsonValue::Str(SCHEMA.to_owned()))];
    obj.extend(members.into_iter().map(|(k, v)| (k.to_owned(), v)));
    JsonValue::Obj(obj).render()
}

fn write_response(
    out: &mut impl Write,
    status: u16,
    reason: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

fn write_error(out: &mut impl Write, status: u16, reason: &str, msg: &str) -> std::io::Result<()> {
    let body = json_body(vec![("error", JsonValue::Str(msg.to_owned()))]);
    write_response(out, status, reason, &body)
}

/// Reads one request: `(method, path, body)`.
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<(String, String, String), String> {
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_owned();
    let path = parts.next().ok_or("request line has no path")?.to_owned();
    let mut content_length = 0usize;
    let mut head = line.len();
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).map_err(|e| e.to_string())?;
        head += h.len();
        if head > MAX_HEAD {
            return Err("request head too large".to_owned());
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length =
                    value.trim().parse().map_err(|_| "invalid Content-Length".to_owned())?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err("request body too large".to_owned());
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    Ok((method, path, String::from_utf8_lossy(&body).into_owned()))
}

fn handle_connection(stream: TcpStream, state: &State) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let (method, path, body) = match read_request(&mut reader) {
        Ok(r) => r,
        Err(e) => return write_error(&mut out, 400, "Bad Request", &e),
    };
    match (method.as_str(), path.as_str()) {
        ("GET", "/v1/healthz") => {
            let campaigns = lock(&state.campaigns).len() as u64;
            let body = json_body(vec![
                ("status", JsonValue::Str("ok".to_owned())),
                ("version", JsonValue::Str(CODE_VERSION.to_owned())),
                ("campaigns", JsonValue::Uint(campaigns)),
            ]);
            write_response(&mut out, 200, "OK", &body)
        }
        ("POST", "/v1/campaigns") => post_campaign(&mut out, state, &body),
        ("GET", p) => match parse_campaign_path(p) {
            Some((id, "events")) => get_events(&mut out, state, id),
            Some((id, "result")) => get_result(&mut out, state, id),
            _ => write_error(&mut out, 404, "Not Found", &format!("no such resource: {p}")),
        },
        ("DELETE", p) => match parse_campaign_id(p) {
            Some(id) => cancel_campaign(&mut out, state, id),
            None => write_error(&mut out, 404, "Not Found", &format!("no such resource: {p}")),
        },
        (m, p) => write_error(&mut out, 405, "Method Not Allowed", &format!("cannot {m} {p}")),
    }
}

/// `/v1/campaigns/c{N}/{tail}` → `(N, tail)`.
fn parse_campaign_path(path: &str) -> Option<(u64, &str)> {
    let rest = path.strip_prefix("/v1/campaigns/c")?;
    let (id, tail) = rest.split_once('/')?;
    Some((id.parse().ok()?, tail))
}

/// `/v1/campaigns/c{N}` (no tail) → `N`.
fn parse_campaign_id(path: &str) -> Option<u64> {
    path.strip_prefix("/v1/campaigns/c")?.parse().ok()
}

fn post_campaign(out: &mut TcpStream, state: &State, body: &str) -> std::io::Result<()> {
    let spec = match CampaignSpec::parse_json(body) {
        Ok(s) => s,
        Err(e) => return write_error(out, 400, "Bad Request", &e),
    };
    // The server owns scheduling: a client's jobs hint is clamped to the
    // server's worker budget (it never affects results either way).
    let clamped = CampaignSpec {
        jobs: Some(spec.jobs.map_or(state.jobs as u64, |j| j.min(state.jobs as u64)).max(1)),
        ..spec
    };
    let prepared = match service::prepare(&clamped) {
        Ok(p) => p,
        Err(e) => return write_error(out, 400, "Bad Request", &e),
    };
    let id = state.next_id.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(Job {
        total: prepared.cells.len(),
        inner: Mutex::new(JobInner {
            lines: Vec::new(),
            done: false,
            canceled: false,
            error: None,
            all_ok: true,
            hits: 0,
            misses: 0,
        }),
        cond: Condvar::new(),
        stop: AtomicBool::new(false),
    });
    lock(&state.campaigns).insert(id, Arc::clone(&job));

    let digest = clamped.digest();
    let total = prepared.cells.len() as u64;
    {
        // Runner thread: cells on the campaign pool, lines into the job
        // buffer in index order as their prefix completes.
        let job = Arc::clone(&job);
        let cache = Arc::clone(&state.cache);
        std::thread::spawn(move || {
            let sink = |_i: usize, line: &str| {
                let mut inner = lock(&job.inner);
                inner.lines.push(line.to_owned());
                job.cond.notify_all();
            };
            let progress = Progress::new(false, prepared.cells.len());
            let opts = RunOptions {
                cache: Some(&cache),
                progress: Some(&progress),
                on_line: Some(&sink),
                stop: Some(&job.stop),
            };
            match service::run(&prepared, &opts) {
                Ok(outcome) => job.finish(|inner| {
                    inner.all_ok = outcome.all_ok;
                    inner.canceled = outcome.canceled;
                    inner.hits = outcome.cache.hits + outcome.cache.disk_hits;
                    inner.misses = outcome.cache.misses;
                }),
                Err(e) => job.finish(|inner| inner.error = Some(e)),
            }
        });
    }

    let body = json_body(vec![
        ("id", JsonValue::Str(format!("c{id}"))),
        ("cells", JsonValue::Uint(total)),
        ("spec_digest", JsonValue::Str(format!("{digest:016x}"))),
    ]);
    write_response(out, 201, "Created", &body)
}

fn get_events(out: &mut TcpStream, state: &State, id: u64) -> std::io::Result<()> {
    let Some(job) = lock(&state.campaigns).get(&id).cloned() else {
        return write_error(out, 404, "Not Found", &format!("no campaign c{id}"));
    };
    write!(
        out,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )?;
    let mut sent = 0usize;
    loop {
        let batch: Vec<String> = {
            let mut inner = lock(&job.inner);
            while inner.lines.len() == sent && !inner.done {
                inner = job.cond.wait(inner).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            let batch = inner.lines[sent..].to_vec();
            if batch.is_empty() && inner.done {
                break;
            }
            batch
        };
        for line in &batch {
            let chunk = format!("{line}\n");
            write!(out, "{:x}\r\n{chunk}\r\n", chunk.len())?;
        }
        sent += batch.len();
        if sent >= job.total {
            break;
        }
    }
    // Hold the stream open until the runner publishes its final counters,
    // so a `result` fetched right after the stream ends is never `running`.
    {
        let mut inner = lock(&job.inner);
        while !inner.done {
            inner = job.cond.wait(inner).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
    write!(out, "0\r\n\r\n")
}

/// Raises a campaign's stop flag. Idempotent; a finished campaign just
/// reports its final status.
fn cancel_campaign(out: &mut TcpStream, state: &State, id: u64) -> std::io::Result<()> {
    let Some(job) = lock(&state.campaigns).get(&id).cloned() else {
        return write_error(out, 404, "Not Found", &format!("no campaign c{id}"));
    };
    job.stop.store(true, Ordering::Relaxed);
    let status = { job_status(&lock(&job.inner)) };
    let status = if status == "running" { "canceling" } else { status };
    let body = json_body(vec![
        ("id", JsonValue::Str(format!("c{id}"))),
        ("status", JsonValue::Str(status.to_owned())),
    ]);
    write_response(out, 202, "Accepted", &body)
}

fn job_status(inner: &JobInner) -> &'static str {
    if !inner.done {
        "running"
    } else if inner.error.is_some() {
        "failed"
    } else if inner.canceled {
        "canceled"
    } else {
        "done"
    }
}

fn get_result(out: &mut TcpStream, state: &State, id: u64) -> std::io::Result<()> {
    let Some(job) = lock(&state.campaigns).get(&id).cloned() else {
        return write_error(out, 404, "Not Found", &format!("no campaign c{id}"));
    };
    let inner = lock(&job.inner);
    let status = job_status(&inner);
    let mut members = vec![
        ("id", JsonValue::Str(format!("c{id}"))),
        ("status", JsonValue::Str(status.to_owned())),
        ("cells", JsonValue::Uint(job.total as u64)),
        ("completed", JsonValue::Uint(inner.lines.len() as u64)),
        ("ok", JsonValue::Bool(inner.all_ok)),
        (
            "cache",
            JsonValue::Obj(vec![
                ("hits".to_owned(), JsonValue::Uint(inner.hits)),
                ("misses".to_owned(), JsonValue::Uint(inner.misses)),
            ]),
        ),
    ];
    if let Some(e) = &inner.error {
        members.push(("error", JsonValue::Str(e.clone())));
    }
    let body = json_body(members);
    write_response(out, 200, "OK", &body)
}
