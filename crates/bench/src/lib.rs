//! # safedm-bench — experiment harness
//!
//! Shared plumbing for the table/figure regeneration binaries (see
//! `src/bin/`) and the Criterion microbenchmarks (see `benches/`).

#![warn(missing_docs)]

pub mod args;
pub mod experiments;
pub mod http;
pub mod service;
