//! The shared campaign runner behind `safedm-sim campaign`, the
//! `safedm-sim serve` HTTP service and the bench binaries: one entry point
//! that takes a [`CampaignSpec`], enumerates it into content-addressed
//! cells, consults the [`ResultCache`], and executes the misses on the
//! `safedm-campaign` pool.
//!
//! ## The one entry point
//!
//! [`prepare`] turns a spec into a [`Prepared`] campaign — a validated,
//! protocol-dispatched list of [`CellTask`]s, each pairing a
//! [`CellSpec`] identity with a closure that simulates exactly that cell.
//! [`run`] executes a prepared campaign: cache hits replay their stored
//! JSONL line verbatim, misses run on the pool, and every line is
//! published to the caller **in cell-index order** as soon as its prefix
//! is complete (the ordered-prefix publisher the event stream endpoint
//! relies on).
//!
//! ## Byte-identity
//!
//! A cell's published line is its [`CellEvent`] serialised with
//! [`Timing::Strip`] — the same bytes `--events-out` writes locally. Cache
//! hits return the stored line unmodified, and serialisation is stable
//! under round-trip, so a served stream is byte-identical to a local run
//! of the same spec for any worker count, hit pattern, or transport.
//!
//! ## Cache correctness
//!
//! The campaign engine makes every cell's counters a pure function of the
//! cell's identity fields (kernel, config point, run, seed, engine) plus
//! the simulator code. [`CellSpec::digest`] hashes exactly those fields
//! salted with the code version, so equal digests imply equal results —
//! serving a hit without re-simulation is sound, not heuristic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use safedm_campaign::cache::{CacheStats, ResultCache};
use safedm_campaign::spec::{CampaignSpec, CellSpec, Protocol};
use safedm_campaign::{default_jobs, par_map_timed_observed, ConfigGrid, Progress};
use safedm_core::{regs, MonitoredSoc, ReportMode, SafeDmConfig};
use safedm_faults::{Campaign, CampaignConfig};
use safedm_isa::Reg;
use safedm_obs::events::{CellEvent, Timing};
use safedm_soc::fastpath::{Engine, ExecMode, FastTwin};
use safedm_soc::SocConfig;
use safedm_tacle::{build_kernel_program, kernels, HarnessConfig, Kernel, StaggerConfig};

use crate::experiments::{duration_us, run_engine_prebuilt, table1_cells, TABLE1_NOPS};

/// Cycle budget for grid-protocol cells (matches the historical
/// `safedm-sim campaign` budget; generous — runs end at `ebreak`).
pub const GRID_RUN_BUDGET: u64 = 500_000_000;

/// Injection-cycle ceiling for CCF-protocol cells (matches the historical
/// `ccf_campaign` default).
pub const CCF_MAX_CYCLE: u64 = 10_000;

type CellFn = Box<dyn Fn() -> CellEvent + Send + Sync>;

/// Ordered line sink: called as `(index, line)` in strictly increasing
/// index order.
pub type LineSink<'a> = &'a (dyn Fn(usize, &str) + Sync);

/// One enumerated campaign cell: its content identity plus the closure
/// that simulates it.
pub struct CellTask {
    /// The cell's identity (digested for the cache key).
    pub spec: CellSpec,
    compute: CellFn,
}

/// A validated, enumerated campaign ready to [`run`].
pub struct Prepared {
    /// The spec the campaign was prepared from.
    pub spec: CampaignSpec,
    /// Parsed engine.
    pub engine: Engine,
    /// Resolved worker count (the spec's hint, or the machine default).
    pub jobs: usize,
    /// The cells, in canonical index order.
    pub cells: Vec<CellTask>,
}

/// What a [`run`] produced.
pub struct RunOutcome {
    /// One event per completed cell, in cell order. Computed cells carry
    /// their measured `wall_us`; cache hits have none (nothing was
    /// measured). When the run was [canceled](RunOutcome::canceled),
    /// skipped cells are absent.
    pub events: Vec<CellEvent>,
    /// One [`Timing::Strip`] JSONL line per completed cell, in cell order
    /// — the byte-exact stream a server replays and `--events-out` writes.
    pub lines: Vec<String>,
    /// Cache counter deltas for this run (all-miss when no cache given).
    /// Skipped cells count as neither misses nor inserts.
    pub cache: CacheStats,
    /// Whether every completed cell passed its self-check.
    pub all_ok: bool,
    /// Whether the run stopped early because [`RunOptions::stop`] was
    /// raised while cells were still pending. Already-running cells finish
    /// and are included; pending cells are skipped.
    pub canceled: bool,
}

/// How to [`run`] a prepared campaign.
#[derive(Default)]
pub struct RunOptions<'a> {
    /// Result cache to consult and fill; `None` runs everything.
    pub cache: Option<&'a Mutex<ResultCache>>,
    /// Live progress reporter (stderr only, never part of outputs).
    pub progress: Option<&'a Progress>,
    /// Ordered line sink: called as `(index, line)` for every cell, in
    /// strictly increasing index order, as soon as each line's prefix is
    /// complete. The event-stream endpoint hangs off this.
    pub on_line: Option<LineSink<'a>>,
    /// Cooperative cancellation flag, checked before each pending cell
    /// starts. Once raised, no further cells simulate (cells already
    /// in flight finish normally) and the outcome reports
    /// [`RunOutcome::canceled`]. The `DELETE /v1/campaigns/{id}` endpoint
    /// hangs off this.
    pub stop: Option<&'a AtomicBool>,
}

fn resolve_kernels(spec: &CampaignSpec) -> Result<Vec<&'static Kernel>, String> {
    spec.kernels
        .iter()
        .map(|n| {
            kernels::by_name(n).ok_or_else(|| format!("unknown kernel `{n}` (see --list-kernels)"))
        })
        .collect()
}

/// Validates `spec` and enumerates it into content-addressed cell tasks.
///
/// # Errors
///
/// Returns a message for structural violations, unknown kernels, unknown
/// engines, or a grid spec without a root seed.
pub fn prepare(spec: &CampaignSpec) -> Result<Prepared, String> {
    spec.validate()?;
    let engine = Engine::parse(&spec.engine)?;
    let jobs = spec.jobs.map_or_else(default_jobs, |j| usize::try_from(j.max(1)).unwrap_or(1));
    let ks = resolve_kernels(spec)?;
    let cells = match spec.protocol {
        Protocol::Grid => prepare_grid(spec, &ks, engine)?,
        Protocol::Table1 => prepare_table1(spec, &ks, engine),
        Protocol::Ccf => prepare_ccf(spec, &ks),
    };
    Ok(Prepared { spec: spec.clone(), engine, jobs, cells })
}

/// The grid protocol: kernel × stagger × run, `SafeDmConfig::default()`,
/// non-boot-gated monitored runs (the historical `safedm-sim campaign`
/// cell body, moved here so CLI and server execute identical code).
fn prepare_grid(
    spec: &CampaignSpec,
    ks: &[&'static Kernel],
    engine: Engine,
) -> Result<Vec<CellTask>, String> {
    let root_seed = spec
        .root_seed
        .ok_or_else(|| "grid protocol requires a root_seed (it has no legacy seeds)".to_owned())?;
    let runs = usize::try_from(spec.runs).unwrap_or(usize::MAX).max(1);
    let grid = ConfigGrid {
        kernels: ks.to_vec(),
        staggers: spec.staggers.clone(),
        configs: vec![SafeDmConfig::default()],
        runs,
        root_seed,
    };
    // One pre-decoded program per (kernel, stagger) setup, shared by all of
    // that setup's runs. Setup index = cell.index / runs in the canonical
    // kernel-major, run-minor order (configs axis has length 1).
    let mut programs: Vec<Arc<safedm_asm::Program>> =
        Vec::with_capacity(grid.kernels.len() * grid.staggers.len());
    for k in &grid.kernels {
        for &nops in &grid.staggers {
            let stagger = (nops > 0).then_some(StaggerConfig {
                nops: usize::try_from(nops).unwrap_or(usize::MAX),
                delayed_core: 1,
            });
            programs.push(Arc::new(build_kernel_program(
                k,
                &HarnessConfig { stagger, ..HarnessConfig::default() },
            )));
        }
    }
    Ok(grid
        .cells()
        .into_iter()
        .map(|cell| {
            let prog = Arc::clone(&programs[cell.index / runs]);
            let kernel: &'static Kernel = cell.kernel;
            let cell_spec = CellSpec {
                protocol: Protocol::Grid,
                kernel: kernel.name.to_owned(),
                config: format!("nops={}", cell.stagger),
                run: cell.run as u64,
                seed: cell.seed,
                engine: spec.engine.clone(),
            };
            let (index, seed, run, stagger) =
                (cell.index as u64, cell.seed, cell.run, cell.stagger);
            let dm_cfg = cell.config;
            let engine_name = spec.engine.clone();
            let compute: CellFn = Box::new(move || {
                let golden = (kernel.reference)();
                let (cycles, zero_stag, no_div, observed, episodes, ok) = if engine == Engine::Fast
                {
                    // Functional twin at block granularity: architecturally
                    // exact results plus instruction-count diversity
                    // proxies, no pipeline model.
                    let mut twin = FastTwin::new(ExecMode::Fast);
                    twin.load_program(&prog);
                    let out = twin.run(GRID_RUN_BUDGET);
                    let ok = !out.timed_out && (0..2).all(|c| twin.hart(c).reg(Reg::A0) == golden);
                    (out.cycles, out.zero_stag, out.no_div, out.observed, out.episodes, ok)
                } else {
                    // `cycle` and `hybrid` both take the cycle-accurate
                    // path: every campaign cell runs under the monitor, and
                    // hybrid's "always-slow in guarded regions" rule makes
                    // the whole monitored run a guarded region.
                    let soc_cfg =
                        SocConfig { mem_jitter: 2, jitter_seed: seed, ..SocConfig::default() };
                    let dm_cfg = SafeDmConfig { report_mode: ReportMode::Polling, ..dm_cfg };
                    let mut sys = MonitoredSoc::new(soc_cfg, dm_cfg);
                    sys.load_program(&prog);
                    sys.write_ctrl(1 | (regs::encode_mode(ReportMode::Polling) << 1));
                    let out = sys.run(GRID_RUN_BUDGET);
                    let ok = !out.run.timed_out
                        && (0..2).all(|c| sys.soc().core(c).reg(Reg::A0) == golden);
                    (
                        out.run.cycles,
                        out.zero_stag_cycles,
                        out.no_div_cycles,
                        out.cycles_observed,
                        sys.monitor().no_diversity_history().total_episodes(),
                        ok,
                    )
                };
                CellEvent {
                    index,
                    kernel: kernel.name.to_owned(),
                    config: format!("nops={stagger}"),
                    engine: engine_name.clone(),
                    run: run as u64,
                    seed,
                    cycles,
                    guarded: observed,
                    zero_stag,
                    no_div,
                    episodes,
                    violations: u64::from(!ok),
                    ok,
                    wall_us: None,
                }
            });
            CellTask { spec: cell_spec, compute }
        })
        .collect())
}

/// The Table I protocol: the paper's four staggering setups with their
/// boot-gated measurement window ([`run_engine_prebuilt`]); `staggers` and
/// `runs` in the spec are ignored (the protocol pins both).
fn prepare_table1(spec: &CampaignSpec, ks: &[&'static Kernel], engine: Engine) -> Vec<CellTask> {
    table1_cells(ks, spec.root_seed)
        .into_iter()
        .map(|cell| {
            let nops = TABLE1_NOPS[cell.setup_idx];
            let cell_spec = CellSpec {
                protocol: Protocol::Table1,
                kernel: cell.kernel.name.to_owned(),
                config: format!("nops={nops}"),
                run: cell.run as u64,
                seed: cell.seed,
                engine: spec.engine.clone(),
            };
            let engine_name = spec.engine.clone();
            let compute: CellFn = Box::new(move || {
                let r = run_engine_prebuilt(
                    engine,
                    cell.kernel,
                    &cell.program,
                    cell.stagger,
                    cell.seed,
                    SafeDmConfig::default(),
                );
                CellEvent {
                    index: cell.index as u64,
                    kernel: cell.kernel.name.to_owned(),
                    config: format!("nops={nops}"),
                    engine: engine_name.clone(),
                    run: cell.run as u64,
                    seed: cell.seed,
                    cycles: r.cycles,
                    guarded: r.observed,
                    zero_stag: r.zero_stag,
                    no_div: r.no_div,
                    episodes: r.episodes,
                    violations: u64::from(!r.checksum_ok),
                    ok: r.checksum_ok,
                    wall_us: None,
                }
            });
            CellTask { spec: cell_spec, compute }
        })
        .collect()
}

/// The CCF protocol: one aggregate cell per kernel, `runs` fault-injection
/// trials each (the historical `ccf_campaign` per-kernel event). Stats are
/// byte-identical for any worker count, so each cell runs its trials
/// inline and cells parallelise across kernels on the pool.
fn prepare_ccf(spec: &CampaignSpec, ks: &[&'static Kernel]) -> Vec<CellTask> {
    let seed = spec.root_seed.unwrap_or(2024);
    let trials = usize::try_from(spec.runs).unwrap_or(usize::MAX);
    ks.iter()
        .enumerate()
        .map(|(i, k)| {
            let kernel: &'static Kernel = k;
            let cell_spec = CellSpec {
                protocol: Protocol::Ccf,
                kernel: kernel.name.to_owned(),
                config: format!("trials={trials}"),
                run: 0,
                seed,
                engine: spec.engine.clone(),
            };
            let engine_name = spec.engine.clone();
            let compute: CellFn = Box::new(move || {
                let stats = Campaign::new(CampaignConfig {
                    trials,
                    seed,
                    max_cycle: CCF_MAX_CYCLE,
                    ..CampaignConfig::default()
                })
                .run_jobs(kernel, 1);
                CellEvent {
                    index: i as u64,
                    kernel: kernel.name.to_owned(),
                    config: format!("trials={trials}"),
                    engine: engine_name.clone(),
                    run: 0,
                    seed,
                    cycles: 0,
                    guarded: trials as u64,
                    zero_stag: 0,
                    no_div: stats.silent_with_no_diversity,
                    episodes: 0,
                    violations: stats.detected_mismatch,
                    ok: true,
                    wall_us: None,
                }
            });
            CellTask { spec: cell_spec, compute }
        })
        .collect()
}

/// The ordered-prefix publisher: cells complete in scheduling order, lines
/// publish in index order.
struct Publisher<'a> {
    slots: Vec<Option<String>>,
    next: usize,
    on_line: Option<LineSink<'a>>,
}

impl Publisher<'_> {
    fn fill(&mut self, index: usize, line: String) {
        self.slots[index] = Some(line);
        while self.next < self.slots.len() {
            let Some(line) = self.slots[self.next].as_ref() else { break };
            if let Some(f) = self.on_line {
                f(self.next, line);
            }
            self.next += 1;
        }
    }
}

/// Executes a prepared campaign: cache hits replay their stored lines,
/// misses run on the pool, lines publish in index order.
///
/// # Errors
///
/// Returns a message when a cached line does not parse back into an event
/// (a corrupted on-disk cache entry).
///
/// # Panics
///
/// Panics if a cell's simulation panics (propagated from the pool).
pub fn run(prepared: &Prepared, opts: &RunOptions) -> Result<RunOutcome, String> {
    let n = prepared.cells.len();

    // Phase 1: consult the cache, prefilling hit slots. The cache is
    // shared between concurrent campaigns, so this run's hit counters are
    // the stats delta across the *held lock* — a global before/after
    // snapshot would absorb other campaigns' traffic.
    let mut run_stats = CacheStats::default();
    let mut slots: Vec<Option<String>> = vec![None; n];
    if let Some(cache) = opts.cache {
        let mut cache = lock(cache);
        let before = cache.stats();
        for (i, cell) in prepared.cells.iter().enumerate() {
            slots[i] = cache.get(cell.spec.digest());
        }
        let after = cache.stats();
        run_stats.hits = after.hits - before.hits;
        run_stats.disk_hits = after.disk_hits - before.disk_hits;
    }
    let publisher = Mutex::new(Publisher { slots: vec![None; n], next: 0, on_line: opts.on_line });
    let mut hit_lines: Vec<Option<String>> = vec![None; n];
    for (i, slot) in slots.into_iter().enumerate() {
        if let Some(line) = slot {
            if let Some(p) = opts.progress {
                p.cell_done(&prepared.cells[i].spec.kernel);
            }
            lock(&publisher).fill(i, line.clone());
            hit_lines[i] = Some(line);
        }
    }

    // Phase 2: run the misses on the pool. Each worker checks the stop
    // flag before starting its cell; past that point it serialises its
    // event, stores it, and publishes through the ordered-prefix state.
    // A skipped cell yields `None` — nothing simulated, cached, or
    // published.
    let misses: Vec<usize> = (0..n).filter(|&i| hit_lines[i].is_none()).collect();
    let (computed, timings) = par_map_timed_observed(
        prepared.jobs,
        &misses,
        |_, &i| {
            if opts.stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                return None;
            }
            let ev = (prepared.cells[i].compute)();
            let line = ev.to_json(Timing::Strip).render();
            if let Some(cache) = opts.cache {
                lock(cache).put(prepared.cells[i].spec.digest(), &line);
            }
            lock(&publisher).fill(i, line.clone());
            Some((ev, line))
        },
        |j, _| {
            if let Some(p) = opts.progress {
                p.cell_done(&prepared.cells[misses[j]].spec.kernel);
            }
        },
    );

    // Phase 3: assemble ordered events and lines from the completed cells
    // (hits plus computed misses). Note the published stream stays a
    // contiguous index prefix — a skipped cell blocks later lines from
    // the sink even if they are present here.
    let mut events: Vec<Option<CellEvent>> = vec![None; n];
    let mut lines: Vec<Option<String>> = hit_lines;
    let mut skipped = 0u64;
    for ((&i, slot), t) in misses.iter().zip(computed).zip(&timings) {
        match slot {
            Some((ev, line)) => {
                events[i] = Some(CellEvent { wall_us: Some(duration_us(*t)), ..ev });
                lines[i] = Some(line);
            }
            None => skipped += 1,
        }
    }
    for (i, line) in lines.iter().enumerate() {
        if events[i].is_none() {
            let Some(line) = line.as_ref() else { continue };
            let parsed = safedm_obs::events::parse_jsonl(line)
                .map_err(|e| format!("corrupt cache entry for cell {i}: {e}"))?;
            let [ev]: [CellEvent; 1] = parsed
                .try_into()
                .map_err(|_| format!("corrupt cache entry for cell {i}: not one event"))?;
            events[i] = Some(ev);
        }
    }
    let (events, lines): (Vec<CellEvent>, Vec<String>) = events
        .into_iter()
        .zip(lines)
        .filter_map(|pair| match pair {
            (Some(ev), Some(line)) => Some((ev, line)),
            _ => None,
        })
        .unzip();

    // Misses and inserts are this run's own computed cells by
    // construction; evictions are a cache-wide property (see
    // `ResultCache::stats`), not attributable to one campaign, so they
    // stay 0 here.
    run_stats.misses = misses.len() as u64 - skipped;
    run_stats.inserts = if opts.cache.is_some() { run_stats.misses } else { 0 };
    let all_ok = events.iter().all(|e| e.ok);
    Ok(RunOutcome { events, lines, cache: run_stats, all_ok, canceled: skipped > 0 })
}

/// [`prepare`] + [`run`] in one call.
///
/// # Errors
///
/// Returns [`prepare`]'s and [`run`]'s errors.
pub fn run_spec(spec: &CampaignSpec, opts: &RunOptions) -> Result<RunOutcome, String> {
    run(&prepare(spec)?, opts)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CampaignSpec {
        CampaignSpec {
            kernels: vec!["fac".to_owned()],
            staggers: vec![0],
            runs: 2,
            ..CampaignSpec::default()
        }
    }

    #[test]
    fn grid_runs_match_for_any_jobs_and_cache_state() {
        let spec = small_spec();
        let cold = run_spec(&spec, &RunOptions::default()).unwrap();
        assert_eq!(cold.lines.len(), 2);
        assert!(cold.all_ok);
        let jobs2 =
            run_spec(&CampaignSpec { jobs: Some(2), ..spec.clone() }, &RunOptions::default())
                .unwrap();
        assert_eq!(cold.lines, jobs2.lines);

        let cache = Mutex::new(ResultCache::new(64));
        let opts = RunOptions { cache: Some(&cache), ..RunOptions::default() };
        let first = run_spec(&spec, &opts).unwrap();
        assert_eq!(first.cache.misses, 2);
        assert_eq!(first.lines, cold.lines);
        let second = run_spec(&spec, &opts).unwrap();
        assert_eq!(second.cache.hits, 2);
        assert_eq!(second.cache.misses, 0);
        // Replayed bytes identical to computed bytes.
        assert_eq!(second.lines, first.lines);
        // Hits carry no wall-clock; everything else round-trips.
        assert!(second.events.iter().all(|e| e.wall_us.is_none()));
    }

    #[test]
    fn lines_publish_in_index_order() {
        let spec = CampaignSpec { jobs: Some(4), ..small_spec() };
        let seen = Mutex::new(Vec::new());
        let sink = |i: usize, line: &str| {
            lock(&seen).push((i, line.to_owned()));
        };
        let out =
            run_spec(&spec, &RunOptions { on_line: Some(&sink), ..RunOptions::default() }).unwrap();
        let seen = lock(&seen).clone();
        assert_eq!(seen.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(seen.into_iter().map(|(_, l)| l).collect::<Vec<_>>(), out.lines);
    }

    #[test]
    fn a_raised_stop_flag_skips_every_pending_cell() {
        let stop = AtomicBool::new(true);
        let out =
            run_spec(&small_spec(), &RunOptions { stop: Some(&stop), ..RunOptions::default() })
                .unwrap();
        assert!(out.canceled);
        assert!(out.events.is_empty() && out.lines.is_empty());
        assert_eq!(out.cache.misses, 0);
        assert_eq!(out.cache.inserts, 0);

        // Cache hits still replay under a raised flag: they cost no
        // simulation, so cancellation only skips the pending work.
        let cache = Mutex::new(ResultCache::new(64));
        let opts = RunOptions { cache: Some(&cache), ..RunOptions::default() };
        let warm = run_spec(&small_spec(), &opts).unwrap();
        assert!(!warm.canceled);
        let replay = run_spec(
            &small_spec(),
            &RunOptions { cache: Some(&cache), stop: Some(&stop), ..RunOptions::default() },
        )
        .unwrap();
        assert!(!replay.canceled, "no pending cell was skipped");
        assert_eq!(replay.lines, warm.lines);
    }

    #[test]
    fn unknown_kernel_and_engine_are_prepare_errors() {
        let bad = CampaignSpec { kernels: vec!["nope".to_owned()], ..small_spec() };
        assert!(prepare(&bad).err().unwrap().contains("unknown kernel"));
        let bad = CampaignSpec { engine: "warp9".to_owned(), ..small_spec() };
        assert!(prepare(&bad).is_err());
        let bad = CampaignSpec { root_seed: None, ..small_spec() };
        assert!(prepare(&bad).err().unwrap().contains("root_seed"));
    }
}
