//! Content-addressed result cache for campaign cells.
//!
//! Keys are [`CellSpec::digest`](crate::spec::CellSpec::digest) values —
//! content hashes of a cell's canonical identity (kernel, config point,
//! run, seed, engine, protocol) salted with the simulator code version.
//! Values are the cell's *serialised* record: the exact timing-stripped
//! `CellEvent` JSONL line the campaign would have streamed. Storing the
//! bytes rather than a struct keeps the byte-identity contract trivially
//! true on a hit — the cache replays the line it was given, verbatim.
//!
//! The store is a bounded in-memory LRU with an optional write-through
//! on-disk directory (`{digest:016x}.json`, one line per file). Disk reads
//! refill the memory tier; disk writes are best-effort (a full disk
//! degrades to memory-only, it never fails a campaign). Hit/miss/eviction
//! counters export into a `MetricsRegistry` in the same style as
//! `SocMetrics`.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use safedm_obs::MetricsRegistry;

/// Running counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the in-memory tier.
    pub hits: u64,
    /// Lookups served from the on-disk tier (memory miss, disk hit).
    pub disk_hits: u64,
    /// Lookups that found nothing in either tier.
    pub misses: u64,
    /// Records inserted (via [`ResultCache::put`] or a disk refill).
    pub inserts: u64,
    /// Records evicted from the memory tier to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups observed.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.disk_hits + self.misses
    }

    /// Exports the counters into `reg` under `cache.*` names (no-op when
    /// the registry is disabled, like every obs counter).
    pub fn export(&self, reg: &mut MetricsRegistry) {
        for (name, value) in [
            ("cache.hits", self.hits),
            ("cache.disk_hits", self.disk_hits),
            ("cache.misses", self.misses),
            ("cache.inserts", self.inserts),
            ("cache.evictions", self.evictions),
        ] {
            let id = reg.counter(name);
            reg.set_total(id, value);
        }
    }
}

struct Entry {
    line: String,
    tick: u64,
}

/// A bounded LRU of serialised cell records keyed by content digest, with
/// an optional on-disk second tier.
pub struct ResultCache {
    cap: usize,
    map: HashMap<u64, Entry>,
    tick: u64,
    dir: Option<PathBuf>,
    stats: CacheStats,
}

impl ResultCache {
    /// An in-memory cache holding at most `cap` records (`cap` is clamped
    /// to at least 1).
    #[must_use]
    pub fn new(cap: usize) -> ResultCache {
        ResultCache {
            cap: cap.max(1),
            map: HashMap::new(),
            tick: 0,
            dir: None,
            stats: CacheStats::default(),
        }
    }

    /// Adds a write-through on-disk tier rooted at `dir` (created eagerly;
    /// creation failure disables the tier rather than erroring).
    #[must_use]
    pub fn with_dir(mut self, dir: &Path) -> ResultCache {
        self.dir = std::fs::create_dir_all(dir).is_ok().then(|| dir.to_path_buf());
        self
    }

    /// Number of records in the memory tier.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memory tier is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn disk_path(&self, digest: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{digest:016x}.json")))
    }

    /// Looks up `digest`, refreshing recency on a hit and refilling the
    /// memory tier from disk when only the disk tier has it.
    pub fn get(&mut self, digest: u64) -> Option<String> {
        self.tick += 1;
        if let Some(e) = self.map.get_mut(&digest) {
            e.tick = self.tick;
            self.stats.hits += 1;
            return Some(e.line.clone());
        }
        if let Some(path) = self.disk_path(digest) {
            if let Ok(text) = std::fs::read_to_string(&path) {
                let line = text.trim_end_matches('\n').to_owned();
                self.stats.disk_hits += 1;
                self.insert(digest, line.clone());
                return Some(line);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Stores `line` under `digest` in memory and (best-effort) on disk.
    pub fn put(&mut self, digest: u64, line: &str) {
        self.tick += 1;
        if let Some(path) = self.disk_path(digest) {
            let _ = std::fs::write(&path, format!("{line}\n"));
        }
        self.insert(digest, line.to_owned());
    }

    fn insert(&mut self, digest: u64, line: String) {
        if !self.map.contains_key(&digest) && self.map.len() >= self.cap {
            // O(n) min-tick scan: caches hold at most a few thousand cell
            // lines, far below where a heap would pay for itself.
            if let Some(&victim) = self.map.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| k) {
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.stats.inserts += 1;
        self.map.insert(digest, Entry { line, tick: self.tick });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_the_exact_bytes_put() {
        let mut c = ResultCache::new(8);
        c.put(1, r#"{"index":0,"kernel":"fac"}"#);
        assert_eq!(c.get(1).as_deref(), Some(r#"{"index":0,"kernel":"fac"}"#));
        assert_eq!(c.get(2), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.put(1, "one");
        c.put(2, "two");
        assert_eq!(c.get(1).as_deref(), Some("one")); // 1 is now most recent
        c.put(3, "three"); // evicts 2
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1).as_deref(), Some("one"));
        assert_eq!(c.get(3).as_deref(), Some("three"));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn disk_tier_survives_memory_eviction_and_new_instances() {
        let dir = std::env::temp_dir().join(format!("safedm-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut c = ResultCache::new(1).with_dir(&dir);
            c.put(10, "ten");
            c.put(11, "eleven"); // evicts 10 from memory; disk keeps it
            assert_eq!(c.get(10).as_deref(), Some("ten"));
            assert_eq!(c.stats().disk_hits, 1);
        }
        {
            let mut c = ResultCache::new(4).with_dir(&dir);
            assert_eq!(c.get(11).as_deref(), Some("eleven"));
            assert_eq!(c.stats().disk_hits, 1);
            assert_eq!(c.stats().hits, 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_export_lands_in_the_registry() {
        let mut c = ResultCache::new(4);
        c.put(1, "x");
        let _ = c.get(1);
        let _ = c.get(2);
        let mut reg = MetricsRegistry::new(true);
        c.stats().export(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cache.hits"), Some(1));
        assert_eq!(snap.counter("cache.misses"), Some(1));
        assert_eq!(snap.counter("cache.inserts"), Some(1));
    }
}
