//! Enumerable configuration grids.
//!
//! A [`ConfigGrid`] is the cartesian product of four campaign axes —
//! kernels, staggering setups, monitor configurations and repeat runs —
//! flattened into a single dense index space. The flattening fixes the
//! canonical cell order (kernel-major, run-minor), and each cell's seed is
//! derived from the grid's root seed and the cell index alone (see
//! [`crate::seed::derive_cell_seed`]), so a cell is fully described by
//! `(grid, index)` no matter how, where or in what order it executes.
//!
//! The axes are generic: the engine stays dependency-free, and callers put
//! whatever their campaign varies on them (`&'static Kernel` handles,
//! `Arc<Program>` pre-decoded images, stagger descriptors, plain numbers).

use crate::seed::derive_cell_seed;

/// A four-axis campaign grid with a root seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigGrid<K, S, C> {
    /// Kernel axis (outermost).
    pub kernels: Vec<K>,
    /// Staggering axis.
    pub staggers: Vec<S>,
    /// Monitor-configuration axis.
    pub configs: Vec<C>,
    /// Repeat runs per (kernel, stagger, config) combination (innermost).
    pub runs: usize,
    /// Root seed all per-cell seeds are derived from.
    pub root_seed: u64,
}

/// One cell of a [`ConfigGrid`]: the axis values plus the derived seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell<K, S, C> {
    /// Dense index in the canonical enumeration.
    pub index: usize,
    /// Kernel axis value.
    pub kernel: K,
    /// Stagger axis value.
    pub stagger: S,
    /// Config axis value.
    pub config: C,
    /// Repeat-run number within the combination.
    pub run: usize,
    /// Seed derived from `(root_seed, index)`.
    pub seed: u64,
}

impl<K: Clone, S: Clone, C: Clone> ConfigGrid<K, S, C> {
    /// Total number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kernels.len() * self.staggers.len() * self.configs.len() * self.runs
    }

    /// Whether the grid has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes cell `index` (mixed-radix: run varies fastest, then config,
    /// then stagger, then kernel).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn cell(&self, index: usize) -> Cell<K, S, C> {
        assert!(index < self.len(), "cell index {index} out of range (len {})", self.len());
        let mut rest = index;
        let run = rest % self.runs;
        rest /= self.runs;
        let ci = rest % self.configs.len();
        rest /= self.configs.len();
        let si = rest % self.staggers.len();
        rest /= self.staggers.len();
        let ki = rest;
        Cell {
            index,
            kernel: self.kernels[ki].clone(),
            stagger: self.staggers[si].clone(),
            config: self.configs[ci].clone(),
            run,
            seed: derive_cell_seed(self.root_seed, index as u64),
        }
    }

    /// Enumerates every cell in canonical order.
    #[must_use]
    pub fn cells(&self) -> Vec<Cell<K, S, C>> {
        (0..self.len()).map(|i| self.cell(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> ConfigGrid<&'static str, usize, char> {
        ConfigGrid {
            kernels: vec!["fac", "bitcount"],
            staggers: vec![0, 100, 1000],
            configs: vec!['a', 'b'],
            runs: 2,
            root_seed: 2024,
        }
    }

    #[test]
    fn enumeration_is_dense_and_ordered() {
        let g = grid();
        assert_eq!(g.len(), 2 * 3 * 2 * 2);
        let cells = g.cells();
        assert_eq!(cells.len(), g.len());
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(*c, g.cell(i));
        }
        // kernel-major, run-minor
        assert_eq!(cells[0].kernel, "fac");
        assert_eq!(cells[0].run, 0);
        assert_eq!(cells[1].run, 1);
        assert_eq!(cells[g.len() - 1].kernel, "bitcount");
    }

    #[test]
    fn seeds_are_distinct_across_cells() {
        let g = grid();
        let mut seeds: Vec<u64> = g.cells().iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), g.len());
    }

    #[test]
    fn seed_depends_only_on_root_and_index() {
        let g = grid();
        let mut reshuffled = g.clone();
        // Same shape, different axis *values*: seeds must not change,
        // because they are derived from the index, not the contents.
        reshuffled.kernels = vec!["x", "y"];
        for i in 0..g.len() {
            assert_eq!(g.cell(i).seed, reshuffled.cell(i).seed);
        }
        let other_root = ConfigGrid { root_seed: 2025, ..g.clone() };
        assert_ne!(g.cell(0).seed, other_root.cell(0).seed);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cell_panics() {
        let g = grid();
        let _ = g.cell(g.len());
    }
}
