//! # safedm-campaign — deterministic parallel campaign engine
//!
//! The SafeDM evaluation (Table I, the fault-injection campaigns, every
//! ablation sweep) is embarrassingly parallel across configuration cells:
//! each (kernel, stagger, seed, monitor-config) combination is an
//! independent simulation. This crate is the engine the bench binaries run
//! those campaigns through:
//!
//! * [`grid::ConfigGrid`] — an enumerable cartesian grid of campaign cells
//!   with a canonical dense order;
//! * [`seed::derive_cell_seed`] — per-cell seeds as a pure function of
//!   `(root seed, cell index)`, so a cell's inputs never depend on
//!   scheduling;
//! * [`pool::par_map`] / [`pool::par_map_timed`] — a `std::thread` chunked
//!   work-stealing pool with **ordered result collection**: outputs come
//!   back in cell order, byte-identical for any `--jobs N`;
//! * [`pool::par_map_timed_observed`] + [`progress::Progress`] — a
//!   completion observer (fires per cell on the worker thread, in
//!   scheduling order) driving a throttled stderr progress line; the
//!   observer sees only measurement, so outputs stay deterministic.
//!
//! Since PR 9 the crate also owns the *submission surface* the campaign
//! service is built on:
//!
//! * [`spec::CampaignSpec`] / [`spec::CellSpec`] — the versioned
//!   (`safedm-api/1`), canonically-serialised request types shared by the
//!   CLI, the HTTP server and the `safedm-sdk` client, with
//!   content-address digests salted by code version;
//! * [`cache::ResultCache`] — a content-addressed LRU (plus optional
//!   on-disk tier) of serialised cell records, sound to consult precisely
//!   because of the determinism contract below.
//!
//! The determinism contract, spelled out: for a fixed item list and cell
//! function, `par_map(j, items, f)` returns the same `Vec` for every `j`,
//! because (1) each cell computes from only its index and item, (2) cells
//! share nothing mutable, and (3) results are re-ordered by index after the
//! join. Timings ([`pool::par_map_timed`]) are the one exception — they are
//! measurements of the host machine, reported separately and never mixed
//! into metric snapshots (the same separation `safedm-obs` draws for its
//! wall-clock self-profiler).
//!
//! The crate depends only on std and the equally-std-only `safedm-obs`
//! (for the JSON layer and metric export), so every layer of the workspace
//! can use it, including `safedm-faults`.
//!
//! ## Example
//!
//! ```
//! use safedm_campaign::grid::ConfigGrid;
//! use safedm_campaign::pool::par_map;
//!
//! let grid = ConfigGrid {
//!     kernels: vec!["fac", "bitcount"],
//!     staggers: vec![0usize, 100],
//!     configs: vec![()],
//!     runs: 2,
//!     root_seed: 2024,
//! };
//! let cells = grid.cells();
//! let results = par_map(4, &cells, |_, cell| {
//!     // run the simulation for `cell` — here just echo its identity
//!     (cell.kernel, cell.stagger, cell.seed)
//! });
//! // Ordered, deterministic: results[i] belongs to cells[i].
//! assert_eq!(results.len(), grid.len());
//! assert_eq!(results, par_map(1, &cells, |_, c| (c.kernel, c.stagger, c.seed)));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod grid;
pub mod pool;
pub mod progress;
pub mod seed;
pub mod spec;

pub use cache::{CacheStats, ResultCache};
pub use grid::{Cell, ConfigGrid};
pub use pool::{default_jobs, par_map, par_map_timed, par_map_timed_observed};
pub use progress::Progress;
pub use seed::{derive_cell_seed, SplitMix64};
pub use spec::{CampaignSpec, CellSpec, Protocol};

/// Parses a `--jobs`-style value: `None` means the machine default, and an
/// explicit value must be a positive integer.
///
/// # Errors
///
/// Returns a human-readable message for non-numeric or zero values.
///
/// # Examples
///
/// ```
/// use safedm_campaign::parse_jobs;
///
/// assert_eq!(parse_jobs(Some("3")), Ok(3));
/// assert!(parse_jobs(None).unwrap() >= 1);
/// assert!(parse_jobs(Some("zero")).is_err());
/// assert!(parse_jobs(Some("0")).is_err());
/// ```
pub fn parse_jobs(value: Option<&str>) -> Result<usize, String> {
    match value {
        None => Ok(default_jobs()),
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            Ok(_) => Err("invalid value for --jobs: must be >= 1".to_owned()),
            Err(_) => Err(format!("invalid value for --jobs: `{v}` is not a number")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_jobs_accepts_defaults_and_positives() {
        assert!(parse_jobs(None).unwrap() >= 1);
        assert_eq!(parse_jobs(Some("8")), Ok(8));
        assert!(parse_jobs(Some("-1")).is_err());
        assert!(parse_jobs(Some("0")).is_err());
        assert!(parse_jobs(Some("four")).is_err());
    }
}
