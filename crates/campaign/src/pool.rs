//! The deterministic parallel executor: a chunked work-stealing pool over an
//! indexed item list, with **ordered** result collection.
//!
//! Workers claim chunks of indices from a shared atomic cursor (cheap,
//! contention-free stealing), run the cell function, and stash
//! `(index, output)` pairs locally; after the scoped join the pairs are
//! scattered back into index order. Scheduling therefore affects only *when*
//! a cell runs, never *what* it computes (cells are pure functions of their
//! index and item) nor *where* its result lands — output is byte-identical
//! for any worker count.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Number of workers to use by default: the machine's available parallelism
/// (1 when it cannot be determined).
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Chunk size for `len` items across `jobs` workers: aim for ~4 chunks per
/// worker so stragglers can be stolen, clamped to `[1, 64]`.
fn chunk_size(len: usize, jobs: usize) -> usize {
    (len / (jobs * 4).max(1)).clamp(1, 64)
}

/// Runs `f(index, &items[index])` for every item on `jobs` workers and
/// returns the outputs **in item order**, plus the per-cell wall-clock time
/// (also in item order; timings are measurement, not input — they vary run
/// to run while outputs do not).
///
/// `jobs == 1` (or a single item) runs inline on the calling thread; the
/// result is identical by construction.
///
/// # Panics
///
/// Propagates the first panic raised by `f` after all workers stop.
pub fn par_map_timed<T, O, F>(jobs: usize, items: &[T], f: F) -> (Vec<O>, Vec<Duration>)
where
    T: Sync,
    O: Send,
    F: Fn(usize, &T) -> O + Sync,
{
    par_map_timed_observed(jobs, items, f, |_, _| {})
}

/// [`par_map_timed`] with a completion observer: `observe(index, elapsed)`
/// runs on the *worker* thread the moment a cell finishes, in whatever
/// order scheduling produces. The observer sees only measurement (which
/// cell, how long) and returns nothing, so it cannot influence outputs —
/// use it for live progress reporting, never for results. Outputs and
/// timings are still collected in item order exactly as [`par_map_timed`].
///
/// # Panics
///
/// Propagates the first panic raised by `f` after all workers stop.
pub fn par_map_timed_observed<T, O, F, Obs>(
    jobs: usize,
    items: &[T],
    f: F,
    observe: Obs,
) -> (Vec<O>, Vec<Duration>)
where
    T: Sync,
    O: Send,
    F: Fn(usize, &T) -> O + Sync,
    Obs: Fn(usize, Duration) + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        let mut outs = Vec::with_capacity(items.len());
        let mut times = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let start = Instant::now();
            outs.push(f(i, item));
            let elapsed = start.elapsed();
            observe(i, elapsed);
            times.push(elapsed);
        }
        return (outs, times);
    }

    let cursor = AtomicUsize::new(0);
    let chunk = chunk_size(items.len(), jobs);
    let worker = || {
        let mut local: Vec<(usize, O, Duration)> = Vec::new();
        loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= items.len() {
                break;
            }
            let end = (start + chunk).min(items.len());
            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                let t = Instant::now();
                // Cells must not poison each other: a panicking cell is
                // re-raised after the join, once every worker has stopped.
                let out = catch_unwind(AssertUnwindSafe(|| f(i, item)));
                match out {
                    Ok(o) => {
                        let elapsed = t.elapsed();
                        observe(i, elapsed);
                        local.push((i, o, elapsed));
                    }
                    Err(payload) => return Err(payload),
                }
            }
        }
        Ok(local)
    };

    let mut slots: Vec<Option<(O, Duration)>> = (0..items.len()).map(|_| None).collect();
    let mut panic_payload = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs).map(|_| scope.spawn(worker)).collect();
        for handle in handles {
            match handle.join() {
                Ok(Ok(local)) => {
                    for (i, o, d) in local {
                        slots[i] = Some((o, d));
                    }
                }
                Ok(Err(payload)) | Err(payload) => {
                    if panic_payload.is_none() {
                        panic_payload = Some(payload);
                    }
                }
            }
        }
    });
    if let Some(payload) = panic_payload {
        resume_unwind(payload);
    }
    let mut outs = Vec::with_capacity(items.len());
    let mut times = Vec::with_capacity(items.len());
    for slot in slots {
        let (o, d) = slot.expect("every cell ran (no worker panicked)");
        outs.push(o);
        times.push(d);
    }
    (outs, times)
}

/// [`par_map_timed`] without the timings.
///
/// # Panics
///
/// Propagates the first panic raised by `f`.
///
/// # Examples
///
/// ```
/// use safedm_campaign::pool::par_map;
///
/// let squares = par_map(4, &[1u64, 2, 3, 4, 5], |_, v| v * v);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn par_map<T, O, F>(jobs: usize, items: &[T], f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(usize, &T) -> O + Sync,
{
    par_map_timed(jobs, items, f).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_order_matches_item_order_for_any_jobs() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map(1, &items, |i, v| (i as u64) * 1000 + v);
        for jobs in [2, 3, 4, 8, 16] {
            assert_eq!(par_map(jobs, &items, |i, v| (i as u64) * 1000 + v), serial);
        }
    }

    #[test]
    fn empty_and_single_item_lists() {
        let empty: Vec<u64> = Vec::new();
        assert!(par_map(8, &empty, |_, v| *v).is_empty());
        assert_eq!(par_map(8, &[7u64], |_, v| v + 1), vec![8]);
    }

    #[test]
    fn timings_align_with_outputs() {
        let items: Vec<u64> = (0..40).collect();
        let (outs, times) = par_map_timed(4, &items, |_, v| *v);
        assert_eq!(outs, items);
        assert_eq!(times.len(), items.len());
    }

    #[test]
    fn chunk_size_is_bounded() {
        assert_eq!(chunk_size(0, 4), 1);
        assert_eq!(chunk_size(3, 4), 1);
        assert_eq!(chunk_size(1 << 20, 2), 64);
    }

    #[test]
    fn observer_sees_every_cell_exactly_once() {
        use std::sync::Mutex;
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 4] {
            let seen = Mutex::new(Vec::new());
            let (outs, _) = par_map_timed_observed(
                jobs,
                &items,
                |_, v| *v,
                |i, _| seen.lock().unwrap().push(i),
            );
            assert_eq!(outs, items);
            let mut seen = seen.into_inner().unwrap();
            seen.sort_unstable();
            assert_eq!(seen, (0..items.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u64> = (0..64).collect();
        let r = std::panic::catch_unwind(|| {
            par_map(4, &items, |i, _| {
                assert!(i != 13, "boom");
                i
            })
        });
        assert!(r.is_err());
    }
}
