//! Throttled live progress for campaign runs.
//!
//! [`Progress`] counts completed cells as the pool's completion observer
//! fires (any thread, any order) and periodically rewrites one stderr
//! status line: cells done/total, cells/sec, ETA, and a per-kernel
//! breakdown. It writes **only to stderr** and only when enabled, so
//! stdout artefacts (JSON, CSV, event JSONL) are never perturbed — the
//! same contract `SelfProfiler` keeps for its wall-clock lines.
//!
//! Rendering is throttled (default 200 ms between repaints) so a campaign
//! of tiny cells is not dominated by terminal writes.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Minimum interval between stderr repaints.
const THROTTLE: Duration = Duration::from_millis(200);

struct State {
    done: usize,
    per_kernel: BTreeMap<String, usize>,
    last_paint: Option<Instant>,
}

/// A throttled stderr progress reporter; shareable across pool workers.
pub struct Progress {
    enabled: bool,
    total: usize,
    start: Instant,
    state: Mutex<State>,
}

impl Progress {
    /// A reporter for `total` cells. When `enabled` is false every call is
    /// a no-op (one branch, no lock).
    #[must_use]
    pub fn new(enabled: bool, total: usize) -> Progress {
        Progress {
            enabled,
            total,
            start: Instant::now(),
            state: Mutex::new(State { done: 0, per_kernel: BTreeMap::new(), last_paint: None }),
        }
    }

    /// Records one completed cell for `kernel` and repaints the status line
    /// if the throttle interval has elapsed. Safe to call from any worker.
    pub fn cell_done(&self, kernel: &str) {
        if !self.enabled {
            return;
        }
        let Ok(mut st) = self.state.lock() else { return };
        st.done += 1;
        *st.per_kernel.entry(kernel.to_owned()).or_insert(0) += 1;
        let now = Instant::now();
        let due = st.last_paint.is_none_or(|t| now.duration_since(t) >= THROTTLE);
        if due || st.done == self.total {
            st.last_paint = Some(now);
            let line = render_line(st.done, self.total, self.start.elapsed(), &st.per_kernel);
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\r\x1b[2K{line}");
            let _ = err.flush();
        }
    }

    /// Finishes the progress display: paints the final state and moves to a
    /// fresh line so subsequent stderr output is not glued to the bar.
    pub fn finish(&self) {
        if !self.enabled {
            return;
        }
        let Ok(st) = self.state.lock() else { return };
        let line = render_line(st.done, self.total, self.start.elapsed(), &st.per_kernel);
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "\r\x1b[2K{line}");
        let _ = err.flush();
    }
}

/// The status line: `cells 12/40 (30.0%)  3.1 cells/s  eta 9s  [fac 6, matmul 6]`.
/// Pure function of the counts, so it is testable without a terminal.
#[must_use]
pub fn render_line(
    done: usize,
    total: usize,
    elapsed: Duration,
    per_kernel: &BTreeMap<String, usize>,
) -> String {
    #[allow(clippy::cast_precision_loss)]
    let pct = if total > 0 { done as f64 / total as f64 * 100.0 } else { 100.0 };
    let secs = elapsed.as_secs_f64();
    #[allow(clippy::cast_precision_loss)]
    let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
    let eta = if done > 0 && done < total && rate > 0.0 {
        #[allow(clippy::cast_precision_loss)]
        let remaining = (total - done) as f64 / rate;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let secs_left = remaining.ceil() as u64;
        format!("eta {secs_left}s")
    } else if done >= total {
        "done".to_owned()
    } else {
        "eta ?".to_owned()
    };
    let kernels: Vec<String> = per_kernel.iter().map(|(k, n)| format!("{k} {n}")).collect();
    let mut line = format!("cells {done}/{total} ({pct:.1}%)  {rate:.1} cells/s  {eta}");
    if !kernels.is_empty() {
        line.push_str("  [");
        line.push_str(&kernels.join(", "));
        line.push(']');
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_line_reports_rate_eta_and_kernels() {
        let mut pk = BTreeMap::new();
        pk.insert("fac".to_owned(), 6);
        pk.insert("matmul".to_owned(), 6);
        let line = render_line(12, 40, Duration::from_secs(4), &pk);
        assert!(line.contains("cells 12/40 (30.0%)"), "{line}");
        assert!(line.contains("3.0 cells/s"), "{line}");
        assert!(line.contains("eta 10s"), "{line}");
        assert!(line.contains("[fac 6, matmul 6]"), "{line}");
    }

    #[test]
    fn render_line_edge_cases() {
        let pk = BTreeMap::new();
        // Nothing done yet: unknown ETA, no kernel list.
        let line = render_line(0, 10, Duration::ZERO, &pk);
        assert!(line.contains("eta ?"), "{line}");
        assert!(!line.contains('['), "{line}");
        // Complete (and empty campaigns count as complete).
        assert!(render_line(10, 10, Duration::from_secs(1), &pk).contains("done"));
        assert!(render_line(0, 0, Duration::ZERO, &pk).contains("(100.0%)"));
    }

    #[test]
    fn disabled_progress_is_inert() {
        let p = Progress::new(false, 5);
        p.cell_done("fac");
        p.finish();
        assert_eq!(p.state.lock().unwrap().done, 0);
    }

    #[test]
    fn enabled_progress_counts_cells() {
        // Note: paints to stderr; fine under the test harness.
        let p = Progress::new(true, 2);
        p.cell_done("fac");
        p.cell_done("fac");
        p.finish();
        let st = p.state.lock().unwrap();
        assert_eq!(st.done, 2);
        assert_eq!(st.per_kernel.get("fac"), Some(&2));
    }
}
