//! Per-cell seed derivation.
//!
//! Every campaign cell draws its randomness (memory jitter, fault sampling)
//! from a seed derived *only* from the campaign's root seed and the cell's
//! index in the enumeration — never from scheduling, worker identity or
//! wall-clock. Two consequences:
//!
//! * results are byte-identical for any `--jobs N`, because a cell's inputs
//!   are a pure function of `(root, index)`;
//! * distinct cells get distinct seeds (see [`derive_cell_seed`]), so no two
//!   cells accidentally share a jitter stream.

/// The splitmix64 increment (`floor(2^64 / phi)`, odd).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 output mixing function (a bijection on `u64`).
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of cell `index` under root seed `root`.
///
/// The state fed to the mixer is `root + (index + 1) * GOLDEN_GAMMA`. For a
/// fixed root, `index -> state` is injective modulo 2^64 (the gamma is odd)
/// and [`mix64`] is a bijection, so **distinct indices always yield distinct
/// seeds**, and the seed depends on nothing but `(root, index)`.
///
/// # Examples
///
/// ```
/// use safedm_campaign::seed::derive_cell_seed;
///
/// assert_eq!(derive_cell_seed(7, 0), derive_cell_seed(7, 0));
/// assert_ne!(derive_cell_seed(7, 0), derive_cell_seed(7, 1));
/// assert_ne!(derive_cell_seed(7, 0), derive_cell_seed(8, 0));
/// ```
#[must_use]
pub fn derive_cell_seed(root: u64, index: u64) -> u64 {
    mix64(root.wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)))
}

/// A splitmix64 stream (the same generator the vendored `rand` shim uses),
/// for campaign-internal draws that need more than one value per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a seed.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_pure() {
        for root in [0u64, 1, 2024, u64::MAX] {
            for index in [0u64, 1, 63, 1 << 40] {
                assert_eq!(derive_cell_seed(root, index), derive_cell_seed(root, index));
            }
        }
    }

    #[test]
    fn nearby_indices_do_not_collide() {
        let root = 42;
        let seeds: Vec<u64> = (0..10_000).map(|i| derive_cell_seed(root, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "derived seeds must be distinct");
    }

    #[test]
    fn stream_is_reproducible() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
