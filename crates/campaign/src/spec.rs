//! The versioned campaign submission surface: [`CampaignSpec`] and
//! [`CellSpec`].
//!
//! Every way of launching a campaign — the `safedm-sim campaign`
//! subcommand, the `table1`/`ccf_campaign` bench binaries, the
//! `safedm-sim serve` HTTP service and the `safedm-sdk` client — builds
//! one of these values and hands it to the shared runner. The spec is the
//! *whole* submission: kernels, grid axes, seed derivation, execution
//! engine, a scheduling hint and the telemetry options. It round-trips
//! through the dependency-free JSON layer (`safedm_obs::json`) under the
//! explicit [`SCHEMA`] version `safedm-api/1`.
//!
//! ## Canonicalisation and content addressing
//!
//! Campaign cells are pure functions of their spec (the determinism
//! contract of the campaign engine), so a cell's result can be served from
//! a cache keyed on *what the cell is* rather than *when it ran*. Two
//! things make that key trustworthy:
//!
//! * [`CampaignSpec::canonical_json`] / [`CellSpec::canonical_json`] emit
//!   every field, in one fixed order, with defaults filled in — so JSON
//!   field order and default elision in a submission can never change the
//!   digest;
//! * the digest input appends [`CODE_VERSION`], so results computed by a
//!   different build of the simulator never alias.
//!
//! Scheduling and telemetry knobs (`jobs`, `keep_timing`) are round-tripped
//! but **excluded** from the digest: they steer how a campaign runs, never
//! what it computes.

use crate::seed::mix64;
use safedm_obs::json::{parse, JsonValue};

/// The API schema version every spec document carries.
pub const SCHEMA: &str = "safedm-api/1";

/// The code version mixed into every content digest. Results are only
/// cache-equivalent between binaries built from the same simulator code;
/// bump the crate version (or this suffix) whenever simulation semantics
/// change.
pub const CODE_VERSION: &str = concat!("safedm/", env!("CARGO_PKG_VERSION"));

/// Which campaign protocol a spec requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Protocol {
    /// The generic kernel × stagger × run grid (`safedm-sim campaign`).
    #[default]
    Grid,
    /// The paper's Table I protocol: the four canonical staggering setups
    /// with 4 seeds at 0 nops and 2 at each staggered setup.
    Table1,
    /// The common-cause fault-injection campaign (one cell per kernel,
    /// `runs` trials each).
    Ccf,
}

impl Protocol {
    /// Canonical lower-case name (the `protocol` JSON vocabulary).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Protocol::Grid => "grid",
            Protocol::Table1 => "table1",
            Protocol::Ccf => "ccf",
        }
    }

    /// Parses a protocol name.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values.
    pub fn parse(s: &str) -> Result<Protocol, String> {
        match s.trim() {
            "grid" => Ok(Protocol::Grid),
            "table1" => Ok(Protocol::Table1),
            "ccf" => Ok(Protocol::Ccf),
            other => Err(format!("invalid protocol `{other}` (expected grid, table1 or ccf)")),
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A complete campaign submission.
///
/// The one entry point shared by CLI, server and SDK: everything needed to
/// enumerate and execute a campaign deterministically, plus the scheduling
/// hint (`jobs`) and telemetry options that do not affect results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Campaign protocol.
    pub protocol: Protocol,
    /// Kernel names (the `--kernels` axis; validated by the runner against
    /// the built-in registry).
    pub kernels: Vec<String>,
    /// Staggering axis in nops ([`Protocol::Grid`] only; `table1` pins the
    /// paper's four setups and `ccf` injects at cycle granularity).
    pub staggers: Vec<u64>,
    /// Repeat runs per configuration point ([`Protocol::Ccf`]: trials per
    /// kernel).
    pub runs: u64,
    /// Root seed for per-cell seed derivation; `None` selects the
    /// protocol's literal legacy seeds (the paper-protocol mode).
    pub root_seed: Option<u64>,
    /// Execution engine name (`cycle`, `fast` or `hybrid`; validated by the
    /// runner against `safedm_soc::fastpath::Engine`).
    pub engine: String,
    /// Worker-count hint. Scheduling only — never part of the digest, and a
    /// server is free to clamp it.
    pub jobs: Option<u64>,
    /// Whether serialised events keep per-cell wall-clock (forfeits
    /// byte-identity across runs). Telemetry only — never in the digest.
    pub keep_timing: bool,
}

impl Default for CampaignSpec {
    fn default() -> CampaignSpec {
        CampaignSpec {
            protocol: Protocol::Grid,
            kernels: vec!["bitcount".to_owned(), "fac".to_owned()],
            staggers: vec![0, 100],
            runs: 2,
            root_seed: Some(2024),
            engine: "cycle".to_owned(),
            jobs: None,
            keep_timing: false,
        }
    }
}

fn uint_array(values: &[u64]) -> JsonValue {
    JsonValue::Arr(values.iter().map(|v| JsonValue::Uint(*v)).collect())
}

fn str_array(values: &[String]) -> JsonValue {
    JsonValue::Arr(values.iter().map(|v| JsonValue::Str(v.clone())).collect())
}

impl CampaignSpec {
    /// The spec as a JSON object: every field, fixed order, schema first.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("schema".to_owned(), JsonValue::Str(SCHEMA.to_owned())),
            ("protocol".to_owned(), JsonValue::Str(self.protocol.as_str().to_owned())),
            ("kernels".to_owned(), str_array(&self.kernels)),
            ("staggers".to_owned(), uint_array(&self.staggers)),
            ("runs".to_owned(), JsonValue::Uint(self.runs)),
            ("root_seed".to_owned(), self.root_seed.map_or(JsonValue::Null, JsonValue::Uint)),
            ("engine".to_owned(), JsonValue::Str(self.engine.clone())),
            ("jobs".to_owned(), self.jobs.map_or(JsonValue::Null, JsonValue::Uint)),
            ("keep_timing".to_owned(), JsonValue::Bool(self.keep_timing)),
        ])
    }

    /// The canonical serialised form: compact JSON of [`Self::to_json`].
    /// Parse → canonicalise is idempotent, and any two submissions that
    /// parse to the same spec canonicalise to the same bytes regardless of
    /// their field order or elided defaults.
    #[must_use]
    pub fn canonical_json(&self) -> String {
        self.to_json().render()
    }

    /// Reconstructs a spec from a parsed JSON object. Missing fields take
    /// their defaults (elision-tolerant); ill-typed fields and unknown
    /// protocol/schema values are errors.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn from_json(v: &JsonValue) -> Result<CampaignSpec, String> {
        match v.get("schema") {
            None => {}
            Some(s) => match s.as_str() {
                Some(SCHEMA) => {}
                Some(other) => {
                    return Err(format!("unsupported schema `{other}` (expected `{SCHEMA}`)"))
                }
                None => return Err("spec field `schema` is not a string".to_owned()),
            },
        }
        let d = CampaignSpec::default();
        let opt_uint = |key: &str| -> Result<Option<u64>, String> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(x) => x
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("spec field `{key}` is not an unsigned integer")),
            }
        };
        let protocol = match v.get("protocol") {
            None => d.protocol,
            Some(p) => Protocol::parse(
                p.as_str().ok_or_else(|| "spec field `protocol` is not a string".to_owned())?,
            )?,
        };
        let kernels = match v.get("kernels") {
            None => d.kernels,
            Some(k) => k
                .as_array()
                .ok_or_else(|| "spec field `kernels` is not an array".to_owned())?
                .iter()
                .map(|e| {
                    e.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| "spec field `kernels` has a non-string entry".to_owned())
                })
                .collect::<Result<Vec<String>, String>>()?,
        };
        let staggers = match v.get("staggers") {
            None => d.staggers,
            Some(s) => s
                .as_array()
                .ok_or_else(|| "spec field `staggers` is not an array".to_owned())?
                .iter()
                .map(|e| {
                    e.as_u64()
                        .ok_or_else(|| "spec field `staggers` has a non-integer entry".to_owned())
                })
                .collect::<Result<Vec<u64>, String>>()?,
        };
        let runs = opt_uint("runs")?.unwrap_or(d.runs);
        let root_seed =
            match v.get("root_seed") {
                None => d.root_seed,
                Some(JsonValue::Null) => None,
                Some(x) => Some(x.as_u64().ok_or_else(|| {
                    "spec field `root_seed` is not an unsigned integer".to_owned()
                })?),
            };
        let engine = match v.get("engine") {
            None => d.engine,
            Some(e) => e
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| "spec field `engine` is not a string".to_owned())?,
        };
        let jobs = opt_uint("jobs")?;
        let keep_timing = match v.get("keep_timing") {
            None => d.keep_timing,
            Some(b) => {
                b.as_bool().ok_or_else(|| "spec field `keep_timing` is not a boolean".to_owned())?
            }
        };
        let spec = CampaignSpec {
            protocol,
            kernels,
            staggers,
            runs,
            root_seed,
            engine,
            jobs,
            keep_timing,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Parses a spec from JSON text (e.g. an HTTP request body).
    ///
    /// # Errors
    ///
    /// Returns a message for syntax errors and schema violations alike.
    pub fn parse_json(text: &str) -> Result<CampaignSpec, String> {
        let v = parse(text).map_err(|e| format!("spec is not valid JSON: {e}"))?;
        CampaignSpec::from_json(&v)
    }

    /// Structural validation (kernel-name existence is the runner's job —
    /// this crate stays registry-agnostic).
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.kernels.is_empty() {
            return Err("spec needs at least one kernel".to_owned());
        }
        if self.protocol == Protocol::Grid && self.staggers.is_empty() {
            return Err("grid spec needs at least one stagger".to_owned());
        }
        if self.runs == 0 {
            return Err("spec field `runs` must be >= 1".to_owned());
        }
        Ok(())
    }

    /// The result-identity digest of the whole spec: a content hash over
    /// the canonical form *minus* the scheduling/telemetry fields (`jobs`,
    /// `keep_timing`), salted with [`CODE_VERSION`]. Two specs share a
    /// digest exactly when they ask for the same deterministic results.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let identity = CampaignSpec { jobs: None, keep_timing: false, ..self.clone() };
        content_digest(&identity.canonical_json())
    }
}

/// One campaign cell's identity: everything the cell's result is a function
/// of (with [`CODE_VERSION`] supplied by [`CellSpec::digest`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// Campaign protocol the cell belongs to.
    pub protocol: Protocol,
    /// Kernel name.
    pub kernel: String,
    /// Config-point description (e.g. `nops=100`, `trials=120`) — the same
    /// string the cell's `CellEvent` carries.
    pub config: String,
    /// Repeat-run number within the config point.
    pub run: u64,
    /// The cell's derived (or protocol-literal) seed.
    pub seed: u64,
    /// Execution engine name.
    pub engine: String,
}

impl CellSpec {
    /// The canonical serialised form: compact JSON, every field, fixed
    /// order, schema first.
    #[must_use]
    pub fn canonical_json(&self) -> String {
        JsonValue::Obj(vec![
            ("schema".to_owned(), JsonValue::Str(SCHEMA.to_owned())),
            ("protocol".to_owned(), JsonValue::Str(self.protocol.as_str().to_owned())),
            ("kernel".to_owned(), JsonValue::Str(self.kernel.clone())),
            ("config".to_owned(), JsonValue::Str(self.config.clone())),
            ("run".to_owned(), JsonValue::Uint(self.run)),
            ("seed".to_owned(), JsonValue::Uint(self.seed)),
            ("engine".to_owned(), JsonValue::Str(self.engine.clone())),
        ])
        .render()
    }

    /// The cell's content-address: a digest of the canonical form salted
    /// with [`CODE_VERSION`]. The cache-correctness argument: the campaign
    /// engine makes a cell's result a pure function of exactly these fields
    /// plus the code that interprets them, so equal digests imply equal
    /// results.
    #[must_use]
    pub fn digest(&self) -> u64 {
        content_digest(&self.canonical_json())
    }
}

/// FNV-1a 64 over `text` and [`CODE_VERSION`] (NUL-separated so neither can
/// masquerade as a suffix of the other), finished through the splitmix64
/// mixer for avalanche on the low bits.
#[must_use]
pub fn content_digest(text: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in text.as_bytes().iter().chain([0u8].iter()).chain(CODE_VERSION.as_bytes()) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    mix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_roundtrips_and_validates() {
        let spec = CampaignSpec::default();
        assert!(spec.validate().is_ok());
        let back = CampaignSpec::parse_json(&spec.canonical_json()).unwrap();
        assert_eq!(back, spec);
        // Canonicalisation is idempotent.
        assert_eq!(back.canonical_json(), spec.canonical_json());
    }

    #[test]
    fn elided_defaults_and_field_order_do_not_change_the_digest() {
        let spec = CampaignSpec::default();
        // Fully-elided submission: just the schema.
        let sparse = CampaignSpec::parse_json(r#"{"schema":"safedm-api/1"}"#).unwrap();
        assert_eq!(sparse, spec);
        assert_eq!(sparse.digest(), spec.digest());
        // Reordered fields.
        let reordered = CampaignSpec::parse_json(
            r#"{"engine":"cycle","runs":2,"kernels":["bitcount","fac"],
                "staggers":[0,100],"protocol":"grid","root_seed":2024,
                "schema":"safedm-api/1"}"#,
        )
        .unwrap();
        assert_eq!(reordered.digest(), spec.digest());
    }

    #[test]
    fn scheduling_fields_never_reach_the_digest() {
        let spec = CampaignSpec::default();
        let hinted = CampaignSpec { jobs: Some(16), keep_timing: true, ..spec.clone() };
        assert_eq!(hinted.digest(), spec.digest());
        // ... but result-affecting fields do.
        let other = CampaignSpec { root_seed: Some(2025), ..spec.clone() };
        assert_ne!(other.digest(), spec.digest());
        let other = CampaignSpec { engine: "fast".to_owned(), ..spec.clone() };
        assert_ne!(other.digest(), spec.digest());
    }

    #[test]
    fn bad_specs_are_rejected_with_field_names() {
        let err = CampaignSpec::parse_json(r#"{"schema":"safedm-api/9"}"#).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
        let err = CampaignSpec::parse_json(r#"{"protocol":"warp"}"#).unwrap_err();
        assert!(err.contains("invalid protocol"), "{err}");
        let err = CampaignSpec::parse_json(r#"{"runs":0}"#).unwrap_err();
        assert!(err.contains("runs"), "{err}");
        let err = CampaignSpec::parse_json(r#"{"kernels":[]}"#).unwrap_err();
        assert!(err.contains("kernel"), "{err}");
        let err = CampaignSpec::parse_json(r#"{"staggers":"all"}"#).unwrap_err();
        assert!(err.contains("staggers"), "{err}");
        assert!(CampaignSpec::parse_json("not json").is_err());
    }

    #[test]
    fn cell_digests_separate_every_identity_field() {
        let cell = CellSpec {
            protocol: Protocol::Grid,
            kernel: "fac".to_owned(),
            config: "nops=100".to_owned(),
            run: 1,
            seed: 42,
            engine: "cycle".to_owned(),
        };
        let d = cell.digest();
        assert_eq!(d, cell.clone().digest());
        assert_ne!(d, CellSpec { kernel: "bitcount".to_owned(), ..cell.clone() }.digest());
        assert_ne!(d, CellSpec { config: "nops=0".to_owned(), ..cell.clone() }.digest());
        assert_ne!(d, CellSpec { run: 2, ..cell.clone() }.digest());
        assert_ne!(d, CellSpec { seed: 43, ..cell.clone() }.digest());
        assert_ne!(d, CellSpec { engine: "fast".to_owned(), ..cell.clone() }.digest());
        assert_ne!(d, CellSpec { protocol: Protocol::Table1, ..cell }.digest());
    }

    #[test]
    fn null_root_seed_selects_legacy_mode() {
        let spec = CampaignSpec::parse_json(r#"{"root_seed":null}"#).unwrap();
        assert_eq!(spec.root_seed, None);
        let back = CampaignSpec::parse_json(&spec.canonical_json()).unwrap();
        assert_eq!(back.root_seed, None);
        assert_ne!(spec.digest(), CampaignSpec::default().digest());
    }
}
