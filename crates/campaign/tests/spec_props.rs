//! Property tests for cache-key canonicalisation: a campaign's content
//! digest must be a function of *what the spec asks for*, never of how the
//! submission happened to be spelled — field order, elided defaults and
//! scheduling hints must all wash out.

use proptest::prelude::*;
use safedm_campaign::spec::{CampaignSpec, CellSpec, Protocol};

fn any_protocol() -> impl Strategy<Value = Protocol> {
    prop_oneof![Just(Protocol::Grid), Just(Protocol::Table1), Just(Protocol::Ccf)]
}

fn any_kernel_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("fac"),
        Just("bitcount"),
        Just("iir"),
        Just("quicksort"),
        Just("pm"),
        Just("insertsort"),
    ]
    .prop_map(str::to_owned)
}

fn any_engine() -> impl Strategy<Value = String> {
    prop_oneof![Just("cycle"), Just("fast"), Just("hybrid")].prop_map(str::to_owned)
}

fn opt_u64(range: std::ops::Range<u64>) -> impl Strategy<Value = Option<u64>> {
    (proptest::bool::weighted(0.7), range).prop_map(|(some, v)| some.then_some(v))
}

fn any_spec() -> impl Strategy<Value = CampaignSpec> {
    (
        (
            any_protocol(),
            proptest::collection::vec(any_kernel_name(), 1..4),
            proptest::collection::vec(0u64..20_000, 1..4),
            1u64..16,
        ),
        (opt_u64(0..u64::MAX), any_engine(), opt_u64(1..64), proptest::bool::weighted(0.5)),
    )
        .prop_map(
            |((protocol, kernels, staggers, runs), (root_seed, engine, jobs, keep_timing))| {
                CampaignSpec {
                    protocol,
                    kernels,
                    staggers,
                    runs,
                    root_seed,
                    engine,
                    jobs,
                    keep_timing,
                }
            },
        )
}

/// Renders `spec` as a JSON object with its fields in a shuffled order,
/// optionally eliding any field that still holds its default value.
fn render_shuffled(spec: &CampaignSpec, order_seed: u64, elide_defaults: bool) -> String {
    let d = CampaignSpec::default();
    let mut fields: Vec<(String, String)> = Vec::new();
    let quote_list = |xs: &[String]| {
        format!("[{}]", xs.iter().map(|x| format!("\"{x}\"")).collect::<Vec<_>>().join(","))
    };
    let uint_list =
        |xs: &[u64]| format!("[{}]", xs.iter().map(u64::to_string).collect::<Vec<_>>().join(","));
    let mut push = |name: &str, value: String, is_default: bool| {
        if !(elide_defaults && is_default) {
            fields.push((name.to_owned(), value));
        }
    };
    push("schema", "\"safedm-api/1\"".to_owned(), false);
    push("protocol", format!("\"{}\"", spec.protocol.as_str()), spec.protocol == d.protocol);
    push("kernels", quote_list(&spec.kernels), spec.kernels == d.kernels);
    push("staggers", uint_list(&spec.staggers), spec.staggers == d.staggers);
    push("runs", spec.runs.to_string(), spec.runs == d.runs);
    push(
        "root_seed",
        spec.root_seed.map_or("null".to_owned(), |s| s.to_string()),
        spec.root_seed == d.root_seed,
    );
    push("engine", format!("\"{}\"", spec.engine), spec.engine == d.engine);
    push("jobs", spec.jobs.map_or("null".to_owned(), |j| j.to_string()), spec.jobs == d.jobs);
    push("keep_timing", spec.keep_timing.to_string(), spec.keep_timing == d.keep_timing);

    // Deterministic Fisher-Yates driven by order_seed.
    let mut state = safedm_campaign::SplitMix64::new(order_seed);
    for i in (1..fields.len()).rev() {
        #[allow(clippy::cast_possible_truncation)]
        let j = (state.next_u64() % (i as u64 + 1)) as usize;
        fields.swap(i, j);
    }
    let body = fields.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect::<Vec<_>>().join(",");
    format!("{{{body}}}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn field_order_never_changes_the_digest(spec in any_spec(), seed in any::<u64>()) {
        let canonical = CampaignSpec::parse_json(&spec.canonical_json()).unwrap();
        let shuffled = CampaignSpec::parse_json(&render_shuffled(&spec, seed, false)).unwrap();
        prop_assert_eq!(&shuffled, &canonical);
        prop_assert_eq!(shuffled.digest(), canonical.digest());
        prop_assert_eq!(shuffled.canonical_json(), canonical.canonical_json());
    }

    #[test]
    fn default_elision_never_changes_the_digest(spec in any_spec(), seed in any::<u64>()) {
        let full = CampaignSpec::parse_json(&render_shuffled(&spec, seed, false)).unwrap();
        let sparse = CampaignSpec::parse_json(&render_shuffled(&spec, seed, true)).unwrap();
        prop_assert_eq!(&sparse, &full);
        prop_assert_eq!(sparse.digest(), full.digest());
    }

    #[test]
    fn scheduling_hints_never_change_the_digest(
        spec in any_spec(),
        jobs in opt_u64(1..64),
        keep_timing in proptest::bool::weighted(0.5),
    ) {
        let hinted = CampaignSpec { jobs, keep_timing, ..spec.clone() };
        prop_assert_eq!(hinted.digest(), spec.digest());
    }

    #[test]
    fn canonicalisation_is_idempotent(spec in any_spec()) {
        let once = CampaignSpec::parse_json(&spec.canonical_json()).unwrap();
        let twice = CampaignSpec::parse_json(&once.canonical_json()).unwrap();
        prop_assert_eq!(once.canonical_json(), twice.canonical_json());
        prop_assert_eq!(once.digest(), twice.digest());
    }

    #[test]
    fn cell_digest_is_stable_and_injective_on_seed(
        kernel in any_kernel_name(),
        run in 0u64..8,
        seeds in proptest::collection::vec(any::<u64>(), 2..6),
    ) {
        let mk = |seed: u64| CellSpec {
            protocol: Protocol::Grid,
            kernel: kernel.clone(),
            config: "nops=0".to_owned(),
            run,
            seed,
            engine: "cycle".to_owned(),
        };
        let unique: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        let digests: std::collections::HashSet<u64> =
            unique.iter().map(|&s| mk(s).digest()).collect();
        // Digests are deterministic...
        for &s in &unique {
            prop_assert_eq!(mk(s).digest(), mk(s).digest());
        }
        // ...and distinct seeds do not collide in practice (64-bit mixed
        // FNV over small sets).
        prop_assert_eq!(digests.len(), unique.len());
    }
}
