//! SafeDM configuration.

/// How the Instruction Signature is laid out (paper, Section III-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IsLayout {
    /// Keep the instructions *per pipeline stage* (slot position matters).
    /// Matches NOEL-V, whose stage groups move all-or-none; two cores
    /// processing the same instructions in different stages still count as
    /// diverse. This is the paper's deployed layout (Fig. 2b).
    #[default]
    PerStage,
    /// Keep only the flat list of in-flight (fetched but not retired)
    /// instructions, ignoring stage position — the fallback the paper
    /// prescribes for cores without the group-advance property. Coarser:
    /// more false "no diversity" reports (see ablation A2).
    InFlight,
}

/// How lack of diversity is reported (paper, Section III-B3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportMode {
    /// Raise the interrupt line on the first cycle without diversity.
    #[default]
    InterruptFirst,
    /// Raise the interrupt once the count of cycles without diversity
    /// reaches the programmed threshold.
    InterruptThreshold(u64),
    /// Never interrupt; the RTOS polls the counters over APB.
    Polling,
}

/// Configuration of one SafeDM instance.
///
/// # Examples
///
/// ```
/// use safedm_core::{SafeDmConfig, IsLayout, ReportMode};
///
/// let cfg = SafeDmConfig::default();
/// assert_eq!(cfg.data_fifo_depth, 8);
/// assert_eq!(cfg.is_layout, IsLayout::PerStage);
/// assert_eq!(cfg.report_mode, ReportMode::InterruptFirst);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SafeDmConfig {
    /// Depth *n* of each per-port data FIFO, in cycles. The paper sizes it
    /// to the pipeline depth; the default covers the 7-stage NOEL-V with
    /// one cycle of slack.
    pub data_fifo_depth: usize,
    /// Instruction-signature layout.
    pub is_layout: IsLayout,
    /// Reporting behaviour.
    pub report_mode: ReportMode,
    /// Include stale (invalid-slot) instruction bits in the IS comparison.
    /// Hardware latches hold stale encodings; masking them (default) makes
    /// the comparison depend only on architecturally live state.
    pub include_stale_bits: bool,
    /// Width of each history-module bin, in cycles of episode length.
    pub history_bin_width: u64,
    /// Number of history bins (the last bin is open-ended).
    pub history_bins: usize,
    /// Stop counting once either monitored core halts (bare-metal runs end
    /// at different times; tail cycles would be meaningless).
    pub stop_when_halted: bool,
    /// Also compute per-cycle Hamming distances between the signatures (a
    /// diversity *magnitude*, beyond the paper's binary verdict). Costs an
    /// extra pass per cycle; off by default.
    pub track_hamming: bool,
}

impl Default for SafeDmConfig {
    fn default() -> SafeDmConfig {
        SafeDmConfig {
            data_fifo_depth: 8,
            is_layout: IsLayout::PerStage,
            report_mode: ReportMode::InterruptFirst,
            include_stale_bits: false,
            history_bin_width: 4,
            history_bins: 16,
            stop_when_halted: true,
            track_hamming: false,
        }
    }
}

impl SafeDmConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on a zero FIFO depth or an empty history.
    pub fn validate(&self) {
        assert!(self.data_fifo_depth >= 1, "data FIFO depth must be at least 1");
        assert!(self.history_bins >= 1, "history needs at least one bin");
        assert!(self.history_bin_width >= 1, "history bin width must be at least 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        SafeDmConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "FIFO depth")]
    fn zero_depth_rejected() {
        let cfg = SafeDmConfig { data_fifo_depth: 0, ..SafeDmConfig::default() };
        cfg.validate();
    }

    #[test]
    fn modes_compare() {
        assert_ne!(ReportMode::InterruptFirst, ReportMode::Polling);
        assert_eq!(ReportMode::InterruptThreshold(5), ReportMode::InterruptThreshold(5));
    }
}
