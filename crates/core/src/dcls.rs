//! A Dual-Core LockStep (DCLS) output comparator — the classical mechanism
//! of the paper's Fig. 1, provided as a reference detector.
//!
//! DCLS ties two cores together and compares their *outputs* with a fixed
//! staggering: the shadow core's commits are compared against the head
//! core's commits from `stagger` instructions earlier. On non-lockstepped
//! cores the same idea can be applied at the commit stream: this module
//! buffers per-commit `(committed-count, write-port digest)` pairs and
//! flags the first divergence. Fault campaigns use it to measure
//! **detection latency** (cycles from injection to first mismatch), the
//! quantity the FTTI argument of Section III-A depends on.

use std::collections::VecDeque;

use safedm_soc::CoreProbe;

fn digest(probe: &CoreProbe) -> u64 {
    let mut d = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    for w in &probe.writes {
        if w.enable {
            d ^= w.value;
            d = d.wrapping_mul(0x1000_0000_01b3);
        }
    }
    d ^ u64::from(probe.committed)
}

/// Output comparator over two commit streams.
///
/// Feed one probe pair per cycle; samples are queued per core and compared
/// in commit order, which tolerates arbitrary cycle-level staggering
/// between the cores (unlike classical DCLS, which requires a fixed
/// offset).
///
/// # Examples
///
/// ```
/// use safedm_core::DclsComparator;
/// use safedm_soc::CoreProbe;
///
/// let mut cmp = DclsComparator::new(64);
/// let mut p = CoreProbe::default();
/// p.committed = 1;
/// p.writes[0].enable = true;
/// p.writes[0].value = 42;
/// cmp.observe(&p, &p);
/// assert!(!cmp.mismatch());
/// ```
#[derive(Debug, Clone)]
pub struct DclsComparator {
    queues: [VecDeque<u64>; 2],
    capacity: usize,
    compared: u64,
    mismatch_at: Option<u64>,
    cycle: u64,
    overflowed: bool,
}

impl DclsComparator {
    /// Creates a comparator with a per-core buffer of `capacity` pending
    /// commit digests (hardware would size this to the tolerated
    /// staggering).
    #[must_use]
    pub fn new(capacity: usize) -> DclsComparator {
        DclsComparator {
            queues: [VecDeque::new(), VecDeque::new()],
            capacity,
            compared: 0,
            mismatch_at: None,
            cycle: 0,
            overflowed: false,
        }
    }

    /// Observes one cycle of both cores and compares whatever commit
    /// digests are available from both sides.
    pub fn observe(&mut self, p0: &CoreProbe, p1: &CoreProbe) {
        self.cycle += 1;
        if self.mismatch_at.is_some() {
            return;
        }
        for (q, p) in self.queues.iter_mut().zip([p0, p1]) {
            if p.committed > 0 {
                if q.len() >= self.capacity {
                    // Hardware would stall or flag; the model records it.
                    self.overflowed = true;
                    q.pop_front();
                }
                q.push_back(digest(p));
            }
        }
        while let (Some(a), Some(b)) = (self.queues[0].front(), self.queues[1].front()) {
            if a != b {
                self.mismatch_at = Some(self.cycle);
                return;
            }
            self.queues[0].pop_front();
            self.queues[1].pop_front();
            self.compared += 1;
        }
    }

    /// Whether a mismatch has been flagged.
    #[must_use]
    pub fn mismatch(&self) -> bool {
        self.mismatch_at.is_some()
    }

    /// The cycle (1-based observation count) of the first mismatch.
    #[must_use]
    pub fn mismatch_cycle(&self) -> Option<u64> {
        self.mismatch_at
    }

    /// Commit groups compared equal so far.
    #[must_use]
    pub fn compared(&self) -> u64 {
        self.compared
    }

    /// Whether the staggering exceeded the buffer capacity at any point.
    #[must_use]
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_soc::PortSample;

    fn commit(v: u64) -> CoreProbe {
        let mut p = CoreProbe { committed: 1, ..CoreProbe::default() };
        p.writes[0] = PortSample { enable: true, value: v };
        p
    }

    #[test]
    fn equal_streams_never_flag() {
        let mut c = DclsComparator::new(16);
        for i in 0..100u64 {
            let p = commit(i);
            c.observe(&p, &p);
        }
        assert!(!c.mismatch());
        assert_eq!(c.compared(), 100);
    }

    #[test]
    fn staggered_equal_streams_never_flag() {
        let mut c = DclsComparator::new(16);
        let idle = CoreProbe::default();
        // core 1 lags by 5 commits
        for i in 0..5u64 {
            c.observe(&commit(i), &idle);
        }
        for i in 5..50u64 {
            c.observe(&commit(i), &commit(i - 5));
        }
        assert!(!c.mismatch());
        assert!(c.compared() >= 40);
    }

    #[test]
    fn diverging_value_flags_at_first_comparison() {
        let mut c = DclsComparator::new(16);
        for i in 0..10u64 {
            c.observe(&commit(i), &commit(i));
        }
        c.observe(&commit(99), &commit(100));
        assert!(c.mismatch());
        assert_eq!(c.mismatch_cycle(), Some(11));
        // further observations are inert
        c.observe(&commit(1), &commit(1));
        assert_eq!(c.compared(), 10);
    }

    #[test]
    fn overflow_is_reported_not_fatal() {
        let mut c = DclsComparator::new(4);
        let idle = CoreProbe::default();
        for i in 0..10u64 {
            c.observe(&commit(i), &idle); // core 1 silent: queue overflows
        }
        assert!(c.overflowed());
        assert!(!c.mismatch());
    }

    #[test]
    fn commit_count_differences_affect_digest() {
        let mut a = CoreProbe { committed: 2, ..CoreProbe::default() };
        a.writes[0] = PortSample { enable: true, value: 7 };
        let mut b = a;
        b.committed = 1;
        let mut c = DclsComparator::new(8);
        c.observe(&a, &b);
        assert!(c.mismatch(), "dual vs single commit of same value must differ");
    }
}
