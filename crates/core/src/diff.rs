//! The Instruction-diff module (paper, Section IV-B3).
//!
//! A signed counter that increases when core 0 commits an instruction and
//! decreases when core 1 does; its value is the instruction-count staggering
//! between the cores. Zero means the cores have committed exactly the same
//! number of instructions — the "zero staggering" condition of Table I.

/// Staggering counter between two redundant cores.
///
/// # Examples
///
/// ```
/// use safedm_core::InstructionDiff;
///
/// let mut d = InstructionDiff::new();
/// d.update(2, 0); // core 0 commits 2, core 1 none
/// assert_eq!(d.value(), 2);
/// d.update(0, 2);
/// assert!(d.is_zero());
/// assert_eq!(d.zero_cycles(), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstructionDiff {
    value: i64,
    zero_cycles: u64,
    max_abs: u64,
    cycles: u64,
}

impl InstructionDiff {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> InstructionDiff {
        InstructionDiff::default()
    }

    /// Applies one cycle of commit counts and updates the zero-staggering
    /// statistics. Returns the new staggering value.
    pub fn update(&mut self, committed0: u8, committed1: u8) -> i64 {
        self.value += i64::from(committed0) - i64::from(committed1);
        self.cycles += 1;
        if self.value == 0 {
            self.zero_cycles += 1;
        }
        self.max_abs = self.max_abs.max(self.value.unsigned_abs());
        self.value
    }

    /// Current staggering in instructions (positive: core 0 ahead).
    #[must_use]
    pub fn value(&self) -> i64 {
        self.value
    }

    /// Whether the staggering is currently zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.value == 0
    }

    /// Cycles observed with zero staggering (the Table I "Zero stag" count).
    #[must_use]
    pub fn zero_cycles(&self) -> u64 {
        self.zero_cycles
    }

    /// Maximum absolute staggering seen.
    #[must_use]
    pub fn max_abs(&self) -> u64 {
        self.max_abs
    }

    /// Cycles observed in total.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Presets the staggering value (used when the monitor is armed
    /// mid-run: the hardware counter would have accumulated `value` since
    /// reset). Statistics keep counting from the preset value.
    pub fn preset(&mut self, value: i64) {
        self.value = value;
    }

    /// Resets all state.
    pub fn reset(&mut self) {
        *self = InstructionDiff::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_zero_cycles_including_initial_equality() {
        let mut d = InstructionDiff::new();
        d.update(0, 0); // both idle: still zero staggering
        d.update(1, 1);
        d.update(2, 0);
        d.update(0, 1);
        d.update(0, 1);
        assert_eq!(d.zero_cycles(), 3);
        assert_eq!(d.value(), 0);
        assert_eq!(d.cycles(), 5);
    }

    #[test]
    fn tracks_max_abs_both_directions() {
        let mut d = InstructionDiff::new();
        d.update(2, 0);
        d.update(2, 0);
        assert_eq!(d.max_abs(), 4);
        for _ in 0..5 {
            d.update(0, 2);
        }
        assert_eq!(d.value(), -6);
        assert_eq!(d.max_abs(), 6);
    }

    #[test]
    fn reset_clears() {
        let mut d = InstructionDiff::new();
        d.update(1, 0);
        d.reset();
        assert_eq!(d, InstructionDiff::new());
    }
}
