//! The hold-gated shift FIFO used by both signature generators.
//!
//! Hardware-wise this is a chain of registers clock-gated by the pipeline
//! hold signal: every enabled cycle the oldest entry falls off the head and
//! the new sample enters at the tail (paper, Section III-B1).

/// Fixed-depth shift FIFO.
///
/// # Examples
///
/// ```
/// use safedm_core::HoldFifo;
///
/// let mut f = HoldFifo::new(3, 0u64);
/// f.shift(1);
/// f.shift(2);
/// f.shift(3);
/// assert_eq!(f.entries(), &[1, 2, 3]);
/// f.shift(4); // 1 falls off
/// assert_eq!(f.entries(), &[2, 3, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HoldFifo<T> {
    entries: Vec<T>, // oldest first
}

impl<T: Clone> HoldFifo<T> {
    /// Creates a FIFO of `depth` entries initialised to `init` (hardware
    /// registers reset to a known value).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(depth: usize, init: T) -> HoldFifo<T> {
        assert!(depth >= 1, "FIFO depth must be at least 1");
        HoldFifo { entries: vec![init; depth] }
    }

    /// Shifts in `sample`, dropping the oldest entry.
    pub fn shift(&mut self, sample: T) {
        self.entries.rotate_left(1);
        let last = self.entries.len() - 1;
        self.entries[last] = sample;
    }

    /// The entries, oldest first.
    #[must_use]
    pub fn entries(&self) -> &[T] {
        &self.entries
    }

    /// FIFO depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Resets every entry to `value`.
    pub fn reset(&mut self, value: T) {
        for e in &mut self.entries {
            *e = value.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initialised_full() {
        let f = HoldFifo::new(4, 7u32);
        assert_eq!(f.entries(), &[7, 7, 7, 7]);
        assert_eq!(f.depth(), 4);
    }

    #[test]
    fn shift_order_is_fifo() {
        let mut f = HoldFifo::new(2, 0u8);
        f.shift(1);
        assert_eq!(f.entries(), &[0, 1]);
        f.shift(2);
        assert_eq!(f.entries(), &[1, 2]);
        f.shift(3);
        assert_eq!(f.entries(), &[2, 3]);
    }

    #[test]
    fn equality_is_content_based() {
        let mut a = HoldFifo::new(3, 0u64);
        let mut b = HoldFifo::new(3, 0u64);
        assert_eq!(a, b);
        a.shift(5);
        assert_ne!(a, b);
        b.shift(5);
        assert_eq!(a, b);
    }

    #[test]
    fn reset_restores_known_state() {
        let mut f = HoldFifo::new(3, 0u64);
        f.shift(9);
        f.reset(0);
        assert_eq!(f, HoldFifo::new(3, 0u64));
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn zero_depth_panics() {
        let _ = HoldFifo::new(0, 0u8);
    }

    #[test]
    fn depth_one_tracks_last() {
        let mut f = HoldFifo::new(1, 0u8);
        f.shift(3);
        assert_eq!(f.entries(), &[3]);
        f.shift(4);
        assert_eq!(f.entries(), &[4]);
    }
}
