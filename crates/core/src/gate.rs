//! Pre-run static gate: cross-validation of `safedm-analysis` predictions
//! against the runtime monitor.
//!
//! The static analyzer promises that DIV001/DIV002 regions produce
//! no-diversity cycles whenever both cores execute them with zero effective
//! staggering. The gate tracks, per predicted region, how many cycles the
//! monitored pair actually spent committing inside it and how many of those
//! cycles the monitor reported no diversity — a self-test of the analyzer
//! (no false "guaranteed" findings) and of the monitor (no missed
//! collisions) at once.

use safedm_analysis::{AnalysisReport, LintCode, PcSpan};

use crate::CycleReport;

/// Cross-validation state for one guaranteed (DIV001/DIV002) finding.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// Which lint predicted the hazard.
    pub code: LintCode,
    /// The predicted no-diversity region.
    pub span: PcSpan,
    /// Monitored cycles in which core 0's latest commit lay in the span.
    pub executed_cycles: u64,
    /// Of those, cycles the monitor reported no diversity.
    pub no_div_cycles: u64,
}

impl GateCheck {
    /// Whether the region was ever executed during the monitored run.
    #[must_use]
    pub fn executed(&self) -> bool {
        self.executed_cycles > 0
    }

    /// Whether the prediction held: an executed region produced at least one
    /// no-diversity cycle (unexecuted regions are vacuously confirmed).
    #[must_use]
    pub fn confirmed(&self) -> bool {
        self.executed_cycles == 0 || self.no_div_cycles > 0
    }
}

/// The pre-run gate itself: the static report plus per-finding runtime
/// counters, fed each cycle by [`MonitoredSoc::step`](crate::MonitoredSoc).
#[derive(Debug, Clone)]
pub struct DiversityGate {
    report: AnalysisReport,
    checks: Vec<GateCheck>,
}

impl DiversityGate {
    /// Builds a gate tracking every guaranteed hazard of `report`.
    #[must_use]
    pub fn new(report: AnalysisReport) -> DiversityGate {
        let checks = report
            .guaranteed_hazards()
            .map(|d| GateCheck { code: d.code, span: d.span, executed_cycles: 0, no_div_cycles: 0 })
            .collect();
        DiversityGate { report, checks }
    }

    /// The static report the gate was built from.
    #[must_use]
    pub fn report(&self) -> &AnalysisReport {
        &self.report
    }

    /// Per-finding cross-validation counters.
    #[must_use]
    pub fn checks(&self) -> &[GateCheck] {
        &self.checks
    }

    /// Whether every executed predicted region produced no-diversity cycles.
    #[must_use]
    pub fn all_confirmed(&self) -> bool {
        self.checks.iter().all(GateCheck::confirmed)
    }

    /// Number of checks whose region was actually executed.
    #[must_use]
    pub fn executed_count(&self) -> usize {
        self.checks.iter().filter(|c| c.executed()).count()
    }

    /// One line per check, for reports and CLI output.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for c in &self.checks {
            let verdict = match (c.executed(), c.confirmed()) {
                (false, _) => "not executed",
                (true, true) => "CONFIRMED",
                (true, false) => "REFUTED",
            };
            let _ = writeln!(
                out,
                "  {} {}  executed {} cycles, no-diversity {} cycles  -> {}",
                c.code, c.span, c.executed_cycles, c.no_div_cycles, verdict
            );
        }
        if self.checks.is_empty() {
            out.push_str("  (no guaranteed hazards predicted)\n");
        }
        out
    }

    /// Feeds one monitored cycle: `pc` is core 0's most recent commit PC.
    pub(crate) fn observe(&mut self, pc: Option<u64>, report: &CycleReport) {
        if !report.observed {
            return;
        }
        let Some(pc) = pc else { return };
        for c in &mut self.checks {
            if c.span.contains(pc) {
                c.executed_cycles += 1;
                if report.no_diversity {
                    c.no_div_cycles += 1;
                }
            }
        }
    }
}
