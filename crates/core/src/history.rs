//! The History module (paper, Section IV-B4): evaluation-only histograms of
//! no-diversity episodes with configurable bin sizes.

/// Histogram of episode lengths with uniform bins and an open-ended tail.
///
/// # Examples
///
/// ```
/// use safedm_core::Histogram;
///
/// let mut h = Histogram::new(4, 4); // bins [1,4] [5,8] [9,12] [13,∞)
/// h.record(3);
/// h.record(6);
/// h.record(100);
/// assert_eq!(h.bins(), &[1, 1, 0, 1]);
/// assert_eq!(h.total_episodes(), 3);
/// assert_eq!(h.total_cycles(), 109);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bin_width: u64,
    bins: Vec<u64>,
    total_cycles: u64,
    total_episodes: u64,
    max_episode: u64,
}

impl Histogram {
    /// Creates a histogram of `bins` bins, each `bin_width` cycles wide.
    ///
    /// # Panics
    ///
    /// Panics on zero bins or zero width.
    #[must_use]
    pub fn new(bins: usize, bin_width: u64) -> Histogram {
        assert!(bins >= 1 && bin_width >= 1, "histogram needs bins of nonzero width");
        Histogram {
            bin_width,
            bins: vec![0; bins],
            total_cycles: 0,
            total_episodes: 0,
            max_episode: 0,
        }
    }

    /// Records an episode of `length` cycles (zero-length episodes are
    /// ignored).
    pub fn record(&mut self, length: u64) {
        if length == 0 {
            return;
        }
        let idx = (((length - 1) / self.bin_width) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
        self.total_cycles += length;
        self.total_episodes += 1;
        self.max_episode = self.max_episode.max(length);
    }

    /// Per-bin episode counts.
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Inclusive cycle range covered by bin `idx` (`None` upper bound for
    /// the open-ended last bin).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn bin_range(&self, idx: usize) -> (u64, Option<u64>) {
        assert!(idx < self.bins.len());
        let lo = idx as u64 * self.bin_width + 1;
        if idx + 1 == self.bins.len() {
            (lo, None)
        } else {
            (lo, Some((idx as u64 + 1) * self.bin_width))
        }
    }

    /// Total episodes recorded.
    #[must_use]
    pub fn total_episodes(&self) -> u64 {
        self.total_episodes
    }

    /// Total cycles across all episodes.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Longest episode recorded.
    #[must_use]
    pub fn max_episode(&self) -> u64 {
        self.max_episode
    }

    /// Clears all counts.
    pub fn reset(&mut self) {
        self.bins.iter_mut().for_each(|b| *b = 0);
        self.total_cycles = 0;
        self.total_episodes = 0;
        self.max_episode = 0;
    }
}

/// Tracks run lengths of a boolean condition cycle-by-cycle and records each
/// completed run into a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpisodeTracker {
    hist: Histogram,
    current: u64,
}

impl EpisodeTracker {
    /// Creates a tracker over a fresh histogram.
    #[must_use]
    pub fn new(bins: usize, bin_width: u64) -> EpisodeTracker {
        EpisodeTracker { hist: Histogram::new(bins, bin_width), current: 0 }
    }

    /// Feeds one cycle of the condition.
    pub fn observe(&mut self, active: bool) {
        if active {
            self.current += 1;
        } else if self.current > 0 {
            self.hist.record(self.current);
            self.current = 0;
        }
    }

    /// Flushes a trailing open episode (call at end of run).
    pub fn finish(&mut self) {
        if self.current > 0 {
            self.hist.record(self.current);
            self.current = 0;
        }
    }

    /// The underlying histogram.
    #[must_use]
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Length of the episode currently in progress.
    #[must_use]
    pub fn open_episode(&self) -> u64 {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_edges() {
        let h = Histogram::new(3, 10);
        assert_eq!(h.bin_range(0), (1, Some(10)));
        assert_eq!(h.bin_range(1), (11, Some(20)));
        assert_eq!(h.bin_range(2), (21, None));
    }

    #[test]
    fn boundary_lengths_bin_correctly() {
        let mut h = Histogram::new(3, 10);
        h.record(1);
        h.record(10);
        h.record(11);
        h.record(20);
        h.record(21);
        h.record(1000);
        assert_eq!(h.bins(), &[2, 2, 2]);
        assert_eq!(h.max_episode(), 1000);
    }

    #[test]
    fn zero_length_ignored() {
        let mut h = Histogram::new(2, 4);
        h.record(0);
        assert_eq!(h.total_episodes(), 0);
    }

    #[test]
    fn tracker_splits_runs() {
        let mut t = EpisodeTracker::new(4, 2);
        for active in [true, true, false, true, false, false, true, true, true] {
            t.observe(active);
        }
        t.finish();
        // runs: 2, 1, 3
        assert_eq!(t.histogram().total_episodes(), 3);
        assert_eq!(t.histogram().total_cycles(), 6);
        assert_eq!(t.histogram().bins(), &[2, 1, 0, 0]);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut t = EpisodeTracker::new(2, 2);
        t.observe(true);
        t.finish();
        t.finish();
        assert_eq!(t.histogram().total_episodes(), 1);
        assert_eq!(t.open_episode(), 0);
    }

    #[test]
    fn reset_clears_histogram() {
        let mut h = Histogram::new(2, 2);
        h.record(5);
        h.reset();
        assert_eq!(h.total_episodes(), 0);
        assert_eq!(h.total_cycles(), 0);
    }
}
