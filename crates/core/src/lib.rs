//! # safedm-core — the SafeDM hardware diversity monitor
//!
//! Behavioural model of **SafeDM** (Bas et al., DATE 2022): a hardware
//! module that quantifies the diversity between two cores performing
//! redundant execution on a non-lockstepped MPSoC, enabling an ASIL-D
//! safety concept without lockstep and without intrusive staggering
//! enforcement.
//!
//! Every cycle, SafeDM captures each core's
//! [`DataSignature`] (register-file port traffic over the last *n* cycles)
//! and [`InstructionSignature`] (per-stage pipeline occupancy) and flags
//! **lack of diversity** exactly when both signatures are bit-identical
//! across the cores ([`SafeDm::observe`]). Lack of diversity means a common
//! cause fault could produce identical errors in both cores and escape
//! output comparison; diversity means it cannot. The monitor may raise
//! false positives (unobserved diversity sources) but never false
//! negatives.
//!
//! The crate also provides:
//!
//! * [`InstructionDiff`] — the staggering counter of the paper's evaluation,
//! * [`Histogram`]/[`EpisodeTracker`] — the History module,
//! * APB integration ([`regs`], mirrored register bank),
//! * [`SafeDe`] — the *intrusive* staggering-enforcement baseline
//!   (IOLTS 2021) used for the Table II comparison, and
//! * [`MonitoredSoc`] — an MPSoC with SafeDM attached, ready to run
//!   redundant bare-metal programs.
//!
//! ## Example
//!
//! ```
//! use safedm_asm::Asm;
//! use safedm_core::{MonitoredSoc, SafeDmConfig};
//! use safedm_isa::Reg;
//! use safedm_soc::SocConfig;
//!
//! // A redundant countdown loop on both cores.
//! let mut a = Asm::new();
//! a.li(Reg::T0, 1000);
//! let top = a.here("top");
//! a.addi(Reg::T0, Reg::T0, -1);
//! a.bnez(Reg::T0, top);
//! a.ebreak();
//! let prog = a.link(0x8000_0000)?;
//!
//! let mut sys = MonitoredSoc::new(SocConfig::default(), SafeDmConfig::default());
//! sys.load_program(&prog);
//! let out = sys.run(10_000_000);
//! assert!(out.run.all_clean());
//! // Bus serialisation produces natural diversity: far fewer cycles
//! // without diversity than cycles with zero staggering.
//! assert!(out.no_div_cycles <= out.zero_stag_cycles);
//! # Ok::<(), safedm_asm::AsmError>(())
//! ```

#![warn(missing_docs)]

mod config;
mod dcls;
mod diff;
mod fifo;
mod gate;
mod history;
mod monitor;
mod multipair;
mod obs;
pub mod regs;
mod safede;
mod signature;
mod system;

pub use config::{IsLayout, ReportMode, SafeDmConfig};
pub use dcls::DclsComparator;
pub use diff::InstructionDiff;
pub use fifo::HoldFifo;
pub use gate::{DiversityGate, GateCheck};
pub use history::{EpisodeTracker, Histogram};
pub use monitor::{CycleReport, DiversityCounters, HammingStats, SafeDm};
pub use multipair::MultiPairSoc;
pub use obs::{ObsConfig, RunObserver};
pub use safede::{SafeDe, SafeDeConfig};
pub use signature::{DataSample, DataSignature, InstructionSignature, DATA_PORTS};
pub use system::{MonitoredRun, MonitoredSoc, TraceSample, SAFEDM_APB_OFFSET};
