//! The SafeDM Diversity Monitor (paper, Section III-B3).
//!
//! SafeDM observes two cores' probes every cycle, maintains their Data and
//! Instruction Signatures, and flags **lack of diversity** exactly when both
//! signatures are bit-identical across the cores. By construction the
//! monitor can report false positives (diversity may exist in sources it
//! does not observe) but never false negatives: if any observed state bit
//! differs, the cores are physically diverse and no flag is raised.

use safedm_soc::CoreProbe;

use crate::{
    DataSignature, EpisodeTracker, Histogram, InstructionDiff, InstructionSignature, ReportMode,
    SafeDmConfig,
};

/// What the monitor concluded in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleReport {
    /// The Data Signatures matched (no data diversity).
    pub ds_match: bool,
    /// The Instruction Signatures matched (no instruction diversity).
    pub is_match: bool,
    /// Lack of diversity: both signatures matched.
    pub no_diversity: bool,
    /// The committed-instruction staggering is currently zero.
    pub zero_stagger: bool,
    /// Whether this cycle was actually monitored (false once a core halts
    /// or while the monitor is disabled).
    pub observed: bool,
}

impl Default for CycleReport {
    fn default() -> CycleReport {
        CycleReport {
            ds_match: false,
            is_match: false,
            no_diversity: false,
            zero_stagger: true,
            observed: false,
        }
    }
}

/// Aggregate diversity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiversityCounters {
    /// Monitored cycles.
    pub cycles_observed: u64,
    /// Cycles with matching Data Signatures.
    pub ds_match_cycles: u64,
    /// Cycles with matching Instruction Signatures.
    pub is_match_cycles: u64,
    /// Cycles without diversity (both matched) — the Table I "No div".
    pub no_div_cycles: u64,
}

/// Accumulated Hamming-distance statistics (when
/// [`SafeDmConfig::track_hamming`] is enabled): a *magnitude* of diversity
/// beyond the paper's binary verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HammingStats {
    /// Sum of per-cycle DS distances.
    pub ds_sum: u64,
    /// Sum of per-cycle IS distances.
    pub is_sum: u64,
    /// Minimum combined distance over observed cycles.
    pub min_total: u32,
    /// Maximum combined distance over observed cycles.
    pub max_total: u32,
    /// Most recent `(ds, is)` distances.
    pub last: (u32, u32),
}

/// The SafeDM hardware diversity monitor.
///
/// # Examples
///
/// Two probes with identical state produce a no-diversity report:
///
/// ```
/// use safedm_core::{SafeDm, SafeDmConfig};
/// use safedm_soc::CoreProbe;
///
/// let mut dm = SafeDm::new(SafeDmConfig::default());
/// let p = CoreProbe::default();
/// let report = dm.observe(&p, &p);
/// assert!(report.no_diversity);
/// assert!(dm.irq_pending()); // default mode interrupts on first loss
/// ```
#[derive(Debug, Clone)]
pub struct SafeDm {
    cfg: SafeDmConfig,
    enabled: bool,
    ds: [DataSignature; 2],
    is: [InstructionSignature; 2],
    diff: InstructionDiff,
    counters: DiversityCounters,
    no_div_episodes: EpisodeTracker,
    ds_episodes: EpisodeTracker,
    is_episodes: EpisodeTracker,
    irq: bool,
    finished: bool,
    last: CycleReport,
    hamming: Option<HammingStats>,
}

impl SafeDm {
    /// Builds a monitor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(cfg: SafeDmConfig) -> SafeDm {
        cfg.validate();
        SafeDm {
            enabled: true,
            ds: [DataSignature::new(&cfg), DataSignature::new(&cfg)],
            is: [InstructionSignature::new(&cfg), InstructionSignature::new(&cfg)],
            diff: InstructionDiff::new(),
            counters: DiversityCounters::default(),
            no_div_episodes: EpisodeTracker::new(cfg.history_bins, cfg.history_bin_width),
            ds_episodes: EpisodeTracker::new(cfg.history_bins, cfg.history_bin_width),
            is_episodes: EpisodeTracker::new(cfg.history_bins, cfg.history_bin_width),
            irq: false,
            finished: false,
            last: CycleReport::default(),
            hamming: cfg
                .track_hamming
                .then(|| HammingStats { min_total: u32::MAX, ..HammingStats::default() }),
            cfg,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SafeDmConfig {
        &self.cfg
    }

    /// Observes one cycle of both cores. Call exactly once per SoC cycle,
    /// after stepping the cores.
    pub fn observe(&mut self, p0: &CoreProbe, p1: &CoreProbe) -> CycleReport {
        if !self.enabled || self.finished {
            self.last = CycleReport::default();
            return self.last;
        }
        if self.cfg.stop_when_halted && (p0.halted || p1.halted) {
            self.finish();
            self.last = CycleReport::default();
            return self.last;
        }

        self.ds[0].capture(p0);
        self.ds[1].capture(p1);
        self.is[0].capture(p0);
        self.is[1].capture(p1);

        let ds_match = self.ds[0] == self.ds[1];
        let is_match = self.is[0] == self.is[1];
        if let Some(h) = self.hamming.as_mut() {
            let dd = self.ds[0].hamming(&self.ds[1]);
            let di = self.is[0].hamming(&self.is[1]);
            h.ds_sum += u64::from(dd);
            h.is_sum += u64::from(di);
            h.min_total = h.min_total.min(dd + di);
            h.max_total = h.max_total.max(dd + di);
            h.last = (dd, di);
        }
        let no_diversity = ds_match && is_match;
        let stagger = self.diff.update(p0.committed, p1.committed);

        self.counters.cycles_observed += 1;
        self.counters.ds_match_cycles += u64::from(ds_match);
        self.counters.is_match_cycles += u64::from(is_match);
        self.counters.no_div_cycles += u64::from(no_diversity);
        self.ds_episodes.observe(ds_match);
        self.is_episodes.observe(is_match);
        self.no_div_episodes.observe(no_diversity);

        match self.cfg.report_mode {
            ReportMode::InterruptFirst => {
                if no_diversity {
                    self.irq = true;
                }
            }
            ReportMode::InterruptThreshold(k) => {
                if self.counters.no_div_cycles >= k && k > 0 {
                    self.irq = true;
                }
            }
            ReportMode::Polling => {}
        }

        self.last = CycleReport {
            ds_match,
            is_match,
            no_diversity,
            zero_stagger: stagger == 0,
            observed: true,
        };
        self.last
    }

    /// Stops monitoring and flushes open histogram episodes. Idempotent;
    /// called automatically when a monitored core halts.
    pub fn finish(&mut self) {
        if !self.finished {
            self.no_div_episodes.finish();
            self.ds_episodes.finish();
            self.is_episodes.finish();
            self.finished = true;
        }
    }

    /// Whether monitoring has ended.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The most recent cycle report.
    #[must_use]
    pub fn last_report(&self) -> CycleReport {
        self.last
    }

    /// Interrupt line state.
    #[must_use]
    pub fn irq_pending(&self) -> bool {
        self.irq
    }

    /// Clears the interrupt (RTOS acknowledge).
    pub fn clear_irq(&mut self) {
        self.irq = false;
    }

    /// Enables or disables monitoring.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether monitoring is enabled.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Reprograms the reporting mode (the paper's three options).
    pub fn set_report_mode(&mut self, mode: ReportMode) {
        self.cfg.report_mode = mode;
    }

    /// Aggregate counters.
    #[must_use]
    pub fn counters(&self) -> DiversityCounters {
        self.counters
    }

    /// The staggering counter (Instruction-diff module).
    #[must_use]
    pub fn instruction_diff(&self) -> &InstructionDiff {
        &self.diff
    }

    /// Hamming statistics, when tracking is enabled.
    #[must_use]
    pub fn hamming_stats(&self) -> Option<HammingStats> {
        self.hamming
    }

    /// Presets the staggering counter (see [`InstructionDiff::preset`]);
    /// used when arming the monitor after a measurement-window start.
    pub fn preset_diff(&mut self, value: i64) {
        self.diff.preset(value);
    }

    /// Histogram of no-diversity episode lengths (History module).
    #[must_use]
    pub fn no_diversity_history(&self) -> &Histogram {
        self.no_div_episodes.histogram()
    }

    /// Histogram of data-signature-match episode lengths.
    #[must_use]
    pub fn ds_match_history(&self) -> &Histogram {
        self.ds_episodes.histogram()
    }

    /// Histogram of instruction-signature-match episode lengths.
    #[must_use]
    pub fn is_match_history(&self) -> &Histogram {
        self.is_episodes.histogram()
    }

    /// Longest run of consecutive cycles without diversity (including an
    /// episode still in progress).
    #[must_use]
    pub fn max_no_div_run(&self) -> u64 {
        self.no_div_episodes.histogram().max_episode().max(self.no_div_episodes.open_episode())
    }

    /// Total SafeDM state bits (used by the area model).
    #[must_use]
    pub fn state_bits(&self) -> usize {
        self.ds[0].width_bits() * 2 + self.is[0].width_bits() * 2
    }

    /// Resets all monitor state (signatures, counters, histograms, IRQ).
    pub fn reset(&mut self) {
        *self = SafeDm::new(self.cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_soc::{PortSample, StageSlot};

    fn probe(v: u64, raw: u32) -> CoreProbe {
        let mut p = CoreProbe::default();
        p.reads[0] = PortSample { enable: true, value: v };
        p.stages[3][0] = StageSlot { valid: true, raw };
        p
    }

    #[test]
    fn identical_state_flags_no_diversity_every_cycle() {
        let mut dm = SafeDm::new(SafeDmConfig::default());
        for i in 0..50u64 {
            let p = probe(i, 0x13);
            let r = dm.observe(&p, &p);
            assert!(r.no_diversity, "cycle {i}");
        }
        assert_eq!(dm.counters().no_div_cycles, 50);
        assert_eq!(dm.max_no_div_run(), 50);
    }

    #[test]
    fn data_difference_suppresses_flag_for_fifo_depth() {
        let cfg = SafeDmConfig { data_fifo_depth: 4, ..SafeDmConfig::default() };
        let mut dm = SafeDm::new(cfg);
        // one divergent data cycle
        let r = dm.observe(&probe(1, 0x13), &probe(2, 0x13));
        assert!(!r.no_diversity && !r.ds_match && r.is_match);
        // identical afterwards: DS stays different until the sample ages out
        for i in 0..3 {
            let p = probe(9, 0x13);
            let r = dm.observe(&p, &p);
            assert!(!r.ds_match, "cycle {i} still protected by FIFO history");
        }
        let p = probe(9, 0x13);
        let r = dm.observe(&p, &p);
        assert!(r.ds_match && r.no_diversity);
    }

    #[test]
    fn instruction_difference_is_diversity() {
        let mut dm = SafeDm::new(SafeDmConfig::default());
        let r = dm.observe(&probe(1, 0x13), &probe(1, 0x93));
        assert!(r.ds_match && !r.is_match && !r.no_diversity);
    }

    #[test]
    fn interrupt_first_mode() {
        let mut dm = SafeDm::new(SafeDmConfig::default());
        assert!(!dm.irq_pending());
        dm.observe(&probe(1, 0x13), &probe(2, 0x13));
        assert!(!dm.irq_pending());
        let p = probe(1, 0x13);
        for _ in 0..dm.config().data_fifo_depth + 1 {
            dm.observe(&p, &p);
        }
        assert!(dm.irq_pending());
        dm.clear_irq();
        assert!(!dm.irq_pending());
    }

    #[test]
    fn interrupt_threshold_mode() {
        let cfg = SafeDmConfig {
            report_mode: ReportMode::InterruptThreshold(5),
            ..SafeDmConfig::default()
        };
        let mut dm = SafeDm::new(cfg);
        let p = probe(0, 0x13);
        for i in 0..4 {
            dm.observe(&p, &p);
            assert!(!dm.irq_pending(), "below threshold at {i}");
        }
        dm.observe(&p, &p);
        assert!(dm.irq_pending());
    }

    #[test]
    fn polling_mode_never_interrupts() {
        let cfg = SafeDmConfig { report_mode: ReportMode::Polling, ..SafeDmConfig::default() };
        let mut dm = SafeDm::new(cfg);
        let p = probe(0, 0x13);
        for _ in 0..100 {
            dm.observe(&p, &p);
        }
        assert!(!dm.irq_pending());
        assert_eq!(dm.counters().no_div_cycles, 100);
    }

    #[test]
    fn halting_core_stops_monitoring_and_flushes_history() {
        let mut dm = SafeDm::new(SafeDmConfig::default());
        let p = probe(0, 0x13);
        for _ in 0..10 {
            dm.observe(&p, &p);
        }
        let mut halted = p;
        halted.halted = true;
        let r = dm.observe(&p, &halted);
        assert!(!r.observed);
        assert!(dm.finished());
        assert_eq!(dm.counters().cycles_observed, 10);
        assert_eq!(dm.no_diversity_history().total_cycles(), 10);
        // further observations are inert
        dm.observe(&p, &p);
        assert_eq!(dm.counters().cycles_observed, 10);
    }

    #[test]
    fn disabled_monitor_is_inert() {
        let mut dm = SafeDm::new(SafeDmConfig::default());
        dm.set_enabled(false);
        let p = probe(0, 0x13);
        let r = dm.observe(&p, &p);
        assert!(!r.observed && !r.no_diversity);
        assert_eq!(dm.counters().cycles_observed, 0);
        assert!(!dm.irq_pending());
    }

    #[test]
    fn zero_stagger_tracking() {
        let mut dm = SafeDm::new(SafeDmConfig::default());
        let mut p0 = probe(0, 0x13);
        p0.committed = 2;
        let p1 = probe(1, 0x13);
        let r = dm.observe(&p0, &p1);
        assert!(!r.zero_stagger);
        let mut q1 = probe(1, 0x13);
        q1.committed = 2;
        let r = dm.observe(&probe(0, 0x13), &q1);
        assert!(r.zero_stagger);
        assert_eq!(dm.instruction_diff().zero_cycles(), 1);
    }

    #[test]
    fn hold_freezes_both_signatures() {
        let mut dm = SafeDm::new(SafeDmConfig::default());
        // put identical content in
        let p = probe(5, 0x13);
        dm.observe(&p, &p);
        // now one core holds while the other advances with different data:
        let mut held = probe(7, 0x93);
        held.hold = true;
        let moving = probe(7, 0x93);
        let r = dm.observe(&held, &moving);
        assert!(!r.no_diversity, "held core retains old signature; moving core changed");
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut dm = SafeDm::new(SafeDmConfig::default());
        let p = probe(0, 0x13);
        dm.observe(&p, &p);
        assert!(dm.irq_pending());
        dm.reset();
        assert!(!dm.irq_pending());
        assert_eq!(dm.counters(), DiversityCounters::default());
    }

    #[test]
    fn hamming_tracking_consistent_with_verdict() {
        let cfg = SafeDmConfig { track_hamming: true, ..SafeDmConfig::default() };
        let mut dm = SafeDm::new(cfg);
        let p = probe(5, 0x13);
        let r = dm.observe(&p, &p);
        assert!(r.no_diversity);
        let h = dm.hamming_stats().expect("tracking enabled");
        assert_eq!(h.last, (0, 0));
        assert_eq!(h.min_total, 0);
        let r = dm.observe(&probe(5, 0x13), &probe(7, 0x13));
        assert!(!r.ds_match);
        let h = dm.hamming_stats().expect("tracking enabled");
        assert!(h.last.0 > 0, "DS distance must be positive when DS differs");
        assert_eq!(h.last.1, 0);
        assert!(h.max_total >= h.last.0);
    }

    #[test]
    fn hamming_disabled_by_default() {
        let dm = SafeDm::new(SafeDmConfig::default());
        assert!(dm.hamming_stats().is_none());
    }

    #[test]
    fn state_bits_match_geometry() {
        let dm = SafeDm::new(SafeDmConfig::default());
        // 2 cores × (6 ports × 8 entries × 65 bits + 14 slots × 33 bits)
        assert_eq!(dm.state_bits(), 2 * (6 * 8 * 65 + 14 * 33));
    }
}
