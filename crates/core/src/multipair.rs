//! [`MultiPairSoc`]: several SafeDM instances on one MPSoC.
//!
//! The De-RISC platform the paper integrates into is a 4-core space MPSoC;
//! a realistic deployment runs two redundant pairs, each watched by its own
//! SafeDM instance with its own APB bank. This wrapper generalises
//! [`MonitoredSoc`](crate::MonitoredSoc) to an arbitrary set of disjoint
//! core pairs.

use safedm_asm::Program;
use safedm_soc::{ApbRegisterFile, MpSoc, RunResult, SocConfig};

use crate::regs::{self, regmap};
use crate::{CycleReport, SafeDm, SafeDmConfig};

/// One monitored pair: which cores, the monitor, and its APB bank index.
#[derive(Debug)]
struct PairSlot {
    cores: (usize, usize),
    dm: SafeDm,
    apb_index: usize,
}

/// An MPSoC with one SafeDM instance per redundant core pair.
///
/// # Examples
///
/// ```
/// use safedm_core::{MultiPairSoc, SafeDmConfig};
/// use safedm_soc::SocConfig;
/// use safedm_tacle::{build_kernel_program, kernels, HarnessConfig};
///
/// let mut cfg = SocConfig::default();
/// cfg.cores = 4;
/// let mut sys = MultiPairSoc::new(cfg, SafeDmConfig::default(), &[(0, 1), (2, 3)]);
/// let prog = build_kernel_program(
///     kernels::by_name("fac").unwrap(),
///     &HarnessConfig::default(),
/// );
/// sys.load_program(&prog);
/// let out = sys.run(100_000_000);
/// assert!(out.all_clean());
/// assert!(sys.monitor(0).counters().cycles_observed > 0);
/// assert!(sys.monitor(1).counters().cycles_observed > 0);
/// ```
#[derive(Debug)]
pub struct MultiPairSoc {
    soc: MpSoc,
    pairs: Vec<PairSlot>,
}

impl MultiPairSoc {
    /// Byte stride between consecutive SafeDM APB banks.
    pub const BANK_STRIDE: u64 = 0x100;

    /// Builds the SoC and one monitor per pair.
    ///
    /// # Panics
    ///
    /// Panics when a pair references a missing core, a core appears in two
    /// pairs, or a pair monitors a core against itself.
    #[must_use]
    pub fn new(soc_cfg: SocConfig, dm_cfg: SafeDmConfig, pairs: &[(usize, usize)]) -> MultiPairSoc {
        let mut soc = MpSoc::new(soc_cfg);
        let mut seen = vec![false; soc.core_count()];
        let mut slots = Vec::new();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            assert!(a != b, "a pair must reference two distinct cores");
            assert!(
                a < soc.core_count() && b < soc.core_count(),
                "pair ({a},{b}) outside the {}-core SoC",
                soc.core_count()
            );
            assert!(!seen[a] && !seen[b], "core used by two pairs");
            seen[a] = true;
            seen[b] = true;
            let base = soc.config().apb_base + Self::BANK_STRIDE * i as u64;
            let mut bank = ApbRegisterFile::new(base, regmap::REG_COUNT);
            bank.set_reg(regmap::CTRL, regs::reset_ctrl());
            let apb_index = soc.uncore_mut().add_apb_slave(bank);
            slots.push(PairSlot { cores: (a, b), dm: SafeDm::new(dm_cfg), apb_index });
        }
        MultiPairSoc { soc, pairs: slots }
    }

    /// Loads the redundant program on every core and resets the monitors.
    pub fn load_program(&mut self, prog: &Program) {
        self.soc.load_program(prog);
        for p in &mut self.pairs {
            p.dm.reset();
        }
    }

    /// One cycle: SoC, then every pair's command application, observation
    /// and mirror.
    pub fn step(&mut self) -> Vec<CycleReport> {
        self.soc.step();
        let mut reports = Vec::with_capacity(self.pairs.len());
        for p in &mut self.pairs {
            {
                let bank = self.soc.uncore_mut().apb_slave_mut(p.apb_index);
                regs::apply_commands(&mut p.dm, bank);
            }
            let report = {
                let (a, b) = p.cores;
                let pa = self.soc.probe(a);
                let pb = self.soc.probe(b);
                p.dm.observe(pa, pb)
            };
            let bank = self.soc.uncore_mut().apb_slave_mut(p.apb_index);
            regs::mirror(&p.dm, bank);
            reports.push(report);
        }
        reports
    }

    /// Runs until all cores halt (and drain) or the budget expires.
    pub fn run(&mut self, max_cycles: u64) -> RunResult {
        let start = self.soc.cycle();
        while self.soc.cycle() - start < max_cycles {
            if self.soc.all_halted()
                && (0..self.soc.core_count()).all(|i| self.soc.core(i).store_buffer_len() == 0)
            {
                break;
            }
            self.step();
        }
        for p in &mut self.pairs {
            p.dm.finish();
        }
        RunResult {
            cycles: self.soc.cycle() - start,
            exits: (0..self.soc.core_count()).map(|i| self.soc.core(i).exit()).collect(),
            timed_out: !self.soc.all_halted(),
        }
    }

    /// Number of monitored pairs.
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// The cores of pair `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn pair_cores(&self, i: usize) -> (usize, usize) {
        self.pairs[i].cores
    }

    /// The monitor of pair `i`.
    #[must_use]
    pub fn monitor(&self, i: usize) -> &SafeDm {
        &self.pairs[i].dm
    }

    /// Mutable monitor access for pair `i`.
    pub fn monitor_mut(&mut self, i: usize) -> &mut SafeDm {
        &mut self.pairs[i].dm
    }

    /// The APB bank of pair `i`.
    #[must_use]
    pub fn apb_bank(&self, i: usize) -> &ApbRegisterFile {
        self.soc.uncore().apb_slave(self.pairs[i].apb_index)
    }

    /// The underlying SoC.
    #[must_use]
    pub fn soc(&self) -> &MpSoc {
        &self.soc
    }

    /// Mutable SoC access.
    pub fn soc_mut(&mut self) -> &mut MpSoc {
        &mut self.soc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_asm::Asm;
    use safedm_isa::Reg;

    fn four_core() -> SocConfig {
        SocConfig { cores: 4, ..SocConfig::default() }
    }

    fn loop_prog(iters: i64) -> Program {
        let mut a = Asm::new();
        a.li(Reg::T0, iters);
        let top = a.here("top");
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, top);
        a.ebreak();
        a.link(0x8000_0000).unwrap()
    }

    #[test]
    fn two_pairs_monitor_independently() {
        let mut sys = MultiPairSoc::new(four_core(), SafeDmConfig::default(), &[(0, 1), (2, 3)]);
        sys.load_program(&loop_prog(300));
        let out = sys.run(10_000_000);
        assert!(out.all_clean());
        assert_eq!(sys.pair_count(), 2);
        for i in 0..2 {
            let c = sys.monitor(i).counters();
            assert!(c.cycles_observed > 0, "pair {i} observed nothing");
            assert_eq!(sys.apb_bank(i).reg(regmap::CYCLES_OBSERVED), c.cycles_observed);
        }
        // All four cores run the same register-only program in lockstep:
        // both pairs should agree on full no-diversity.
        assert_eq!(
            sys.monitor(0).counters().no_div_cycles,
            sys.monitor(1).counters().no_div_cycles
        );
    }

    #[test]
    fn cross_pair_configuration_is_possible() {
        // Pairing (0,2) and (1,3) is equally valid.
        let mut sys = MultiPairSoc::new(four_core(), SafeDmConfig::default(), &[(0, 2), (1, 3)]);
        sys.load_program(&loop_prog(100));
        assert!(sys.run(10_000_000).all_clean());
        assert_eq!(sys.pair_cores(0), (0, 2));
    }

    #[test]
    #[should_panic(expected = "core used by two pairs")]
    fn overlapping_pairs_rejected() {
        let _ = MultiPairSoc::new(four_core(), SafeDmConfig::default(), &[(0, 1), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "two distinct cores")]
    fn self_pair_rejected() {
        let _ = MultiPairSoc::new(four_core(), SafeDmConfig::default(), &[(2, 2)]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_pair_rejected() {
        let _ = MultiPairSoc::new(four_core(), SafeDmConfig::default(), &[(0, 7)]);
    }
}
