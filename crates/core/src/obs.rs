//! Run-level observability: a [`RunObserver`] that watches a
//! [`MonitoredSoc`](crate::MonitoredSoc) cycle by cycle.
//!
//! The observer owns a `safedm-obs` [`MetricsRegistry`] and [`TraceBuffer`]
//! and, each cycle, maintains:
//!
//! * **no-diversity episode spans** on the `monitor` track (one span per
//!   contiguous run of `no_diversity` verdicts, mirroring the paper's
//!   History module) plus a histogram of episode lengths;
//! * **lockstep interval spans** — contiguous runs of zero staggering while
//!   both cores are observed;
//! * **counter tracks** sampled every [`ObsConfig::counter_interval`]
//!   cycles: staggering, per-core retired instructions, bus transactions and
//!   accumulated no-diversity cycles;
//! * **mirrored metrics** for every SoC component (via
//!   [`SocMetrics`]) and the monitor's diversity counters.
//!
//! It holds only shared references into the simulated system — observation
//! never mutates core or monitor state. Wall-clock profiling lives in
//! [`safedm_obs::SelfProfiler`], outside this type, so metric snapshots stay
//! deterministic across seeded runs.

use safedm_obs::{
    CounterId, GaugeId, HistogramId, MetricsRegistry, MetricsSnapshot, SpanId, TraceBuffer, TrackId,
};
use safedm_soc::{MpSoc, SocMetrics};

use crate::{CycleReport, SafeDm};

/// Configuration for a [`RunObserver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Completed trace events retained (ring buffer; oldest dropped).
    pub trace_capacity: usize,
    /// Cycles between counter-track samples (and metric mirroring).
    pub counter_interval: u64,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig { trace_capacity: 1 << 16, counter_interval: 64 }
    }
}

#[derive(Debug, Clone)]
struct MonitorIds {
    cycles_observed: CounterId,
    ds_match_cycles: CounterId,
    is_match_cycles: CounterId,
    no_div_cycles: CounterId,
    zero_stag_cycles: CounterId,
    max_no_div_run: CounterId,
    no_div_episodes: CounterId,
    max_abs_stagger: CounterId,
    hamming_ds_sum: CounterId,
    hamming_is_sum: CounterId,
    stagger: GaugeId,
    episode_len: HistogramId,
}

/// Observes a monitored run and produces metrics + a structured trace.
///
/// Attach with [`MonitoredSoc::attach_obs`](crate::MonitoredSoc::attach_obs);
/// detach (which finalises open spans and takes a last metric sample) with
/// [`MonitoredSoc::detach_obs`](crate::MonitoredSoc::detach_obs).
#[derive(Debug)]
pub struct RunObserver {
    cfg: ObsConfig,
    reg: MetricsRegistry,
    trace: TraceBuffer,
    soc_metrics: SocMetrics,
    mon: MonitorIds,
    monitor_track: TrackId,
    pipeline_track: TrackId,
    bus_track: TrackId,
    phase_track: TrackId,
    no_div_span: Option<(SpanId, u64)>,
    lockstep_span: Option<SpanId>,
    phase_span: Option<SpanId>,
}

impl RunObserver {
    /// Builds an observer for a system with `cores` cores.
    #[must_use]
    pub fn new(cfg: ObsConfig, cores: usize) -> RunObserver {
        let mut reg = MetricsRegistry::new(true);
        let soc_metrics = SocMetrics::register(&mut reg, cores);
        let mon = MonitorIds {
            cycles_observed: reg.counter("monitor.cycles_observed"),
            ds_match_cycles: reg.counter("monitor.ds_match_cycles"),
            is_match_cycles: reg.counter("monitor.is_match_cycles"),
            no_div_cycles: reg.counter("monitor.no_div_cycles"),
            zero_stag_cycles: reg.counter("monitor.zero_stag_cycles"),
            max_no_div_run: reg.counter("monitor.max_no_div_run"),
            no_div_episodes: reg.counter("monitor.no_div_episodes"),
            max_abs_stagger: reg.counter("monitor.max_abs_stagger"),
            hamming_ds_sum: reg.counter("monitor.hamming_ds_sum"),
            hamming_is_sum: reg.counter("monitor.hamming_is_sum"),
            stagger: reg.gauge("monitor.stagger"),
            episode_len: reg.histogram("monitor.no_div_episode_len", 0, 4, 16),
        };
        let mut trace = TraceBuffer::new(cfg.trace_capacity);
        let pipeline_track = trace.track("pipeline");
        let bus_track = trace.track("bus");
        let monitor_track = trace.track("monitor");
        let phase_track = trace.track("phases");
        RunObserver {
            cfg,
            reg,
            trace,
            soc_metrics,
            mon,
            monitor_track,
            pipeline_track,
            bus_track,
            phase_track,
            no_div_span: None,
            lockstep_span: None,
            phase_span: None,
        }
    }

    /// Processes one cycle's verdict. Called by
    /// [`MonitoredSoc::step`](crate::MonitoredSoc::step) after the monitor
    /// observed; everything is read through shared references.
    pub fn on_cycle(&mut self, soc: &MpSoc, dm: &SafeDm, report: &CycleReport) {
        let cycle = soc.cycle();
        // No-diversity episode spans (+ length histogram on close).
        match (report.no_diversity, self.no_div_span) {
            (true, None) => {
                let id = self.trace.begin_span(self.monitor_track, "no-diversity", cycle);
                self.no_div_span = Some((id, cycle));
            }
            (false, Some((id, started))) => {
                self.trace.end_span(id, cycle);
                self.reg.observe(self.mon.episode_len, cycle - started);
                self.no_div_span = None;
            }
            _ => {}
        }
        // Lockstep (zero-staggering) interval spans.
        let lockstep = report.zero_stagger && report.observed;
        match (lockstep, self.lockstep_span) {
            (true, None) => {
                self.lockstep_span =
                    Some(self.trace.begin_span(self.monitor_track, "lockstep", cycle));
            }
            (false, Some(id)) => {
                self.trace.end_span(id, cycle);
                self.lockstep_span = None;
            }
            _ => {}
        }
        // Periodic counter tracks + metric mirroring.
        if cycle.is_multiple_of(self.cfg.counter_interval) {
            self.sample(soc, dm, cycle);
        }
    }

    /// Opens a named campaign phase span (e.g. `"inject"`, `"drain"`). An
    /// already-open phase is closed first.
    pub fn begin_phase(&mut self, name: &str, cycle: u64) {
        self.end_phase(cycle);
        self.phase_span = Some(self.trace.begin_span(self.phase_track, name, cycle));
    }

    /// Closes the open campaign phase span, if any.
    pub fn end_phase(&mut self, cycle: u64) {
        if let Some(id) = self.phase_span.take() {
            self.trace.end_span(id, cycle);
        }
    }

    /// Records a point event (e.g. a fault injection) on the phase track.
    pub fn mark(&mut self, name: &str, cycle: u64) {
        self.trace.instant(self.phase_track, name, cycle);
    }

    fn sample(&mut self, soc: &MpSoc, dm: &SafeDm, cycle: u64) {
        self.soc_metrics.sample(soc, &mut self.reg);
        let c = dm.counters();
        self.reg.set_total(self.mon.cycles_observed, c.cycles_observed);
        self.reg.set_total(self.mon.ds_match_cycles, c.ds_match_cycles);
        self.reg.set_total(self.mon.is_match_cycles, c.is_match_cycles);
        self.reg.set_total(self.mon.no_div_cycles, c.no_div_cycles);
        self.reg.set_total(self.mon.zero_stag_cycles, dm.instruction_diff().zero_cycles());
        self.reg.set_total(self.mon.max_no_div_run, dm.max_no_div_run());
        self.reg.set_total(self.mon.no_div_episodes, dm.no_diversity_history().total_episodes());
        self.reg.set_total(self.mon.max_abs_stagger, dm.instruction_diff().max_abs());
        if let Some(h) = dm.hamming_stats() {
            self.reg.set_total(self.mon.hamming_ds_sum, h.ds_sum);
            self.reg.set_total(self.mon.hamming_is_sum, h.is_sum);
        }
        let stagger = dm.instruction_diff().value();
        self.reg.set(self.mon.stagger, stagger);
        // Counter tracks for the timeline view.
        self.trace.counter(self.monitor_track, "stagger", cycle, stagger as f64);
        self.trace.counter(self.monitor_track, "no_div_cycles", cycle, c.no_div_cycles as f64);
        let retired: u64 = (0..soc.core_count()).map(|i| soc.core(i).stats().retired).sum();
        self.trace.counter(self.pipeline_track, "retired", cycle, retired as f64);
        let bus = soc.uncore().stats();
        self.trace.counter(self.bus_track, "transactions", cycle, bus.transactions as f64);
        self.trace.counter(self.bus_track, "contended_cycles", cycle, bus.contended_cycles as f64);
    }

    /// Finalises the observation: closes open spans at `soc.cycle()` and
    /// takes a last metric sample. Called by
    /// [`MonitoredSoc::detach_obs`](crate::MonitoredSoc::detach_obs).
    pub fn finish(&mut self, soc: &MpSoc, dm: &SafeDm) {
        let cycle = soc.cycle();
        if let Some((id, started)) = self.no_div_span.take() {
            self.trace.end_span(id, cycle);
            self.reg.observe(self.mon.episode_len, cycle - started);
        }
        if let Some(id) = self.lockstep_span.take() {
            self.trace.end_span(id, cycle);
        }
        self.end_phase(cycle);
        self.sample(soc, dm, cycle);
    }

    /// A deterministic snapshot of every metric.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.reg.snapshot()
    }

    /// The event trace as a Chrome trace-event JSON document.
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        self.trace.chrome_trace_json()
    }

    /// The event trace as JSON Lines.
    #[must_use]
    pub fn trace_jsonl(&self) -> String {
        self.trace.to_jsonl()
    }

    /// The underlying trace buffer.
    #[must_use]
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// The underlying metrics registry (for registering extra metrics).
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MonitoredSoc, SafeDmConfig};
    use safedm_asm::Asm;
    use safedm_isa::Reg;
    use safedm_soc::SocConfig;

    fn loop_prog(iters: i64) -> safedm_asm::Program {
        let mut a = Asm::new();
        a.li(Reg::T0, iters);
        let top = a.here("top");
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, top);
        a.ebreak();
        a.link(0x8000_0000).unwrap()
    }

    #[test]
    fn observer_tracks_episodes_and_metrics() {
        let mut sys = MonitoredSoc::new(SocConfig::default(), SafeDmConfig::default());
        sys.load_program(&loop_prog(300));
        sys.attach_obs(RunObserver::new(ObsConfig::default(), 2));
        let out = sys.run(1_000_000);
        assert!(out.run.all_clean());
        let obs = sys.detach_obs().expect("observer attached");
        let snap = obs.metrics_snapshot();
        // Mirrored monitor counters match the run result exactly.
        assert_eq!(snap.counter("monitor.no_div_cycles"), Some(out.no_div_cycles));
        assert_eq!(snap.counter("monitor.cycles_observed"), Some(out.cycles_observed));
        assert_eq!(
            snap.counter("core0.retired"),
            Some(sys.soc().core(0).stats().retired),
            "final sample mirrors the SoC stats"
        );
        // A lockstep countdown produces at least one no-diversity episode.
        assert!(snap.histogram("monitor.no_div_episode_len").unwrap().count() > 0);
        let chrome = obs.chrome_trace_json();
        assert!(chrome.contains("no-diversity"));
        assert!(chrome.contains("\"monitor\""));
        assert!(chrome.contains("\"pipeline\""));
        assert!(chrome.contains("\"bus\""));
    }

    #[test]
    fn phases_and_marks_appear_in_trace() {
        let mut obs = RunObserver::new(ObsConfig::default(), 2);
        obs.begin_phase("inject", 10);
        obs.mark("bitflip", 15);
        obs.begin_phase("drain", 20); // implicitly closes "inject"
        obs.end_phase(30);
        let jsonl = obs.trace_jsonl();
        assert!(jsonl.contains("\"inject\""));
        assert!(jsonl.contains("\"bitflip\""));
        assert!(jsonl.contains("\"drain\""));
        assert_eq!(obs.trace().open_spans(), 0);
    }
}
