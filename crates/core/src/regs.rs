//! The SafeDM APB register map (paper, Section IV-B2).
//!
//! SafeDM is integrated as an APB slave. The model mirrors the monitor's
//! architectural state into an [`ApbRegisterFile`] each cycle so guest
//! programs can poll it, and applies guest-written control registers back to
//! the monitor. Everything outside the APB logic is bus-agnostic, as the
//! paper requires.

use safedm_soc::ApbRegisterFile;

use crate::{ReportMode, SafeDm};

/// Register indices (64-bit registers, byte offset = index × 8).
pub mod regmap {
    /// Control: bit 0 enable, bits 2:1 report mode (0 = first, 1 =
    /// threshold, 2 = polling), bit 3 write-1-to-clear IRQ.
    pub const CTRL: usize = 0;
    /// Status: bit 0 IRQ pending, bit 1 monitoring finished.
    pub const STATUS: usize = 1;
    /// Threshold for [`ReportMode::InterruptThreshold`](crate::ReportMode).
    pub const THRESHOLD: usize = 2;
    /// Cycles without diversity.
    pub const NO_DIV_CYCLES: usize = 3;
    /// Cycles with matching Data Signatures.
    pub const DS_MATCH_CYCLES: usize = 4;
    /// Cycles with matching Instruction Signatures.
    pub const IS_MATCH_CYCLES: usize = 5;
    /// Total monitored cycles.
    pub const CYCLES_OBSERVED: usize = 6;
    /// Current staggering (two's complement).
    pub const INSTR_DIFF: usize = 7;
    /// Cycles with zero staggering.
    pub const ZERO_STAG_CYCLES: usize = 8;
    /// Longest no-diversity run.
    pub const MAX_NO_DIV_RUN: usize = 9;
    /// Completed no-diversity episodes (read-only event counter).
    pub const NO_DIV_EPISODES: usize = 10;
    /// Largest absolute staggering observed (read-only).
    pub const MAX_ABS_STAGGER: usize = 11;
    /// Completed Data-Signature-match episodes (read-only).
    pub const DS_MATCH_EPISODES: usize = 12;
    /// Completed Instruction-Signature-match episodes (read-only).
    pub const IS_MATCH_EPISODES: usize = 13;
    /// First history bin (no-diversity episode histogram).
    pub const HIST_BASE: usize = 16;
    /// Total registers in the bank (16 fixed + up to 16 history bins).
    pub const REG_COUNT: usize = 32;
}

/// CTRL encoding of a report mode.
#[must_use]
pub fn encode_mode(mode: ReportMode) -> u64 {
    match mode {
        ReportMode::InterruptFirst => 0,
        ReportMode::InterruptThreshold(_) => 1,
        ReportMode::Polling => 2,
    }
}

/// Mirrors monitor state into the APB bank (host → guest visible).
pub fn mirror(dm: &SafeDm, rf: &mut ApbRegisterFile) {
    let c = dm.counters();
    rf.set_reg(regmap::STATUS, u64::from(dm.irq_pending()) | (u64::from(dm.finished()) << 1));
    rf.set_reg(regmap::NO_DIV_CYCLES, c.no_div_cycles);
    rf.set_reg(regmap::DS_MATCH_CYCLES, c.ds_match_cycles);
    rf.set_reg(regmap::IS_MATCH_CYCLES, c.is_match_cycles);
    rf.set_reg(regmap::CYCLES_OBSERVED, c.cycles_observed);
    rf.set_reg(regmap::INSTR_DIFF, dm.instruction_diff().value() as u64);
    rf.set_reg(regmap::ZERO_STAG_CYCLES, dm.instruction_diff().zero_cycles());
    rf.set_reg(regmap::MAX_NO_DIV_RUN, dm.max_no_div_run());
    rf.set_reg(regmap::NO_DIV_EPISODES, dm.no_diversity_history().total_episodes());
    rf.set_reg(regmap::MAX_ABS_STAGGER, dm.instruction_diff().max_abs());
    rf.set_reg(regmap::DS_MATCH_EPISODES, dm.ds_match_history().total_episodes());
    rf.set_reg(regmap::IS_MATCH_EPISODES, dm.is_match_history().total_episodes());
    let hist = dm.no_diversity_history();
    for (i, b) in hist.bins().iter().enumerate() {
        if regmap::HIST_BASE + i < rf.len() {
            rf.set_reg(regmap::HIST_BASE + i, *b);
        }
    }
}

/// Applies guest-written control registers to the monitor (guest → host).
pub fn apply_commands(dm: &mut SafeDm, rf: &mut ApbRegisterFile) {
    let ctrl = rf.reg(regmap::CTRL);
    dm.set_enabled(ctrl & 1 != 0);
    let mode = match (ctrl >> 1) & 0b11 {
        0 => ReportMode::InterruptFirst,
        1 => ReportMode::InterruptThreshold(rf.reg(regmap::THRESHOLD)),
        _ => ReportMode::Polling,
    };
    dm.set_report_mode(mode);
    if ctrl & 0b1000 != 0 {
        dm.clear_irq();
        rf.set_reg(regmap::CTRL, ctrl & !0b1000); // W1C semantics
    }
}

/// Power-on CTRL value: enabled, interrupt-on-first.
#[must_use]
pub fn reset_ctrl() -> u64 {
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SafeDmConfig;
    use safedm_soc::CoreProbe;

    fn bank() -> ApbRegisterFile {
        let mut rf = ApbRegisterFile::new(0xfc00_0000, regmap::REG_COUNT);
        rf.set_reg(regmap::CTRL, reset_ctrl());
        rf
    }

    #[test]
    fn mirror_exports_counters() {
        let mut dm = SafeDm::new(SafeDmConfig::default());
        let p = CoreProbe::default();
        for _ in 0..7 {
            dm.observe(&p, &p);
        }
        let mut rf = bank();
        mirror(&dm, &mut rf);
        assert_eq!(rf.reg(regmap::NO_DIV_CYCLES), 7);
        assert_eq!(rf.reg(regmap::CYCLES_OBSERVED), 7);
        assert_eq!(rf.reg(regmap::STATUS) & 1, 1); // irq pending
        assert_eq!(rf.reg(regmap::ZERO_STAG_CYCLES), 7);
    }

    #[test]
    fn ctrl_disable_and_mode_select() {
        let mut dm = SafeDm::new(SafeDmConfig::default());
        let mut rf = bank();
        rf.set_reg(regmap::CTRL, 0); // disabled
        apply_commands(&mut dm, &mut rf);
        assert!(!dm.enabled());
        rf.set_reg(regmap::CTRL, 1 | (1 << 1)); // enabled, threshold mode
        rf.set_reg(regmap::THRESHOLD, 42);
        apply_commands(&mut dm, &mut rf);
        assert!(dm.enabled());
        assert_eq!(dm.config().report_mode, ReportMode::InterruptThreshold(42));
        rf.set_reg(regmap::CTRL, 1 | (2 << 1)); // polling
        apply_commands(&mut dm, &mut rf);
        assert_eq!(dm.config().report_mode, ReportMode::Polling);
    }

    #[test]
    fn irq_write_one_to_clear() {
        let mut dm = SafeDm::new(SafeDmConfig::default());
        let p = CoreProbe::default();
        dm.observe(&p, &p);
        assert!(dm.irq_pending());
        let mut rf = bank();
        rf.set_reg(regmap::CTRL, reset_ctrl() | 0b1000);
        apply_commands(&mut dm, &mut rf);
        assert!(!dm.irq_pending());
        assert_eq!(rf.reg(regmap::CTRL) & 0b1000, 0, "W1C bit self-clears");
    }

    #[test]
    fn mirror_exports_histogram_bins() {
        let mut dm = SafeDm::new(SafeDmConfig::default());
        let p = CoreProbe::default();
        // 3-cycle no-div episode then a halt flush
        for _ in 0..3 {
            dm.observe(&p, &p);
        }
        dm.finish();
        let mut rf = bank();
        mirror(&dm, &mut rf);
        assert_eq!(rf.reg(regmap::HIST_BASE), 1); // one episode of length 3 in bin 0 (width 4)
        assert_eq!(rf.reg(regmap::STATUS) >> 1 & 1, 1); // finished
    }

    #[test]
    fn mirror_exports_episode_counters() {
        let mut dm = SafeDm::new(SafeDmConfig::default());
        let p = CoreProbe::default();
        // identical probes: one continuous no-div/DS/IS episode, closed by finish()
        for _ in 0..5 {
            dm.observe(&p, &p);
        }
        dm.finish();
        let mut rf = bank();
        mirror(&dm, &mut rf);
        assert_eq!(rf.reg(regmap::NO_DIV_EPISODES), dm.no_diversity_history().total_episodes());
        assert_eq!(rf.reg(regmap::NO_DIV_EPISODES), 1);
        assert_eq!(rf.reg(regmap::DS_MATCH_EPISODES), 1);
        assert_eq!(rf.reg(regmap::IS_MATCH_EPISODES), 1);
        assert_eq!(rf.reg(regmap::MAX_ABS_STAGGER), 0);
    }

    #[test]
    fn mode_encoding_roundtrip() {
        assert_eq!(encode_mode(ReportMode::InterruptFirst), 0);
        assert_eq!(encode_mode(ReportMode::InterruptThreshold(9)), 1);
        assert_eq!(encode_mode(ReportMode::Polling), 2);
    }
}
