//! The SafeDE baseline: *intrusive* diversity **enforcement** by staggering
//! (Bas et al., "SafeDE: a flexible diversity enforcement hardware module
//! for light-lockstepping", IOLTS 2021 — reference [4] of the SafeDM paper).
//!
//! SafeDE guarantees diversity by construction: it watches the committed-
//! instruction staggering between a head and a trail core and stalls the
//! trail core whenever the staggering drops below a programmed threshold.
//! This is the comparison point of the paper's Table II — it enforces
//! diversity but (a) perturbs execution (stall cycles) and (b) requires both
//! cores to run *identical* instruction streams, a constraint SafeDM lifts.

use safedm_soc::MpSoc;

/// SafeDE configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SafeDeConfig {
    /// Index of the head core (runs freely).
    pub head: usize,
    /// Index of the trail core (stalled when too close).
    pub trail: usize,
    /// Minimum committed-instruction staggering to maintain.
    pub threshold: u64,
}

impl Default for SafeDeConfig {
    fn default() -> SafeDeConfig {
        SafeDeConfig { head: 0, trail: 1, threshold: 100 }
    }
}

/// The staggering-enforcement module.
///
/// Drive it once per cycle, after [`MpSoc::step`]:
///
/// ```
/// use safedm_asm::Asm;
/// use safedm_core::{SafeDe, SafeDeConfig};
/// use safedm_isa::Reg;
/// use safedm_soc::{MpSoc, SocConfig};
///
/// let mut a = Asm::new();
/// a.li(Reg::T0, 200);
/// let top = a.here("top");
/// a.addi(Reg::T0, Reg::T0, -1);
/// a.bnez(Reg::T0, top);
/// a.ebreak();
/// let prog = a.link(0x8000_0000)?;
///
/// let mut soc = MpSoc::new(SocConfig::default());
/// soc.load_program(&prog);
/// let mut safede = SafeDe::new(SafeDeConfig { threshold: 50, ..SafeDeConfig::default() });
/// for _ in 0..200_000 {
///     soc.step();
///     safede.control(&mut soc);
///     if soc.all_halted() { break; }
/// }
/// assert!(safede.stall_cycles() > 0); // enforcement is intrusive
/// # Ok::<(), safedm_asm::AsmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SafeDe {
    cfg: SafeDeConfig,
    enabled: bool,
    stall_cycles: u64,
    min_stagger_seen: i64,
    violations: u64,
}

impl SafeDe {
    /// Builds the module.
    ///
    /// # Panics
    ///
    /// Panics if head and trail are the same core.
    #[must_use]
    pub fn new(cfg: SafeDeConfig) -> SafeDe {
        assert_ne!(cfg.head, cfg.trail, "head and trail must differ");
        SafeDe { cfg, enabled: true, stall_cycles: 0, min_stagger_seen: i64::MAX, violations: 0 }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SafeDeConfig {
        &self.cfg
    }

    /// Enables or disables enforcement (releases the stall line when
    /// disabled).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// One cycle of enforcement: stalls or releases the trail core.
    ///
    /// # Panics
    ///
    /// Panics if the SoC has fewer cores than the configured indices.
    pub fn control(&mut self, soc: &mut MpSoc) {
        if !self.enabled {
            soc.core_mut(self.cfg.trail).set_external_stall(false);
            return;
        }
        let head = soc.core(self.cfg.head);
        let trail = soc.core(self.cfg.trail);
        // Once the head halts it can no longer advance; holding the trail
        // would deadlock the redundant pair. Release and let it finish.
        if head.halted() {
            soc.core_mut(self.cfg.trail).set_external_stall(false);
            return;
        }
        let stagger = head.retired() as i64 - trail.retired() as i64;
        self.min_stagger_seen = self.min_stagger_seen.min(stagger);
        if stagger < self.cfg.threshold as i64 {
            self.violations += u64::from(!trail.external_stall());
            soc.core_mut(self.cfg.trail).set_external_stall(true);
            self.stall_cycles += 1;
        } else {
            soc.core_mut(self.cfg.trail).set_external_stall(false);
        }
    }

    /// Total cycles the trail core was held stalled (the intrusiveness
    /// metric of Table II).
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Number of distinct stall episodes started.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Minimum staggering observed (may be negative if the trail overtook
    /// the head before enforcement kicked in).
    #[must_use]
    pub fn min_stagger_seen(&self) -> i64 {
        self.min_stagger_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_asm::Asm;
    use safedm_isa::Reg;
    use safedm_soc::SocConfig;

    fn loop_prog(iters: i64) -> safedm_asm::Program {
        let mut a = Asm::new();
        a.li(Reg::T0, iters);
        let top = a.here("top");
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, top);
        a.ebreak();
        a.link(0x8000_0000).unwrap()
    }

    fn run_with(threshold: u64) -> (SafeDe, u64, u64, u64) {
        let mut soc = MpSoc::new(SocConfig::default());
        soc.load_program(&loop_prog(2000));
        let mut de = SafeDe::new(SafeDeConfig { threshold, ..SafeDeConfig::default() });
        let mut min_enforced_after_warmup = i64::MAX;
        for cycle in 0..2_000_000u64 {
            soc.step();
            de.control(&mut soc);
            if cycle > 2 * threshold && !soc.core(0).halted() && !soc.core(1).halted() {
                let s = soc.core(0).retired() as i64 - soc.core(1).retired() as i64;
                min_enforced_after_warmup = min_enforced_after_warmup.min(s);
            }
            if soc.all_halted()
                && soc.core(0).store_buffer_len() == 0
                && soc.core(1).store_buffer_len() == 0
            {
                break;
            }
        }
        assert!(soc.all_halted());
        let c0 = soc.core(0).stats().cycles;
        let c1 = soc.core(1).stats().cycles;
        (de, c0, c1, min_enforced_after_warmup.max(0) as u64)
    }

    #[test]
    fn enforces_minimum_staggering() {
        let (de, _, _, min_seen) = run_with(100);
        assert!(de.stall_cycles() > 0, "trail must have been stalled");
        // After warm-up, enforced staggering stays at/above the threshold
        // minus the dual-issue quantisation (2 per cycle).
        assert!(min_seen + 2 >= 100, "staggering {min_seen} fell below threshold");
    }

    #[test]
    fn intrusiveness_grows_with_threshold() {
        let (de_small, ..) = run_with(50);
        let (de_large, ..) = run_with(500);
        assert!(
            de_large.stall_cycles() > de_small.stall_cycles(),
            "larger threshold must stall more ({} vs {})",
            de_large.stall_cycles(),
            de_small.stall_cycles()
        );
    }

    #[test]
    fn disabled_module_releases_stall() {
        let mut soc = MpSoc::new(SocConfig::default());
        soc.load_program(&loop_prog(100));
        let mut de = SafeDe::new(SafeDeConfig::default());
        soc.step();
        de.control(&mut soc);
        assert!(soc.core(1).external_stall());
        de.set_enabled(false);
        de.control(&mut soc);
        assert!(!soc.core(1).external_stall());
    }

    #[test]
    fn trail_finishes_after_head_halts() {
        let (_, c0, c1, _) = run_with(200);
        assert!(c1 >= c0, "trail runs at least as long as head");
    }

    #[test]
    #[should_panic(expected = "head and trail must differ")]
    fn same_core_rejected() {
        let _ = SafeDe::new(SafeDeConfig { head: 0, trail: 0, threshold: 1 });
    }
}
