//! Data and Instruction Signature generators (paper, Section III-B, Fig. 2).

use safedm_soc::{
    CoreProbe, PortSample, StageSlot, PIPE_STAGES, PIPE_WIDTH, READ_PORTS, WRITE_PORTS,
};

use crate::{HoldFifo, IsLayout, SafeDmConfig};

/// Total register-file ports observed per core.
pub const DATA_PORTS: usize = READ_PORTS + WRITE_PORTS;

/// One data-FIFO entry: the port enable line plus the 64-bit data lines.
pub type DataSample = (bool, u64);

/// The Data Signature (DS) of one core: one hold-gated FIFO per register
/// port, each holding the last *n* cycles of port samples. The signature is
/// the concatenation of all FIFOs; two cores lack data diversity when their
/// signatures are bit-identical (paper, Section III-B1).
///
/// # Examples
///
/// ```
/// use safedm_core::{DataSignature, SafeDmConfig};
/// use safedm_soc::CoreProbe;
///
/// let cfg = SafeDmConfig::default();
/// let mut a = DataSignature::new(&cfg);
/// let mut b = DataSignature::new(&cfg);
/// let probe = CoreProbe::default();
/// a.capture(&probe);
/// b.capture(&probe);
/// assert_eq!(a, b); // identical activity -> identical signatures
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSignature {
    fifos: Vec<HoldFifo<DataSample>>, // READ_PORTS read ports then WRITE_PORTS write ports
}

impl DataSignature {
    /// Creates the signature generator for `cfg`.
    #[must_use]
    pub fn new(cfg: &SafeDmConfig) -> DataSignature {
        DataSignature {
            fifos: (0..DATA_PORTS)
                .map(|_| HoldFifo::new(cfg.data_fifo_depth, (false, 0)))
                .collect(),
        }
    }

    /// Captures one cycle of register-port activity. When the probe reports
    /// `hold`, the FIFOs are clock-gated and keep their contents.
    pub fn capture(&mut self, probe: &CoreProbe) {
        if probe.hold {
            return;
        }
        let sample = |p: &PortSample| (p.enable, p.value);
        for (i, port) in probe.reads.iter().enumerate() {
            self.fifos[i].shift(sample(port));
        }
        for (i, port) in probe.writes.iter().enumerate() {
            self.fifos[READ_PORTS + i].shift(sample(port));
        }
    }

    /// The concatenated signature, port-major, oldest sample first — the DS
    /// bit vector of the paper in `(enable, value)` tuples.
    #[must_use]
    pub fn bits(&self) -> Vec<DataSample> {
        self.fifos.iter().flat_map(|f| f.entries().iter().copied()).collect()
    }

    /// Signature width in bits (65 bits per entry: 64 data + 1 enable).
    #[must_use]
    pub fn width_bits(&self) -> usize {
        self.fifos.iter().map(|f| f.depth() * 65).sum()
    }

    /// Hamming distance to `other` in signature bits (0 ⇔ equal). A
    /// *magnitude* of data diversity beyond the paper's binary verdict.
    #[must_use]
    pub fn hamming(&self, other: &DataSignature) -> u32 {
        let mut d = 0u32;
        for (fa, fb) in self.fifos.iter().zip(&other.fifos) {
            for (&(ea, va), &(eb, vb)) in fa.entries().iter().zip(fb.entries()) {
                d += u32::from(ea != eb) + (va ^ vb).count_ones();
            }
        }
        d
    }

    /// Resets all FIFOs to the power-on state.
    pub fn reset(&mut self) {
        for f in &mut self.fifos {
            f.reset((false, 0));
        }
    }
}

/// The Instruction Signature (IS) of one core (paper, Section III-B2).
///
/// In [`IsLayout::PerStage`] the signature is the per-stage slot occupancy
/// `I_x^y` of Fig. 2b: `(valid, encoding)` for each of the `o × p` slots.
/// In [`IsLayout::InFlight`] it degrades to the flat list of in-flight
/// instruction encodings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstructionSignature {
    layout: IsLayout,
    include_stale: bool,
    /// Per-stage capture (PerStage layout).
    stages: [[(bool, u32); PIPE_WIDTH]; PIPE_STAGES],
    /// Flat in-flight list, padded with invalid entries (InFlight layout).
    flat: Vec<(bool, u32)>,
}

impl InstructionSignature {
    /// Creates the signature generator for `cfg`.
    #[must_use]
    pub fn new(cfg: &SafeDmConfig) -> InstructionSignature {
        InstructionSignature {
            layout: cfg.is_layout,
            include_stale: cfg.include_stale_bits,
            stages: [[(false, 0); PIPE_WIDTH]; PIPE_STAGES],
            flat: vec![(false, 0); PIPE_STAGES * PIPE_WIDTH],
        }
    }

    /// Captures the pipeline occupancy of one cycle. Holds keep the previous
    /// capture (the stage registers did not move).
    pub fn capture(&mut self, probe: &CoreProbe) {
        if probe.hold {
            return;
        }
        let view = |s: &StageSlot| {
            if s.valid {
                (true, s.raw)
            } else if self.include_stale {
                (false, s.raw)
            } else {
                (false, 0)
            }
        };
        match self.layout {
            IsLayout::PerStage => {
                for (i, stage) in probe.stages.iter().enumerate() {
                    for (j, slot) in stage.iter().enumerate() {
                        self.stages[i][j] = view(slot);
                    }
                }
            }
            IsLayout::InFlight => {
                // Oldest (WB) first so the list is ordered by program age.
                self.flat.clear();
                for stage in probe.stages.iter().rev() {
                    for slot in stage {
                        if slot.valid {
                            self.flat.push((true, slot.raw));
                        }
                    }
                }
                self.flat.resize(PIPE_STAGES * PIPE_WIDTH, (false, 0));
            }
        }
    }

    /// The signature as `(valid, encoding)` entries.
    #[must_use]
    pub fn bits(&self) -> Vec<(bool, u32)> {
        match self.layout {
            IsLayout::PerStage => self.stages.iter().flatten().copied().collect(),
            IsLayout::InFlight => self.flat.clone(),
        }
    }

    /// Signature width in bits (33 bits per slot: 32 encoding + 1 valid).
    #[must_use]
    pub fn width_bits(&self) -> usize {
        PIPE_STAGES * PIPE_WIDTH * 33
    }

    /// Hamming distance to `other` in signature bits (0 ⇔ equal when both
    /// use the same layout).
    #[must_use]
    pub fn hamming(&self, other: &InstructionSignature) -> u32 {
        let a = self.bits();
        let b = other.bits();
        a.iter()
            .zip(&b)
            .map(|(&(va, ra), &(vb, rb))| u32::from(va != vb) + (ra ^ rb).count_ones())
            .sum()
    }

    /// Resets to the power-on state.
    pub fn reset(&mut self) {
        self.stages = [[(false, 0); PIPE_WIDTH]; PIPE_STAGES];
        self.flat = vec![(false, 0); PIPE_STAGES * PIPE_WIDTH];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_soc::{PortSample, StageSlot};

    fn probe_with_read(v: u64) -> CoreProbe {
        let mut p = CoreProbe::default();
        p.reads[0] = PortSample { enable: true, value: v };
        p
    }

    #[test]
    fn identical_streams_identical_ds() {
        let cfg = SafeDmConfig::default();
        let mut a = DataSignature::new(&cfg);
        let mut b = DataSignature::new(&cfg);
        for v in 0..20 {
            a.capture(&probe_with_read(v));
            b.capture(&probe_with_read(v));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn one_different_value_breaks_ds_for_n_cycles() {
        let cfg = SafeDmConfig { data_fifo_depth: 4, ..SafeDmConfig::default() };
        let mut a = DataSignature::new(&cfg);
        let mut b = DataSignature::new(&cfg);
        a.capture(&probe_with_read(99));
        b.capture(&probe_with_read(11));
        assert_ne!(a, b);
        // After n identical cycles the divergent sample ages out.
        for v in 0..4 {
            a.capture(&probe_with_read(v));
            b.capture(&probe_with_read(v));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn hold_freezes_ds() {
        let cfg = SafeDmConfig::default();
        let mut a = DataSignature::new(&cfg);
        let before = a.bits();
        let mut p = probe_with_read(42);
        p.hold = true;
        a.capture(&p);
        assert_eq!(a.bits(), before, "held cycle must not shift");
    }

    #[test]
    fn enable_bit_distinguishes_idle_from_zero() {
        let cfg = SafeDmConfig::default();
        let mut a = DataSignature::new(&cfg);
        let mut b = DataSignature::new(&cfg);
        let mut pa = CoreProbe::default();
        pa.reads[0] = PortSample { enable: true, value: 0 };
        let pb = CoreProbe::default(); // port idle, value 0
        a.capture(&pa);
        b.capture(&pb);
        assert_ne!(a, b, "active-zero differs from idle");
    }

    #[test]
    fn ds_width_matches_geometry() {
        let cfg = SafeDmConfig::default();
        let ds = DataSignature::new(&cfg);
        assert_eq!(ds.width_bits(), DATA_PORTS * cfg.data_fifo_depth * 65);
    }

    fn probe_with_stage(stage: usize, slot: usize, raw: u32) -> CoreProbe {
        let mut p = CoreProbe::default();
        p.stages[stage][slot] = StageSlot { valid: true, raw };
        p
    }

    #[test]
    fn per_stage_distinguishes_stage_position() {
        let cfg = SafeDmConfig::default();
        let mut a = InstructionSignature::new(&cfg);
        let mut b = InstructionSignature::new(&cfg);
        a.capture(&probe_with_stage(2, 0, 0x13));
        b.capture(&probe_with_stage(3, 0, 0x13)); // same inst, other stage
        assert_ne!(a.bits(), b.bits());
    }

    #[test]
    fn in_flight_ignores_stage_position() {
        let cfg = SafeDmConfig { is_layout: IsLayout::InFlight, ..SafeDmConfig::default() };
        let mut a = InstructionSignature::new(&cfg);
        let mut b = InstructionSignature::new(&cfg);
        a.capture(&probe_with_stage(2, 0, 0x13));
        b.capture(&probe_with_stage(3, 0, 0x13));
        assert_eq!(a.bits(), b.bits(), "flat layout collapses stage position");
    }

    #[test]
    fn stale_bits_masked_by_default() {
        let cfg = SafeDmConfig::default();
        let mut a = InstructionSignature::new(&cfg);
        let mut b = InstructionSignature::new(&cfg);
        let mut pa = CoreProbe::default();
        pa.stages[4][0] = StageSlot { valid: false, raw: 0xdead_beef };
        let mut pb = CoreProbe::default();
        pb.stages[4][0] = StageSlot { valid: false, raw: 0x1234_5678 };
        a.capture(&pa);
        b.capture(&pb);
        assert_eq!(a.bits(), b.bits(), "invalid slots must compare equal");
    }

    #[test]
    fn stale_bits_kept_when_configured() {
        let cfg = SafeDmConfig { include_stale_bits: true, ..SafeDmConfig::default() };
        let mut a = InstructionSignature::new(&cfg);
        let mut b = InstructionSignature::new(&cfg);
        let mut pa = CoreProbe::default();
        pa.stages[4][0] = StageSlot { valid: false, raw: 0xdead_beef };
        let mut pb = CoreProbe::default();
        pb.stages[4][0] = StageSlot { valid: false, raw: 0x1234_5678 };
        a.capture(&pa);
        b.capture(&pb);
        assert_ne!(a.bits(), b.bits());
    }

    #[test]
    fn hamming_zero_iff_equal() {
        let cfg = SafeDmConfig::default();
        let mut a = DataSignature::new(&cfg);
        let mut b = DataSignature::new(&cfg);
        assert_eq!(a.hamming(&b), 0);
        a.capture(&probe_with_read(0b1011));
        b.capture(&probe_with_read(0b1000));
        // 2 differing data bits; enables equal
        assert_eq!(a.hamming(&b), 2);
        assert_ne!(a, b);
        b = a.clone();
        assert_eq!(a.hamming(&b), 0);
    }

    #[test]
    fn is_hamming_counts_encoding_bits() {
        let cfg = SafeDmConfig::default();
        let mut a = InstructionSignature::new(&cfg);
        let mut b = InstructionSignature::new(&cfg);
        a.capture(&probe_with_stage(3, 0, 0b1111));
        b.capture(&probe_with_stage(3, 0, 0b1000));
        assert_eq!(a.hamming(&b), 3);
        // valid-bit difference counts one plus the masked encoding
        let mut c = InstructionSignature::new(&cfg);
        c.capture(&CoreProbe::default());
        assert_eq!(a.hamming(&c), 1 + 4u32);
    }

    #[test]
    fn is_hold_freezes_capture() {
        let cfg = SafeDmConfig::default();
        let mut a = InstructionSignature::new(&cfg);
        a.capture(&probe_with_stage(1, 0, 0x77));
        let before = a.bits();
        let mut p = probe_with_stage(1, 0, 0x99);
        p.hold = true;
        a.capture(&p);
        assert_eq!(a.bits(), before);
    }
}
