//! [`MonitoredSoc`]: the MPSoC with SafeDM attached, the model equivalent of
//! Fig. 3 of the paper (SafeDM on the APB, observing cores 0 and 1).

use safedm_asm::Program;
use safedm_soc::{ApbRegisterFile, MpSoc, RunResult, SocConfig};

use safedm_analysis::AnalysisConfig;

use crate::gate::DiversityGate;
use crate::obs::RunObserver;
use crate::regs::{self, regmap};
use crate::{CycleReport, SafeDe, SafeDm, SafeDmConfig};

/// One sample of the optional per-cycle trace (used for the staggering
/// time-series figure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSample {
    /// SoC cycle.
    pub cycle: u64,
    /// Staggering (committed-instruction diff).
    pub diff: i64,
    /// Zero-staggering cycle.
    pub zero_stagger: bool,
    /// Data signatures matched.
    pub ds_match: bool,
    /// Instruction signatures matched.
    pub is_match: bool,
    /// Lack of diversity.
    pub no_diversity: bool,
}

/// Result of a monitored run: the SoC outcome plus the monitor's verdicts.
#[derive(Debug, Clone)]
pub struct MonitoredRun {
    /// The underlying SoC run result.
    pub run: RunResult,
    /// Cycles with zero staggering (Table I, "Zero stag").
    pub zero_stag_cycles: u64,
    /// Cycles without diversity (Table I, "No div").
    pub no_div_cycles: u64,
    /// Total monitored cycles.
    pub cycles_observed: u64,
    /// Whether the monitor's interrupt line ended up asserted.
    pub irq: bool,
}

/// The MPSoC with a SafeDM instance wired to cores 0 and 1 and mirrored
/// into an APB slave bank.
///
/// # Examples
///
/// ```
/// use safedm_asm::Asm;
/// use safedm_core::{MonitoredSoc, SafeDmConfig};
/// use safedm_isa::Reg;
/// use safedm_soc::SocConfig;
///
/// let mut a = Asm::new();
/// a.li(Reg::T0, 100);
/// let top = a.here("top");
/// a.addi(Reg::T0, Reg::T0, -1);
/// a.bnez(Reg::T0, top);
/// a.ebreak();
/// let prog = a.link(0x8000_0000)?;
///
/// let mut sys = MonitoredSoc::new(SocConfig::default(), SafeDmConfig::default());
/// sys.load_program(&prog);
/// let out = sys.run(1_000_000);
/// assert!(out.run.all_clean());
/// assert!(out.cycles_observed > 0);
/// # Ok::<(), safedm_asm::AsmError>(())
/// ```
#[derive(Debug)]
pub struct MonitoredSoc {
    soc: MpSoc,
    dm: SafeDm,
    safede: Option<SafeDe>,
    apb_index: usize,
    trace: Option<Vec<TraceSample>>,
    gate_cfg: Option<AnalysisConfig>,
    gate: Option<DiversityGate>,
    obs: Option<RunObserver>,
}

/// Byte offset of the SafeDM register bank inside the APB window.
pub const SAFEDM_APB_OFFSET: u64 = 0;

impl MonitoredSoc {
    /// Builds the SoC, the monitor and the APB bank.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is invalid or the SoC has fewer than
    /// two cores (the monitor observes cores 0 and 1).
    #[must_use]
    pub fn new(soc_cfg: SocConfig, dm_cfg: SafeDmConfig) -> MonitoredSoc {
        assert!(soc_cfg.cores >= 2, "SafeDM monitors a redundant pair (need 2 cores)");
        let mut soc = MpSoc::new(soc_cfg);
        let base = soc.config().apb_base + SAFEDM_APB_OFFSET;
        let mut bank = ApbRegisterFile::new(base, regmap::REG_COUNT);
        bank.set_reg(regmap::CTRL, regs::reset_ctrl());
        let apb_index = soc.uncore_mut().add_apb_slave(bank);
        MonitoredSoc {
            soc,
            dm: SafeDm::new(dm_cfg),
            safede: None,
            apb_index,
            trace: None,
            gate_cfg: None,
            gate: None,
            obs: None,
        }
    }

    /// Enables the optional pre-run static gate: every subsequent
    /// [`MonitoredSoc::load_program`] runs the `safedm-analysis` lints on
    /// the image and arms a [`DiversityGate`] that cross-validates the
    /// guaranteed (DIV001/DIV002) findings against the runtime monitor.
    pub fn enable_static_gate(&mut self, cfg: AnalysisConfig) {
        self.gate_cfg = Some(cfg);
    }

    /// The armed gate (present once a program was loaded with the static
    /// gate enabled).
    #[must_use]
    pub fn gate(&self) -> Option<&DiversityGate> {
        self.gate.as_ref()
    }

    /// Detaches the gate with its accumulated cross-validation counters.
    pub fn detach_gate(&mut self) -> Option<DiversityGate> {
        self.gate.take()
    }

    /// Attaches a SafeDE enforcement module (driven each cycle before the
    /// monitor observes).
    pub fn attach_safede(&mut self, safede: SafeDe) {
        self.safede = Some(safede);
    }

    /// Detaches SafeDE, returning it (with its statistics).
    pub fn detach_safede(&mut self) -> Option<SafeDe> {
        self.safede.take()
    }

    /// Attaches a [`RunObserver`] that is fed every subsequent cycle.
    pub fn attach_obs(&mut self, obs: RunObserver) {
        self.obs = Some(obs);
    }

    /// The attached observer, if any.
    #[must_use]
    pub fn observer(&self) -> Option<&RunObserver> {
        self.obs.as_ref()
    }

    /// Mutable observer access (phase spans, extra metrics).
    pub fn observer_mut(&mut self) -> Option<&mut RunObserver> {
        self.obs.as_mut()
    }

    /// Detaches the observer, finalising it first (open spans are closed at
    /// the current cycle and a last metric sample is taken).
    pub fn detach_obs(&mut self) -> Option<RunObserver> {
        let mut obs = self.obs.take()?;
        obs.finish(&self.soc, &self.dm);
        Some(obs)
    }

    /// Starts recording a per-cycle trace.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Takes the recorded trace.
    pub fn take_trace(&mut self) -> Vec<TraceSample> {
        self.trace.take().unwrap_or_default()
    }

    /// Loads the redundant program (both cores, same image). With the
    /// static gate enabled, also analyzes the image and arms the gate.
    pub fn load_program(&mut self, prog: &Program) {
        self.soc.load_program(prog);
        self.dm.reset();
        if let Some(cfg) = &self.gate_cfg {
            let report = safedm_analysis::analyze(prog, cfg);
            self.gate = Some(DiversityGate::new(report));
        }
    }

    /// One cycle: SoC, then SafeDE (if attached), then APB command
    /// application, then SafeDM observation, then the APB mirror — so a
    /// control write (guest or host) takes effect before the cycle is
    /// judged.
    pub fn step(&mut self) -> CycleReport {
        self.soc.step();
        self.post_step()
    }

    /// Like [`MonitoredSoc::step`], attributing wall-clock time per
    /// component to `prof`: the SoC's `uncore`/`coreN` phases plus a
    /// `monitor` phase covering SafeDE, SafeDM and the APB mirror.
    pub fn step_profiled(&mut self, prof: &mut safedm_obs::SelfProfiler) -> CycleReport {
        self.soc.step_profiled(prof);
        prof.time_named("monitor", || self.post_step())
    }

    fn post_step(&mut self) -> CycleReport {
        if let Some(de) = self.safede.as_mut() {
            de.control(&mut self.soc);
        }
        {
            let bank = self.soc.uncore_mut().apb_slave_mut(self.apb_index);
            regs::apply_commands(&mut self.dm, bank);
        }
        let report = {
            let (p0, p1) = (self.soc.probe(0), self.soc.probe(1));
            self.dm.observe(p0, p1)
        };
        let bank = self.soc.uncore_mut().apb_slave_mut(self.apb_index);
        regs::mirror(&self.dm, bank);
        if let Some(gate) = self.gate.as_mut() {
            gate.observe(self.soc.core(0).last_commit_pc(), &report);
        }
        if let Some(trace) = self.trace.as_mut() {
            trace.push(TraceSample {
                cycle: self.soc.cycle(),
                diff: self.dm.instruction_diff().value(),
                zero_stagger: report.zero_stagger && report.observed,
                ds_match: report.ds_match,
                is_match: report.is_match,
                no_diversity: report.no_diversity,
            });
        }
        if let Some(obs) = self.obs.as_mut() {
            obs.on_cycle(&self.soc, &self.dm, &report);
        }
        report
    }

    /// Runs until both cores halt (and store buffers drain) or the budget
    /// expires, then finishes the monitor.
    pub fn run(&mut self, max_cycles: u64) -> MonitoredRun {
        let start = self.soc.cycle();
        while self.soc.cycle() - start < max_cycles {
            if self.soc.all_halted()
                && (0..self.soc.core_count()).all(|i| self.soc.core(i).store_buffer_len() == 0)
            {
                break;
            }
            self.step();
        }
        self.dm.finish();
        // finish() closes any open match episode; re-mirror so the APB bank
        // exposes the final counter state (episode totals included).
        let bank = self.soc.uncore_mut().apb_slave_mut(self.apb_index);
        regs::mirror(&self.dm, bank);
        let run = RunResult {
            cycles: self.soc.cycle() - start,
            exits: (0..self.soc.core_count()).map(|i| self.soc.core(i).exit()).collect(),
            timed_out: !self.soc.all_halted(),
        };
        MonitoredRun {
            zero_stag_cycles: self.dm.instruction_diff().zero_cycles(),
            no_div_cycles: self.dm.counters().no_div_cycles,
            cycles_observed: self.dm.counters().cycles_observed,
            irq: self.dm.irq_pending(),
            run,
        }
    }

    /// The underlying SoC.
    #[must_use]
    pub fn soc(&self) -> &MpSoc {
        &self.soc
    }

    /// Mutable SoC access (fault injection, manual stepping setup).
    pub fn soc_mut(&mut self) -> &mut MpSoc {
        &mut self.soc
    }

    /// The monitor.
    #[must_use]
    pub fn monitor(&self) -> &SafeDm {
        &self.dm
    }

    /// Mutable monitor access (mode programming from the host side).
    pub fn monitor_mut(&mut self) -> &mut SafeDm {
        &mut self.dm
    }

    /// The attached SafeDE module, if any.
    #[must_use]
    pub fn safede(&self) -> Option<&SafeDe> {
        self.safede.as_ref()
    }

    /// The APB bank mirroring the monitor registers.
    #[must_use]
    pub fn apb_bank(&self) -> &ApbRegisterFile {
        self.soc.uncore().apb_slave(self.apb_index)
    }

    /// Host-side write to the monitor's CTRL register (takes effect at the
    /// next cycle's command application, like an RTOS APB write would).
    pub fn write_ctrl(&mut self, value: u64) {
        self.soc.uncore_mut().apb_slave_mut(self.apb_index).set_reg(regmap::CTRL, value);
    }

    /// Host-side write to the monitor's THRESHOLD register (used by the
    /// interrupt-after-count reporting mode).
    pub fn write_threshold(&mut self, value: u64) {
        self.soc.uncore_mut().apb_slave_mut(self.apb_index).set_reg(regmap::THRESHOLD, value);
    }
}

// The parallel campaign engine (`safedm-campaign`) moves whole monitored
// systems and their results across worker threads. Keep that possible by
// construction: a non-Send field sneaking into the run types (an Rc-shared
// cache, a raw-pointer probe, a thread-local) breaks every `--jobs N` bench
// at compile time, here, rather than at the first parallel campaign.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<MonitoredSoc>();
    assert_send::<MonitoredRun>();
    assert_send::<TraceSample>();
    assert_send::<crate::SafeDm>();
    assert_send::<crate::SafeDmConfig>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use safedm_asm::Asm;
    use safedm_isa::Reg;

    fn loop_prog(iters: i64) -> Program {
        let mut a = Asm::new();
        a.li(Reg::T0, iters);
        let top = a.here("top");
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, top);
        a.ebreak();
        a.link(0x8000_0000).unwrap()
    }

    #[test]
    fn monitored_run_produces_counts() {
        let mut sys = MonitoredSoc::new(SocConfig::default(), SafeDmConfig::default());
        sys.load_program(&loop_prog(500));
        let out = sys.run(1_000_000);
        assert!(out.run.all_clean());
        assert!(out.cycles_observed > 0);
        // Identical programs from the same cycle: some zero-staggering at
        // the start, strictly fewer (or equal) no-diversity cycles.
        assert!(out.zero_stag_cycles > 0);
        assert!(out.no_div_cycles <= out.zero_stag_cycles + out.cycles_observed);
    }

    #[test]
    fn apb_bank_mirrors_counters() {
        let mut sys = MonitoredSoc::new(SocConfig::default(), SafeDmConfig::default());
        sys.load_program(&loop_prog(100));
        let out = sys.run(1_000_000);
        let bank = sys.apb_bank();
        assert_eq!(bank.reg(regmap::CYCLES_OBSERVED), out.cycles_observed);
        assert_eq!(bank.reg(regmap::NO_DIV_CYCLES), out.no_div_cycles);
        assert_eq!(bank.reg(regmap::ZERO_STAG_CYCLES), out.zero_stag_cycles);
    }

    #[test]
    fn trace_records_every_cycle() {
        let mut sys = MonitoredSoc::new(SocConfig::default(), SafeDmConfig::default());
        sys.load_program(&loop_prog(50));
        sys.enable_trace();
        let out = sys.run(1_000_000);
        let trace = sys.take_trace();
        assert_eq!(trace.len() as u64, out.run.cycles);
        // A pure-register countdown keeps identical cores in lockstep
        // (shared-code fetches merge): staggering stays zero throughout.
        assert!(trace.iter().all(|s| s.diff == 0));
        assert!(trace.iter().any(|s| s.no_diversity), "lockstep implies no diversity");
    }

    #[test]
    fn safede_attachment_is_intrusive() {
        let baseline = {
            let mut sys = MonitoredSoc::new(SocConfig::default(), SafeDmConfig::default());
            sys.load_program(&loop_prog(2000));
            sys.run(4_000_000).run.cycles
        };
        let mut sys = MonitoredSoc::new(SocConfig::default(), SafeDmConfig::default());
        sys.load_program(&loop_prog(2000));
        sys.attach_safede(SafeDe::new(crate::SafeDeConfig {
            threshold: 200,
            ..crate::SafeDeConfig::default()
        }));
        let out = sys.run(4_000_000);
        assert!(out.run.all_clean());
        assert!(
            out.run.cycles > baseline,
            "SafeDE must lengthen the run ({} vs {baseline})",
            out.run.cycles
        );
        assert!(sys.safede().unwrap().stall_cycles() > 0);
    }

    #[test]
    fn monitored_soc_requires_two_cores() {
        let cfg = SocConfig { cores: 1, ..SocConfig::default() };
        let r = std::panic::catch_unwind(|| MonitoredSoc::new(cfg, SafeDmConfig::default()));
        assert!(r.is_err());
    }
}
