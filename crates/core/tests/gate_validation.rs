//! Cross-validation of the static analyzer against the runtime monitor:
//! every region the lints mark *guaranteed no-diversity* must overlap
//! cycles where SafeDM actually reported no diversity when executed at
//! stagger 0 — a self-test of the analyzer (no false "guaranteed") and of
//! the monitor (no missed collisions).

use safedm_analysis::AnalysisConfig;
use safedm_asm::{Asm, Program};
use safedm_core::{DiversityGate, MonitoredRun, MonitoredSoc, SafeDmConfig};
use safedm_isa::Reg;
use safedm_soc::SocConfig;
use safedm_tacle::{build_kernel_program, kernels, HarnessConfig};

fn run_gated(prog: &Program, max_cycles: u64) -> (MonitoredRun, DiversityGate) {
    let mut sys = MonitoredSoc::new(SocConfig::default(), SafeDmConfig::default());
    sys.enable_static_gate(AnalysisConfig::default());
    sys.load_program(prog);
    let out = sys.run(max_cycles);
    let gate = sys.detach_gate().expect("gate armed by load_program");
    (out, gate)
}

#[test]
fn kernels_at_stagger_zero_confirm_predictions() {
    // At least three kernels, including ones the lints flag (fac, prime,
    // fft carry DIV003 findings) and a quiet one (bitcount).
    for name in ["fac", "prime", "fft", "bitcount"] {
        let k = kernels::by_name(name).expect("kernel exists");
        let prog = build_kernel_program(k, &HarnessConfig::default());
        let (out, gate) = run_gated(&prog, 200_000_000);
        assert!(!out.run.timed_out, "{name}: timed out");
        assert!(gate.all_confirmed(), "{name}: refuted guaranteed prediction:\n{}", gate.summary());
        // Stagger 0 on mirrored images keeps the pair in lockstep often
        // enough that the monitor must see some no-diversity cycles.
        assert!(out.no_div_cycles > 0, "{name}: no no-diversity cycles at stagger 0");
    }
}

#[test]
fn idle_loop_prediction_is_confirmed() {
    let mut a = Asm::new();
    a.li(Reg::T0, 100);
    let spin = a.new_label("spin");
    a.bind(spin).unwrap();
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, spin);
    let idle = a.new_label("idle");
    a.bind(idle).unwrap();
    a.nop();
    a.j(idle);
    let prog = a.link(0x8000_0000).unwrap();

    let (_, gate) = run_gated(&prog, 50_000);
    let div001: Vec<_> =
        gate.checks().iter().filter(|c| c.code == safedm_analysis::LintCode::Div001).collect();
    assert_eq!(div001.len(), 1, "{}", gate.report().render());
    assert!(div001[0].executed(), "idle loop must be reached");
    assert!(div001[0].confirmed());
    // In lockstep the idle loop is no-diversity on essentially every cycle.
    assert!(div001[0].no_div_cycles * 10 >= div001[0].executed_cycles * 9);
}

#[test]
fn nop_sled_prediction_is_confirmed() {
    let mut a = Asm::new();
    a.nops(48);
    a.ebreak();
    let prog = a.link(0x8000_0000).unwrap();

    let (out, gate) = run_gated(&prog, 100_000);
    assert!(!out.run.timed_out);
    let div002: Vec<_> =
        gate.checks().iter().filter(|c| c.code == safedm_analysis::LintCode::Div002).collect();
    assert_eq!(div002.len(), 1, "{}", gate.report().render());
    assert!(div002[0].executed() && div002[0].confirmed(), "{}", gate.summary());
}

#[test]
fn gate_is_optional_and_detachable() {
    let mut a = Asm::new();
    a.nop();
    a.ebreak();
    let prog = a.link(0x8000_0000).unwrap();

    // Without enable_static_gate, no gate exists.
    let mut sys = MonitoredSoc::new(SocConfig::default(), SafeDmConfig::default());
    sys.load_program(&prog);
    assert!(sys.gate().is_none());
    sys.run(10_000);
    assert!(sys.detach_gate().is_none());

    // With it, the gate is armed per load and reports clean programs as
    // trivially confirmed.
    let mut sys = MonitoredSoc::new(SocConfig::default(), SafeDmConfig::default());
    sys.enable_static_gate(AnalysisConfig::default());
    sys.load_program(&prog);
    assert!(sys.gate().is_some());
    sys.run(10_000);
    let gate = sys.detach_gate().unwrap();
    assert!(gate.all_confirmed());
    assert_eq!(gate.checks().len(), 0);
}
