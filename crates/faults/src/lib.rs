//! # safedm-faults — common-cause fault injection for redundant execution
//!
//! Validates the safety argument behind SafeDM (DATE 2022, Section III-A):
//! when two redundant cores hold **identical** state, a common-cause fault
//! (CCF) — one physical disturbance hitting both cores the same way — can
//! produce *identical* errors that output comparison cannot detect. When the
//! cores are diverse, the same disturbance lands on different live state and
//! the errors differ, so comparison catches them.
//!
//! The injector models a CCF as a bit flip applied at the same cycle to the
//! *same microarchitectural location* of both cores (a pipeline result latch
//! or an architectural register cell — the "active logic" a voltage droop
//! perturbs). Campaigns classify each injection and cross-reference the
//! SafeDM verdict at the injection cycle.
//!
//! Two findings the campaign quantifies:
//!
//! 1. **The paper's property, exactly:** in a cycle SafeDM flags as lacking
//!    diversity, the cores' states are bit-identical, so an identical flip
//!    keeps the trajectories identical — output comparison can *never*
//!    signal a mismatch ([`CampaignStats::mismatch_with_no_diversity`] is
//!    asserted to be zero). Whatever corrupts, corrupts silently.
//! 2. **A sharper adversary:** a *surgical* single-bit CCF can occasionally
//!    corrupt both cores identically even in a diverse cycle — e.g. when
//!    the staggered cores hold the same logical datum at different pipeline
//!    positions and the flip lands on a bit whose downstream effect is the
//!    same. A physical disturbance (the paper's fault model) perturbs the
//!    whole electrical state and cannot be this selective; the campaign
//!    reports these cases separately
//!    ([`CampaignStats::silent_with_diversity`]).
//!
//! ## Example
//!
//! ```
//! use safedm_faults::{Campaign, CampaignConfig};
//!
//! let kernel = safedm_tacle::kernels::by_name("bitcount").unwrap();
//! let stats = Campaign::new(CampaignConfig {
//!     trials: 4,
//!     seed: 42,
//!     ..CampaignConfig::default()
//! })
//! .run(kernel);
//! assert_eq!(stats.total(), 4);
//! // In flagged (no-diversity) cycles, comparison is provably blind:
//! assert_eq!(stats.mismatch_with_no_diversity, 0);
//! ```

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use safedm_core::{DclsComparator, MonitoredSoc, SafeDmConfig};
use safedm_isa::Reg;
use safedm_soc::{SocConfig, PIPE_WIDTH};
use safedm_tacle::{build_kernel_program, HarnessConfig, Kernel};

/// Where a fault lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Bit `bit` of architectural register `reg`.
    Register {
        /// Target register.
        reg: Reg,
        /// Bit index (0–63).
        bit: u8,
    },
    /// Bit `bit` of the result latch of pipeline `stage`, slot `slot`.
    /// Lands only when that latch currently holds a value.
    StageResult {
        /// Pipeline stage index (3 = EX … 6 = WB hold results).
        stage: usize,
        /// Slot within the stage.
        slot: usize,
        /// Bit index (0–63).
        bit: u8,
    },
}

/// A common-cause fault: `target` flipped in **both** cores at `cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommonCauseFault {
    /// Injection cycle (SoC cycles after program start).
    pub cycle: u64,
    /// Fault location.
    pub target: FaultTarget,
}

/// Classification of one injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Both cores produced the correct result (fault absorbed).
    Masked,
    /// The cores' results differ — output comparison detects the error.
    DetectedMismatch,
    /// A core trapped, hung, or the run timed out — detected by the
    /// machine-level safety net.
    DetectedAnomaly,
    /// Both cores produced the *same wrong* result: the CCF escaped output
    /// comparison. Safe systems must know when this is possible — exactly
    /// what SafeDM's no-diversity flag predicts.
    SilentCorruption,
}

/// Full record of one injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionResult {
    /// The injected fault.
    pub fault: CommonCauseFault,
    /// Outcome classification.
    pub outcome: Outcome,
    /// Whether the flip landed in each core (a stage latch may be empty).
    pub landed: [bool; 2],
    /// SafeDM's verdict in the injection cycle: `true` = no diversity.
    pub no_diversity_at_injection: bool,
    /// Zero staggering at the injection cycle.
    pub zero_stagger_at_injection: bool,
    /// Whether the *targeted location* held identical contents in both
    /// cores just before the flip (`None` when the fault landed in fewer
    /// than two cores). Surgical bit-flip CCFs can only escape comparison
    /// when the site was identical; SafeDM's signature-level no-diversity
    /// flag is the conservative superset a physical (whole-core) fault
    /// needs.
    pub site_identical: Option<bool>,
    /// Cycles from injection until a DCLS-style commit-stream comparator
    /// first flagged a divergence (`None` when the streams never diverged
    /// — masked or silent outcomes). The latency the FTTI budget of
    /// Section III-A must cover.
    pub dcls_detect_latency: Option<u64>,
}

fn peek_site(sys: &MonitoredSoc, core: usize, target: FaultTarget) -> Option<u64> {
    match target {
        FaultTarget::Register { reg, .. } => Some(sys.soc().core(core).reg(reg)),
        FaultTarget::StageResult { stage, slot, .. } => {
            sys.soc().core(core).peek_stage_result(stage, slot)
        }
    }
}

fn apply(sys: &mut MonitoredSoc, core: usize, target: FaultTarget) -> bool {
    match target {
        FaultTarget::Register { reg, bit } => {
            sys.soc_mut().core_mut(core).flip_reg_bit(reg, bit);
            true
        }
        FaultTarget::StageResult { stage, slot, bit } => {
            sys.soc_mut().core_mut(core).flip_stage_result_bit(stage, slot, bit)
        }
    }
}

fn classify(
    sys: &MonitoredSoc,
    out: &safedm_core::MonitoredRun,
    result_addr: u64,
    golden: u64,
) -> Outcome {
    if out.run.timed_out || !out.run.all_clean() {
        return Outcome::DetectedAnomaly;
    }
    let r0 = sys.soc().read_dword(0, result_addr);
    let r1 = sys.soc().read_dword(1, result_addr);
    if r0 != r1 {
        Outcome::DetectedMismatch
    } else if r0 == golden {
        Outcome::Masked
    } else {
        Outcome::SilentCorruption
    }
}

fn inject_common(
    prog: &safedm_asm::Program,
    golden: u64,
    fault: CommonCauseFault,
    cores: &[usize],
    max_cycles: u64,
) -> InjectionResult {
    let mut sys = MonitoredSoc::new(SocConfig::default(), SafeDmConfig::default());
    sys.load_program(prog);
    let result_addr = prog.symbol("result").expect("kernel programs expose `result`");

    let mut landed = [false; 2];
    let mut report_at_injection = None;
    let mut site_identical = None;
    for _ in 0..fault.cycle {
        if sys.soc().all_halted() {
            break;
        }
        sys.step();
    }
    if !sys.soc().all_halted() {
        report_at_injection = Some(sys.step());
        if cores.len() == 2 {
            let s0 = peek_site(&sys, 0, fault.target);
            let s1 = peek_site(&sys, 1, fault.target);
            if let (Some(a), Some(b)) = (s0, s1) {
                site_identical = Some(a == b);
            }
        }
        for &core in cores {
            landed[core] = apply(&mut sys, core, fault.target);
        }
    }
    // Post-injection: run manually with a DCLS commit comparator riding
    // along to time the first architectural divergence.
    let mut dcls = DclsComparator::new(4096);
    let mut spent = 0u64;
    let mut detect_latency = None;
    while spent < max_cycles {
        if sys.soc().all_halted() && (0..2).all(|i| sys.soc().core(i).store_buffer_len() == 0) {
            break;
        }
        sys.step();
        spent += 1;
        if detect_latency.is_none() {
            dcls.observe(sys.soc().probe(0), sys.soc().probe(1));
            if dcls.mismatch() {
                detect_latency = Some(spent);
            }
        }
    }
    sys.monitor_mut().finish();
    let out = safedm_core::MonitoredRun {
        run: safedm_soc::RunResult {
            cycles: spent,
            exits: (0..sys.soc().core_count()).map(|i| sys.soc().core(i).exit()).collect(),
            timed_out: !sys.soc().all_halted(),
        },
        zero_stag_cycles: sys.monitor().instruction_diff().zero_cycles(),
        no_div_cycles: sys.monitor().counters().no_div_cycles,
        cycles_observed: sys.monitor().counters().cycles_observed,
        irq: sys.monitor().irq_pending(),
    };
    let outcome = classify(&sys, &out, result_addr, golden);
    InjectionResult {
        fault,
        outcome,
        landed,
        no_diversity_at_injection: report_at_injection.is_some_and(|r| r.no_diversity),
        zero_stagger_at_injection: report_at_injection.is_some_and(|r| r.zero_stagger),
        site_identical: if landed == [true, true] { site_identical } else { None },
        dcls_detect_latency: detect_latency,
    }
}

/// Injects `fault` into **both** cores of a monitored redundant run of
/// `prog` and classifies the outcome against `golden` (the fault-free
/// checksum).
///
/// # Panics
///
/// Panics if the program lacks the standard `result` cell.
#[must_use]
pub fn run_injection(
    prog: &safedm_asm::Program,
    golden: u64,
    fault: CommonCauseFault,
    max_cycles: u64,
) -> InjectionResult {
    inject_common(prog, golden, fault, &[0, 1], max_cycles)
}

/// Injects a fault into **one** core only (a non-common-cause transient).
/// Plain redundancy suffices for these: the other core stays correct, so a
/// corrupted result always shows up as a mismatch.
///
/// # Panics
///
/// Panics if the program lacks the standard `result` cell.
#[must_use]
pub fn run_single_core_injection(
    prog: &safedm_asm::Program,
    golden: u64,
    fault: CommonCauseFault,
    core: usize,
    max_cycles: u64,
) -> InjectionResult {
    inject_common(prog, golden, fault, &[core], max_cycles)
}

/// Returns the initial lockstep window `(first_cycle, last_cycle)` of a
/// redundant run of `prog`: the prefix of cycles in which SafeDM reports no
/// diversity *continuously from reset*.
///
/// Note that even in this window the cores are not *architecturally*
/// identical: the harness prologue reads `mhartid`, which necessarily
/// differs. Identical-trajectory arguments therefore apply only once the
/// hartid-derived registers are dead and overwritten (see the
/// `detection_latency_measured_for_mismatches` test for a careful
/// selection). Later no-diversity cycles may also be window-limited *false
/// positives* (identical signatures, different global position).
#[must_use]
pub fn initial_lockstep_window(prog: &safedm_asm::Program, max_cycles: u64) -> Option<(u64, u64)> {
    let mut sys = MonitoredSoc::new(SocConfig::default(), SafeDmConfig::default());
    sys.load_program(prog);
    sys.enable_trace();
    let _ = sys.run(max_cycles);
    let trace = sys.take_trace();
    let mut start = None;
    let mut end = None;
    for s in &trace {
        if s.no_diversity {
            if start.is_none() {
                start = Some(s.cycle);
            }
            end = Some(s.cycle);
        } else if start.is_some() {
            break;
        }
    }
    start.zip(end)
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Number of injections.
    pub trials: usize,
    /// RNG seed (campaigns are fully reproducible).
    pub seed: u64,
    /// Earliest injection cycle.
    pub min_cycle: u64,
    /// Latest injection cycle.
    pub max_cycle: u64,
    /// Per-run cycle budget after injection.
    pub max_cycles: u64,
    /// Restrict faults to pipeline result latches (the physical CCF model);
    /// when false, architectural register cells are also targeted.
    pub stage_latches_only: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            trials: 100,
            seed: 1,
            min_cycle: 50,
            max_cycle: 20_000,
            max_cycles: 80_000_000,
            stage_latches_only: true,
        }
    }
}

/// Aggregate campaign statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Masked injections.
    pub masked: u64,
    /// Detected by output mismatch.
    pub detected_mismatch: u64,
    /// Detected by trap/hang.
    pub detected_anomaly: u64,
    /// Silent corruptions in cycles flagged *no diversity* (expected CCFs).
    pub silent_with_no_diversity: u64,
    /// Silent corruptions in cycles where the *signatures* differed but the
    /// targeted site was identical. A surgical single-bit CCF can slip
    /// through there; a physical whole-core disturbance cannot.
    pub silent_with_diversity: u64,
    /// Silent corruptions whose targeted site held *different* contents in
    /// the two cores (same logical datum at different pipeline positions —
    /// only reachable by a surgical fault model, see the module docs).
    pub silent_site_divergent: u64,
    /// Output **mismatches** from faults injected in a *no-diversity* cycle
    /// that landed in both cores. Zero whenever the flagged cycle was true
    /// lockstep (bit-identical full state evolves identically under an
    /// identical flip); nonzero counts can only come from window-limited
    /// false-positive cycles, where the flag already erred toward caution.
    pub mismatch_with_no_diversity: u64,
    /// Per-trial records.
    pub records: Vec<InjectionResult>,
    /// Sum and count of DCLS detection latencies over detected-mismatch
    /// trials (for the FTTI argument).
    pub detect_latency_sum: u64,
    /// Number of trials contributing to `detect_latency_sum`.
    pub detect_latency_count: u64,
}

impl CampaignStats {
    /// Total trials.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.masked
            + self.detected_mismatch
            + self.detected_anomaly
            + self.silent_with_no_diversity
            + self.silent_with_diversity
            + self.silent_site_divergent
    }

    /// Mean DCLS detection latency over detected mismatches, in cycles.
    #[must_use]
    pub fn mean_detect_latency(&self) -> Option<f64> {
        (self.detect_latency_count > 0)
            .then(|| self.detect_latency_sum as f64 / self.detect_latency_count as f64)
    }

    /// All silent corruptions.
    #[must_use]
    pub fn silent(&self) -> u64 {
        self.silent_with_no_diversity + self.silent_with_diversity + self.silent_site_divergent
    }
}

/// A reproducible common-cause injection campaign over one kernel.
#[derive(Debug, Clone)]
pub struct Campaign {
    cfg: CampaignConfig,
}

impl Campaign {
    /// Creates a campaign.
    #[must_use]
    pub fn new(cfg: CampaignConfig) -> Campaign {
        Campaign { cfg }
    }

    /// Draws a random fault.
    fn draw(&self, rng: &mut StdRng) -> CommonCauseFault {
        let cycle = rng.gen_range(self.cfg.min_cycle..=self.cfg.max_cycle);
        let target = if self.cfg.stage_latches_only || rng.gen_bool(0.7) {
            FaultTarget::StageResult {
                stage: rng.gen_range(3..=6), // EX..WB carry result latches
                slot: rng.gen_range(0..PIPE_WIDTH),
                bit: rng.gen_range(0..64),
            }
        } else {
            FaultTarget::Register { reg: Reg::new(rng.gen_range(1..32)), bit: rng.gen_range(0..64) }
        };
        CommonCauseFault { cycle, target }
    }

    /// The full fault list the campaign will inject, drawn up-front from the
    /// seeded RNG. The sequence is identical to what the historical serial
    /// `run` loop drew (faults come off one sequential stream), which is what
    /// lets [`Campaign::run_jobs`] execute injections in parallel while
    /// keeping records byte-identical to the serial campaign.
    #[must_use]
    pub fn planned_faults(&self) -> Vec<CommonCauseFault> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        (0..self.cfg.trials).map(|_| self.draw(&mut rng)).collect()
    }

    /// Folds per-trial records (in trial order) into campaign statistics.
    #[must_use]
    pub fn stats_from_records(records: Vec<InjectionResult>) -> CampaignStats {
        let mut stats = CampaignStats::default();
        for r in records {
            match r.outcome {
                Outcome::Masked => stats.masked += 1,
                Outcome::DetectedMismatch => {
                    stats.detected_mismatch += 1;
                    if r.no_diversity_at_injection && r.landed == [true, true] {
                        stats.mismatch_with_no_diversity += 1;
                    }
                    if let Some(lat) = r.dcls_detect_latency {
                        stats.detect_latency_sum += lat;
                        stats.detect_latency_count += 1;
                    }
                }
                Outcome::DetectedAnomaly => stats.detected_anomaly += 1,
                Outcome::SilentCorruption => {
                    if r.site_identical == Some(false) {
                        stats.silent_site_divergent += 1;
                    } else if r.no_diversity_at_injection {
                        stats.silent_with_no_diversity += 1;
                    } else {
                        stats.silent_with_diversity += 1;
                    }
                }
            }
            stats.records.push(r);
        }
        stats
    }

    /// Runs the campaign on `kernel`.
    #[must_use]
    pub fn run(&self, kernel: &Kernel) -> CampaignStats {
        self.run_jobs(kernel, 1)
    }

    /// Runs the campaign on `kernel` with `jobs` worker threads.
    ///
    /// Faults are planned serially ([`Campaign::planned_faults`]), the
    /// expensive injections run in parallel on a shared pre-built program,
    /// and the records are folded in trial order — the resulting
    /// [`CampaignStats`] (records included) is identical for every `jobs`.
    #[must_use]
    pub fn run_jobs(&self, kernel: &Kernel, jobs: usize) -> CampaignStats {
        let prog = build_kernel_program(kernel, &HarnessConfig::default());
        let golden = (kernel.reference)();
        let faults = self.planned_faults();
        let max_cycles = self.cfg.max_cycles;
        let records = safedm_campaign::par_map(jobs, &faults, |_, &fault| {
            run_injection(&prog, golden, fault, max_cycles)
        });
        Campaign::stats_from_records(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> &'static Kernel {
        safedm_tacle::kernels::by_name("fac").expect("fac exists")
    }

    #[test]
    fn no_fault_run_is_masked_baseline() {
        // Inject past the end of execution: nothing happens.
        let prog = build_kernel_program(kernel(), &HarnessConfig::default());
        let golden = (kernel().reference)();
        let fault = CommonCauseFault {
            cycle: u64::MAX / 2,
            target: FaultTarget::Register { reg: Reg::T0, bit: 0 },
        };
        let r = run_injection(&prog, golden, fault, 80_000_000);
        assert_eq!(r.outcome, Outcome::Masked);
        assert_eq!(r.landed, [false, false]);
    }

    #[test]
    fn identical_state_register_flip_is_silent() {
        // Flip the checksum accumulator in both cores mid-run: both results
        // corrupt identically — the canonical CCF escape.
        let prog = build_kernel_program(kernel(), &HarnessConfig::default());
        let golden = (kernel().reference)();
        let fault = CommonCauseFault {
            cycle: 5_000,
            target: FaultTarget::Register { reg: Reg::A0, bit: 60 },
        };
        let r = run_injection(&prog, golden, fault, 80_000_000);
        assert_eq!(r.outcome, Outcome::SilentCorruption);
    }

    #[test]
    fn single_core_fault_never_silent() {
        let prog = build_kernel_program(kernel(), &HarnessConfig::default());
        let golden = (kernel().reference)();
        for bit in [0u8, 17, 60] {
            let fault = CommonCauseFault {
                cycle: 5_000,
                target: FaultTarget::Register { reg: Reg::A0, bit },
            };
            let r = run_single_core_injection(&prog, golden, fault, 0, 80_000_000);
            assert_ne!(
                r.outcome,
                Outcome::SilentCorruption,
                "single-core fault must be caught by redundancy (bit {bit})"
            );
        }
    }

    #[test]
    fn detection_latency_measured_for_mismatches() {
        let prog = build_kernel_program(kernel(), &HarnessConfig::default());
        let golden = (kernel().reference)();
        let fault = CommonCauseFault {
            cycle: 5_000,
            target: FaultTarget::Register { reg: Reg::A0, bit: 60 },
        };
        let r = run_single_core_injection(&prog, golden, fault, 0, 80_000_000);
        assert_eq!(r.outcome, Outcome::DetectedMismatch);
        let lat = r.dcls_detect_latency.expect("mismatch must be timed");
        assert!(lat > 0 && lat < 80_000_000);
        // Common-cause corruption with *staggered* cores: the final outputs
        // agree (silent w.r.t. result comparison) but the commit *streams*
        // differ during the staggering window — temporal diversity lets the
        // DCLS-style comparator catch it.
        let r = run_injection(&prog, golden, fault, 80_000_000);
        assert_eq!(r.outcome, Outcome::SilentCorruption);
        assert!(!r.no_diversity_at_injection, "fac is staggered by cycle 5000");
        assert!(r.dcls_detect_latency.is_some(), "stream comparison sees the window");
        // The same flip during *true lockstep*: pick a cycle past the
        // prologue (so the hartid-derived register difference is dead and
        // overwritten) where SafeDM reports no diversity AND staggering is
        // zero — the cores are cycle-locked with identical live state.
        // Trajectories stay identical — nothing can detect it, exactly as
        // SafeDM warns.
        let lockstep_cycle = {
            let mut sys = MonitoredSoc::new(SocConfig::default(), SafeDmConfig::default());
            sys.load_program(&prog);
            sys.enable_trace();
            let _ = sys.run(80_000_000);
            sys.take_trace()
                .iter()
                .find(|t| t.no_diversity && t.zero_stagger && t.cycle > 150)
                .map(|t| t.cycle)
                .expect("fac has a post-prologue lockstep cycle")
        };
        let fault = CommonCauseFault {
            // inject_common steps `cycle` times then observes one more
            cycle: lockstep_cycle - 1,
            target: FaultTarget::Register { reg: Reg::A0, bit: 60 },
        };
        let r = run_injection(&prog, golden, fault, 80_000_000);
        assert!(r.no_diversity_at_injection, "selected cycle is lockstep");
        assert_eq!(r.dcls_detect_latency, None, "identical trajectories never diverge");
        assert_ne!(r.outcome, Outcome::DetectedMismatch);
    }

    #[test]
    fn campaign_is_reproducible() {
        let cfg = CampaignConfig { trials: 5, seed: 7, ..CampaignConfig::default() };
        let a = Campaign::new(cfg).run(kernel());
        let b = Campaign::new(cfg).run(kernel());
        assert_eq!(a.masked, b.masked);
        assert_eq!(a.detected_mismatch, b.detected_mismatch);
        assert_eq!(a.silent(), b.silent());
    }

    #[test]
    fn planned_faults_reproducible_and_sized() {
        let cfg = CampaignConfig { trials: 25, seed: 11, ..CampaignConfig::default() };
        let a = Campaign::new(cfg).planned_faults();
        let b = Campaign::new(cfg).planned_faults();
        assert_eq!(a.len(), 25);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_campaign_matches_serial() {
        let cfg =
            CampaignConfig { trials: 6, seed: 9, max_cycle: 8_000, ..CampaignConfig::default() };
        let serial = Campaign::new(cfg).run(kernel());
        for jobs in [2, 4] {
            let par = Campaign::new(cfg).run_jobs(kernel(), jobs);
            assert_eq!(serial, par, "jobs={jobs} must match the serial campaign");
        }
    }

    #[test]
    fn campaign_counts_sum() {
        let cfg = CampaignConfig { trials: 10, seed: 3, ..CampaignConfig::default() };
        let stats = Campaign::new(cfg).run(kernel());
        assert_eq!(stats.total(), 10);
        assert_eq!(stats.records.len(), 10);
    }
}
