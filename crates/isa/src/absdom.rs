//! Per-instruction abstract transfer hooks.
//!
//! The static diversity prover in `safedm-analysis` interprets programs over
//! several abstract domains (intervals, congruences, inter-core deltas). All
//! of them need the same per-instruction dispatch: which register an
//! instruction writes and how the written value is computed from the values
//! it reads. Keeping that dispatch here, next to the concrete [`crate::alu`]
//! semantics, means a new instruction cannot be added to the ISA without the
//! abstract interpreters seeing it — the `match` in [`abs_transfer`] is
//! exhaustive over [`Inst`].
//!
//! A domain implements [`AbsValue`]; [`abs_transfer`] then mirrors the
//! concrete write-back of one instruction in that domain. Instantiating the
//! same dispatch at a concrete value type turns it into an executor, which is
//! how the soundness property tests check every transfer function against
//! the real semantics.

use crate::{Inst, Reg};

/// An abstract value: an element of a lattice of sets of `u64` values.
///
/// Implementations must be *sound* over-approximations: for every operation,
/// the concrete result of applying the operation to members of the operand
/// abstractions must be a member of the resulting abstraction. The soundness
/// property tests in the workspace check exactly this.
pub trait AbsValue: Sized + Clone {
    /// The least precise element — every `u64` is a member.
    fn top() -> Self;

    /// The abstraction of a single concrete value.
    fn constant(c: u64) -> Self;

    /// Abstract counterpart of the concrete [`crate::alu`] function.
    fn alu(kind: crate::AluKind, a: &Self, b: &Self) -> Self;

    /// The abstraction of a value loaded from memory. Memory contents are
    /// unknown to register-only domains, so the default is [`AbsValue::top`].
    fn load() -> Self {
        Self::top()
    }

    /// The abstraction of the old value read from CSR `csr`. Unknown by
    /// default; domains that understand specific CSRs (e.g. the inter-core
    /// delta of `mhartid`) refine this.
    fn csr(_csr: u16) -> Self {
        Self::top()
    }
}

/// The register write performed by `inst` at address `pc`, in the abstract.
///
/// Returns `Some((rd, value))` for value-producing instructions and `None`
/// for branches, stores, fences, traps and `x0` destinations — exactly when
/// [`Inst::rd`] is `None`. `read` supplies the abstract pre-state for source
/// registers; `x0` is resolved to `constant(0)` here and `read` is never
/// called for it.
pub fn abs_transfer<V: AbsValue>(
    inst: &Inst,
    pc: u64,
    read: impl Fn(Reg) -> V,
) -> Option<(Reg, V)> {
    let rd = inst.rd()?;
    let get = |r: Reg| if r.is_zero() { V::constant(0) } else { read(r) };
    let val = match *inst {
        Inst::Lui { imm, .. } => V::constant(imm as u64),
        Inst::Auipc { imm, .. } => V::constant(pc.wrapping_add(imm as u64)),
        // The link value: both jumps write the address of the next slot.
        Inst::Jal { .. } | Inst::Jalr { .. } => V::constant(pc.wrapping_add(crate::INST_BYTES)),
        Inst::Load { .. } => V::load(),
        Inst::OpImm { kind, rs1, imm, .. } => V::alu(kind, &get(rs1), &V::constant(imm as u64)),
        Inst::Op { kind, rs1, rs2, .. } => V::alu(kind, &get(rs1), &get(rs2)),
        Inst::Csr { csr, .. } | Inst::CsrImm { csr, .. } => V::csr(csr),
        Inst::Branch { .. } | Inst::Store { .. } | Inst::Fence | Inst::Ecall | Inst::Ebreak => {
            unreachable!("rd() returned Some for an instruction without a destination")
        }
    };
    Some((rd, val))
}

/// Abstract effect observed at a call's fall-through point (the abstract
/// *return edge*): every register the callee may write (`clobbers`, a 32-bit
/// mask with bit *i* = `x{i}`) collapses to [`AbsValue::top`].
///
/// Two refinements keep interprocedural analysis useful:
///
/// * a callee whose net stack adjustment is statically known transfers
///   `sp' = sp + sp_delta` precisely instead of losing the frame base (and a
///   provably balanced callee, `sp_delta == Some(0)`, leaves `sp` untouched
///   even when it writes `sp` internally);
/// * a callee known to return via `ret` leaves `ra` holding the call's link
///   value, so the caller's `ra` fact survives (`ra_restored`).
///
/// `read` supplies the pre-state (the caller's state at the call); `write`
/// receives the updated values. `x0` is never written.
pub fn call_return_transfer<V: AbsValue>(
    clobbers: u32,
    sp_delta: Option<i64>,
    ra_restored: bool,
    read: impl Fn(Reg) -> V,
    mut write: impl FnMut(Reg, V),
) {
    for r in Reg::all().skip(1) {
        if r == Reg::SP {
            match sp_delta {
                Some(0) => {} // provably balanced: the caller's sp fact holds
                Some(d) => {
                    write(r, V::alu(crate::AluKind::Add, &read(r), &V::constant(d as u64)));
                }
                None if clobbers & r.bit() != 0 => write(r, V::top()),
                None => {}
            }
            continue;
        }
        if r == Reg::RA && ra_restored {
            // The callee returned through `jalr x0, ra`: control reaching the
            // fall-through implies `ra` still holds the link value the call
            // wrote, which the caller-side transfer already recorded.
            continue;
        }
        if clobbers & r.bit() != 0 {
            write(r, V::top());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{alu, AluKind};

    /// A concrete value is a (degenerate) abstract domain; instantiating the
    /// dispatch at it yields an executor matching the pipeline semantics.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Concrete(u64);

    impl AbsValue for Concrete {
        fn top() -> Self {
            Concrete(0) // only reachable via load()/csr(), unused in tests
        }
        fn constant(c: u64) -> Self {
            Concrete(c)
        }
        fn alu(kind: AluKind, a: &Self, b: &Self) -> Self {
            Concrete(alu(kind, a.0, b.0))
        }
    }

    #[test]
    fn dispatch_matches_concrete_semantics() {
        let regs = |r: Reg| Concrete(0x100 + u64::from(r.index()));
        let add = Inst::Op { kind: AluKind::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
        let (rd, v) = abs_transfer(&add, 0x8000_0000, regs).unwrap();
        assert_eq!((rd, v.0), (Reg::A0, 0x100 + 11 + 0x100 + 12));

        let lui = Inst::Lui { rd: Reg::T0, imm: -4096 };
        let (_, v) = abs_transfer(&lui, 0, regs).unwrap();
        assert_eq!(v.0, (-4096i64) as u64);

        let jal = Inst::Jal { rd: Reg::RA, offset: 64 };
        let (_, v) = abs_transfer(&jal, 0x8000_0010, regs).unwrap();
        assert_eq!(v.0, 0x8000_0014);

        // x0 reads resolve to constant 0 without consulting the state.
        let addi = Inst::OpImm { kind: AluKind::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 7 };
        let (_, v) = abs_transfer::<Concrete>(&addi, 0, |_| panic!("x0 must not be read")).unwrap();
        assert_eq!(v.0, 7);
    }

    #[test]
    fn call_return_havocs_clobbers_and_transfers_sp() {
        let mut state: [Concrete; 32] = std::array::from_fn(|i| Concrete(0x1000 + i as u64));
        // Callee clobbers t0 and sp, nets -0 on the stack... use a real delta.
        let clobbers = Reg::T0.bit() | Reg::SP.bit() | Reg::RA.bit();
        let pre = state;
        call_return_transfer(
            clobbers,
            Some(-16),
            true,
            |r: Reg| pre[r.index() as usize],
            |r, v: Concrete| state[r.index() as usize] = v,
        );
        // t0 havocked to top (Concrete's degenerate top is 0).
        assert_eq!(state[Reg::T0.index() as usize], Concrete(0));
        // sp transferred precisely: old + (-16).
        assert_eq!(
            state[Reg::SP.index() as usize],
            Concrete((0x1000 + 2u64).wrapping_add(-16i64 as u64))
        );
        // ra survives a returning callee; an untouched register is intact.
        assert_eq!(state[Reg::RA.index() as usize], Concrete(0x1001));
        assert_eq!(state[Reg::A0.index() as usize], Concrete(0x100a));

        // A balanced callee (delta 0) keeps the caller's sp fact.
        let mut state2: [Concrete; 32] = std::array::from_fn(|i| Concrete(i as u64));
        let pre2 = state2;
        call_return_transfer(
            Reg::SP.bit(),
            Some(0),
            false,
            |r: Reg| pre2[r.index() as usize],
            |r, v: Concrete| state2[r.index() as usize] = v,
        );
        assert_eq!(state2[Reg::SP.index() as usize], Concrete(2));
    }

    #[test]
    fn no_write_instructions_return_none() {
        let regs = |_: Reg| Concrete(1);
        let br =
            Inst::Branch { kind: crate::BranchKind::Eq, rs1: Reg::A0, rs2: Reg::A1, offset: 8 };
        assert!(abs_transfer(&br, 0, regs).is_none());
        assert!(abs_transfer(&Inst::Fence, 0, regs).is_none());
        assert!(abs_transfer(&Inst::NOP, 0, regs).is_none()); // rd = x0
    }
}
