//! The minimal control-and-status-register (CSR) subset used by the model.
//!
//! Only the machine-mode counters and identity registers needed by bare-metal
//! benchmark harnesses are implemented: cycle/instret counters and the hart
//! id (used by redundant programs to pick per-core stacks).

/// CSR addresses implemented by the pipeline model.
pub mod addr {
    /// `mcycle` — machine cycle counter.
    pub const MCYCLE: u16 = 0xb00;
    /// `minstret` — machine instructions-retired counter.
    pub const MINSTRET: u16 = 0xb02;
    /// `mhartid` — hardware thread id (read-only).
    pub const MHARTID: u16 = 0xf14;
    /// `mscratch` — machine scratch register.
    pub const MSCRATCH: u16 = 0x340;
    /// `cycle` — user-mode cycle counter alias.
    pub const CYCLE: u16 = 0xc00;
    /// `instret` — user-mode instret alias.
    pub const INSTRET: u16 = 0xc02;
}

/// The CSR state held by one core.
///
/// # Examples
///
/// ```
/// use safedm_isa::csr::{CsrFile, addr};
///
/// let mut csrs = CsrFile::new(1);
/// assert_eq!(csrs.read(addr::MHARTID), Some(1));
/// csrs.write(addr::MSCRATCH, 42);
/// assert_eq!(csrs.read(addr::MSCRATCH), Some(42));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrFile {
    hart_id: u64,
    /// Cycle counter, incremented by the pipeline each cycle.
    pub mcycle: u64,
    /// Retired-instruction counter, incremented at commit.
    pub minstret: u64,
    mscratch: u64,
}

impl CsrFile {
    /// Creates the CSR file for hart `hart_id` with zeroed counters.
    #[must_use]
    pub fn new(hart_id: u64) -> CsrFile {
        CsrFile { hart_id, mcycle: 0, minstret: 0, mscratch: 0 }
    }

    /// Reads a CSR; `None` when the address is unimplemented.
    #[must_use]
    pub fn read(&self, csr: u16) -> Option<u64> {
        match csr {
            addr::MCYCLE | addr::CYCLE => Some(self.mcycle),
            addr::MINSTRET | addr::INSTRET => Some(self.minstret),
            addr::MHARTID => Some(self.hart_id),
            addr::MSCRATCH => Some(self.mscratch),
            _ => None,
        }
    }

    /// Writes a CSR, ignoring writes to read-only or unimplemented addresses.
    pub fn write(&mut self, csr: u16, value: u64) {
        match csr {
            addr::MCYCLE => self.mcycle = value,
            addr::MINSTRET => self.minstret = value,
            addr::MSCRATCH => self.mscratch = value,
            _ => {}
        }
    }

    /// The hart id this CSR file was built for.
    #[must_use]
    pub fn hart_id(&self) -> u64 {
        self.hart_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hartid_is_read_only() {
        let mut c = CsrFile::new(3);
        c.write(addr::MHARTID, 99);
        assert_eq!(c.read(addr::MHARTID), Some(3));
    }

    #[test]
    fn counters_alias_user_views() {
        let mut c = CsrFile::new(0);
        c.mcycle = 123;
        c.minstret = 45;
        assert_eq!(c.read(addr::CYCLE), Some(123));
        assert_eq!(c.read(addr::MCYCLE), Some(123));
        assert_eq!(c.read(addr::INSTRET), Some(45));
    }

    #[test]
    fn unimplemented_reads_none() {
        let c = CsrFile::new(0);
        assert_eq!(c.read(0x305), None); // mtvec not modelled
    }

    #[test]
    fn scratch_roundtrip() {
        let mut c = CsrFile::new(0);
        c.write(addr::MSCRATCH, u64::MAX);
        assert_eq!(c.read(addr::MSCRATCH), Some(u64::MAX));
    }
}
