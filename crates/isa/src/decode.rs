//! Decoding of 32-bit RV64IM instruction words into [`Inst`].

use crate::{AluKind, BranchKind, CsrKind, DecodeError, Inst, LoadKind, Reg, StoreKind};

const OPC_LUI: u32 = 0b011_0111;
const OPC_AUIPC: u32 = 0b001_0111;
const OPC_JAL: u32 = 0b110_1111;
const OPC_JALR: u32 = 0b110_0111;
const OPC_BRANCH: u32 = 0b110_0011;
const OPC_LOAD: u32 = 0b000_0011;
const OPC_STORE: u32 = 0b010_0011;
const OPC_OP_IMM: u32 = 0b001_0011;
const OPC_OP_IMM_32: u32 = 0b001_1011;
const OPC_OP: u32 = 0b011_0011;
const OPC_OP_32: u32 = 0b011_1011;
const OPC_MISC_MEM: u32 = 0b000_1111;
const OPC_SYSTEM: u32 = 0b111_0011;

#[inline]
fn rd(word: u32) -> Reg {
    Reg::new(((word >> 7) & 0x1f) as u8)
}

#[inline]
fn rs1(word: u32) -> Reg {
    Reg::new(((word >> 15) & 0x1f) as u8)
}

#[inline]
fn rs2(word: u32) -> Reg {
    Reg::new(((word >> 20) & 0x1f) as u8)
}

#[inline]
fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}

#[inline]
fn funct7(word: u32) -> u32 {
    word >> 25
}

/// Sign-extended I-type immediate (bits `[31:20]`).
#[inline]
fn imm_i(word: u32) -> i64 {
    ((word as i32) >> 20) as i64
}

/// Sign-extended S-type immediate.
#[inline]
fn imm_s(word: u32) -> i64 {
    let hi = ((word as i32) >> 25) as i64; // sign-extended [31:25]
    let lo = ((word >> 7) & 0x1f) as i64;
    (hi << 5) | lo
}

/// Sign-extended B-type immediate (byte offset, bit 0 implicit zero).
#[inline]
fn imm_b(word: u32) -> i64 {
    let sign = ((word as i32) >> 31) as i64; // imm[12]
    let b11 = ((word >> 7) & 0x1) as i64;
    let b10_5 = ((word >> 25) & 0x3f) as i64;
    let b4_1 = ((word >> 8) & 0xf) as i64;
    (sign << 12) | (b11 << 11) | (b10_5 << 5) | (b4_1 << 1)
}

/// Sign-extended U-type immediate (already shifted left by 12).
#[inline]
fn imm_u(word: u32) -> i64 {
    ((word & 0xffff_f000) as i32) as i64
}

/// Sign-extended J-type immediate (byte offset, bit 0 implicit zero).
#[inline]
fn imm_j(word: u32) -> i64 {
    let sign = ((word as i32) >> 31) as i64; // imm[20]
    let b19_12 = ((word >> 12) & 0xff) as i64;
    let b11 = ((word >> 20) & 0x1) as i64;
    let b10_1 = ((word >> 21) & 0x3ff) as i64;
    (sign << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1)
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns a [`DecodeError`] for compressed parcels, unknown opcodes,
/// reserved funct selectors, or reserved shift amounts.
///
/// # Examples
///
/// ```
/// use safedm_isa::{decode, Inst};
///
/// // addi x0, x0, 0 == canonical nop (0x00000013)
/// assert_eq!(decode(0x0000_0013)?, Inst::NOP);
/// # Ok::<(), safedm_isa::DecodeError>(())
/// ```
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    if word & 0b11 != 0b11 {
        return Err(DecodeError::Compressed { word });
    }
    match word & 0x7f {
        OPC_LUI => Ok(Inst::Lui { rd: rd(word), imm: imm_u(word) }),
        OPC_AUIPC => Ok(Inst::Auipc { rd: rd(word), imm: imm_u(word) }),
        OPC_JAL => Ok(Inst::Jal { rd: rd(word), offset: imm_j(word) }),
        OPC_JALR => {
            if funct3(word) != 0 {
                return Err(DecodeError::UnknownFunct { word });
            }
            Ok(Inst::Jalr { rd: rd(word), rs1: rs1(word), offset: imm_i(word) })
        }
        OPC_BRANCH => {
            let kind = match funct3(word) {
                0b000 => BranchKind::Eq,
                0b001 => BranchKind::Ne,
                0b100 => BranchKind::Lt,
                0b101 => BranchKind::Ge,
                0b110 => BranchKind::Ltu,
                0b111 => BranchKind::Geu,
                _ => return Err(DecodeError::UnknownFunct { word }),
            };
            Ok(Inst::Branch { kind, rs1: rs1(word), rs2: rs2(word), offset: imm_b(word) })
        }
        OPC_LOAD => {
            let kind = match funct3(word) {
                0b000 => LoadKind::B,
                0b001 => LoadKind::H,
                0b010 => LoadKind::W,
                0b011 => LoadKind::D,
                0b100 => LoadKind::Bu,
                0b101 => LoadKind::Hu,
                0b110 => LoadKind::Wu,
                _ => return Err(DecodeError::UnknownFunct { word }),
            };
            Ok(Inst::Load { kind, rd: rd(word), rs1: rs1(word), offset: imm_i(word) })
        }
        OPC_STORE => {
            let kind = match funct3(word) {
                0b000 => StoreKind::B,
                0b001 => StoreKind::H,
                0b010 => StoreKind::W,
                0b011 => StoreKind::D,
                _ => return Err(DecodeError::UnknownFunct { word }),
            };
            Ok(Inst::Store { kind, rs1: rs1(word), rs2: rs2(word), offset: imm_s(word) })
        }
        OPC_OP_IMM => decode_op_imm(word),
        OPC_OP_IMM_32 => decode_op_imm_32(word),
        OPC_OP => decode_op(word),
        OPC_OP_32 => decode_op_32(word),
        OPC_MISC_MEM => {
            if funct3(word) == 0 {
                Ok(Inst::Fence)
            } else {
                Err(DecodeError::UnknownFunct { word })
            }
        }
        OPC_SYSTEM => decode_system(word),
        _ => Err(DecodeError::UnknownOpcode { word }),
    }
}

fn decode_op_imm(word: u32) -> Result<Inst, DecodeError> {
    let (rd, rs1) = (rd(word), rs1(word));
    let imm = imm_i(word);
    let kind = match funct3(word) {
        0b000 => AluKind::Add,
        0b010 => AluKind::Slt,
        0b011 => AluKind::Sltu,
        0b100 => AluKind::Xor,
        0b110 => AluKind::Or,
        0b111 => AluKind::And,
        0b001 => {
            // slli: funct6 must be 0 (RV64 shamt is 6 bits).
            if word >> 26 != 0 {
                return Err(DecodeError::ReservedShamt { word });
            }
            return Ok(Inst::OpImm {
                kind: AluKind::Sll,
                rd,
                rs1,
                imm: ((word >> 20) & 0x3f) as i64,
            });
        }
        0b101 => {
            let shamt = ((word >> 20) & 0x3f) as i64;
            return match word >> 26 {
                0b000000 => Ok(Inst::OpImm { kind: AluKind::Srl, rd, rs1, imm: shamt }),
                0b010000 => Ok(Inst::OpImm { kind: AluKind::Sra, rd, rs1, imm: shamt }),
                _ => Err(DecodeError::ReservedShamt { word }),
            };
        }
        _ => unreachable!("funct3 is 3 bits"),
    };
    Ok(Inst::OpImm { kind, rd, rs1, imm })
}

fn decode_op_imm_32(word: u32) -> Result<Inst, DecodeError> {
    let (rd, rs1) = (rd(word), rs1(word));
    match funct3(word) {
        0b000 => Ok(Inst::OpImm { kind: AluKind::Addw, rd, rs1, imm: imm_i(word) }),
        0b001 => {
            if funct7(word) != 0 {
                return Err(DecodeError::ReservedShamt { word });
            }
            Ok(Inst::OpImm { kind: AluKind::Sllw, rd, rs1, imm: ((word >> 20) & 0x1f) as i64 })
        }
        0b101 => {
            let shamt = ((word >> 20) & 0x1f) as i64;
            match funct7(word) {
                0b000_0000 => Ok(Inst::OpImm { kind: AluKind::Srlw, rd, rs1, imm: shamt }),
                0b010_0000 => Ok(Inst::OpImm { kind: AluKind::Sraw, rd, rs1, imm: shamt }),
                _ => Err(DecodeError::ReservedShamt { word }),
            }
        }
        _ => Err(DecodeError::UnknownFunct { word }),
    }
}

fn decode_op(word: u32) -> Result<Inst, DecodeError> {
    let kind = match (funct7(word), funct3(word)) {
        (0b000_0000, 0b000) => AluKind::Add,
        (0b010_0000, 0b000) => AluKind::Sub,
        (0b000_0000, 0b001) => AluKind::Sll,
        (0b000_0000, 0b010) => AluKind::Slt,
        (0b000_0000, 0b011) => AluKind::Sltu,
        (0b000_0000, 0b100) => AluKind::Xor,
        (0b000_0000, 0b101) => AluKind::Srl,
        (0b010_0000, 0b101) => AluKind::Sra,
        (0b000_0000, 0b110) => AluKind::Or,
        (0b000_0000, 0b111) => AluKind::And,
        (0b000_0001, 0b000) => AluKind::Mul,
        (0b000_0001, 0b001) => AluKind::Mulh,
        (0b000_0001, 0b010) => AluKind::Mulhsu,
        (0b000_0001, 0b011) => AluKind::Mulhu,
        (0b000_0001, 0b100) => AluKind::Div,
        (0b000_0001, 0b101) => AluKind::Divu,
        (0b000_0001, 0b110) => AluKind::Rem,
        (0b000_0001, 0b111) => AluKind::Remu,
        _ => return Err(DecodeError::UnknownFunct { word }),
    };
    Ok(Inst::Op { kind, rd: rd(word), rs1: rs1(word), rs2: rs2(word) })
}

fn decode_op_32(word: u32) -> Result<Inst, DecodeError> {
    let kind = match (funct7(word), funct3(word)) {
        (0b000_0000, 0b000) => AluKind::Addw,
        (0b010_0000, 0b000) => AluKind::Subw,
        (0b000_0000, 0b001) => AluKind::Sllw,
        (0b000_0000, 0b101) => AluKind::Srlw,
        (0b010_0000, 0b101) => AluKind::Sraw,
        (0b000_0001, 0b000) => AluKind::Mulw,
        (0b000_0001, 0b100) => AluKind::Divw,
        (0b000_0001, 0b101) => AluKind::Divuw,
        (0b000_0001, 0b110) => AluKind::Remw,
        (0b000_0001, 0b111) => AluKind::Remuw,
        _ => return Err(DecodeError::UnknownFunct { word }),
    };
    Ok(Inst::Op { kind, rd: rd(word), rs1: rs1(word), rs2: rs2(word) })
}

fn decode_system(word: u32) -> Result<Inst, DecodeError> {
    match funct3(word) {
        0b000 => match word >> 20 {
            0 if rd(word).is_zero() && rs1(word).is_zero() => Ok(Inst::Ecall),
            1 if rd(word).is_zero() && rs1(word).is_zero() => Ok(Inst::Ebreak),
            _ => Err(DecodeError::UnknownFunct { word }),
        },
        f3 @ (0b001..=0b011) => {
            let kind = match f3 {
                0b001 => CsrKind::Rw,
                0b010 => CsrKind::Rs,
                _ => CsrKind::Rc,
            };
            Ok(Inst::Csr { kind, rd: rd(word), rs1: rs1(word), csr: (word >> 20) as u16 })
        }
        f3 @ (0b101..=0b111) => {
            let kind = match f3 {
                0b101 => CsrKind::Rw,
                0b110 => CsrKind::Rs,
                _ => CsrKind::Rc,
            };
            Ok(Inst::CsrImm {
                kind,
                rd: rd(word),
                zimm: ((word >> 15) & 0x1f) as u8,
                csr: (word >> 20) as u16,
            })
        }
        _ => Err(DecodeError::UnknownFunct { word }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_nop() {
        assert_eq!(decode(0x0000_0013).unwrap(), Inst::NOP);
    }

    #[test]
    fn rejects_compressed_parcel() {
        assert_eq!(decode(0x0000_4501).unwrap_err(), DecodeError::Compressed { word: 0x4501 });
    }

    #[test]
    fn rejects_unknown_opcode() {
        // opcode 0b1111111 is not assigned here
        assert!(matches!(decode(0x0000_007f), Err(DecodeError::UnknownOpcode { .. })));
    }

    #[test]
    fn decodes_known_words() {
        // From riscv-tests reference encodings:
        // add a0, a1, a2 = 0x00c58533
        assert_eq!(
            decode(0x00c5_8533).unwrap(),
            Inst::Op { kind: AluKind::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 }
        );
        // lui a0, 0x12345 = 0x12345537
        assert_eq!(decode(0x1234_5537).unwrap(), Inst::Lui { rd: Reg::A0, imm: 0x1234_5000 });
        // ld a1, 16(sp) = 0x01013583
        assert_eq!(
            decode(0x0101_3583).unwrap(),
            Inst::Load { kind: LoadKind::D, rd: Reg::A1, rs1: Reg::SP, offset: 16 }
        );
        // sd a1, 24(sp) = 0x00b13c23
        assert_eq!(
            decode(0x00b1_3c23).unwrap(),
            Inst::Store { kind: StoreKind::D, rs1: Reg::SP, rs2: Reg::A1, offset: 24 }
        );
        // beq a0, a1, -4: B-imm of -4 = 0xfeb50ee3
        assert_eq!(
            decode(0xfeb5_0ee3).unwrap(),
            Inst::Branch { kind: BranchKind::Eq, rs1: Reg::A0, rs2: Reg::A1, offset: -4 }
        );
        // jal ra, 8 = 0x008000ef
        assert_eq!(decode(0x0080_00ef).unwrap(), Inst::Jal { rd: Reg::RA, offset: 8 });
        // ecall / ebreak
        assert_eq!(decode(0x0000_0073).unwrap(), Inst::Ecall);
        assert_eq!(decode(0x0010_0073).unwrap(), Inst::Ebreak);
        // mul a0, a1, a2 = 0x02c58533
        assert_eq!(
            decode(0x02c5_8533).unwrap(),
            Inst::Op { kind: AluKind::Mul, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 }
        );
        // srai a0, a1, 63 = 0x43f5d513
        assert_eq!(
            decode(0x43f5_d513).unwrap(),
            Inst::OpImm { kind: AluKind::Sra, rd: Reg::A0, rs1: Reg::A1, imm: 63 }
        );
        // addiw a0, a0, 1 = 0x0015051b
        assert_eq!(
            decode(0x0015_051b).unwrap(),
            Inst::OpImm { kind: AluKind::Addw, rd: Reg::A0, rs1: Reg::A0, imm: 1 }
        );
        // csrrs a0, mhartid(0xf14), x0 = 0xf1402573
        assert_eq!(
            decode(0xf140_2573).unwrap(),
            Inst::Csr { kind: CsrKind::Rs, rd: Reg::A0, rs1: Reg::ZERO, csr: 0xf14 }
        );
    }

    #[test]
    fn negative_immediates_sign_extend() {
        // addi a0, a0, -1 = 0xfff50513
        assert_eq!(
            decode(0xfff5_0513).unwrap(),
            Inst::OpImm { kind: AluKind::Add, rd: Reg::A0, rs1: Reg::A0, imm: -1 }
        );
        // lui a0, 0xfffff = imm -4096
        assert_eq!(decode(0xffff_f537).unwrap(), Inst::Lui { rd: Reg::A0, imm: -4096 });
    }

    #[test]
    fn reserved_shamt_rejected() {
        // slli with bit 26 set (shamt >= 64 encoding space)
        let word = 0x0400_1013 | (1 << 26);
        assert!(matches!(decode(word), Err(DecodeError::ReservedShamt { .. })));
        // slliw with shamt bit 5 set (funct7 != 0)
        // slliw a0, a0, 1 = 0x0015151b; set bit 25
        assert!(matches!(decode(0x0015_151b | (1 << 25)), Err(DecodeError::ReservedShamt { .. })));
    }
}
