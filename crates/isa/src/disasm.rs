//! Disassembly: `Display` for [`Inst`] in conventional RISC-V syntax.

use std::fmt;

use crate::{AluKind, BranchKind, CsrKind, Inst, LoadKind, StoreKind};

fn alu_mnemonic(kind: AluKind, imm: bool) -> &'static str {
    match (kind, imm) {
        (AluKind::Add, false) => "add",
        (AluKind::Add, true) => "addi",
        (AluKind::Sub, _) => "sub",
        (AluKind::Sll, false) => "sll",
        (AluKind::Sll, true) => "slli",
        (AluKind::Slt, false) => "slt",
        (AluKind::Slt, true) => "slti",
        (AluKind::Sltu, false) => "sltu",
        (AluKind::Sltu, true) => "sltiu",
        (AluKind::Xor, false) => "xor",
        (AluKind::Xor, true) => "xori",
        (AluKind::Srl, false) => "srl",
        (AluKind::Srl, true) => "srli",
        (AluKind::Sra, false) => "sra",
        (AluKind::Sra, true) => "srai",
        (AluKind::Or, false) => "or",
        (AluKind::Or, true) => "ori",
        (AluKind::And, false) => "and",
        (AluKind::And, true) => "andi",
        (AluKind::Addw, false) => "addw",
        (AluKind::Addw, true) => "addiw",
        (AluKind::Subw, _) => "subw",
        (AluKind::Sllw, false) => "sllw",
        (AluKind::Sllw, true) => "slliw",
        (AluKind::Srlw, false) => "srlw",
        (AluKind::Srlw, true) => "srliw",
        (AluKind::Sraw, false) => "sraw",
        (AluKind::Sraw, true) => "sraiw",
        (AluKind::Mul, _) => "mul",
        (AluKind::Mulh, _) => "mulh",
        (AluKind::Mulhsu, _) => "mulhsu",
        (AluKind::Mulhu, _) => "mulhu",
        (AluKind::Div, _) => "div",
        (AluKind::Divu, _) => "divu",
        (AluKind::Rem, _) => "rem",
        (AluKind::Remu, _) => "remu",
        (AluKind::Mulw, _) => "mulw",
        (AluKind::Divw, _) => "divw",
        (AluKind::Divuw, _) => "divuw",
        (AluKind::Remw, _) => "remw",
        (AluKind::Remuw, _) => "remuw",
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", (imm as u64 >> 12) & 0xf_ffff),
            Inst::Auipc { rd, imm } => {
                write!(f, "auipc {rd}, {:#x}", (imm as u64 >> 12) & 0xf_ffff)
            }
            Inst::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Inst::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Inst::Branch { kind, rs1, rs2, offset } => {
                let m = match kind {
                    BranchKind::Eq => "beq",
                    BranchKind::Ne => "bne",
                    BranchKind::Lt => "blt",
                    BranchKind::Ge => "bge",
                    BranchKind::Ltu => "bltu",
                    BranchKind::Geu => "bgeu",
                };
                write!(f, "{m} {rs1}, {rs2}, {offset}")
            }
            Inst::Load { kind, rd, rs1, offset } => {
                let m = match kind {
                    LoadKind::B => "lb",
                    LoadKind::H => "lh",
                    LoadKind::W => "lw",
                    LoadKind::D => "ld",
                    LoadKind::Bu => "lbu",
                    LoadKind::Hu => "lhu",
                    LoadKind::Wu => "lwu",
                };
                write!(f, "{m} {rd}, {offset}({rs1})")
            }
            Inst::Store { kind, rs1, rs2, offset } => {
                let m = match kind {
                    StoreKind::B => "sb",
                    StoreKind::H => "sh",
                    StoreKind::W => "sw",
                    StoreKind::D => "sd",
                };
                write!(f, "{m} {rs2}, {offset}({rs1})")
            }
            Inst::OpImm { kind, rd, rs1, imm } => {
                if self.is_nop() {
                    return f.write_str("nop");
                }
                write!(f, "{} {rd}, {rs1}, {imm}", alu_mnemonic(kind, true))
            }
            Inst::Op { kind, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", alu_mnemonic(kind, false))
            }
            Inst::Fence => f.write_str("fence"),
            Inst::Ecall => f.write_str("ecall"),
            Inst::Ebreak => f.write_str("ebreak"),
            Inst::Csr { kind, rd, rs1, csr } => {
                let m = match kind {
                    CsrKind::Rw => "csrrw",
                    CsrKind::Rs => "csrrs",
                    CsrKind::Rc => "csrrc",
                };
                write!(f, "{m} {rd}, {csr:#x}, {rs1}")
            }
            Inst::CsrImm { kind, rd, zimm, csr } => {
                let m = match kind {
                    CsrKind::Rw => "csrrwi",
                    CsrKind::Rs => "csrrsi",
                    CsrKind::Rc => "csrrci",
                };
                write!(f, "{m} {rd}, {csr:#x}, {zimm}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn formats_common_instructions() {
        let i = Inst::Op { kind: AluKind::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
        assert_eq!(i.to_string(), "add a0, a1, a2");
        let i = Inst::OpImm { kind: AluKind::Add, rd: Reg::SP, rs1: Reg::SP, imm: -16 };
        assert_eq!(i.to_string(), "addi sp, sp, -16");
        let i = Inst::Load { kind: LoadKind::D, rd: Reg::A1, rs1: Reg::SP, offset: 16 };
        assert_eq!(i.to_string(), "ld a1, 16(sp)");
        let i = Inst::Store { kind: StoreKind::W, rs1: Reg::A0, rs2: Reg::T0, offset: 0 };
        assert_eq!(i.to_string(), "sw t0, 0(a0)");
        let i = Inst::Branch { kind: BranchKind::Ltu, rs1: Reg::T0, rs2: Reg::T1, offset: -8 };
        assert_eq!(i.to_string(), "bltu t0, t1, -8");
    }

    #[test]
    fn nop_prints_as_nop() {
        assert_eq!(Inst::NOP.to_string(), "nop");
    }

    #[test]
    fn lui_prints_upper_immediate() {
        let i = Inst::Lui { rd: Reg::A0, imm: 0x12345 << 12 };
        assert_eq!(i.to_string(), "lui a0, 0x12345");
        let i = Inst::Lui { rd: Reg::A0, imm: -4096 };
        assert_eq!(i.to_string(), "lui a0, 0xfffff");
    }

    #[test]
    fn csr_forms() {
        let i = Inst::Csr { kind: CsrKind::Rs, rd: Reg::A0, rs1: Reg::ZERO, csr: 0xf14 };
        assert_eq!(i.to_string(), "csrrs a0, 0xf14, zero");
        let i = Inst::CsrImm { kind: CsrKind::Rw, rd: Reg::ZERO, zimm: 5, csr: 0x340 };
        assert_eq!(i.to_string(), "csrrwi zero, 0x340, 5");
    }

    #[test]
    fn jumps() {
        assert_eq!(Inst::Jal { rd: Reg::ZERO, offset: -64 }.to_string(), "jal zero, -64");
        assert_eq!(
            Inst::Jalr { rd: Reg::RA, rs1: Reg::T0, offset: 0 }.to_string(),
            "jalr ra, 0(t0)"
        );
    }
}
