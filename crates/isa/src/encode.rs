//! Encoding of [`Inst`] back into 32-bit RV64IM instruction words.
//!
//! [`encode`] is the exact inverse of [`decode`](crate::decode) for every
//! representable instruction; the round-trip property is enforced by the
//! crate's property tests.

use crate::{AluKind, BranchKind, CsrKind, EncodeError, Inst, LoadKind, Reg, StoreKind};

#[inline]
fn r(reg: Reg) -> u32 {
    u32::from(reg.index())
}

fn check_range(field: &'static str, value: i64, bits: u32) -> Result<(), EncodeError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if value < min || value > max {
        return Err(EncodeError::ImmOutOfRange { field, value });
    }
    Ok(())
}

fn enc_i(opcode: u32, funct3: u32, rd: Reg, rs1: Reg, imm: i64) -> Result<u32, EncodeError> {
    check_range("I-immediate", imm, 12)?;
    Ok(((imm as u32) << 20) | (r(rs1) << 15) | (funct3 << 12) | (r(rd) << 7) | opcode)
}

fn enc_s(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, imm: i64) -> Result<u32, EncodeError> {
    check_range("S-immediate", imm, 12)?;
    let imm = imm as u32;
    Ok(((imm >> 5) << 25)
        | (r(rs2) << 20)
        | (r(rs1) << 15)
        | (funct3 << 12)
        | ((imm & 0x1f) << 7)
        | opcode)
}

fn enc_b(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, offset: i64) -> Result<u32, EncodeError> {
    if offset & 1 != 0 {
        return Err(EncodeError::MisalignedOffset { offset });
    }
    check_range("B-immediate", offset, 13)?;
    let imm = offset as u32;
    let b12 = (imm >> 12) & 1;
    let b11 = (imm >> 11) & 1;
    let b10_5 = (imm >> 5) & 0x3f;
    let b4_1 = (imm >> 1) & 0xf;
    Ok((b12 << 31)
        | (b10_5 << 25)
        | (r(rs2) << 20)
        | (r(rs1) << 15)
        | (funct3 << 12)
        | (b4_1 << 8)
        | (b11 << 7)
        | opcode)
}

fn enc_u(opcode: u32, rd: Reg, imm: i64) -> Result<u32, EncodeError> {
    if imm & 0xfff != 0 {
        return Err(EncodeError::ImmOutOfRange {
            field: "U-immediate (low 12 bits set)",
            value: imm,
        });
    }
    if !(-(1i64 << 31)..(1i64 << 31)).contains(&imm) {
        return Err(EncodeError::ImmOutOfRange { field: "U-immediate", value: imm });
    }
    Ok(((imm as u32) & 0xffff_f000) | (r(rd) << 7) | opcode)
}

fn enc_j(opcode: u32, rd: Reg, offset: i64) -> Result<u32, EncodeError> {
    if offset & 1 != 0 {
        return Err(EncodeError::MisalignedOffset { offset });
    }
    check_range("J-immediate", offset, 21)?;
    let imm = offset as u32;
    let b20 = (imm >> 20) & 1;
    let b19_12 = (imm >> 12) & 0xff;
    let b11 = (imm >> 11) & 1;
    let b10_1 = (imm >> 1) & 0x3ff;
    Ok((b20 << 31) | (b10_1 << 21) | (b11 << 20) | (b19_12 << 12) | (r(rd) << 7) | opcode)
}

fn enc_r(opcode: u32, funct7: u32, funct3: u32, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    (funct7 << 25) | (r(rs2) << 20) | (r(rs1) << 15) | (funct3 << 12) | (r(rd) << 7) | opcode
}

fn alu_funct(kind: AluKind) -> (u32, u32, u32) {
    // (opcode, funct7, funct3) for the register-register form.
    match kind {
        AluKind::Add => (0x33, 0x00, 0b000),
        AluKind::Sub => (0x33, 0x20, 0b000),
        AluKind::Sll => (0x33, 0x00, 0b001),
        AluKind::Slt => (0x33, 0x00, 0b010),
        AluKind::Sltu => (0x33, 0x00, 0b011),
        AluKind::Xor => (0x33, 0x00, 0b100),
        AluKind::Srl => (0x33, 0x00, 0b101),
        AluKind::Sra => (0x33, 0x20, 0b101),
        AluKind::Or => (0x33, 0x00, 0b110),
        AluKind::And => (0x33, 0x00, 0b111),
        AluKind::Addw => (0x3b, 0x00, 0b000),
        AluKind::Subw => (0x3b, 0x20, 0b000),
        AluKind::Sllw => (0x3b, 0x00, 0b001),
        AluKind::Srlw => (0x3b, 0x00, 0b101),
        AluKind::Sraw => (0x3b, 0x20, 0b101),
        AluKind::Mul => (0x33, 0x01, 0b000),
        AluKind::Mulh => (0x33, 0x01, 0b001),
        AluKind::Mulhsu => (0x33, 0x01, 0b010),
        AluKind::Mulhu => (0x33, 0x01, 0b011),
        AluKind::Div => (0x33, 0x01, 0b100),
        AluKind::Divu => (0x33, 0x01, 0b101),
        AluKind::Rem => (0x33, 0x01, 0b110),
        AluKind::Remu => (0x33, 0x01, 0b111),
        AluKind::Mulw => (0x3b, 0x01, 0b000),
        AluKind::Divw => (0x3b, 0x01, 0b100),
        AluKind::Divuw => (0x3b, 0x01, 0b101),
        AluKind::Remw => (0x3b, 0x01, 0b110),
        AluKind::Remuw => (0x3b, 0x01, 0b111),
    }
}

fn kind_name(kind: AluKind) -> &'static str {
    match kind {
        AluKind::Add => "add",
        AluKind::Sub => "sub",
        AluKind::Sll => "sll",
        AluKind::Slt => "slt",
        AluKind::Sltu => "sltu",
        AluKind::Xor => "xor",
        AluKind::Srl => "srl",
        AluKind::Sra => "sra",
        AluKind::Or => "or",
        AluKind::And => "and",
        AluKind::Addw => "addw",
        AluKind::Subw => "subw",
        AluKind::Sllw => "sllw",
        AluKind::Srlw => "srlw",
        AluKind::Sraw => "sraw",
        AluKind::Mul => "mul",
        AluKind::Mulh => "mulh",
        AluKind::Mulhsu => "mulhsu",
        AluKind::Mulhu => "mulhu",
        AluKind::Div => "div",
        AluKind::Divu => "divu",
        AluKind::Rem => "rem",
        AluKind::Remu => "remu",
        AluKind::Mulw => "mulw",
        AluKind::Divw => "divw",
        AluKind::Divuw => "divuw",
        AluKind::Remw => "remw",
        AluKind::Remuw => "remuw",
    }
}

fn enc_op_imm(kind: AluKind, rd: Reg, rs1: Reg, imm: i64) -> Result<u32, EncodeError> {
    if !kind.valid_for_imm() {
        return Err(EncodeError::InvalidImmKind { kind: kind_name(kind) });
    }
    if kind.is_shift() {
        let width: u8 = if kind.is_word() { 32 } else { 64 };
        if imm < 0 || imm >= i64::from(width) {
            return Err(EncodeError::ShamtOutOfRange { shamt: imm, width });
        }
        let (opcode, funct3, hi): (u32, u32, u32) = match kind {
            AluKind::Sll => (0x13, 0b001, 0),
            AluKind::Srl => (0x13, 0b101, 0),
            AluKind::Sra => (0x13, 0b101, 0b010000 << 6),
            AluKind::Sllw => (0x1b, 0b001, 0),
            AluKind::Srlw => (0x1b, 0b101, 0),
            AluKind::Sraw => (0x1b, 0b101, 0b0100000 << 5),
            _ => unreachable!(),
        };
        return Ok((((imm as u32) | hi) << 20)
            | (r(rs1) << 15)
            | (funct3 << 12)
            | (r(rd) << 7)
            | opcode);
    }
    let (opcode, funct3) = match kind {
        AluKind::Add => (0x13, 0b000),
        AluKind::Slt => (0x13, 0b010),
        AluKind::Sltu => (0x13, 0b011),
        AluKind::Xor => (0x13, 0b100),
        AluKind::Or => (0x13, 0b110),
        AluKind::And => (0x13, 0b111),
        AluKind::Addw => (0x1b, 0b000),
        _ => unreachable!(),
    };
    enc_i(opcode, funct3, rd, rs1, imm)
}

/// Encodes a structured instruction into its 32-bit word.
///
/// # Errors
///
/// Returns an [`EncodeError`] when an immediate overflows its field, a
/// control-flow offset is misaligned, a shift amount is out of range, or the
/// ALU kind has no immediate form.
///
/// # Examples
///
/// ```
/// use safedm_isa::{encode, Inst};
///
/// assert_eq!(encode(&Inst::NOP)?, 0x0000_0013);
/// # Ok::<(), safedm_isa::EncodeError>(())
/// ```
pub fn encode(inst: &Inst) -> Result<u32, EncodeError> {
    match *inst {
        Inst::Lui { rd, imm } => enc_u(0x37, rd, imm),
        Inst::Auipc { rd, imm } => enc_u(0x17, rd, imm),
        Inst::Jal { rd, offset } => enc_j(0x6f, rd, offset),
        Inst::Jalr { rd, rs1, offset } => enc_i(0x67, 0b000, rd, rs1, offset),
        Inst::Branch { kind, rs1, rs2, offset } => {
            let funct3 = match kind {
                BranchKind::Eq => 0b000,
                BranchKind::Ne => 0b001,
                BranchKind::Lt => 0b100,
                BranchKind::Ge => 0b101,
                BranchKind::Ltu => 0b110,
                BranchKind::Geu => 0b111,
            };
            enc_b(0x63, funct3, rs1, rs2, offset)
        }
        Inst::Load { kind, rd, rs1, offset } => {
            let funct3 = match kind {
                LoadKind::B => 0b000,
                LoadKind::H => 0b001,
                LoadKind::W => 0b010,
                LoadKind::D => 0b011,
                LoadKind::Bu => 0b100,
                LoadKind::Hu => 0b101,
                LoadKind::Wu => 0b110,
            };
            enc_i(0x03, funct3, rd, rs1, offset)
        }
        Inst::Store { kind, rs1, rs2, offset } => {
            let funct3 = match kind {
                StoreKind::B => 0b000,
                StoreKind::H => 0b001,
                StoreKind::W => 0b010,
                StoreKind::D => 0b011,
            };
            enc_s(0x23, funct3, rs1, rs2, offset)
        }
        Inst::OpImm { kind, rd, rs1, imm } => enc_op_imm(kind, rd, rs1, imm),
        Inst::Op { kind, rd, rs1, rs2 } => {
            let (opcode, funct7, funct3) = alu_funct(kind);
            Ok(enc_r(opcode, funct7, funct3, rd, rs1, rs2))
        }
        Inst::Fence => Ok(0x0000_000f),
        Inst::Ecall => Ok(0x0000_0073),
        Inst::Ebreak => Ok(0x0010_0073),
        Inst::Csr { kind, rd, rs1, csr } => {
            let funct3 = match kind {
                CsrKind::Rw => 0b001,
                CsrKind::Rs => 0b010,
                CsrKind::Rc => 0b011,
            };
            Ok((u32::from(csr) << 20) | (r(rs1) << 15) | (funct3 << 12) | (r(rd) << 7) | 0x73)
        }
        Inst::CsrImm { kind, rd, zimm, csr } => {
            let funct3 = match kind {
                CsrKind::Rw => 0b101,
                CsrKind::Rs => 0b110,
                CsrKind::Rc => 0b111,
            };
            if zimm > 31 {
                return Err(EncodeError::ImmOutOfRange {
                    field: "CSR zimm",
                    value: i64::from(zimm),
                });
            }
            Ok((u32::from(csr) << 20)
                | (u32::from(zimm) << 15)
                | (funct3 << 12)
                | (r(rd) << 7)
                | 0x73)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    #[test]
    fn encodes_reference_words() {
        let add = Inst::Op { kind: AluKind::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
        assert_eq!(encode(&add).unwrap(), 0x00c5_8533);
        assert_eq!(encode(&Inst::NOP).unwrap(), 0x0000_0013);
        assert_eq!(encode(&Inst::Ecall).unwrap(), 0x0000_0073);
        assert_eq!(encode(&Inst::Ebreak).unwrap(), 0x0010_0073);
        let sd = Inst::Store { kind: StoreKind::D, rs1: Reg::SP, rs2: Reg::A1, offset: 24 };
        assert_eq!(encode(&sd).unwrap(), 0x00b1_3c23);
        let beq = Inst::Branch { kind: BranchKind::Eq, rs1: Reg::A0, rs2: Reg::A1, offset: -4 };
        assert_eq!(encode(&beq).unwrap(), 0xfeb5_0ee3);
    }

    #[test]
    fn rejects_out_of_range_immediates() {
        let i = Inst::OpImm { kind: AluKind::Add, rd: Reg::A0, rs1: Reg::A0, imm: 2048 };
        assert!(matches!(encode(&i), Err(EncodeError::ImmOutOfRange { .. })));
        let i = Inst::OpImm { kind: AluKind::Add, rd: Reg::A0, rs1: Reg::A0, imm: -2049 };
        assert!(matches!(encode(&i), Err(EncodeError::ImmOutOfRange { .. })));
        let i = Inst::OpImm { kind: AluKind::Add, rd: Reg::A0, rs1: Reg::A0, imm: -2048 };
        assert!(encode(&i).is_ok());
    }

    #[test]
    fn rejects_misaligned_branch() {
        let b = Inst::Branch { kind: BranchKind::Ne, rs1: Reg::A0, rs2: Reg::A1, offset: 3 };
        assert!(matches!(encode(&b), Err(EncodeError::MisalignedOffset { offset: 3 })));
        let j = Inst::Jal { rd: Reg::RA, offset: 5 };
        assert!(matches!(encode(&j), Err(EncodeError::MisalignedOffset { offset: 5 })));
    }

    #[test]
    fn rejects_invalid_imm_kind() {
        let i = Inst::OpImm { kind: AluKind::Sub, rd: Reg::A0, rs1: Reg::A0, imm: 1 };
        assert!(matches!(encode(&i), Err(EncodeError::InvalidImmKind { kind: "sub" })));
        let i = Inst::OpImm { kind: AluKind::Mul, rd: Reg::A0, rs1: Reg::A0, imm: 1 };
        assert!(matches!(encode(&i), Err(EncodeError::InvalidImmKind { kind: "mul" })));
    }

    #[test]
    fn rejects_bad_shamt() {
        let i = Inst::OpImm { kind: AluKind::Sll, rd: Reg::A0, rs1: Reg::A0, imm: 64 };
        assert!(matches!(encode(&i), Err(EncodeError::ShamtOutOfRange { shamt: 64, width: 64 })));
        let i = Inst::OpImm { kind: AluKind::Sllw, rd: Reg::A0, rs1: Reg::A0, imm: 32 };
        assert!(matches!(encode(&i), Err(EncodeError::ShamtOutOfRange { shamt: 32, width: 32 })));
        let i = Inst::OpImm { kind: AluKind::Sraw, rd: Reg::A0, rs1: Reg::A0, imm: 31 };
        assert!(encode(&i).is_ok());
    }

    #[test]
    fn rejects_lui_with_low_bits() {
        let i = Inst::Lui { rd: Reg::A0, imm: 0x1001 };
        assert!(matches!(encode(&i), Err(EncodeError::ImmOutOfRange { .. })));
    }

    #[test]
    fn shift_roundtrip() {
        for kind in [AluKind::Sll, AluKind::Srl, AluKind::Sra] {
            for shamt in [0i64, 1, 31, 32, 63] {
                let i = Inst::OpImm { kind, rd: Reg::T0, rs1: Reg::T1, imm: shamt };
                let w = encode(&i).unwrap();
                assert_eq!(decode(w).unwrap(), i, "{kind:?} shamt {shamt}");
            }
        }
        for kind in [AluKind::Sllw, AluKind::Srlw, AluKind::Sraw] {
            for shamt in [0i64, 1, 15, 31] {
                let i = Inst::OpImm { kind, rd: Reg::T0, rs1: Reg::T1, imm: shamt };
                let w = encode(&i).unwrap();
                assert_eq!(decode(w).unwrap(), i, "{kind:?} shamt {shamt}");
            }
        }
    }
}
