//! Error types for decoding and encoding RV64IM instructions.

use std::error::Error;
use std::fmt;

/// Error produced when a 32-bit word does not decode to a supported RV64IM
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The major opcode (bits `[6:0]`) is not implemented.
    UnknownOpcode {
        /// The raw instruction word.
        word: u32,
    },
    /// The opcode is known but the funct3/funct7 selector is reserved.
    UnknownFunct {
        /// The raw instruction word.
        word: u32,
    },
    /// A shift instruction encodes a reserved shamt bit.
    ReservedShamt {
        /// The raw instruction word.
        word: u32,
    },
    /// A compressed (16-bit) instruction parcel was found; the C extension is
    /// not implemented.
    Compressed {
        /// The raw instruction word.
        word: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::UnknownOpcode { word } => {
                write!(f, "unknown opcode in instruction word {word:#010x}")
            }
            DecodeError::UnknownFunct { word } => {
                write!(f, "reserved funct field in instruction word {word:#010x}")
            }
            DecodeError::ReservedShamt { word } => {
                write!(f, "reserved shift amount in instruction word {word:#010x}")
            }
            DecodeError::Compressed { word } => {
                write!(f, "compressed instruction parcel {word:#010x} (C extension unsupported)")
            }
        }
    }
}

impl Error for DecodeError {}

/// Error produced when a structured [`Inst`](crate::Inst) cannot be encoded
/// into a valid 32-bit word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate does not fit its field.
    ImmOutOfRange {
        /// Which field overflowed (e.g. `"I-immediate"`).
        field: &'static str,
        /// The offending value.
        value: i64,
    },
    /// A branch/jump offset is not 2-byte aligned (4-byte for this RV64-only
    /// model, but the encoding requires 2).
    MisalignedOffset {
        /// The offending offset.
        offset: i64,
    },
    /// The ALU kind has no register-immediate encoding (e.g. `sub`, `mul`).
    InvalidImmKind {
        /// Name of the rejected operation.
        kind: &'static str,
    },
    /// A shift amount is out of range for the operand width.
    ShamtOutOfRange {
        /// The offending shift amount.
        shamt: i64,
        /// Operand width in bits (32 or 64).
        width: u8,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { field, value } => {
                write!(f, "{field} {value} out of range")
            }
            EncodeError::MisalignedOffset { offset } => {
                write!(f, "control-flow offset {offset} is not 2-byte aligned")
            }
            EncodeError::InvalidImmKind { kind } => {
                write!(f, "operation {kind} has no immediate encoding")
            }
            EncodeError::ShamtOutOfRange { shamt, width } => {
                write!(f, "shift amount {shamt} out of range for {width}-bit operand")
            }
        }
    }
}

impl Error for EncodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_error_messages_are_lowercase_and_informative() {
        let e = DecodeError::UnknownOpcode { word: 0xdead_beef };
        assert!(e.to_string().contains("0xdeadbeef"));
        let e = DecodeError::Compressed { word: 0x4501 };
        assert!(e.to_string().contains("compressed"));
    }

    #[test]
    fn encode_error_messages() {
        let e = EncodeError::ImmOutOfRange { field: "I-immediate", value: 5000 };
        assert_eq!(e.to_string(), "I-immediate 5000 out of range");
        let e = EncodeError::ShamtOutOfRange { shamt: 64, width: 64 };
        assert!(e.to_string().contains("64-bit"));
    }
}
