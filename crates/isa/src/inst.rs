//! The RV64IM instruction representation.
//!
//! [`Inst`] is a decoded, structured form of an RV64IM instruction. It is the
//! currency between the assembler ([`safedm-asm`]), the pipeline model
//! ([`safedm-soc`]) and the disassembler.
//!
//! [`safedm-asm`]: https://docs.rs/safedm-asm
//! [`safedm-soc`]: https://docs.rs/safedm-soc

use crate::Reg;

/// Branch comparison performed by a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// `beq` — taken when `rs1 == rs2`.
    Eq,
    /// `bne` — taken when `rs1 != rs2`.
    Ne,
    /// `blt` — taken when `rs1 < rs2` (signed).
    Lt,
    /// `bge` — taken when `rs1 >= rs2` (signed).
    Ge,
    /// `bltu` — taken when `rs1 < rs2` (unsigned).
    Ltu,
    /// `bgeu` — taken when `rs1 >= rs2` (unsigned).
    Geu,
}

/// Width and sign-extension behaviour of a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadKind {
    /// `lb` — 8-bit, sign-extended.
    B,
    /// `lh` — 16-bit, sign-extended.
    H,
    /// `lw` — 32-bit, sign-extended.
    W,
    /// `ld` — 64-bit.
    D,
    /// `lbu` — 8-bit, zero-extended.
    Bu,
    /// `lhu` — 16-bit, zero-extended.
    Hu,
    /// `lwu` — 32-bit, zero-extended.
    Wu,
}

impl LoadKind {
    /// Access size in bytes.
    #[must_use]
    pub const fn size(self) -> u64 {
        match self {
            LoadKind::B | LoadKind::Bu => 1,
            LoadKind::H | LoadKind::Hu => 2,
            LoadKind::W | LoadKind::Wu => 4,
            LoadKind::D => 8,
        }
    }
}

/// Width of a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// `sb` — 8-bit.
    B,
    /// `sh` — 16-bit.
    H,
    /// `sw` — 32-bit.
    W,
    /// `sd` — 64-bit.
    D,
}

impl StoreKind {
    /// Access size in bytes.
    #[must_use]
    pub const fn size(self) -> u64 {
        match self {
            StoreKind::B => 1,
            StoreKind::H => 2,
            StoreKind::W => 4,
            StoreKind::D => 8,
        }
    }
}

/// ALU / multiplier operation selector shared by the register-register
/// (`OP`, `OP-32`) and register-immediate (`OP-IMM`, `OP-IMM-32`) formats.
///
/// Immediate forms only admit the subset returned by
/// [`AluKind::valid_for_imm`]; the M-extension kinds are register-register
/// only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluKind {
    /// `add`/`addi`.
    Add,
    /// `sub`.
    Sub,
    /// `sll`/`slli`.
    Sll,
    /// `slt`/`slti` — set when less than (signed).
    Slt,
    /// `sltu`/`sltiu` — set when less than (unsigned).
    Sltu,
    /// `xor`/`xori`.
    Xor,
    /// `srl`/`srli`.
    Srl,
    /// `sra`/`srai`.
    Sra,
    /// `or`/`ori`.
    Or,
    /// `and`/`andi`.
    And,
    /// `addw`/`addiw` — 32-bit add, sign-extended result.
    Addw,
    /// `subw`.
    Subw,
    /// `sllw`/`slliw`.
    Sllw,
    /// `srlw`/`srliw`.
    Srlw,
    /// `sraw`/`sraiw`.
    Sraw,
    /// `mul` — low 64 bits of the product.
    Mul,
    /// `mulh` — high 64 bits of signed × signed.
    Mulh,
    /// `mulhsu` — high 64 bits of signed × unsigned.
    Mulhsu,
    /// `mulhu` — high 64 bits of unsigned × unsigned.
    Mulhu,
    /// `div` — signed division.
    Div,
    /// `divu` — unsigned division.
    Divu,
    /// `rem` — signed remainder.
    Rem,
    /// `remu` — unsigned remainder.
    Remu,
    /// `mulw` — 32-bit multiply, sign-extended.
    Mulw,
    /// `divw` — 32-bit signed division, sign-extended.
    Divw,
    /// `divuw` — 32-bit unsigned division, sign-extended.
    Divuw,
    /// `remw` — 32-bit signed remainder, sign-extended.
    Remw,
    /// `remuw` — 32-bit unsigned remainder, sign-extended.
    Remuw,
}

impl AluKind {
    /// Whether this kind has a register-immediate encoding (`OP-IMM` /
    /// `OP-IMM-32`).
    #[must_use]
    pub const fn valid_for_imm(self) -> bool {
        matches!(
            self,
            AluKind::Add
                | AluKind::Sll
                | AluKind::Slt
                | AluKind::Sltu
                | AluKind::Xor
                | AluKind::Srl
                | AluKind::Sra
                | AluKind::Or
                | AluKind::And
                | AluKind::Addw
                | AluKind::Sllw
                | AluKind::Srlw
                | AluKind::Sraw
        )
    }

    /// Whether this is an M-extension (multiply/divide) operation.
    #[must_use]
    pub const fn is_muldiv(self) -> bool {
        matches!(
            self,
            AluKind::Mul
                | AluKind::Mulh
                | AluKind::Mulhsu
                | AluKind::Mulhu
                | AluKind::Div
                | AluKind::Divu
                | AluKind::Rem
                | AluKind::Remu
                | AluKind::Mulw
                | AluKind::Divw
                | AluKind::Divuw
                | AluKind::Remw
                | AluKind::Remuw
        )
    }

    /// Whether this is a divide/remainder operation (long latency).
    #[must_use]
    pub const fn is_div(self) -> bool {
        matches!(
            self,
            AluKind::Div
                | AluKind::Divu
                | AluKind::Rem
                | AluKind::Remu
                | AluKind::Divw
                | AluKind::Divuw
                | AluKind::Remw
                | AluKind::Remuw
        )
    }

    /// Whether this is a word (`*W`) operation on the low 32 bits.
    #[must_use]
    pub const fn is_word(self) -> bool {
        matches!(
            self,
            AluKind::Addw
                | AluKind::Subw
                | AluKind::Sllw
                | AluKind::Srlw
                | AluKind::Sraw
                | AluKind::Mulw
                | AluKind::Divw
                | AluKind::Divuw
                | AluKind::Remw
                | AluKind::Remuw
        )
    }

    /// Whether this is a shift (immediate forms encode a shamt).
    #[must_use]
    pub const fn is_shift(self) -> bool {
        matches!(
            self,
            AluKind::Sll
                | AluKind::Srl
                | AluKind::Sra
                | AluKind::Sllw
                | AluKind::Srlw
                | AluKind::Sraw
        )
    }
}

/// CSR access operation (Zicsr).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrKind {
    /// `csrrw` — atomic read/write.
    Rw,
    /// `csrrs` — atomic read and set bits.
    Rs,
    /// `csrrc` — atomic read and clear bits.
    Rc,
}

/// A decoded RV64IM (plus minimal Zicsr) instruction.
///
/// Immediates are stored sign-extended in their natural unit: byte offsets
/// for loads/stores/branches/jumps, the full shifted value for `lui`/`auipc`.
///
/// # Examples
///
/// ```
/// use safedm_isa::{Inst, Reg, AluKind};
///
/// let add = Inst::Op { kind: AluKind::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
/// assert_eq!(add.to_string(), "add a0, a1, a2");
/// assert!(add.rd().is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field meanings are given in the variant docs
pub enum Inst {
    /// `lui rd, imm` — load upper immediate; `imm` is the already-shifted
    /// sign-extended 32-bit value (multiple of 4096).
    Lui { rd: Reg, imm: i64 },
    /// `auipc rd, imm` — add upper immediate to PC; `imm` as in `Lui`.
    Auipc { rd: Reg, imm: i64 },
    /// `jal rd, offset` — jump and link; `offset` is a byte offset from the
    /// instruction's PC.
    Jal { rd: Reg, offset: i64 },
    /// `jalr rd, offset(rs1)` — indirect jump and link.
    Jalr { rd: Reg, rs1: Reg, offset: i64 },
    /// Conditional branch; `offset` is a byte offset from the PC.
    Branch { kind: BranchKind, rs1: Reg, rs2: Reg, offset: i64 },
    /// Load from `rs1 + offset` into `rd`.
    Load { kind: LoadKind, rd: Reg, rs1: Reg, offset: i64 },
    /// Store `rs2` to `rs1 + offset`.
    Store { kind: StoreKind, rs1: Reg, rs2: Reg, offset: i64 },
    /// Register-immediate ALU operation.
    OpImm { kind: AluKind, rd: Reg, rs1: Reg, imm: i64 },
    /// Register-register ALU / mul / div operation.
    Op { kind: AluKind, rd: Reg, rs1: Reg, rs2: Reg },
    /// `fence` — memory ordering (a no-op for this in-order model beyond
    /// draining the store buffer).
    Fence,
    /// `ecall` — environment call (used as the semihosting exit trap).
    Ecall,
    /// `ebreak` — breakpoint (used as the bare-metal halt).
    Ebreak,
    /// CSR access, register form (`csrrw`/`csrrs`/`csrrc`).
    Csr { kind: CsrKind, rd: Reg, rs1: Reg, csr: u16 },
    /// CSR access, immediate form (`csrrwi`/`csrrsi`/`csrrci`) with a 5-bit
    /// zero-extended immediate.
    CsrImm { kind: CsrKind, rd: Reg, zimm: u8, csr: u16 },
}

impl Inst {
    /// The canonical no-operation, `addi x0, x0, 0`.
    pub const NOP: Inst = Inst::OpImm { kind: AluKind::Add, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 0 };

    /// The destination register written by this instruction, if any.
    ///
    /// `x0` destinations are reported as `None` since the write has no
    /// architectural effect.
    #[must_use]
    pub fn rd(&self) -> Option<Reg> {
        let rd = match *self {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::OpImm { rd, .. }
            | Inst::Op { rd, .. }
            | Inst::Csr { rd, .. }
            | Inst::CsrImm { rd, .. } => rd,
            Inst::Branch { .. } | Inst::Store { .. } | Inst::Fence | Inst::Ecall | Inst::Ebreak => {
                return None
            }
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// First source register read by this instruction, if any.
    #[must_use]
    pub fn rs1(&self) -> Option<Reg> {
        match *self {
            Inst::Jalr { rs1, .. }
            | Inst::Branch { rs1, .. }
            | Inst::Load { rs1, .. }
            | Inst::Store { rs1, .. }
            | Inst::OpImm { rs1, .. }
            | Inst::Op { rs1, .. }
            | Inst::Csr { rs1, .. } => Some(rs1),
            Inst::Lui { .. }
            | Inst::Auipc { .. }
            | Inst::Jal { .. }
            | Inst::Fence
            | Inst::Ecall
            | Inst::Ebreak
            | Inst::CsrImm { .. } => None,
        }
    }

    /// Second source register read by this instruction, if any.
    #[must_use]
    pub fn rs2(&self) -> Option<Reg> {
        match *self {
            Inst::Branch { rs2, .. } | Inst::Store { rs2, .. } | Inst::Op { rs2, .. } => Some(rs2),
            _ => None,
        }
    }

    /// Mask of registers read by this instruction (bit *i* = `x{i}`, `x0`
    /// contributes no bits).
    ///
    /// This is the single definition of operand extraction shared by the
    /// pipeline's hazard logic and the static analyzer's dataflow passes, so
    /// the two cannot drift.
    #[must_use]
    pub fn use_mask(&self) -> u32 {
        self.rs1().map_or(0, Reg::bit) | self.rs2().map_or(0, Reg::bit)
    }

    /// Mask of registers written by this instruction (`x0` writes excluded).
    #[must_use]
    pub fn def_mask(&self) -> u32 {
        self.rd().map_or(0, Reg::bit)
    }

    /// Rewrites every register operand through `f`, leaving immediates, CSR
    /// numbers and opcodes untouched.
    ///
    /// This is the hook the software-diversity transform uses to apply a
    /// register-renaming bijection: the returned instruction reads
    /// `f(rs1)`/`f(rs2)` and writes `f(rd)`. Callers are responsible for `f`
    /// respecting ABI constraints (in particular `f(x0) == x0`, or writes to
    /// the renamed destination silently change semantics).
    #[must_use]
    pub fn map_regs(&self, mut f: impl FnMut(Reg) -> Reg) -> Inst {
        match *self {
            Inst::Lui { rd, imm } => Inst::Lui { rd: f(rd), imm },
            Inst::Auipc { rd, imm } => Inst::Auipc { rd: f(rd), imm },
            Inst::Jal { rd, offset } => Inst::Jal { rd: f(rd), offset },
            Inst::Jalr { rd, rs1, offset } => Inst::Jalr { rd: f(rd), rs1: f(rs1), offset },
            Inst::Branch { kind, rs1, rs2, offset } => {
                Inst::Branch { kind, rs1: f(rs1), rs2: f(rs2), offset }
            }
            Inst::Load { kind, rd, rs1, offset } => {
                Inst::Load { kind, rd: f(rd), rs1: f(rs1), offset }
            }
            Inst::Store { kind, rs1, rs2, offset } => {
                Inst::Store { kind, rs1: f(rs1), rs2: f(rs2), offset }
            }
            Inst::OpImm { kind, rd, rs1, imm } => Inst::OpImm { kind, rd: f(rd), rs1: f(rs1), imm },
            Inst::Op { kind, rd, rs1, rs2 } => {
                Inst::Op { kind, rd: f(rd), rs1: f(rs1), rs2: f(rs2) }
            }
            Inst::Fence => Inst::Fence,
            Inst::Ecall => Inst::Ecall,
            Inst::Ebreak => Inst::Ebreak,
            Inst::Csr { kind, rd, rs1, csr } => Inst::Csr { kind, rd: f(rd), rs1: f(rs1), csr },
            Inst::CsrImm { kind, rd, zimm, csr } => Inst::CsrImm { kind, rd: f(rd), zimm, csr },
        }
    }

    /// Whether this is a load.
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. })
    }

    /// Whether this is a store.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. })
    }

    /// Whether this is any memory access (load or store).
    #[must_use]
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether this instruction can redirect the control flow.
    #[must_use]
    pub fn is_control_flow(&self) -> bool {
        matches!(self, Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. })
    }

    /// Whether this is a conditional branch.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// Whether this is an unconditional jump (`jal`/`jalr`).
    #[must_use]
    pub fn is_jump(&self) -> bool {
        matches!(self, Inst::Jal { .. } | Inst::Jalr { .. })
    }

    /// Whether this instruction uses the multiply/divide unit.
    #[must_use]
    pub fn is_muldiv(&self) -> bool {
        matches!(self, Inst::Op { kind, .. } if kind.is_muldiv())
    }

    /// Whether this is a system instruction (`ecall`/`ebreak`/CSR/fence).
    #[must_use]
    pub fn is_system(&self) -> bool {
        matches!(
            self,
            Inst::Ecall | Inst::Ebreak | Inst::Fence | Inst::Csr { .. } | Inst::CsrImm { .. }
        )
    }

    /// Whether this instruction is exactly the canonical `nop`.
    #[must_use]
    pub fn is_nop(&self) -> bool {
        *self == Inst::NOP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_shape() {
        assert!(Inst::NOP.is_nop());
        assert_eq!(Inst::NOP.rd(), None);
        assert_eq!(Inst::NOP.rs1(), Some(Reg::ZERO));
    }

    #[test]
    fn rd_hides_x0() {
        let i = Inst::OpImm { kind: AluKind::Add, rd: Reg::ZERO, rs1: Reg::A0, imm: 1 };
        assert_eq!(i.rd(), None);
        let i = Inst::OpImm { kind: AluKind::Add, rd: Reg::A0, rs1: Reg::A0, imm: 1 };
        assert_eq!(i.rd(), Some(Reg::A0));
    }

    #[test]
    fn source_registers() {
        let st = Inst::Store { kind: StoreKind::D, rs1: Reg::SP, rs2: Reg::A0, offset: 8 };
        assert_eq!(st.rs1(), Some(Reg::SP));
        assert_eq!(st.rs2(), Some(Reg::A0));
        assert_eq!(st.rd(), None);
        assert!(st.is_store() && st.is_mem() && !st.is_load());

        let lui = Inst::Lui { rd: Reg::A0, imm: 4096 };
        assert_eq!(lui.rs1(), None);
        assert_eq!(lui.rs2(), None);
    }

    #[test]
    fn control_flow_classification() {
        let b = Inst::Branch { kind: BranchKind::Eq, rs1: Reg::A0, rs2: Reg::A1, offset: -4 };
        assert!(b.is_branch() && b.is_control_flow() && !b.is_jump());
        let j = Inst::Jal { rd: Reg::RA, offset: 2048 };
        assert!(j.is_jump() && j.is_control_flow() && !j.is_branch());
    }

    #[test]
    fn alu_kind_predicates() {
        assert!(AluKind::Add.valid_for_imm());
        assert!(!AluKind::Sub.valid_for_imm());
        assert!(!AluKind::Mul.valid_for_imm());
        assert!(AluKind::Mul.is_muldiv() && !AluKind::Mul.is_div());
        assert!(AluKind::Divu.is_div());
        assert!(AluKind::Remw.is_word() && AluKind::Remw.is_div());
        assert!(AluKind::Sllw.is_shift() && AluKind::Sllw.is_word());
    }

    #[test]
    fn access_sizes() {
        assert_eq!(LoadKind::B.size(), 1);
        assert_eq!(LoadKind::Hu.size(), 2);
        assert_eq!(LoadKind::Wu.size(), 4);
        assert_eq!(LoadKind::D.size(), 8);
        assert_eq!(StoreKind::B.size(), 1);
        assert_eq!(StoreKind::D.size(), 8);
    }

    #[test]
    fn muldiv_uses_unit() {
        let m = Inst::Op { kind: AluKind::Mulhu, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
        assert!(m.is_muldiv());
        let a = Inst::Op { kind: AluKind::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
        assert!(!a.is_muldiv());
    }

    #[test]
    fn map_regs_rewrites_all_operands() {
        let bump = |r: Reg| Reg::new((r.index() + 1) % 32);
        let i = Inst::Op { kind: AluKind::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
        let Inst::Op { rd, rs1, rs2, .. } = i.map_regs(bump) else { panic!("kind changed") };
        assert_eq!((rd, rs1, rs2), (Reg::A1, Reg::A2, Reg::A3));

        // Identity mapping reproduces the instruction bit-for-bit.
        for i in [
            Inst::Lui { rd: Reg::T3, imm: 0x1000 },
            Inst::Load { kind: LoadKind::D, rd: Reg::S1, rs1: Reg::SP, offset: 8 },
            Inst::Store { kind: StoreKind::W, rs1: Reg::SP, rs2: Reg::S2, offset: -4 },
            Inst::Branch { kind: BranchKind::Ne, rs1: Reg::T0, rs2: Reg::ZERO, offset: -8 },
            Inst::Csr { kind: CsrKind::Rs, rd: Reg::T0, rs1: Reg::ZERO, csr: 0xf14 },
            Inst::Fence,
        ] {
            assert_eq!(i.map_regs(|r| r), i);
        }
    }
}
