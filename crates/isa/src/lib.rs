//! # safedm-isa — RV64IM instruction set
//!
//! The instruction-set layer of the SafeDM reproduction: structured
//! instruction representation ([`Inst`]), binary [`decode`]/[`encode`],
//! disassembly (`Display`), functional [`alu`]/[`branch_taken`] semantics,
//! and the minimal [`csr`] subset used by bare-metal harnesses.
//!
//! The supported ISA is RV64IM plus `fence`, `ecall`, `ebreak` and Zicsr —
//! exactly what the NOEL-V-like pipeline model in `safedm-soc` executes and
//! what the TACLe-style kernels in `safedm-tacle` are written in.
//!
//! ## Example
//!
//! ```
//! use safedm_isa::{decode, encode, Inst, Reg, AluKind, alu};
//!
//! let inst = Inst::Op { kind: AluKind::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
//! let word = encode(&inst)?;
//! assert_eq!(decode(word)?, inst);
//! assert_eq!(alu(AluKind::Add, 2, 40), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod absdom;
pub mod csr;
mod decode;
mod disasm;
mod encode;
mod error;
mod inst;
mod reg;
mod semantics;

pub use absdom::{abs_transfer, call_return_transfer, AbsValue};
pub use decode::decode;
pub use encode::encode;
pub use error::{DecodeError, EncodeError};
pub use inst::{AluKind, BranchKind, CsrKind, Inst, LoadKind, StoreKind};
pub use reg::{Reg, ABI_NAMES};
pub use semantics::{alu, branch_taken, is_aligned, load_value, store_lane_mask, store_merge};

/// Width of one instruction in bytes (no compressed extension).
pub const INST_BYTES: u64 = 4;
