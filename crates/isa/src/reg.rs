//! Integer register file names for RV64.
//!
//! A [`Reg`] is a validated index into the 32-entry integer register file.
//! The type is a transparent newtype so it can be stored in packed
//! microarchitectural state, while still guaranteeing the `0..=31` range
//! invariant at construction time.

use std::fmt;

/// One of the 32 RV64 integer registers (`x0`–`x31`).
///
/// # Examples
///
/// ```
/// use safedm_isa::Reg;
///
/// let a0 = Reg::A0;
/// assert_eq!(a0.index(), 10);
/// assert_eq!(a0.to_string(), "a0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

/// ABI names of the 32 integer registers, indexed by register number.
pub const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl Reg {
    /// The hard-wired zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Return address `x1`.
    pub const RA: Reg = Reg(1);
    /// Stack pointer `x2`.
    pub const SP: Reg = Reg(2);
    /// Global pointer `x3`.
    pub const GP: Reg = Reg(3);
    /// Thread pointer `x4`.
    pub const TP: Reg = Reg(4);
    /// Temporary `x5`.
    pub const T0: Reg = Reg(5);
    /// Temporary `x6`.
    pub const T1: Reg = Reg(6);
    /// Temporary `x7`.
    pub const T2: Reg = Reg(7);
    /// Saved register / frame pointer `x8`.
    pub const S0: Reg = Reg(8);
    /// Saved register `x9`.
    pub const S1: Reg = Reg(9);
    /// Argument / return value `x10`.
    pub const A0: Reg = Reg(10);
    /// Argument / return value `x11`.
    pub const A1: Reg = Reg(11);
    /// Argument `x12`.
    pub const A2: Reg = Reg(12);
    /// Argument `x13`.
    pub const A3: Reg = Reg(13);
    /// Argument `x14`.
    pub const A4: Reg = Reg(14);
    /// Argument `x15`.
    pub const A5: Reg = Reg(15);
    /// Argument `x16`.
    pub const A6: Reg = Reg(16);
    /// Argument `x17`.
    pub const A7: Reg = Reg(17);
    /// Saved register `x18`.
    pub const S2: Reg = Reg(18);
    /// Saved register `x19`.
    pub const S3: Reg = Reg(19);
    /// Saved register `x20`.
    pub const S4: Reg = Reg(20);
    /// Saved register `x21`.
    pub const S5: Reg = Reg(21);
    /// Saved register `x22`.
    pub const S6: Reg = Reg(22);
    /// Saved register `x23`.
    pub const S7: Reg = Reg(23);
    /// Saved register `x24`.
    pub const S8: Reg = Reg(24);
    /// Saved register `x25`.
    pub const S9: Reg = Reg(25);
    /// Saved register `x26`.
    pub const S10: Reg = Reg(26);
    /// Saved register `x27`.
    pub const S11: Reg = Reg(27);
    /// Temporary `x28`.
    pub const T3: Reg = Reg(28);
    /// Temporary `x29`.
    pub const T4: Reg = Reg(29);
    /// Temporary `x30`.
    pub const T5: Reg = Reg(30);
    /// Temporary `x31`.
    pub const T6: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    ///
    /// # Examples
    ///
    /// ```
    /// use safedm_isa::Reg;
    /// assert_eq!(Reg::new(2), Reg::SP);
    /// ```
    #[must_use]
    pub const fn new(index: u8) -> Reg {
        assert!(index < 32, "register index out of range");
        Reg(index)
    }

    /// Creates a register from its index, returning `None` when out of range.
    #[must_use]
    pub const fn try_new(index: u8) -> Option<Reg> {
        if index < 32 {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The register's index in `0..=31`.
    #[must_use]
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hard-wired zero register.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The register's ABI name (e.g. `"sp"`, `"a0"`).
    #[must_use]
    pub const fn abi_name(self) -> &'static str {
        ABI_NAMES[self.0 as usize]
    }

    /// The register's bit in a 32-bit register mask, with `x0` mapped to no
    /// bits (it is architecturally constant and never participates in
    /// dependence or liveness reasoning).
    #[must_use]
    pub const fn bit(self) -> u32 {
        if self.0 == 0 {
            0
        } else {
            1 << self.0
        }
    }

    /// Iterates over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0u8..32).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_constants_match_indices() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::RA.index(), 1);
        assert_eq!(Reg::SP.index(), 2);
        assert_eq!(Reg::GP.index(), 3);
        assert_eq!(Reg::TP.index(), 4);
        assert_eq!(Reg::T0.index(), 5);
        assert_eq!(Reg::S0.index(), 8);
        assert_eq!(Reg::A0.index(), 10);
        assert_eq!(Reg::A7.index(), 17);
        assert_eq!(Reg::S2.index(), 18);
        assert_eq!(Reg::T3.index(), 28);
        assert_eq!(Reg::T6.index(), 31);
    }

    #[test]
    fn display_uses_abi_names() {
        assert_eq!(Reg::ZERO.to_string(), "zero");
        assert_eq!(Reg::new(15).to_string(), "a5");
        assert_eq!(Reg::T6.to_string(), "t6");
    }

    #[test]
    fn try_new_bounds() {
        assert_eq!(Reg::try_new(31), Some(Reg::T6));
        assert_eq!(Reg::try_new(32), None);
        assert_eq!(Reg::try_new(255), None);
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn all_yields_each_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 32);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index() as usize, i);
        }
    }

    #[test]
    fn zero_detection() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::RA.is_zero());
    }
}
