//! Functional semantics of RV64IM operations.
//!
//! These pure functions are shared by the pipeline model's execute stage and
//! by reference interpreters in tests. They implement the RISC-V unprivileged
//! specification exactly, including the division-by-zero and overflow
//! conventions (no traps; well-defined results).

use crate::{AluKind, BranchKind, LoadKind, StoreKind};

/// Evaluates a register-register or register-immediate ALU/mul/div operation.
///
/// `b` is the second operand: the value of `rs2`, or the sign-extended
/// immediate (for shifts, the shamt).
///
/// # Examples
///
/// ```
/// use safedm_isa::{alu, AluKind};
///
/// assert_eq!(alu(AluKind::Add, 1, 2), 3);
/// assert_eq!(alu(AluKind::Div, u64::MAX, 0), u64::MAX); // div by zero => -1
/// ```
#[must_use]
#[allow(clippy::manual_checked_ops)] // the explicit b == 0 branches mirror the RISC-V spec text
pub fn alu(kind: AluKind, a: u64, b: u64) -> u64 {
    match kind {
        AluKind::Add => a.wrapping_add(b),
        AluKind::Sub => a.wrapping_sub(b),
        AluKind::Sll => a << (b & 63),
        AluKind::Slt => u64::from((a as i64) < (b as i64)),
        AluKind::Sltu => u64::from(a < b),
        AluKind::Xor => a ^ b,
        AluKind::Srl => a >> (b & 63),
        AluKind::Sra => ((a as i64) >> (b & 63)) as u64,
        AluKind::Or => a | b,
        AluKind::And => a & b,
        AluKind::Addw => sext32(a.wrapping_add(b)),
        AluKind::Subw => sext32(a.wrapping_sub(b)),
        AluKind::Sllw => sext32((a as u32 as u64) << (b & 31)),
        AluKind::Srlw => sext32(u64::from((a as u32) >> (b & 31))),
        AluKind::Sraw => ((a as i32) >> (b & 31)) as i64 as u64,
        AluKind::Mul => a.wrapping_mul(b),
        AluKind::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        AluKind::Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
        AluKind::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
        AluKind::Div => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                u64::MAX
            } else if a == i64::MIN && b == -1 {
                a as u64 // overflow: result is the dividend
            } else {
                (a / b) as u64
            }
        }
        AluKind::Divu => {
            if b == 0 {
                u64::MAX
            } else {
                a / b
            }
        }
        AluKind::Rem => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                a as u64
            } else if a == i64::MIN && b == -1 {
                0
            } else {
                (a % b) as u64
            }
        }
        AluKind::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        AluKind::Mulw => sext32((a as u32 as u64).wrapping_mul(b as u32 as u64)),
        AluKind::Divw => {
            let (a, b) = (a as i32, b as i32);
            let r = if b == 0 {
                -1
            } else if a == i32::MIN && b == -1 {
                a
            } else {
                a / b
            };
            r as i64 as u64
        }
        AluKind::Divuw => {
            let (a, b) = (a as u32, b as u32);
            let r = if b == 0 { u32::MAX } else { a / b };
            r as i32 as i64 as u64
        }
        AluKind::Remw => {
            let (a, b) = (a as i32, b as i32);
            let r = if b == 0 {
                a
            } else if a == i32::MIN && b == -1 {
                0
            } else {
                a % b
            };
            r as i64 as u64
        }
        AluKind::Remuw => {
            let (a, b) = (a as u32, b as u32);
            let r = if b == 0 { a } else { a % b };
            r as i32 as i64 as u64
        }
    }
}

#[inline]
fn sext32(v: u64) -> u64 {
    v as u32 as i32 as i64 as u64
}

/// Evaluates a branch condition.
///
/// # Examples
///
/// ```
/// use safedm_isa::{branch_taken, BranchKind};
///
/// assert!(branch_taken(BranchKind::Lt, u64::MAX, 0)); // -1 < 0 signed
/// assert!(!branch_taken(BranchKind::Ltu, u64::MAX, 0));
/// ```
#[must_use]
pub fn branch_taken(kind: BranchKind, a: u64, b: u64) -> bool {
    match kind {
        BranchKind::Eq => a == b,
        BranchKind::Ne => a != b,
        BranchKind::Lt => (a as i64) < (b as i64),
        BranchKind::Ge => (a as i64) >= (b as i64),
        BranchKind::Ltu => a < b,
        BranchKind::Geu => a >= b,
    }
}

/// Extracts and extends a loaded value from the raw little-endian bytes of a
/// naturally-aligned 8-byte window.
///
/// `raw` holds the 8 bytes at `addr & !7`; `addr` selects the lane.
///
/// # Examples
///
/// ```
/// use safedm_isa::{load_value, LoadKind};
///
/// let raw = 0x8899_aabb_ccdd_eeffu64;
/// assert_eq!(load_value(LoadKind::B, raw, 0), 0xffff_ffff_ffff_ffff); // 0xff sign-extended
/// assert_eq!(load_value(LoadKind::Bu, raw, 0), 0xff);
/// assert_eq!(load_value(LoadKind::H, raw, 2), 0xffff_ffff_ffff_ccddu64);
/// ```
#[must_use]
pub fn load_value(kind: LoadKind, raw: u64, addr: u64) -> u64 {
    let shift = (addr & 7) * 8;
    let v = raw >> shift;
    match kind {
        LoadKind::B => v as u8 as i8 as i64 as u64,
        LoadKind::Bu => u64::from(v as u8),
        LoadKind::H => v as u16 as i16 as i64 as u64,
        LoadKind::Hu => u64::from(v as u16),
        LoadKind::W => sext32(v),
        LoadKind::Wu => u64::from(v as u32),
        LoadKind::D => v,
    }
}

/// Merges a store value into the raw little-endian bytes of a
/// naturally-aligned 8-byte window, returning the updated window.
///
/// # Examples
///
/// ```
/// use safedm_isa::{store_merge, StoreKind};
///
/// let merged = store_merge(StoreKind::B, 0, 0xAB, 3); // byte lane 3
/// assert_eq!(merged, 0xAB00_0000);
/// ```
#[must_use]
pub fn store_merge(kind: StoreKind, raw: u64, value: u64, addr: u64) -> u64 {
    let shift = (addr & 7) * 8;
    let mask: u64 = match kind {
        StoreKind::B => 0xff,
        StoreKind::H => 0xffff,
        StoreKind::W => 0xffff_ffff,
        StoreKind::D => u64::MAX,
    };
    (raw & !(mask << shift)) | ((value & mask) << shift)
}

/// Byte-lane mask of a store within its aligned 8-byte window.
#[must_use]
pub fn store_lane_mask(kind: StoreKind, addr: u64) -> u8 {
    let base: u8 = match kind {
        StoreKind::B => 0b1,
        StoreKind::H => 0b11,
        StoreKind::W => 0b1111,
        StoreKind::D => 0xff,
    };
    base << (addr & 7)
}

/// Whether an access of `size` bytes at `addr` is naturally aligned.
#[must_use]
pub fn is_aligned(addr: u64, size: u64) -> bool {
    addr.is_multiple_of(size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        assert_eq!(alu(AluKind::Add, 3, 4), 7);
        assert_eq!(alu(AluKind::Sub, 3, 4), u64::MAX); // -1
        assert_eq!(alu(AluKind::Add, u64::MAX, 1), 0); // wrap
        assert_eq!(alu(AluKind::Xor, 0xf0, 0x0f), 0xff);
        assert_eq!(alu(AluKind::Or, 0xf0, 0x0f), 0xff);
        assert_eq!(alu(AluKind::And, 0xf0, 0x0f), 0);
    }

    #[test]
    fn comparisons() {
        assert_eq!(alu(AluKind::Slt, u64::MAX, 0), 1); // -1 < 0
        assert_eq!(alu(AluKind::Sltu, u64::MAX, 0), 0);
        assert_eq!(alu(AluKind::Slt, 0, 0), 0);
        assert_eq!(alu(AluKind::Sltu, 0, 1), 1);
    }

    #[test]
    fn shifts_mask_amounts() {
        assert_eq!(alu(AluKind::Sll, 1, 64), 1); // shamt masked to 0
        assert_eq!(alu(AluKind::Srl, 0x8000_0000_0000_0000, 63), 1);
        assert_eq!(alu(AluKind::Sra, 0x8000_0000_0000_0000, 63), u64::MAX);
        assert_eq!(alu(AluKind::Sllw, 1, 31), 0xffff_ffff_8000_0000);
        assert_eq!(alu(AluKind::Srlw, 0x8000_0000, 31), 1);
        assert_eq!(alu(AluKind::Sraw, 0x8000_0000, 31), u64::MAX);
    }

    #[test]
    fn word_ops_sign_extend() {
        assert_eq!(alu(AluKind::Addw, 0x7fff_ffff, 1), 0xffff_ffff_8000_0000);
        assert_eq!(alu(AluKind::Subw, 0, 1), u64::MAX);
        assert_eq!(alu(AluKind::Mulw, 0x1_0000_0001, 2), 2); // high bits ignored
    }

    #[test]
    fn multiply_highs() {
        assert_eq!(alu(AluKind::Mul, 7, 6), 42);
        assert_eq!(alu(AluKind::Mulhu, u64::MAX, u64::MAX), u64::MAX - 1);
        assert_eq!(alu(AluKind::Mulh, u64::MAX, u64::MAX), 0); // (-1)*(-1)=1, high 0
                                                               // mulhsu: -1 (signed) * MAX (unsigned) = -MAX -> high = -1
        assert_eq!(alu(AluKind::Mulhsu, u64::MAX, u64::MAX), u64::MAX);
    }

    #[test]
    fn division_spec_corner_cases() {
        // Division by zero
        assert_eq!(alu(AluKind::Div, 42, 0), u64::MAX);
        assert_eq!(alu(AluKind::Divu, 42, 0), u64::MAX);
        assert_eq!(alu(AluKind::Rem, 42, 0), 42);
        assert_eq!(alu(AluKind::Remu, 42, 0), 42);
        assert_eq!(alu(AluKind::Divw, 42, 0), u64::MAX);
        assert_eq!(alu(AluKind::Divuw, 42, 0), u64::MAX); // u32::MAX sign-extended
        assert_eq!(alu(AluKind::Remw, 42, 0), 42);
        assert_eq!(alu(AluKind::Remuw, 42, 0), 42);
        // Signed overflow
        assert_eq!(alu(AluKind::Div, i64::MIN as u64, u64::MAX), i64::MIN as u64);
        assert_eq!(alu(AluKind::Rem, i64::MIN as u64, u64::MAX), 0);
        assert_eq!(
            alu(AluKind::Divw, i32::MIN as u32 as u64, u32::MAX as u64),
            i32::MIN as i64 as u64
        );
        assert_eq!(alu(AluKind::Remw, i32::MIN as u32 as u64, u32::MAX as u64), 0);
        // Ordinary signed division truncates toward zero
        assert_eq!(alu(AluKind::Div, (-7i64) as u64, 2) as i64, -3);
        assert_eq!(alu(AluKind::Rem, (-7i64) as u64, 2) as i64, -1);
    }

    #[test]
    fn branch_conditions() {
        assert!(branch_taken(BranchKind::Eq, 5, 5));
        assert!(!branch_taken(BranchKind::Eq, 5, 6));
        assert!(branch_taken(BranchKind::Ne, 5, 6));
        assert!(branch_taken(BranchKind::Ge, 0, u64::MAX)); // 0 >= -1 signed
        assert!(!branch_taken(BranchKind::Geu, 0, u64::MAX));
        assert!(branch_taken(BranchKind::Geu, 5, 5));
        assert!(branch_taken(BranchKind::Ge, 5, 5));
    }

    #[test]
    fn load_lanes() {
        let raw = u64::from_le_bytes([0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88]);
        assert_eq!(load_value(LoadKind::B, raw, 8), 0x11);
        assert_eq!(load_value(LoadKind::B, raw, 15), 0xffff_ffff_ffff_ff88);
        assert_eq!(load_value(LoadKind::Bu, raw, 15), 0x88);
        assert_eq!(load_value(LoadKind::H, raw, 0), 0x2211);
        assert_eq!(load_value(LoadKind::Hu, raw, 6), 0x8877);
        assert_eq!(load_value(LoadKind::W, raw, 4), 0xffff_ffff_8877_6655);
        assert_eq!(load_value(LoadKind::Wu, raw, 4), 0x8877_6655);
        assert_eq!(load_value(LoadKind::D, raw, 0), raw);
    }

    #[test]
    fn store_merges() {
        let raw = 0u64;
        let r = store_merge(StoreKind::B, raw, 0xAB, 3);
        assert_eq!(r, 0xAB00_0000);
        let r = store_merge(StoreKind::H, r, 0x1234, 6);
        assert_eq!(r, 0x1234_0000_AB00_0000);
        let r = store_merge(StoreKind::W, r, 0xdead_beef, 0);
        assert_eq!(r, 0x1234_0000_dead_beef);
        let r = store_merge(StoreKind::D, r, 7, 0);
        assert_eq!(r, 7);
    }

    #[test]
    fn lane_masks() {
        assert_eq!(store_lane_mask(StoreKind::B, 0), 0b1);
        assert_eq!(store_lane_mask(StoreKind::B, 7), 0b1000_0000);
        assert_eq!(store_lane_mask(StoreKind::H, 2), 0b1100);
        assert_eq!(store_lane_mask(StoreKind::W, 4), 0b1111_0000);
        assert_eq!(store_lane_mask(StoreKind::D, 0), 0xff);
    }

    #[test]
    fn alignment() {
        assert!(is_aligned(0, 8));
        assert!(is_aligned(4, 4));
        assert!(!is_aligned(4, 8));
        assert!(is_aligned(3, 1));
        assert!(!is_aligned(1, 2));
    }
}
