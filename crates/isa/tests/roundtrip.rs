//! Property tests: encode/decode round-trips and decoder totality.

use proptest::prelude::*;
use safedm_isa::{
    alu, branch_taken, decode, encode, AluKind, BranchKind, CsrKind, Inst, LoadKind, Reg, StoreKind,
};

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn any_branch_kind() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::Eq),
        Just(BranchKind::Ne),
        Just(BranchKind::Lt),
        Just(BranchKind::Ge),
        Just(BranchKind::Ltu),
        Just(BranchKind::Geu),
    ]
}

fn any_load_kind() -> impl Strategy<Value = LoadKind> {
    prop_oneof![
        Just(LoadKind::B),
        Just(LoadKind::H),
        Just(LoadKind::W),
        Just(LoadKind::D),
        Just(LoadKind::Bu),
        Just(LoadKind::Hu),
        Just(LoadKind::Wu),
    ]
}

fn any_store_kind() -> impl Strategy<Value = StoreKind> {
    prop_oneof![Just(StoreKind::B), Just(StoreKind::H), Just(StoreKind::W), Just(StoreKind::D)]
}

fn any_rr_alu_kind() -> impl Strategy<Value = AluKind> {
    prop_oneof![
        Just(AluKind::Add),
        Just(AluKind::Sub),
        Just(AluKind::Sll),
        Just(AluKind::Slt),
        Just(AluKind::Sltu),
        Just(AluKind::Xor),
        Just(AluKind::Srl),
        Just(AluKind::Sra),
        Just(AluKind::Or),
        Just(AluKind::And),
        Just(AluKind::Addw),
        Just(AluKind::Subw),
        Just(AluKind::Sllw),
        Just(AluKind::Srlw),
        Just(AluKind::Sraw),
        Just(AluKind::Mul),
        Just(AluKind::Mulh),
        Just(AluKind::Mulhsu),
        Just(AluKind::Mulhu),
        Just(AluKind::Div),
        Just(AluKind::Divu),
        Just(AluKind::Rem),
        Just(AluKind::Remu),
        Just(AluKind::Mulw),
        Just(AluKind::Divw),
        Just(AluKind::Divuw),
        Just(AluKind::Remw),
        Just(AluKind::Remuw),
    ]
}

fn any_imm_alu() -> impl Strategy<Value = (AluKind, i64)> {
    prop_oneof![
        // Non-shift immediates: 12-bit signed
        (
            prop_oneof![
                Just(AluKind::Add),
                Just(AluKind::Slt),
                Just(AluKind::Sltu),
                Just(AluKind::Xor),
                Just(AluKind::Or),
                Just(AluKind::And),
                Just(AluKind::Addw),
            ],
            -2048i64..=2047
        ),
        // 64-bit shifts
        (prop_oneof![Just(AluKind::Sll), Just(AluKind::Srl), Just(AluKind::Sra)], 0i64..64),
        // 32-bit shifts
        (prop_oneof![Just(AluKind::Sllw), Just(AluKind::Srlw), Just(AluKind::Sraw)], 0i64..32),
    ]
}

fn any_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (any_reg(), (-524_288i64..524_288)).prop_map(|(rd, v)| Inst::Lui { rd, imm: v << 12 }),
        (any_reg(), (-524_288i64..524_288)).prop_map(|(rd, v)| Inst::Auipc { rd, imm: v << 12 }),
        (any_reg(), (-524_288i64..=524_287)).prop_map(|(rd, h)| Inst::Jal { rd, offset: h * 2 }),
        (any_reg(), any_reg(), -2048i64..=2047).prop_map(|(rd, rs1, offset)| Inst::Jalr {
            rd,
            rs1,
            offset
        }),
        (any_branch_kind(), any_reg(), any_reg(), -2048i64..=2047)
            .prop_map(|(kind, rs1, rs2, h)| Inst::Branch { kind, rs1, rs2, offset: h * 2 }),
        (any_load_kind(), any_reg(), any_reg(), -2048i64..=2047)
            .prop_map(|(kind, rd, rs1, offset)| Inst::Load { kind, rd, rs1, offset }),
        (any_store_kind(), any_reg(), any_reg(), -2048i64..=2047)
            .prop_map(|(kind, rs1, rs2, offset)| Inst::Store { kind, rs1, rs2, offset }),
        (any_imm_alu(), any_reg(), any_reg()).prop_map(|((kind, imm), rd, rs1)| Inst::OpImm {
            kind,
            rd,
            rs1,
            imm
        }),
        (any_rr_alu_kind(), any_reg(), any_reg(), any_reg())
            .prop_map(|(kind, rd, rs1, rs2)| Inst::Op { kind, rd, rs1, rs2 }),
        Just(Inst::Fence),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
        (
            prop_oneof![Just(CsrKind::Rw), Just(CsrKind::Rs), Just(CsrKind::Rc)],
            any_reg(),
            any_reg(),
            0u16..4096
        )
            .prop_map(|(kind, rd, rs1, csr)| Inst::Csr { kind, rd, rs1, csr }),
        (
            prop_oneof![Just(CsrKind::Rw), Just(CsrKind::Rs), Just(CsrKind::Rc)],
            any_reg(),
            0u8..32,
            0u16..4096
        )
            .prop_map(|(kind, rd, zimm, csr)| Inst::CsrImm { kind, rd, zimm, csr }),
    ]
}

proptest! {
    /// encode(decode(w)) == w cannot hold for all w (don't-care bits), but
    /// decode(encode(i)) == i must hold for every representable instruction.
    #[test]
    fn encode_decode_roundtrip(inst in any_inst()) {
        let word = encode(&inst).expect("generated instruction must encode");
        let back = decode(word).expect("encoded word must decode");
        prop_assert_eq!(back, inst);
    }

    /// Decoding never panics on arbitrary words and, when it succeeds,
    /// re-encoding yields a word that decodes to the same instruction
    /// (a canonicalisation fixpoint).
    #[test]
    fn decode_total_and_canonical(word in any::<u32>()) {
        if let Ok(inst) = decode(word) {
            let reenc = encode(&inst).expect("decoded instruction must re-encode");
            prop_assert_eq!(decode(reenc).expect("canonical word decodes"), inst);
        }
    }

    /// Disassembly never panics and is never empty.
    #[test]
    fn disasm_nonempty(inst in any_inst()) {
        prop_assert!(!inst.to_string().is_empty());
    }

    /// ALU word ops always produce sign-extended 32-bit values.
    #[test]
    fn word_ops_are_sign_extended(a in any::<u64>(), b in any::<u64>()) {
        for kind in [AluKind::Addw, AluKind::Subw, AluKind::Sllw, AluKind::Srlw,
                     AluKind::Sraw, AluKind::Mulw, AluKind::Divw, AluKind::Divuw,
                     AluKind::Remw, AluKind::Remuw] {
            let r = alu(kind, a, b);
            prop_assert_eq!(r, r as u32 as i32 as i64 as u64, "{:?}", kind);
        }
    }

    /// Branch kinds are pairwise-complementary: eq/ne, lt/ge, ltu/geu.
    #[test]
    fn branch_complements(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_ne!(branch_taken(BranchKind::Eq, a, b), branch_taken(BranchKind::Ne, a, b));
        prop_assert_ne!(branch_taken(BranchKind::Lt, a, b), branch_taken(BranchKind::Ge, a, b));
        prop_assert_ne!(branch_taken(BranchKind::Ltu, a, b), branch_taken(BranchKind::Geu, a, b));
    }

    /// Division identity: a == div(a,b)*b + rem(a,b) whenever b != 0 and the
    /// operation does not overflow.
    #[test]
    fn division_identity(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        prop_assume!(!(a == i64::MIN && b == -1));
        let q = alu(AluKind::Div, a as u64, b as u64) as i64;
        let r = alu(AluKind::Rem, a as u64, b as u64) as i64;
        prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
    }
}
