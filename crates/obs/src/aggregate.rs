//! Aggregation of campaign event streams and bench baselines.
//!
//! Pure data shaping — no I/O, no rendering. [`crate::report`] turns these
//! structures into terminal and HTML views; the `safedm-sim report` and
//! `bench --history` subcommands drive both. Everything here is
//! deterministic: aggregation orders follow sorted keys (kernel names,
//! config points, baseline dates), never input arrival order.

use crate::events::CellEvent;
use crate::json::{parse, JsonValue};

/// Per-kernel totals across a campaign's cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSummary {
    /// Kernel name.
    pub kernel: String,
    /// Number of cells.
    pub cells: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total guarded cycles.
    pub guarded: u64,
    /// Total cycles with zero staggering.
    pub zero_stag: u64,
    /// Total cycles without diversity.
    pub no_div: u64,
    /// Total completed no-diversity episodes.
    pub episodes: u64,
    /// Total violations.
    pub violations: u64,
    /// Cells that failed their self-check.
    pub failed: u64,
}

/// Folds events into per-kernel summaries, sorted by kernel name.
#[must_use]
pub fn summarize_by_kernel(events: &[CellEvent]) -> Vec<KernelSummary> {
    let mut out: Vec<KernelSummary> = Vec::new();
    for ev in events {
        let row = match out.iter_mut().find(|r| r.kernel == ev.kernel) {
            Some(row) => row,
            None => {
                out.push(KernelSummary {
                    kernel: ev.kernel.clone(),
                    cells: 0,
                    cycles: 0,
                    guarded: 0,
                    zero_stag: 0,
                    no_div: 0,
                    episodes: 0,
                    violations: 0,
                    failed: 0,
                });
                out.last_mut().expect("just pushed")
            }
        };
        row.cells += 1;
        row.cycles += ev.cycles;
        row.guarded += ev.guarded;
        row.zero_stag += ev.zero_stag;
        row.no_div += ev.no_div;
        row.episodes += ev.episodes;
        row.violations += ev.violations;
        row.failed += u64::from(!ev.ok);
    }
    out.sort_by(|a, b| a.kernel.cmp(&b.kernel));
    out
}

/// A kernel × config-point matrix of no-diversity density.
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    /// Row labels: kernel names, sorted.
    pub kernels: Vec<String>,
    /// Column labels: config points, sorted (numerically when they look
    /// like `key=NUMBER`, lexically otherwise).
    pub configs: Vec<String>,
    /// `values[row][col]`: mean no-diversity fraction of guarded cycles
    /// across that (kernel, config)'s cells; `None` when the combination
    /// has no cells.
    pub values: Vec<Vec<Option<f64>>>,
}

/// Sort key for config points: `nops=1000`-style labels order by their
/// numeric tail, everything else lexically after them.
fn config_key(s: &str) -> (String, u64, String) {
    if let Some((prefix, num)) = s.rsplit_once('=') {
        if let Ok(n) = num.trim_end_matches('%').parse::<u64>() {
            return (prefix.to_owned(), n, String::new());
        }
    }
    (String::new(), u64::MAX, s.to_owned())
}

/// Builds the no-diversity heatmap from a campaign's events.
#[must_use]
pub fn heatmap(events: &[CellEvent]) -> Heatmap {
    let mut kernels: Vec<String> = events.iter().map(|e| e.kernel.clone()).collect();
    kernels.sort();
    kernels.dedup();
    let mut configs: Vec<String> = events.iter().map(|e| e.config.clone()).collect();
    configs.sort_by_key(|c| config_key(c));
    configs.dedup();

    // Sum and count per (kernel, config) cell, then average.
    let mut sums = vec![vec![(0f64, 0u64); configs.len()]; kernels.len()];
    for ev in events {
        let r = kernels.iter().position(|k| *k == ev.kernel).expect("kernel collected above");
        let c = configs.iter().position(|k| *k == ev.config).expect("config collected above");
        #[allow(clippy::cast_precision_loss)]
        let frac = if ev.guarded == 0 { 0.0 } else { ev.no_div as f64 / ev.guarded as f64 };
        sums[r][c].0 += frac;
        sums[r][c].1 += 1;
    }
    #[allow(clippy::cast_precision_loss)]
    let values = sums
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|(sum, n)| if n == 0 { None } else { Some(sum / n as f64) })
                .collect()
        })
        .collect();
    Heatmap { kernels, configs, values }
}

/// The `n` slowest cells: by `wall_us` when the stream carries timing,
/// by simulated cycles otherwise (ties broken by cell index, so the order
/// is total and deterministic).
#[must_use]
pub fn slowest_cells(events: &[CellEvent], n: usize) -> Vec<&CellEvent> {
    let mut sorted: Vec<&CellEvent> = events.iter().collect();
    let has_timing = events.iter().any(|e| e.wall_us.is_some());
    sorted.sort_by_key(|e| {
        let cost = if has_timing { e.wall_us.unwrap_or(0) } else { e.cycles };
        (std::cmp::Reverse(cost), e.index)
    });
    sorted.truncate(n);
    sorted
}

/// One stall cause with its attributed cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallCause {
    /// Cause name (`mem`, `ex`, `operand`, `fetch`, …).
    pub cause: String,
    /// Cycles attributed to it, summed across cores.
    pub cycles: u64,
}

/// Extracts the stall-cause Pareto from a metrics-snapshot JSON document
/// (the `stats --metrics-out` format): every `core<i>.stall_<cause>_cycles`
/// counter, summed across cores, sorted by cycles descending (name
/// ascending on ties).
///
/// # Errors
///
/// Returns a message when the document is not a metrics snapshot.
pub fn stall_pareto(snapshot_json: &str) -> Result<Vec<StallCause>, String> {
    let doc = parse(snapshot_json).map_err(|e| format!("metrics snapshot: {e}"))?;
    let Some(JsonValue::Obj(counters)) = doc.get("counters") else {
        return Err("metrics snapshot has no `counters` object".to_owned());
    };
    let mut causes: Vec<StallCause> = Vec::new();
    for (name, value) in counters {
        let Some(rest) = name.split_once('.').map(|(_, r)| r) else { continue };
        let Some(cause) = rest.strip_prefix("stall_").and_then(|r| r.strip_suffix("_cycles"))
        else {
            continue;
        };
        let cycles = value.as_u64().ok_or_else(|| format!("counter `{name}` is not an integer"))?;
        match causes.iter_mut().find(|c| c.cause == cause) {
            Some(c) => c.cycles += cycles,
            None => causes.push(StallCause { cause: cause.to_owned(), cycles }),
        }
    }
    causes.sort_by(|a, b| b.cycles.cmp(&a.cycles).then_with(|| a.cause.cmp(&b.cause)));
    Ok(causes)
}

/// One metric of a bench baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMetric {
    /// Metric name.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit label.
    pub unit: String,
    /// `"higher"` or `"lower"` — which direction is better.
    pub better: String,
}

/// One parsed `BENCH_<date>.json` baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// File name the baseline came from.
    pub file: String,
    /// The baseline's date string.
    pub date: String,
    /// Metrics in document order.
    pub metrics: Vec<BenchMetric>,
}

/// Parses and validates one baseline document against the `safedm-bench/1`
/// schema.
///
/// # Errors
///
/// Returns a message naming the file and the violated constraint — never
/// panics on malformed input.
pub fn parse_bench_doc(file: &str, text: &str) -> Result<BenchDoc, String> {
    let doc = parse(text).map_err(|e| format!("{file}: {e}"))?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some("safedm-bench/1") => {}
        Some(other) => return Err(format!("{file}: unsupported schema `{other}`")),
        None => return Err(format!("{file}: missing `schema` field")),
    }
    let date = doc
        .get("date")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("{file}: missing `date` field"))?
        .to_owned();
    let Some(JsonValue::Obj(members)) = doc.get("metrics") else {
        return Err(format!("{file}: missing `metrics` object"));
    };
    let mut metrics = Vec::new();
    for (name, m) in members {
        let value = m
            .get("value")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("{file}: metric `{name}` has no numeric `value`"))?;
        let unit = m.get("unit").and_then(JsonValue::as_str).unwrap_or("").to_owned();
        let better = match m.get("better").and_then(JsonValue::as_str) {
            Some(b @ ("higher" | "lower")) => b.to_owned(),
            Some(other) => {
                return Err(format!(
                    "{file}: metric `{name}` has invalid `better` direction `{other}`"
                ))
            }
            None => return Err(format!("{file}: metric `{name}` is missing `better`")),
        };
        metrics.push(BenchMetric { name: name.clone(), value, unit, better });
    }
    Ok(BenchDoc { file: file.to_owned(), date, metrics })
}

/// Whether a baseline document declares a `safedm-bench/N` schema newer
/// than this binary's `safedm-bench/1` — i.e. a forward baseline written
/// by a newer toolchain. Such files are tolerable (skip them), unlike
/// malformed ones (error).
fn forward_schema(text: &str) -> Option<String> {
    let schema = parse(text).ok()?.get("schema")?.as_str()?.to_owned();
    let version: u64 = schema.strip_prefix("safedm-bench/")?.parse().ok()?;
    (version > 1).then_some(schema)
}

/// Loads every `BENCH_*.json` baseline in `dir`, sorted by file name (the
/// dated naming convention makes that chronological order).
///
/// Baselines whose schema is a *newer* `safedm-bench/N` than this binary
/// understands are skipped, not fatal — old binaries must tolerate forward
/// baselines checked in by newer ones. Each skip produces a warning string
/// in the second tuple element for the caller to surface.
///
/// # Errors
///
/// Returns a message on unreadable directories or files and on any
/// same-or-unknown-schema baseline that fails [`parse_bench_doc`]
/// validation.
pub fn load_bench_history(dir: &str) -> Result<(Vec<BenchDoc>, Vec<String>), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("cannot read {dir}: {e}"))?;
    let mut files: Vec<String> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {dir}: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            files.push(name);
        }
    }
    files.sort();
    let mut docs = Vec::new();
    let mut warnings = Vec::new();
    for name in files {
        let path = std::path::Path::new(dir).join(&name);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        if let Some(schema) = forward_schema(&text) {
            warnings.push(format!(
                "skipping {name}: baseline schema `{schema}` is newer than this binary's \
                 `safedm-bench/1`"
            ));
            continue;
        }
        docs.push(parse_bench_doc(&name, &text)?);
    }
    Ok((docs, warnings))
}

/// The trend of one metric across a baseline history: its values in
/// baseline order and the relative change of the newest step, signed so
/// that **positive means regression** for that metric's direction.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricTrend {
    /// Metric name.
    pub name: String,
    /// Unit label (from the newest baseline that has the metric).
    pub unit: String,
    /// Better direction (`"higher"`/`"lower"`).
    pub better: String,
    /// The metric's value per baseline (`None` where absent).
    pub values: Vec<Option<f64>>,
    /// Relative change of the last value vs the previous one, in the *bad*
    /// direction (`> 0` is a regression); `None` with fewer than two
    /// observations.
    pub last_delta: Option<f64>,
}

/// Computes per-metric trends across a baseline history (metrics ordered
/// by first appearance).
#[must_use]
pub fn metric_trends(history: &[BenchDoc]) -> Vec<MetricTrend> {
    let mut trends: Vec<MetricTrend> = Vec::new();
    for (i, doc) in history.iter().enumerate() {
        for m in &doc.metrics {
            let t = match trends.iter_mut().find(|t| t.name == m.name) {
                Some(t) => t,
                None => {
                    trends.push(MetricTrend {
                        name: m.name.clone(),
                        unit: m.unit.clone(),
                        better: m.better.clone(),
                        values: vec![None; history.len()],
                        last_delta: None,
                    });
                    trends.last_mut().expect("just pushed")
                }
            };
            t.values[i] = Some(m.value);
            t.unit = m.unit.clone();
            t.better = m.better.clone();
        }
    }
    for t in &mut trends {
        let present: Vec<f64> = t.values.iter().filter_map(|v| *v).collect();
        if present.len() >= 2 {
            let (prev, last) = (present[present.len() - 2], present[present.len() - 1]);
            if prev != 0.0 {
                let delta =
                    if t.better == "higher" { (prev - last) / prev } else { (last - prev) / prev };
                t.last_delta = Some(delta);
            }
        }
    }
    trends
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kernel: &str, config: &str, guarded: u64, no_div: u64) -> CellEvent {
        CellEvent {
            index: 0,
            kernel: kernel.to_owned(),
            config: config.to_owned(),
            engine: "cycle".to_owned(),
            run: 0,
            seed: 1,
            cycles: guarded + 10,
            guarded,
            zero_stag: 0,
            no_div,
            episodes: 1,
            violations: 0,
            ok: true,
            wall_us: None,
        }
    }

    #[test]
    fn kernel_summaries_fold_and_sort() {
        let events =
            vec![ev("z", "nops=0", 100, 10), ev("a", "nops=0", 50, 5), ev("z", "nops=100", 100, 0)];
        let sums = summarize_by_kernel(&events);
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].kernel, "a");
        assert_eq!(sums[1].cells, 2);
        assert_eq!(sums[1].no_div, 10);
        assert_eq!(sums[1].guarded, 200);
    }

    #[test]
    fn heatmap_orders_configs_numerically() {
        let events = vec![
            ev("k", "nops=1000", 100, 1),
            ev("k", "nops=0", 100, 50),
            ev("k", "nops=100", 100, 10),
            ev("k", "nops=10000", 100, 0),
        ];
        let h = heatmap(&events);
        assert_eq!(h.configs, vec!["nops=0", "nops=100", "nops=1000", "nops=10000"]);
        assert_eq!(h.values[0][0], Some(0.5));
        assert_eq!(h.values[0][3], Some(0.0));
    }

    #[test]
    fn heatmap_averages_runs_and_marks_holes() {
        let events = vec![
            ev("k", "nops=0", 100, 20),
            ev("k", "nops=0", 100, 40),
            ev("j", "nops=100", 100, 0),
        ];
        let h = heatmap(&events);
        // j row, nops=0 column never ran.
        let jr = h.kernels.iter().position(|k| k == "j").unwrap();
        let c0 = h.configs.iter().position(|c| c == "nops=0").unwrap();
        assert_eq!(h.values[jr][c0], None);
        let kr = h.kernels.iter().position(|k| k == "k").unwrap();
        let mean = h.values[kr][c0].unwrap();
        assert!((mean - 0.3).abs() < 1e-12, "{mean}");
    }

    #[test]
    fn slowest_prefers_wall_clock_then_cycles() {
        let mut a = ev("a", "c", 10, 0);
        a.index = 0;
        a.cycles = 999;
        let mut b = ev("b", "c", 10, 0);
        b.index = 1;
        b.cycles = 5;
        // Without timing: by cycles.
        let untimed = [a.clone(), b.clone()];
        assert_eq!(slowest_cells(&untimed, 1)[0].kernel, "a");
        // With timing on any event: by wall_us (missing = 0).
        b.wall_us = Some(10_000);
        let timed = [a, b];
        assert_eq!(slowest_cells(&timed, 1)[0].kernel, "b");
    }

    #[test]
    fn stall_pareto_sums_cores_and_sorts() {
        let snap = r#"{"counters":{"core0.stall_mem_cycles":30,"core1.stall_mem_cycles":20,
            "core0.stall_fetch_cycles":5,"core1.stall_fetch_cycles":5,
            "core0.retired":1000,"bus.transactions":7},"gauges":{},"histograms":{}}"#;
        let causes = stall_pareto(snap).unwrap();
        assert_eq!(causes.len(), 2);
        assert_eq!(causes[0], StallCause { cause: "mem".to_owned(), cycles: 50 });
        assert_eq!(causes[1], StallCause { cause: "fetch".to_owned(), cycles: 10 });
        assert!(stall_pareto("{}").is_err());
        assert!(stall_pareto("not json").is_err());
    }

    fn bench_doc(date: &str, value: f64) -> String {
        format!(
            r#"{{"schema":"safedm-bench/1","date":"{date}","reps":3,"metrics":{{
               "sim_mcps_fac":{{"value":{value},"unit":"Mcyc/s","better":"higher"}}}}}}"#
        )
    }

    #[test]
    fn bench_docs_validate_cleanly() {
        let ok = parse_bench_doc("BENCH_a.json", &bench_doc("2026-01-01", 1.5)).unwrap();
        assert_eq!(ok.date, "2026-01-01");
        assert_eq!(ok.metrics.len(), 1);
        // Malformed inputs are errors, not panics.
        assert!(parse_bench_doc("f", "{").is_err());
        assert!(parse_bench_doc("f", "{}").is_err());
        assert!(parse_bench_doc("f", r#"{"schema":"other/9"}"#).is_err());
        let bad_better = r#"{"schema":"safedm-bench/1","date":"d","metrics":
            {"m":{"value":1,"unit":"x","better":"sideways"}}}"#;
        assert!(parse_bench_doc("f", bad_better).unwrap_err().contains("sideways"));
        let no_value = r#"{"schema":"safedm-bench/1","date":"d","metrics":{"m":{"unit":"x"}}}"#;
        assert!(parse_bench_doc("f", no_value).is_err());
    }

    #[test]
    fn trends_flag_regressions_in_the_bad_direction() {
        let history = vec![
            parse_bench_doc("BENCH_1.json", &bench_doc("1", 2.0)).unwrap(),
            parse_bench_doc("BENCH_2.json", &bench_doc("2", 1.0)).unwrap(),
        ];
        let trends = metric_trends(&history);
        assert_eq!(trends.len(), 1);
        // higher-is-better halved → +50% regression.
        assert_eq!(trends[0].last_delta, Some(0.5));
        assert_eq!(trends[0].values, vec![Some(2.0), Some(1.0)]);
        // Improvement is a negative delta.
        let up = vec![
            parse_bench_doc("BENCH_1.json", &bench_doc("1", 1.0)).unwrap(),
            parse_bench_doc("BENCH_2.json", &bench_doc("2", 2.0)).unwrap(),
        ];
        assert_eq!(metric_trends(&up)[0].last_delta, Some(-1.0));
    }

    #[test]
    fn single_baseline_has_no_delta() {
        let history = vec![parse_bench_doc("BENCH_1.json", &bench_doc("1", 2.0)).unwrap()];
        assert_eq!(metric_trends(&history)[0].last_delta, None);
    }
}
