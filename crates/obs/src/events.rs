//! Structured per-cell campaign events.
//!
//! Every campaign cell — one (kernel, config point, seed) simulation —
//! produces one [`CellEvent`]: a compact, structured record of what the
//! cell was and what the monitor saw. Events serialise as JSONL (one JSON
//! object per line, via the [`crate::json`] layer) so campaign telemetry
//! can be streamed, concatenated and grepped.
//!
//! ## Determinism
//!
//! Everything in an event is a pure function of the cell's inputs — except
//! `wall_us`, the host wall-clock, which varies run to run. Serialisation
//! therefore **strips timing by default** ([`Timing::Strip`]): a campaign's
//! `--events-out` file is byte-identical for every `--jobs N`, the same
//! contract the campaign engine gives every other artefact. Opting in to
//! [`Timing::Keep`] (`--events-timing`) trades that guarantee for per-cell
//! latency data.
//!
//! Counter fields are `u64` and survive the round-trip exactly (the JSON
//! layer keeps unsigned integer literals at full precision, see
//! [`crate::json::JsonValue::Uint`]), so multi-billion-cycle campaigns
//! do not silently lose bits.

use crate::json::{parse, JsonError, JsonValue};

/// Whether serialised events carry the host wall-clock field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timing {
    /// Omit `wall_us`: output is deterministic (byte-identical across
    /// worker counts). The default for `--events-out`.
    Strip,
    /// Include `wall_us` when present: useful for latency analysis, not
    /// byte-stable across runs.
    Keep,
}

/// One campaign cell's telemetry record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellEvent {
    /// Dense cell index in the campaign's canonical enumeration.
    pub index: u64,
    /// Kernel (or workload) name.
    pub kernel: String,
    /// Config-point description (e.g. `nops=100`, `fifo=8`, `mem=20%`).
    pub config: String,
    /// Execution engine that produced the cell (`cycle`, `fast` or
    /// `hybrid`); absent in pre-engine streams, which parse as `cycle`.
    pub engine: String,
    /// Repeat-run number within the config point.
    pub run: u64,
    /// The cell's derived seed.
    pub seed: u64,
    /// Simulated cycles to completion.
    pub cycles: u64,
    /// Monitor-guarded (observed) cycles.
    pub guarded: u64,
    /// Cycles with zero staggering.
    pub zero_stag: u64,
    /// Cycles without diversity.
    pub no_div: u64,
    /// Completed no-diversity episodes.
    pub episodes: u64,
    /// Violations (failed self-checks, refuted certificates, mismatches).
    pub violations: u64,
    /// Monitor/self-check verdict: did the cell pass?
    pub ok: bool,
    /// Host wall-clock microseconds (measurement, not input — see module
    /// docs; stripped from serialisation unless [`Timing::Keep`]).
    pub wall_us: Option<u64>,
}

impl CellEvent {
    /// The event as a JSON object with a fixed field order.
    #[must_use]
    pub fn to_json(&self, timing: Timing) -> JsonValue {
        let mut members = vec![
            ("index".to_owned(), JsonValue::Uint(self.index)),
            ("kernel".to_owned(), JsonValue::Str(self.kernel.clone())),
            ("config".to_owned(), JsonValue::Str(self.config.clone())),
            ("engine".to_owned(), JsonValue::Str(self.engine.clone())),
            ("run".to_owned(), JsonValue::Uint(self.run)),
            ("seed".to_owned(), JsonValue::Uint(self.seed)),
            ("cycles".to_owned(), JsonValue::Uint(self.cycles)),
            ("guarded".to_owned(), JsonValue::Uint(self.guarded)),
            ("zero_stag".to_owned(), JsonValue::Uint(self.zero_stag)),
            ("no_div".to_owned(), JsonValue::Uint(self.no_div)),
            ("episodes".to_owned(), JsonValue::Uint(self.episodes)),
            ("violations".to_owned(), JsonValue::Uint(self.violations)),
            ("ok".to_owned(), JsonValue::Bool(self.ok)),
        ];
        if timing == Timing::Keep {
            if let Some(us) = self.wall_us {
                members.push(("wall_us".to_owned(), JsonValue::Uint(us)));
            }
        }
        JsonValue::Obj(members)
    }

    /// Reconstructs an event from a parsed JSON object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or ill-typed field.
    pub fn from_json(v: &JsonValue) -> Result<CellEvent, String> {
        let uint = |key: &str| {
            v.get(key)
                .ok_or_else(|| format!("event is missing `{key}`"))?
                .as_u64()
                .ok_or_else(|| format!("event field `{key}` is not an unsigned integer"))
        };
        let string = |key: &str| {
            v.get(key)
                .ok_or_else(|| format!("event is missing `{key}`"))?
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("event field `{key}` is not a string"))
        };
        Ok(CellEvent {
            index: uint("index")?,
            kernel: string("kernel")?,
            config: string("config")?,
            engine: match v.get("engine") {
                None => "cycle".to_owned(),
                Some(e) => e
                    .as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| "event field `engine` is not a string".to_owned())?,
            },
            run: uint("run")?,
            seed: uint("seed")?,
            cycles: uint("cycles")?,
            guarded: uint("guarded")?,
            zero_stag: uint("zero_stag")?,
            no_div: uint("no_div")?,
            episodes: uint("episodes")?,
            violations: uint("violations")?,
            ok: v
                .get("ok")
                .ok_or_else(|| "event is missing `ok`".to_owned())?
                .as_bool()
                .ok_or_else(|| "event field `ok` is not a boolean".to_owned())?,
            wall_us: match v.get("wall_us") {
                None => None,
                Some(w) => Some(w.as_u64().ok_or_else(|| {
                    "event field `wall_us` is not an unsigned integer".to_owned()
                })?),
            },
        })
    }
}

/// Serialises events as JSONL: one object per line, in input order, each
/// line newline-terminated. An empty campaign is the empty string.
#[must_use]
pub fn to_jsonl(events: &[CellEvent], timing: Timing) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json(timing).render());
        out.push('\n');
    }
    out
}

/// Parses an event JSONL document. Blank lines are skipped; any malformed
/// line is an error (with its 1-based line number), never a panic.
///
/// # Errors
///
/// Returns `line N: <what went wrong>` for the first bad line.
pub fn parse_jsonl(text: &str) -> Result<Vec<CellEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e: JsonError| format!("line {}: {e}", i + 1))?;
        events.push(CellEvent::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CellEvent {
        CellEvent {
            index: 3,
            kernel: "bitcount".to_owned(),
            config: "nops=100".to_owned(),
            engine: "cycle".to_owned(),
            run: 1,
            seed: 0xdead_beef_cafe_f00d,
            cycles: u64::MAX - 1,
            guarded: (1 << 60) + 7,
            zero_stag: 123,
            no_div: 45,
            episodes: 6,
            violations: 0,
            ok: true,
            wall_us: Some(1_234),
        }
    }

    #[test]
    fn roundtrip_without_timing_is_exact_and_stable() {
        let evs = vec![sample(), CellEvent { index: 4, ok: false, wall_us: None, ..sample() }];
        let doc = to_jsonl(&evs, Timing::Strip);
        let back = parse_jsonl(&doc).unwrap();
        // wall_us was stripped; everything else survives exactly.
        let stripped: Vec<CellEvent> =
            evs.iter().map(|e| CellEvent { wall_us: None, ..e.clone() }).collect();
        assert_eq!(back, stripped);
        // Serialisation is stable under re-serialisation.
        assert_eq!(to_jsonl(&back, Timing::Strip), doc);
    }

    #[test]
    fn timing_kept_only_on_request() {
        let ev = sample();
        let strip = to_jsonl(std::slice::from_ref(&ev), Timing::Strip);
        let keep = to_jsonl(std::slice::from_ref(&ev), Timing::Keep);
        assert!(!strip.contains("wall_us"));
        assert!(keep.contains("\"wall_us\":1234"));
        assert_eq!(parse_jsonl(&keep).unwrap()[0], ev);
    }

    #[test]
    fn empty_campaign_is_empty_document() {
        assert_eq!(to_jsonl(&[], Timing::Strip), "");
        assert_eq!(parse_jsonl("").unwrap(), Vec::new());
        assert_eq!(parse_jsonl("\n  \n").unwrap(), Vec::new());
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let good = to_jsonl(&[sample()], Timing::Strip);
        let doc = format!("{good}{{\"index\":1}}\n");
        let err = parse_jsonl(&doc).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = parse_jsonl("not json\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        // Ill-typed field.
        let doc = good.replace("\"cycles\":18446744073709551614", "\"cycles\":\"many\"");
        let err = parse_jsonl(&doc).unwrap_err();
        assert!(err.contains("cycles"), "{err}");
    }

    #[test]
    fn pre_engine_streams_parse_as_cycle() {
        let doc = to_jsonl(&[sample()], Timing::Strip).replace("\"engine\":\"cycle\",", "");
        assert!(!doc.contains("engine"));
        let back = &parse_jsonl(&doc).unwrap()[0];
        assert_eq!(back.engine, "cycle");
        // Non-default engines round-trip.
        let ev = CellEvent { engine: "hybrid".to_owned(), ..sample() };
        let back = &parse_jsonl(&to_jsonl(std::slice::from_ref(&ev), Timing::Strip)).unwrap()[0];
        assert_eq!(back.engine, "hybrid");
    }

    #[test]
    fn large_counters_do_not_lose_precision() {
        let ev = CellEvent { cycles: u64::MAX, guarded: (1 << 53) + 1, ..sample() };
        let back = &parse_jsonl(&to_jsonl(std::slice::from_ref(&ev), Timing::Strip)).unwrap()[0];
        assert_eq!(back.cycles, u64::MAX);
        assert_eq!(back.guarded, (1 << 53) + 1);
    }
}
