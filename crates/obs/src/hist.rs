//! Fixed-bin histograms with explicit underflow/overflow bins.
//!
//! Unlike the monitor's episode histogram in `safedm-core` (which is part of
//! the modelled SafeDM hardware), this histogram is an *observability*
//! primitive: uniform bins over `[lo, lo + bins * width)`, plus a dedicated
//! underflow bin for samples below `lo` and an overflow bin for samples at or
//! beyond the upper edge. It never allocates after construction and never
//! loses a sample.

/// A fixed-geometry histogram of `u64` samples.
///
/// # Examples
///
/// ```
/// use safedm_obs::BinnedHistogram;
///
/// // bins: [10,20) [20,30) [30,40), plus underflow (<10) and overflow (>=40)
/// let mut h = BinnedHistogram::new(10, 10, 3);
/// h.observe(5);
/// h.observe(10);
/// h.observe(39);
/// h.observe(40);
/// assert_eq!(h.underflow(), 1);
/// assert_eq!(h.bins(), &[1, 0, 1]);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinnedHistogram {
    lo: u64,
    width: u64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl BinnedHistogram {
    /// Creates a histogram with `bins` uniform bins of `width` starting at
    /// `lo`. A single-bin histogram (`bins == 1`) is valid and degenerates
    /// into an "in range / out of range" counter.
    ///
    /// # Panics
    ///
    /// Panics on zero bins or zero width.
    #[must_use]
    pub fn new(lo: u64, width: u64, bins: usize) -> BinnedHistogram {
        assert!(bins >= 1, "histogram needs at least one bin");
        assert!(width >= 1, "histogram bins need nonzero width");
        BinnedHistogram {
            lo,
            width,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = (v - self.lo) / self.width;
        if idx >= self.bins.len() as u64 {
            self.overflow += 1;
        } else {
            self.bins[idx as usize] += 1;
        }
    }

    /// Per-bin counts (underflow/overflow excluded).
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Samples below the first bin's lower edge.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the last bin's upper edge.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Half-open range `[lo, hi)` covered by bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn bin_range(&self, idx: usize) -> (u64, u64) {
        assert!(idx < self.bins.len());
        let lo = self.lo + idx as u64 * self.width;
        (lo, lo + self.width)
    }

    /// Total samples, including under/overflow.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Folds another histogram's samples into this one. The merge is exact
    /// (bin counts, under/overflow, count, sum, min, max all combine), so
    /// merging per-worker histograms reproduces the single-threaded result
    /// regardless of how samples were split across workers.
    ///
    /// # Panics
    ///
    /// Panics if the geometries (lo, width, bin count) differ.
    pub fn merge(&mut self, other: &BinnedHistogram) {
        assert!(
            self.lo == other.lo && self.width == other.width && self.bins.len() == other.bins.len(),
            "cannot merge histograms with different geometries \
             ({}+{}x{} vs {}+{}x{})",
            self.lo,
            self.width,
            self.bins.len(),
            other.lo,
            other.width,
            other.bins.len()
        );
        for (b, o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Clears all counts, keeping the geometry.
    pub fn reset(&mut self) {
        self.bins.iter_mut().for_each(|b| *b = 0);
        self.underflow = 0;
        self.overflow = 0;
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_reproduces_single_stream() {
        let samples: Vec<u64> = (0..100).map(|i| i * 7 % 60).collect();
        let mut whole = BinnedHistogram::new(0, 8, 6);
        for &v in &samples {
            whole.observe(v);
        }
        // Split the same samples across three "workers" and merge.
        let mut merged = BinnedHistogram::new(0, 8, 6);
        for part in samples.chunks(33) {
            let mut h = BinnedHistogram::new(0, 8, 6);
            for &v in part {
                h.observe(v);
            }
            merged.merge(&h);
        }
        assert_eq!(merged, whole);
    }

    #[test]
    fn merge_with_empty_keeps_min_max() {
        let mut h = BinnedHistogram::new(0, 1, 4);
        h.observe(2);
        h.merge(&BinnedHistogram::new(0, 1, 4));
        assert_eq!(h.min(), Some(2));
        assert_eq!(h.max(), Some(2));
        assert_eq!(h.count(), 1);
    }

    #[test]
    #[should_panic(expected = "different geometries")]
    fn merge_rejects_geometry_mismatch() {
        let mut a = BinnedHistogram::new(0, 1, 4);
        let b = BinnedHistogram::new(0, 2, 4);
        a.merge(&b);
    }

    #[test]
    fn exact_edges_bin_correctly() {
        let mut h = BinnedHistogram::new(0, 4, 4); // [0,4) [4,8) [8,12) [12,16)
        for v in [0, 3, 4, 7, 8, 11, 12, 15] {
            h.observe(v);
        }
        assert_eq!(h.bins(), &[2, 2, 2, 2]);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.bin_range(0), (0, 4));
        assert_eq!(h.bin_range(3), (12, 16));
    }

    #[test]
    fn underflow_and_overflow_are_separate_bins() {
        let mut h = BinnedHistogram::new(100, 10, 2); // [100,110) [110,120)
        h.observe(0);
        h.observe(99);
        h.observe(100);
        h.observe(119);
        h.observe(120);
        h.observe(u64::MAX);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.bins(), &[1, 1]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn single_bin_histogram() {
        let mut h = BinnedHistogram::new(5, 5, 1); // [5,10)
        h.observe(4);
        h.observe(5);
        h.observe(9);
        h.observe(10);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.bins(), &[2]);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn wide_values_do_not_overflow_index_math() {
        let mut h = BinnedHistogram::new(0, 1, 8);
        h.observe(u64::MAX); // (MAX - 0) / 1 must not wrap into a bin
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins().iter().sum::<u64>(), 0);
    }

    #[test]
    fn mean_min_max_and_reset() {
        let mut h = BinnedHistogram::new(0, 10, 2);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        h.observe(2);
        h.observe(4);
        assert_eq!(h.mean(), 3.0);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), None);
        assert_eq!(h.bins(), &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = BinnedHistogram::new(0, 1, 0);
    }

    #[test]
    #[should_panic(expected = "nonzero width")]
    fn zero_width_panics() {
        let _ = BinnedHistogram::new(0, 0, 1);
    }
}
