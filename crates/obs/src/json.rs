//! Dependency-free JSON value type, writer and parser.
//!
//! This workspace builds with no crates.io access, so the observability
//! layer carries its own minimal JSON codec. The writer produces
//! deterministic output (object keys keep insertion order); the parser
//! accepts standard RFC 8259 JSON and is used by the test suite to validate
//! that exported trace/metric documents are well-formed.

use std::fmt::Write as _;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept at full `u64` precision. The parser
    /// produces this for unsigned integer literals (no sign, fraction or
    /// exponent), so counters like guarded-cycle totals survive a
    /// round-trip even beyond 2^53 (where `f64` starts dropping bits).
    Uint(u64),
    /// Any other JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (`None` on other kinds or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` on other kinds).
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string payload (`None` on other kinds).
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload (`None` on other kinds). `Uint` values wider
    /// than 53 bits are rounded — use [`JsonValue::as_u64`] when exactness
    /// matters.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            #[allow(clippy::cast_precision_loss)]
            JsonValue::Uint(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as an exact `u64`: `Uint` directly, `Num` only when it is
    /// a non-negative integer small enough to be exact.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Uint(n) => Some(*n),
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload (`None` on other kinds).
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialises to compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Uint(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Num(n) => out.push_str(&number(*n)),
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes a string body for inclusion between JSON quotes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a float the way JSON expects (non-finite values become `null`).
#[must_use]
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first syntax violation.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_owned(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` and a low surrogate.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + lo.checked_sub(0xdc00)
                                            .ok_or_else(|| self.err("invalid low surrogate"))?;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input is valid UTF-8");
                    let c = s.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self.peek().and_then(|b| (b as char).to_digit(16));
            match d {
                Some(d) => {
                    v = v * 16 + d;
                    self.pos += 1;
                }
                None => return Err(self.err("expected 4 hex digits")),
            }
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        // Unsigned integer literals keep full 64-bit precision; everything
        // else (signs, fractions, exponents, wider integers) goes to f64.
        if !text.starts_with('-') && !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::Uint(n));
            }
        }
        text.parse::<f64>().map(JsonValue::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let text = r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":"x\"y\n"}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\"y\n"));
        // render → parse is stable
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn control_characters_escape_on_render() {
        let v = JsonValue::Str("a\u{1}b".to_owned());
        assert_eq!(v.render(), "\"a\\u0001b\"");
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn u64_integers_roundtrip_exactly() {
        for n in [0u64, 1, (1 << 53) + 1, u64::MAX] {
            let v = parse(&format!("{n}")).unwrap();
            assert_eq!(v, JsonValue::Uint(n));
            assert_eq!(v.as_u64(), Some(n));
            assert_eq!(parse(&v.render()).unwrap(), v);
        }
        // Signed / fractional / exponent literals stay on the f64 path.
        assert_eq!(parse("-1").unwrap(), JsonValue::Num(-1.0));
        assert_eq!(parse("1.5").unwrap(), JsonValue::Num(1.5));
        assert_eq!(parse("1e3").unwrap(), JsonValue::Num(1000.0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("2.0").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }
}
